//! Prop 3.1: evaluation hardness via subgraph isomorphism.
//!
//! A Boolean CQ `Q` maps injectively into `G` iff `Q(G)_q-inj ≠ ∅` iff
//! `Q⁺(G⁺)_a-inj ≠ ∅`, where `G⁺` (resp. `Q⁺`) adds, for a fresh symbol
//! `R`, an `R`-edge between every ordered pair of distinct vertices (resp.
//! an `R`-atom between every ordered pair of distinct variables). The `R`
//! clique forces atom-injective matching to be injective *globally*.

use crpq_graph::{GraphDb, NodeId};
use crpq_query::{Cq, CqAtom, Crpq, Var};
use crpq_util::FxHashMap;

/// The fresh relation name used by the `⁺` constructions.
pub const FRESH_RELATION: &str = "__R";

/// Builds `(Q⁺, G⁺)` from a Boolean CQ pattern and a graph. Evaluating
/// `Q⁺` on `G⁺` under **atom-injective** semantics decides subgraph
/// isomorphism of `Q` into `G`; evaluating `Q` on `G` under
/// **query-injective** semantics does so directly.
pub fn subgraph_to_evaluation(pattern: &Cq, g: &GraphDb) -> (Crpq, GraphDb) {
    let mut builder = g.clone().into_builder();
    let r = builder.label(FRESH_RELATION);
    // R-edges between every ordered pair of distinct nodes.
    let nodes: Vec<NodeId> = (0..g.num_nodes() as u32).map(NodeId).collect();
    for &u in &nodes {
        for &v in &nodes {
            if u != v {
                builder.edge_ids(u, r, v);
            }
        }
    }
    let g_plus = builder.finish();

    let mut atoms = pattern.atoms.clone();
    for a in 0..pattern.num_vars as u32 {
        for b in 0..pattern.num_vars as u32 {
            if a != b {
                atoms.push(CqAtom {
                    src: Var(a),
                    label: r,
                    dst: Var(b),
                });
            }
        }
    }
    let q_plus = Crpq::from_cq(&Cq {
        num_vars: pattern.num_vars,
        atoms,
        free: Vec::new(),
    });
    (q_plus, g_plus)
}

/// Brute-force subgraph isomorphism: is there an injective homomorphism
/// from `pattern` into `g`? (Exponential; ground truth for small instances.)
pub fn subgraph_iso_brute_force(pattern: &Cq, g: &GraphDb) -> bool {
    let n = g.num_nodes();
    let k = pattern.num_vars;
    if k > n {
        return false;
    }
    let mut assignment: FxHashMap<usize, NodeId> = FxHashMap::default();
    fn rec(pattern: &Cq, g: &GraphDb, v: usize, assignment: &mut FxHashMap<usize, NodeId>) -> bool {
        if v == pattern.num_vars {
            return pattern.atoms.iter().all(|a| {
                g.has_edge(
                    assignment[&a.src.index()],
                    a.label,
                    assignment[&a.dst.index()],
                )
            });
        }
        for node in g.nodes() {
            if assignment.values().any(|&used| used == node) {
                continue;
            }
            assignment.insert(v, node);
            if rec(pattern, g, v + 1, assignment) {
                return true;
            }
            assignment.remove(&v);
        }
        false
    }
    rec(pattern, g, 0, &mut assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_core::{eval_boolean, Semantics};
    use crpq_graph::GraphBuilder;
    use crpq_util::Symbol;

    fn cq_triangle(label: Symbol) -> Cq {
        Cq::boolean(vec![
            CqAtom {
                src: Var(0),
                label,
                dst: Var(1),
            },
            CqAtom {
                src: Var(1),
                label,
                dst: Var(2),
            },
            CqAtom {
                src: Var(2),
                label,
                dst: Var(0),
            },
        ])
    }

    fn graph(edges: &[(&str, &str, &str)]) -> GraphDb {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        b.finish()
    }

    #[test]
    fn triangle_in_triangle() {
        let g = graph(&[("a", "e", "b"), ("b", "e", "c"), ("c", "e", "a")]);
        let e = g.alphabet().get("e").unwrap();
        let q = cq_triangle(e);
        assert!(subgraph_iso_brute_force(&q, &g));
        // q-inj evaluation decides it directly:
        let crpq = Crpq::from_cq(&q);
        assert!(eval_boolean(&crpq, &g, Semantics::QueryInjective));
        // and the a-inj reduction agrees:
        let (q_plus, g_plus) = subgraph_to_evaluation(&q, &g);
        assert!(eval_boolean(&q_plus, &g_plus, Semantics::AtomInjective));
    }

    #[test]
    fn triangle_not_in_hexagon() {
        let g = graph(&[
            ("n1", "e", "n2"),
            ("n2", "e", "n3"),
            ("n3", "e", "n4"),
            ("n4", "e", "n5"),
            ("n5", "e", "n6"),
            ("n6", "e", "n1"),
        ]);
        let e = g.alphabet().get("e").unwrap();
        let q = cq_triangle(e);
        assert!(!subgraph_iso_brute_force(&q, &g));
        let crpq = Crpq::from_cq(&q);
        assert!(!eval_boolean(&crpq, &g, Semantics::QueryInjective));
        let (q_plus, g_plus) = subgraph_to_evaluation(&q, &g);
        assert!(!eval_boolean(&q_plus, &g_plus, Semantics::AtomInjective));
    }

    #[test]
    fn plain_hom_differs_from_injective() {
        // A 2-path pattern maps homomorphically onto a single edge looped
        // back and forth, but not injectively when nodes run out.
        let g = graph(&[("a", "e", "b"), ("b", "e", "a")]);
        let e = g.alphabet().get("e").unwrap();
        // 3-path needs 4 distinct nodes injectively.
        let q = Cq::boolean(vec![
            CqAtom {
                src: Var(0),
                label: e,
                dst: Var(1),
            },
            CqAtom {
                src: Var(1),
                label: e,
                dst: Var(2),
            },
            CqAtom {
                src: Var(2),
                label: e,
                dst: Var(3),
            },
        ]);
        assert!(!subgraph_iso_brute_force(&q, &g));
        let crpq = Crpq::from_cq(&q);
        assert!(eval_boolean(&crpq, &g, Semantics::Standard), "hom exists");
        assert!(!eval_boolean(&crpq, &g, Semantics::QueryInjective));
        let (q_plus, g_plus) = subgraph_to_evaluation(&q, &g);
        assert!(!eval_boolean(&q_plus, &g_plus, Semantics::AtomInjective));
    }

    #[test]
    fn reduction_agreement_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..10 {
            let g = crpq_graph::generators::random_graph(5, 8, &["e"], rng.gen());
            let e = g.alphabet().get("e").unwrap();
            // random small pattern: 3 vars, 3 atoms
            let atoms: Vec<CqAtom> = (0..3)
                .map(|_| CqAtom {
                    src: Var(rng.gen_range(0..3u32)),
                    label: e,
                    dst: Var(rng.gen_range(0..3u32)),
                })
                .filter(|a| a.src != a.dst)
                .collect();
            if atoms.is_empty() {
                continue;
            }
            let q = Cq::boolean(atoms);
            let brute = subgraph_iso_brute_force(&q, &g);
            let direct = eval_boolean(&Crpq::from_cq(&q), &g, Semantics::QueryInjective);
            assert_eq!(brute, direct, "q-inj evaluation vs brute force");
            let (q_plus, g_plus) = subgraph_to_evaluation(&q, &g);
            let reduced = eval_boolean(&q_plus, &g_plus, Semantics::AtomInjective);
            assert_eq!(brute, reduced, "a-inj reduction vs brute force");
        }
    }
}
