//! Theorem 6.1 (Figure 6): GCP2 ≤ query-injective non-containment for
//! `CRPQ_fin`/CQ.
//!
//! **Generalized Two-Coloring Problem (GCP2)**: given an undirected graph
//! `G` and `n ∈ ℕ`, is there a partition `V₁ ∪ V₂` of `V(G)` such that
//! neither induced subgraph contains an `n`-clique?
//!
//! The reduction builds Boolean queries over `A = {E, 1, 2, #}`:
//!
//! * `Q₁` = `(12)-ext(Q_G) -#-> (1+2)-ext(Q_G) -#-> (12)-ext(Q_G)` — three
//!   copies of the graph query chained by complete bipartite `#`-atoms; the
//!   side copies carry both a 1-loop and a 2-loop on every variable, the
//!   middle copy carries a `(1+2)`-loop whose expansion chooses the colour.
//! * `Q₂` = `1-ext(K_n) -#-> 2-ext(K_n)` — the `n`-clique with 1-loops,
//!   `#`-connected to the `n`-clique with 2-loops.
//!
//! An expansion of `Q₁` fixes a colouring of the middle copy; `Q₂` maps
//! injectively iff one of the clique gadgets fits inside a monochromatic
//! middle class (the other parks in an adjacent both-loop side copy). Hence
//! `Q₁ ⊄q-inj Q₂` iff the GCP2 instance is positive.

use crpq_automata::Regex;
use crpq_query::{Crpq, CrpqAtom, Var};
use crpq_util::{Interner, Symbol};

/// A GCP2 instance: an undirected graph (adjacency by vertex index) and the
/// clique size `n`.
#[derive(Clone, Debug)]
pub struct Gcp2Instance {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Undirected edges as `(u, v)` with `u < v`.
    pub edges: Vec<(usize, usize)>,
    /// Forbidden clique size.
    pub clique: usize,
}

impl Gcp2Instance {
    /// Normalises edges (dedup, u < v, no loops).
    pub fn new(num_vertices: usize, edges: &[(usize, usize)], clique: usize) -> Self {
        let mut es: Vec<(usize, usize)> = edges
            .iter()
            .filter(|&&(u, v)| u != v && u < num_vertices && v < num_vertices)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        es.sort_unstable();
        es.dedup();
        Self {
            num_vertices,
            edges: es,
            clique,
        }
    }

    fn adjacent(&self, u: usize, v: usize) -> bool {
        let (a, b) = (u.min(v), u.max(v));
        self.edges.binary_search(&(a, b)).is_ok()
    }
}

/// Labels used by the reduction.
pub struct Gcp2Labels {
    /// The graph edge relation.
    pub e: Symbol,
    /// Colour-1 loop label.
    pub one: Symbol,
    /// Colour-2 loop label.
    pub two: Symbol,
    /// The inter-gadget connector.
    pub hash: Symbol,
}

/// Builds `(Q₁, Q₂)` with `Q₁ ∈ CRPQ_fin` (one-letter-word languages) and
/// `Q₂ ∈ CQ`, such that `Q₁ ⊄q-inj Q₂` iff the instance is positive.
pub fn gcp2_to_qinj_containment(
    instance: &Gcp2Instance,
    alphabet: &mut Interner,
) -> (Crpq, Crpq, Gcp2Labels) {
    let labels = Gcp2Labels {
        e: alphabet.intern("E"),
        one: alphabet.intern("1"),
        two: alphabet.intern("2"),
        hash: alphabet.intern("#"),
    };
    let nv = instance.num_vertices;

    // ----- Q1: three graph-copies chained by # ---------------------------
    // vars: copy c ∈ {0,1,2}, vertex v → var c*nv + v
    let var1 = |c: usize, v: usize| Var((c * nv + v) as u32);
    let mut atoms1 = Vec::new();
    for c in 0..3 {
        for &(u, v) in &instance.edges {
            // undirected edge = both directions
            atoms1.push(atom(var1(c, u), Regex::lit(labels.e), var1(c, v)));
            atoms1.push(atom(var1(c, v), Regex::lit(labels.e), var1(c, u)));
        }
        for v in 0..nv {
            match c {
                1 => {
                    // middle copy: (1+2)-ext
                    let alt = Regex::alt(vec![Regex::lit(labels.one), Regex::lit(labels.two)]);
                    atoms1.push(atom(var1(c, v), alt, var1(c, v)));
                }
                _ => {
                    // side copies: (12)-ext — both loops
                    atoms1.push(atom(var1(c, v), Regex::lit(labels.one), var1(c, v)));
                    atoms1.push(atom(var1(c, v), Regex::lit(labels.two), var1(c, v)));
                }
            }
        }
    }
    // complete bipartite # between copy 0 → copy 1 and copy 1 → copy 2
    for (ca, cb) in [(0usize, 1usize), (1, 2)] {
        for u in 0..nv {
            for v in 0..nv {
                atoms1.push(atom(var1(ca, u), Regex::lit(labels.hash), var1(cb, v)));
            }
        }
    }
    let q1 = Crpq::boolean(atoms1);

    // ----- Q2: 1-ext(K_n) -#-> 2-ext(K_n) --------------------------------
    let n = instance.clique;
    let var2 = |g: usize, v: usize| Var((g * n + v) as u32);
    let mut atoms2 = Vec::new();
    for g in 0..2 {
        let loop_label = if g == 0 { labels.one } else { labels.two };
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    atoms2.push(atom(var2(g, u), Regex::lit(labels.e), var2(g, v)));
                }
            }
            atoms2.push(atom(var2(g, u), Regex::lit(loop_label), var2(g, u)));
        }
    }
    for u in 0..n {
        for v in 0..n {
            atoms2.push(atom(var2(0, u), Regex::lit(labels.hash), var2(1, v)));
        }
    }
    let q2 = Crpq::boolean(atoms2);

    (q1, q2, labels)
}

fn atom(src: Var, regex: Regex, dst: Var) -> CrpqAtom {
    CrpqAtom { src, dst, regex }
}

/// Brute-force GCP2: tries all `2^|V|` partitions, checking both sides for
/// an `n`-clique. Ground truth for small instances.
pub fn gcp2_brute_force(instance: &Gcp2Instance) -> bool {
    let nv = instance.num_vertices;
    assert!(nv < 24, "brute force is exponential in |V|");
    'parts: for mask in 0u32..(1u32 << nv) {
        for side in 0..2 {
            let members: Vec<usize> = (0..nv)
                .filter(|&v| ((mask >> v) & 1 == 1) == (side == 0))
                .collect();
            if has_clique(instance, &members, instance.clique) {
                continue 'parts;
            }
        }
        return true;
    }
    false
}

/// Whether `members` contains a clique of size `k` in the instance graph.
fn has_clique(instance: &Gcp2Instance, members: &[usize], k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return !members.is_empty();
    }
    fn rec(
        inst: &Gcp2Instance,
        members: &[usize],
        current: &mut Vec<usize>,
        k: usize,
        from: usize,
    ) -> bool {
        if current.len() == k {
            return true;
        }
        for idx in from..members.len() {
            let cand = members[idx];
            if current.iter().all(|&c| inst.adjacent(c, cand)) {
                current.push(cand);
                if rec(inst, members, current, k, idx + 1) {
                    return true;
                }
                current.pop();
            }
        }
        false
    }
    rec(instance, members, &mut Vec::new(), k, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_containment::{contain, Semantics};

    fn decide_via_reduction(instance: &Gcp2Instance) -> bool {
        let mut it = Interner::new();
        let (q1, q2, _) = gcp2_to_qinj_containment(instance, &mut it);
        let out = contain(&q1, &q2, Semantics::QueryInjective);
        // positive GCP2 ⟺ NOT contained
        match out.as_bool() {
            Some(contained) => !contained,
            None => panic!("Q1 is CRPQ_fin: the engine must be exact"),
        }
    }

    #[test]
    fn triangle_with_clique_2() {
        // Triangle, n = 2: forbidding an edge inside each class = proper
        // 2-colouring; a triangle is not 2-colourable → negative.
        let inst = Gcp2Instance::new(3, &[(0, 1), (1, 2), (0, 2)], 2);
        assert!(!gcp2_brute_force(&inst));
        assert!(!decide_via_reduction(&inst));
    }

    #[test]
    fn path_with_clique_2() {
        // A path is 2-colourable → positive.
        let inst = Gcp2Instance::new(3, &[(0, 1), (1, 2)], 2);
        assert!(gcp2_brute_force(&inst));
        assert!(decide_via_reduction(&inst));
    }

    #[test]
    fn triangle_with_clique_3() {
        // n = 3: either class may contain edges but no triangle; splitting
        // one vertex off destroys the triangle → positive.
        let inst = Gcp2Instance::new(3, &[(0, 1), (1, 2), (0, 2)], 3);
        assert!(gcp2_brute_force(&inst));
        assert!(decide_via_reduction(&inst));
    }

    #[test]
    fn k4_with_clique_2() {
        // K4 is not 2-colourable (contains odd cycles) → negative.
        let inst = Gcp2Instance::new(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)], 2);
        assert!(!gcp2_brute_force(&inst));
        assert!(!decide_via_reduction(&inst));
    }

    #[test]
    fn square_with_clique_2() {
        // C4 is bipartite → positive.
        let inst = Gcp2Instance::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], 2);
        assert!(gcp2_brute_force(&inst));
        assert!(decide_via_reduction(&inst));
    }

    #[test]
    fn random_instances_agree() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2023);
        for trial in 0..6 {
            let nv = 3 + (trial % 2); // 3 or 4 vertices
            let mut edges = Vec::new();
            for u in 0..nv {
                for v in u + 1..nv {
                    if rng.gen_bool(0.6) {
                        edges.push((u, v));
                    }
                }
            }
            let inst = Gcp2Instance::new(nv, &edges, 2);
            assert_eq!(
                gcp2_brute_force(&inst),
                decide_via_reduction(&inst),
                "disagreement on {inst:?}"
            );
        }
    }

    #[test]
    fn brute_force_clique_detection() {
        let inst = Gcp2Instance::new(4, &[(0, 1), (1, 2), (0, 2), (2, 3)], 3);
        assert!(has_clique(&inst, &[0, 1, 2, 3], 3));
        assert!(!has_clique(&inst, &[0, 1, 3], 3));
        assert!(has_clique(&inst, &[1, 2], 2));
    }
}
