//! Theorem 6.2 (Figure 7): ∀∃-QBF ≤ atom-injective containment for
//! CQ/`CRPQ_fin`.
//!
//! `Φ = ∀x₁…xₙ ∃y₁…y_ℓ φ` (φ in CNF) is **valid** iff `Q₁ ⊆a-inj Q₂`.
//!
//! The construction re-derives the paper's D/E-gadget mechanism (the
//! appendix figure is reproduced only in sketch form); every ingredient of
//! the paper's proof sketch is realised:
//!
//! * **∀-choices are quotient choices** — for each `xᵢ`, `Q₁`'s strict
//!   gadget `D` has a path `p -g1ᵢ-> m -g2ᵢ-> q` in which `p` and `q` are
//!   *not* atom-related: an a-inj-expansion may merge them (`xᵢ := false`)
//!   or keep them apart (`xᵢ := true`) — "whether the two nodes are equal
//!   or not" in the paper's words.
//! * **literal tests** — `xᵢ`-positive: a 2-letter atom `[g1ᵢ g2ᵢ]` needs a
//!   *simple* 2-path, which exists iff `p ≠ q`; `xᵢ`-negative: a node with
//!   `inᵢ`-in and `g2ᵢ`-in exists iff `p = q`.
//! * **∃-choices are homomorphism choices** — one shared `Q₂` variable
//!   `ŷᵢ` per `yᵢ` maps to the global node `Yᵗᵢ` or `Yᶠᵢ` (the paper's
//!   `y_{i,tf} ↦ y_{i,t}/y_{i,f}`), enforcing consistency across clauses.
//! * **exactly one strict slot** — `Q₁` has a chain of `2L-1` blocks with
//!   the strict gadget `D` at the centre and permissive gadgets `E`
//!   elsewhere; a clause gadget is an `L`-block chain that must overlap the
//!   centre wherever it slides, so at least one literal is tested strictly
//!   while the rest park in `E` ("every represented literal can be
//!   homomorphically embedded" there): `E` carries relator edges making the
//!   positive test always simple, back-edges making the negative test
//!   always satisfied, and y-links to *both* polarity nodes.

use crpq_automata::Regex;
use crpq_core::{eval_boolean, Semantics};
use crpq_query::{Cq, Crpq, CrpqAtom, Var};
use crpq_util::{Interner, Symbol};

/// A literal: `X(i, positive)` refers to universal `x_i`, `Y(i, positive)`
/// to existential `y_i` (0-based indices).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Literal {
    /// Universal variable literal.
    X(usize, bool),
    /// Existential variable literal.
    Y(usize, bool),
}

/// A ∀∃-QBF instance `∀x̄ ∃ȳ ⋀ clauses`.
#[derive(Clone, Debug)]
pub struct QbfInstance {
    /// Number of universally quantified variables.
    pub num_universal: usize,
    /// Number of existentially quantified variables.
    pub num_existential: usize,
    /// CNF clauses (non-empty).
    pub clauses: Vec<Vec<Literal>>,
}

impl QbfInstance {
    /// Maximum clause width `L`.
    pub fn width(&self) -> usize {
        self.clauses.iter().map(Vec::len).max().unwrap_or(1).max(1)
    }

    /// Evaluates φ under full assignments.
    fn phi(&self, xs: &[bool], ys: &[bool]) -> bool {
        self.clauses.iter().all(|clause| {
            clause.iter().any(|lit| match *lit {
                Literal::X(i, pos) => xs[i] == pos,
                Literal::Y(i, pos) => ys[i] == pos,
            })
        })
    }
}

/// Brute-force ∀∃-QBF evaluation (exponential; ground truth).
pub fn qbf_brute_force(inst: &QbfInstance) -> bool {
    let (n, l) = (inst.num_universal, inst.num_existential);
    assert!(n < 20 && l < 20, "brute force is exponential");
    for xmask in 0u32..(1u32 << n) {
        let xs: Vec<bool> = (0..n).map(|i| (xmask >> i) & 1 == 1).collect();
        let ok = (0u32..(1u32 << l)).any(|ymask| {
            let ys: Vec<bool> = (0..l).map(|i| (ymask >> i) & 1 == 1).collect();
            self_phi(inst, &xs, &ys)
        });
        if !ok {
            return false;
        }
    }
    true
}

fn self_phi(inst: &QbfInstance, xs: &[bool], ys: &[bool]) -> bool {
    inst.phi(xs, ys)
}

/// Everything the validators need to navigate the reduction output.
pub struct QbfReduction {
    /// Left-hand query (a Boolean CQ).
    pub q1: Crpq,
    /// Right-hand query (Boolean `CRPQ_fin`, singleton words of length ≤ 2).
    pub q2: Crpq,
    /// `(p_i, q_i)` variable pairs of the strict gadget, per universal var.
    pub d_pairs: Vec<(Var, Var)>,
    /// Size of the label alphabet (for anonymous graph views).
    pub num_symbols: usize,
}

/// Builds the reduction. `Q₁ ⊆a-inj Q₂` iff the instance is valid.
pub fn qbf_to_ainj_containment(inst: &QbfInstance, alphabet: &mut Interner) -> QbfReduction {
    let n = inst.num_universal;
    let l = inst.num_existential;
    let width = inst.width();
    let blocks = 2 * width - 1;
    let centre = width; // 1-based block index of D

    // ---- labels ----------------------------------------------------------
    let a = alphabet.intern("a");
    let rel = alphabet.intern("r");
    let in_i: Vec<Symbol> = (0..n).map(|i| alphabet.intern(&format!("in{i}"))).collect();
    let g1_i: Vec<Symbol> = (0..n)
        .map(|i| alphabet.intern(&format!("g1_{i}")))
        .collect();
    let g2_i: Vec<Symbol> = (0..n)
        .map(|i| alphabet.intern(&format!("g2_{i}")))
        .collect();
    let lt_i: Vec<Symbol> = (0..l).map(|i| alphabet.intern(&format!("lt{i}"))).collect();
    let lf_i: Vec<Symbol> = (0..l).map(|i| alphabet.intern(&format!("lf{i}"))).collect();

    // ---- Q1 ---------------------------------------------------------------
    let mut next = 0u32;
    let mut fresh = || {
        next += 1;
        Var(next - 1)
    };
    let chain: Vec<Var> = (0..blocks).map(|_| fresh()).collect();
    let y_t: Vec<Var> = (0..l).map(|_| fresh()).collect();
    let y_f: Vec<Var> = (0..l).map(|_| fresh()).collect();

    let lit_atom = |s: Var, sym: Symbol, d: Var| CrpqAtom {
        src: s,
        dst: d,
        regex: Regex::lit(sym),
    };
    let mut atoms1: Vec<CrpqAtom> = Vec::new();
    for k in 1..blocks {
        atoms1.push(lit_atom(chain[k - 1], a, chain[k]));
    }
    let mut d_pairs = Vec::with_capacity(n);
    for (k, &c) in chain.iter().enumerate() {
        let is_d = k + 1 == centre;
        for i in 0..n {
            let p = fresh();
            let m = fresh();
            let q = fresh();
            atoms1.push(lit_atom(c, in_i[i], p));
            atoms1.push(lit_atom(p, g1_i[i], m));
            atoms1.push(lit_atom(m, g2_i[i], q));
            if is_d {
                d_pairs.push((p, q));
            } else {
                // E-block: back-edge (negative test always passes) and
                // relator (p, q become atom-related: positive test always
                // simple).
                atoms1.push(lit_atom(m, g2_i[i], p));
                atoms1.push(lit_atom(p, rel, q));
            }
        }
        for i in 0..l {
            atoms1.push(lit_atom(c, lt_i[i], y_t[i]));
            atoms1.push(lit_atom(c, lf_i[i], y_f[i]));
            if !is_d {
                // permissive cross-links
                atoms1.push(lit_atom(c, lt_i[i], y_f[i]));
                atoms1.push(lit_atom(c, lf_i[i], y_t[i]));
            }
        }
    }
    let q1 = Crpq {
        num_vars: next as usize,
        atoms: atoms1,
        free: Vec::new(),
    };

    // ---- Q2 ---------------------------------------------------------------
    let mut next2 = 0u32;
    let mut fresh2 = || {
        next2 += 1;
        Var(next2 - 1)
    };
    let y_hat: Vec<Var> = (0..l).map(|_| fresh2()).collect();
    let mut atoms2: Vec<CrpqAtom> = Vec::new();
    for clause in &inst.clauses {
        // Pad the clause to `width` by repeating the last literal.
        let mut lits = clause.clone();
        while lits.len() < width {
            lits.push(*lits.last().expect("clauses must be non-empty")); // invariant: the builder rejects empty clauses
        }
        let cnodes: Vec<Var> = (0..width).map(|_| fresh2()).collect();
        for r in 1..width {
            atoms2.push(CrpqAtom {
                src: cnodes[r - 1],
                dst: cnodes[r],
                regex: Regex::lit(a),
            });
        }
        for (r, lit) in lits.iter().enumerate() {
            let anchor = cnodes[r];
            match *lit {
                Literal::X(i, true) => {
                    let t1 = fresh2();
                    let t2 = fresh2();
                    atoms2.push(CrpqAtom {
                        src: anchor,
                        dst: t1,
                        regex: Regex::lit(in_i[i]),
                    });
                    atoms2.push(CrpqAtom {
                        src: t1,
                        dst: t2,
                        regex: Regex::word(&[g1_i[i], g2_i[i]]),
                    });
                }
                Literal::X(i, false) => {
                    let s1 = fresh2();
                    let s2 = fresh2();
                    atoms2.push(CrpqAtom {
                        src: anchor,
                        dst: s1,
                        regex: Regex::lit(in_i[i]),
                    });
                    atoms2.push(CrpqAtom {
                        src: s2,
                        dst: s1,
                        regex: Regex::lit(g2_i[i]),
                    });
                }
                Literal::Y(i, pos) => {
                    let label = if pos { lt_i[i] } else { lf_i[i] };
                    atoms2.push(CrpqAtom {
                        src: anchor,
                        dst: y_hat[i],
                        regex: Regex::lit(label),
                    });
                }
            }
        }
    }
    let q2 = Crpq {
        num_vars: next2 as usize,
        atoms: atoms2,
        free: Vec::new(),
    };

    let num_symbols = alphabet.len();
    QbfReduction {
        q1,
        q2,
        d_pairs,
        num_symbols,
    }
}

/// The **clean quotient** of `Q₁` for a universal assignment: merge
/// `(pᵢ, qᵢ)` in the strict gadget exactly for the `false` variables.
pub fn clean_quotient(red: &QbfReduction, xs: &[bool]) -> Cq {
    let cq = red.q1.as_cq().expect("Q1 is a CQ"); // invariant: the reduction emits an atomless Q1
    let merges: Vec<(Var, Var)> = red
        .d_pairs
        .iter()
        .zip(xs)
        .filter(|(_, &x)| !x)
        .map(|(&pair, _)| pair)
        .collect();
    cq.collapse_equalities(&merges).0
}

/// Validates the reduction semantics over all clean quotients:
/// for every `x̄`, `Q₂(F(x̄))_a-inj ≠ ∅` must coincide with `∃ȳ φ(x̄, ȳ)`.
pub fn check_reduction_clean_quotients(inst: &QbfInstance, red: &QbfReduction) -> bool {
    let n = inst.num_universal;
    for xmask in 0u32..(1u32 << n) {
        let xs: Vec<bool> = (0..n).map(|i| (xmask >> i) & 1 == 1).collect();
        let quotient = clean_quotient(red, &xs);
        let g = quotient.to_graph_anon(red.num_symbols);
        let matched = eval_boolean(&red.q2, &g, Semantics::AtomInjective);
        let exists_y = (0u32..(1u32 << inst.num_existential)).any(|ymask| {
            let ys: Vec<bool> = (0..inst.num_existential)
                .map(|i| (ymask >> i) & 1 == 1)
                .collect();
            inst.phi(&xs, &ys)
        });
        if matched != exists_y {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_containment::{contain_with, ContainmentConfig};
    use crpq_query::expansion::ExpansionLimits;

    fn reduction(inst: &QbfInstance) -> QbfReduction {
        let mut it = Interner::new();
        qbf_to_ainj_containment(inst, &mut it)
    }

    #[test]
    fn brute_force_basics() {
        // ∀x (x) — invalid.
        let inst = QbfInstance {
            num_universal: 1,
            num_existential: 0,
            clauses: vec![vec![Literal::X(0, true)]],
        };
        assert!(!qbf_brute_force(&inst));
        // ∀x ∃y (x ∨ y)(¬x ∨ ¬y) — valid (y := ¬x).
        let inst2 = QbfInstance {
            num_universal: 1,
            num_existential: 1,
            clauses: vec![
                vec![Literal::X(0, true), Literal::Y(0, true)],
                vec![Literal::X(0, false), Literal::Y(0, false)],
            ],
        };
        assert!(qbf_brute_force(&inst2));
        // (x ∨ y)(¬x ∨ y)(¬y ∨ x)(¬y ∨ ¬x) — invalid.
        let inst3 = QbfInstance {
            num_universal: 1,
            num_existential: 1,
            clauses: vec![
                vec![Literal::X(0, true), Literal::Y(0, true)],
                vec![Literal::X(0, false), Literal::Y(0, true)],
                vec![Literal::Y(0, false), Literal::X(0, true)],
                vec![Literal::Y(0, false), Literal::X(0, false)],
            ],
        };
        assert!(!qbf_brute_force(&inst3));
    }

    #[test]
    fn clean_quotients_match_semantics() {
        let instances = vec![
            // ∀x (x): invalid
            QbfInstance {
                num_universal: 1,
                num_existential: 0,
                clauses: vec![vec![Literal::X(0, true)]],
            },
            // ∀x (x ∨ ¬x): valid
            QbfInstance {
                num_universal: 1,
                num_existential: 0,
                clauses: vec![vec![Literal::X(0, true), Literal::X(0, false)]],
            },
            // ∃y (y): valid
            QbfInstance {
                num_universal: 0,
                num_existential: 1,
                clauses: vec![vec![Literal::Y(0, true)]],
            },
            // ∀x ∃y (x ∨ y)(¬x ∨ ¬y): valid
            QbfInstance {
                num_universal: 1,
                num_existential: 1,
                clauses: vec![
                    vec![Literal::X(0, true), Literal::Y(0, true)],
                    vec![Literal::X(0, false), Literal::Y(0, false)],
                ],
            },
            // ∀x ∃y (y ∨ y)(¬y ∨ x): invalid (x=false kills it)
            QbfInstance {
                num_universal: 1,
                num_existential: 1,
                clauses: vec![
                    vec![Literal::Y(0, true), Literal::Y(0, true)],
                    vec![Literal::Y(0, false), Literal::X(0, true)],
                ],
            },
        ];
        for inst in instances {
            let red = reduction(&inst);
            assert!(
                check_reduction_clean_quotients(&inst, &red),
                "clean-quotient semantics mismatch for {inst:?}"
            );
        }
    }

    #[test]
    fn invalid_formula_refuted_by_engine() {
        // ∀x (x) with width 1: tiny enough for the full a-inj containment
        // engine to find the merge counter-example.
        let inst = QbfInstance {
            num_universal: 1,
            num_existential: 0,
            clauses: vec![vec![Literal::X(0, true)]],
        };
        let red = reduction(&inst);
        let out = contain_with(
            &red.q1,
            &red.q2,
            Semantics::AtomInjective,
            ContainmentConfig {
                limits: ExpansionLimits {
                    max_word_len: 2,
                    max_expansions: 100_000,
                },
                threads: 1,
            },
        );
        assert!(out.is_not_contained(), "{out:?}");
    }

    #[test]
    fn valid_formula_contained_by_engine() {
        // ∃y (y), no universals, width 1: the full engine certifies
        // containment (partition space is tiny).
        let inst = QbfInstance {
            num_universal: 0,
            num_existential: 1,
            clauses: vec![vec![Literal::Y(0, true)]],
        };
        let red = reduction(&inst);
        let out = contain_with(
            &red.q1,
            &red.q2,
            Semantics::AtomInjective,
            ContainmentConfig {
                limits: ExpansionLimits {
                    max_word_len: 2,
                    max_expansions: 100_000,
                },
                threads: 1,
            },
        );
        assert!(out.is_contained(), "{out:?}");
    }

    #[test]
    fn random_instances_validate() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(62);
        for _ in 0..8 {
            let n = rng.gen_range(1..=2usize);
            let l = rng.gen_range(0..=1usize);
            let clauses: Vec<Vec<Literal>> = (0..rng.gen_range(1..=2))
                .map(|_| {
                    (0..2)
                        .map(|_| {
                            let pos = rng.gen_bool(0.5);
                            if l > 0 && rng.gen_bool(0.4) {
                                Literal::Y(rng.gen_range(0..l), pos)
                            } else {
                                Literal::X(rng.gen_range(0..n), pos)
                            }
                        })
                        .collect()
                })
                .collect();
            let inst = QbfInstance {
                num_universal: n,
                num_existential: l,
                clauses,
            };
            let brute = qbf_brute_force(&inst);
            let red = reduction(&inst);
            assert!(
                check_reduction_clean_quotients(&inst, &red),
                "mismatch for {inst:?} (brute force says {brute})"
            );
        }
    }
}
