//! Theorem 5.2 (Figures 4–5): PCP ≤ atom-injective containment —
//! the undecidability construction.
//!
//! An instance of the **Post Correspondence Problem** is a sequence of pairs
//! `(u₁,v₁)…(u_ℓ,v_ℓ)` of non-empty words over `Σ`; a solution is a
//! non-empty index sequence `i₁…i_k` with `u_{i₁}…u_{i_k} = v_{i₁}…v_{i_k}`.
//!
//! The paper builds Boolean CRPQs `Q₁` (Figure 4) and `Q₂ ∈ CRPQ_fin` such
//! that the instance has a solution iff `Q₁ ⊄a-inj Q₂`: counter-examples
//! are exactly the *well-formed* a-inj-expansions, which encode solutions.
//! Well-formedness is characterised by the **absence** of simple cycles
//! with labels in a finite language `K` and simple paths with labels in a
//! finite language `M` — which is what `Q₂ = Q⟳ ∨ Q→` detects.
//!
//! This module reproduces:
//!
//! * the Figure-4 query `Q₁ = y₁ -[L_I]-> x ∧ y₂ -[L̂ₐ]-> x ∧
//!   x -[L̂_I]-> z₁ ∧ x -[Lₐ]-> z₂` with the index/word block encodings;
//! * the **I-Î condition** machinery exactly as printed: forbidden cycles
//!   `K_IÎ = I·Î` and forbidden paths
//!   `M_IÎ = Σ_{i≠j} I_iÎ_j + Î·# + #̂·I + #·I·Î·#̂ + □·□̂` (Figure 5);
//! * the **I-a condition** by the same mechanism: `Lₐ` blocks carry index
//!   markers `Jᵢ`, block boundaries of the `I`- and `a`-words are
//!   identified, and mismatches are caught by
//!   `M_Ia = Σ_{i≠j} Iᵢ·□·#·Jⱼ` (plus the `K_Ia` cycle family);
//! * the **â-Î condition**: the `L̂ₐ` blocks carry hatted markers `Ĵᵢ`;
//!   the `#̂`-nodes of consecutive blocks of the `ŵₐ`- and `ŵ_I`-paths are
//!   identified (`n2_j = s'_{j-1}`), and mismatches are caught by
//!   `M_âÎ = Σ_{i≠j} (Ĵᵢ·#̂·□̂·Îⱼ + Ĵᵢ·□̂·Îⱼ)` — the 4-letter word fires
//!   through `x` for the first block, the 3-letter word through the
//!   identified `#̂`-node for every inner block;
//! * the **â-a condition** (the actual PCP equation `u_{i₁}…u_{i_k} =
//!   v_{i₁}…v_{i_k}`): the `t`-th Σ-letter boundary of `wₐ` is identified
//!   with the `t`-th letter boundary of `ŵₐ` (staggered so the two `t`-th
//!   letters become consecutive edges), and mismatches are caught by
//!   `M_âa = Σ_{a≠b} a·b̂` plus the cycle family `K_âa = Σ_{a,b} a·b̂`
//!   (which forbids the reversed, off-by-one identification);
//! * the witness pipeline: a PCP solution ↦ the canonical well-formed
//!   a-inj-expansion (with all Figure-5-style identifications applied),
//!   verified by simple-path/simple-cycle search;
//! * a bounded PCP solver as ground truth.
//!
//! The union right-hand side `Q⟳ ∨ Q→` is checked directly via
//! `contain_union_with`. Three appendix-only details are *not* reproduced
//! (the appendix is not part of the published text): the single-query
//! simulation of the union, the padding that forces `|wₐ| = |ŵₐ|`
//! (so a length-mismatched candidate whose zipped letters agree — e.g.
//! `u = a`, `v = aa` — is only rejected by the ground-truth solver, not by
//! the forbidden-pattern detector), and the full forcing cascade that makes
//! *every* identification mandatory in a counter-example (we reproduce the
//! printed `#·I·Î·#̂` / `□·□̂` forcings of Figure 5; the â-side analogues
//! need the appendix construction). Everything else is validated
//! empirically: aligned witnesses pass, and every mutation class
//! (index word, `J`-marker, `Ĵ`-marker, Σ-letter) fires the corresponding
//! forbidden family.

use crpq_automata::Regex;
use crpq_core::{eval_boolean, Semantics};
use crpq_graph::GraphDb;
use crpq_query::{Cq, Crpq, CrpqAtom, Var};
use crpq_util::{Interner, Symbol};
use std::collections::VecDeque;

/// A PCP instance: pairs of non-empty words over a char alphabet.
#[derive(Clone, Debug)]
pub struct PcpInstance {
    /// The word pairs `(uᵢ, vᵢ)`.
    pub pairs: Vec<(String, String)>,
}

impl PcpInstance {
    /// Number of pairs `ℓ`.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Checks a candidate solution.
    pub fn is_solution(&self, indices: &[usize]) -> bool {
        if indices.is_empty() {
            return false;
        }
        let top: String = indices.iter().map(|&i| self.pairs[i].0.as_str()).collect();
        let bottom: String = indices.iter().map(|&i| self.pairs[i].1.as_str()).collect();
        top == bottom
    }
}

/// Bounded PCP search: shortest solution with at most `max_len` indices.
pub fn pcp_brute_force(inst: &PcpInstance, max_len: usize) -> Option<Vec<usize>> {
    // BFS over (top-surplus or bottom-surplus) configurations.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Conf {
        /// positive: top is ahead by this suffix; negative encoding via flag
        surplus: String,
        top_ahead: bool,
    }
    let mut queue: VecDeque<(Conf, Vec<usize>)> = VecDeque::new();
    let mut seen = crpq_util::FxHashSet::default();
    // start states
    for (i, (u, v)) in inst.pairs.iter().enumerate() {
        if let Some(c) = step("", true, u, v) {
            if c.0.is_empty() {
                return Some(vec![i]);
            }
            let conf = Conf {
                surplus: c.0.clone(),
                top_ahead: c.1,
            };
            if seen.insert((c.0, c.1)) {
                queue.push_back((conf, vec![i]));
            }
        }
    }
    while let Some((conf, path)) = queue.pop_front() {
        if path.len() >= max_len {
            continue;
        }
        for (i, (u, v)) in inst.pairs.iter().enumerate() {
            if let Some(c) = step(&conf.surplus, conf.top_ahead, u, v) {
                let mut path2 = path.clone();
                path2.push(i);
                if c.0.is_empty() {
                    return Some(path2);
                }
                if seen.insert((c.0.clone(), c.1)) {
                    queue.push_back((
                        Conf {
                            surplus: c.0,
                            top_ahead: c.1,
                        },
                        path2,
                    ));
                }
            }
        }
    }
    None
}

/// One PCP step: current surplus (on `top_ahead` side) extended with (u, v).
/// Returns the new surplus or `None` on mismatch.
fn step(surplus: &str, top_ahead: bool, u: &str, v: &str) -> Option<(String, bool)> {
    // Full top and bottom words relative to the common prefix.
    let (top, bottom) = if top_ahead {
        (format!("{surplus}{u}"), v.to_owned())
    } else {
        (u.to_owned(), format!("{surplus}{v}"))
    };
    if top.len() >= bottom.len() {
        top.starts_with(&bottom)
            .then(|| (top[bottom.len()..].to_owned(), true))
    } else {
        bottom
            .starts_with(&top)
            .then(|| (bottom[top.len()..].to_owned(), false))
    }
}

/// Interned label sets for the encoding.
pub struct PcpLabels {
    /// Index symbols `I₁…I_ℓ`.
    pub idx: Vec<Symbol>,
    /// Hatted index symbols `Î₁…Î_ℓ`.
    pub idx_hat: Vec<Symbol>,
    /// Word-side index markers `J₁…J_ℓ` (the I-a condition pairs them with
    /// the `Iᵢ`s).
    pub jdx: Vec<Symbol>,
    /// Hatted word-side markers `Ĵ₁…Ĵ_ℓ`.
    pub jdx_hat: Vec<Symbol>,
    /// PCP alphabet symbols.
    pub sigma: Vec<(char, Symbol)>,
    /// Hatted PCP alphabet symbols.
    pub sigma_hat: Vec<(char, Symbol)>,
    /// Separators `#`, `#̂`, `□`, `□̂`.
    pub hash: Symbol,
    /// `#̂`.
    pub hash_hat: Symbol,
    /// `□`.
    pub square: Symbol,
    /// `□̂`.
    pub square_hat: Symbol,
}

impl PcpLabels {
    fn sym(&self, c: char, hat: bool) -> Symbol {
        let table = if hat { &self.sigma_hat } else { &self.sigma };
        table
            .iter()
            .find(|&&(ch, _)| ch == c)
            .expect("letter out of alphabet") // invariant: PCP instances are built over the declared alphabet
            .1
    }
}

/// The reduction output: `Q₁`, the forbidden-cycle query `Q⟳`, the
/// forbidden-path query `Q→`, and the labels.
pub struct PcpReduction {
    /// Figure-4 left-hand query.
    pub q1: Crpq,
    /// `Q⟳ = x -[K]-> x` (forbidden simple cycles).
    pub q_cycle: Crpq,
    /// `Q→ = y -[M]-> z` (forbidden simple paths).
    pub q_path: Crpq,
    /// Label table.
    pub labels: PcpLabels,
    /// Alphabet size for anonymous graph views.
    pub num_symbols: usize,
}

/// Builds the reduction for a PCP instance.
pub fn pcp_to_ainj_containment(inst: &PcpInstance, alphabet: &mut Interner) -> PcpReduction {
    let l = inst.len();
    let mut chars: Vec<char> = inst
        .pairs
        .iter()
        .flat_map(|(u, v)| u.chars().chain(v.chars()))
        .collect();
    chars.sort_unstable();
    chars.dedup();

    let labels = PcpLabels {
        idx: (1..=l).map(|i| alphabet.intern(&format!("I{i}"))).collect(),
        idx_hat: (1..=l)
            .map(|i| alphabet.intern(&format!("Ih{i}")))
            .collect(),
        jdx: (1..=l).map(|i| alphabet.intern(&format!("J{i}"))).collect(),
        jdx_hat: (1..=l)
            .map(|i| alphabet.intern(&format!("Jh{i}")))
            .collect(),
        sigma: chars
            .iter()
            .map(|&c| (c, alphabet.intern(&c.to_string())))
            .collect(),
        sigma_hat: chars
            .iter()
            .map(|&c| (c, alphabet.intern(&format!("{c}h"))))
            .collect(),
        hash: alphabet.intern("#"),
        hash_hat: alphabet.intern("#h"),
        square: alphabet.intern("[]"),
        square_hat: alphabet.intern("[]h"),
    };

    // L_I = (□ # I)^+  — blocks listed from y₁ towards x, so the sequence
    // reads right-to-left (the block next to x is the first index).
    let i_union = Regex::alt(labels.idx.iter().map(|&s| Regex::lit(s)).collect());
    let l_i = Regex::plus(Regex::concat(vec![
        Regex::lit(labels.square),
        Regex::lit(labels.hash),
        i_union.clone(),
    ]));
    // L̂_I = (Î #̂ □̂)^+ — blocks from x towards z₁.
    let ih_union = Regex::alt(labels.idx_hat.iter().map(|&s| Regex::lit(s)).collect());
    let lh_i = Regex::plus(Regex::concat(vec![
        ih_union.clone(),
        Regex::lit(labels.hash_hat),
        Regex::lit(labels.square_hat),
    ]));
    // Lₐ = (□ # Jᵢ uᵢ)^+, L̂ₐ = (v̂ᵢ Ĵᵢ #̂ □̂)^+: every block carries its
    // index marker so the I-a / â-Î conditions can compare indices against
    // the I-words with the same simple-path mechanism as I-Î.
    let u_union = Regex::alt(
        inst.pairs
            .iter()
            .enumerate()
            .map(|(i, (u, _))| {
                let mut w = vec![labels.jdx[i]];
                w.extend(u.chars().map(|c| labels.sym(c, false)));
                Regex::word(&w)
            })
            .collect(),
    );
    let l_a = Regex::plus(Regex::concat(vec![
        Regex::lit(labels.square),
        Regex::lit(labels.hash),
        u_union,
    ]));
    let v_union = Regex::alt(
        inst.pairs
            .iter()
            .enumerate()
            .map(|(i, (_, v))| {
                let mut w: Vec<Symbol> = v.chars().map(|c| labels.sym(c, true)).collect();
                w.push(labels.jdx_hat[i]);
                Regex::word(&w)
            })
            .collect(),
    );
    let lh_a = Regex::plus(Regex::concat(vec![
        v_union,
        Regex::lit(labels.hash_hat),
        Regex::lit(labels.square_hat),
    ]));

    // Q1 (Figure 4): variables y₁=0, y₂=1, x=2, z₁=3, z₂=4.
    let (y1, y2, x, z1, z2) = (Var(0), Var(1), Var(2), Var(3), Var(4));
    let q1 = Crpq::boolean(vec![
        CrpqAtom {
            src: y1,
            dst: x,
            regex: l_i,
        },
        CrpqAtom {
            src: y2,
            dst: x,
            regex: lh_a,
        },
        CrpqAtom {
            src: x,
            dst: z1,
            regex: lh_i,
        },
        CrpqAtom {
            src: x,
            dst: z2,
            regex: l_a,
        },
    ]);

    // K = K_IÎ ∪ K_Ia ∪ K_âÎ ∪ K_âa: forbidden simple cycles.
    // K_IÎ = I·Î; K_Ia = I·□·#·J (an index marker cycling straight back
    // into a word block would identify t-nodes across the two sides);
    // K_âÎ = Ĵ·Î and K_âa = Σ_{a,b} a·b̂ forbid the reversed (off-by-one)
    // identifications on the hatted side, mirroring K_IÎ.
    let mut k_words: Vec<Regex> = Vec::new();
    for &i in &labels.idx {
        for &j in &labels.idx_hat {
            k_words.push(Regex::word(&[i, j]));
        }
        for &j in &labels.jdx {
            k_words.push(Regex::word(&[i, labels.square, labels.hash, j]));
        }
    }
    for &jh in &labels.jdx_hat {
        for &ih in &labels.idx_hat {
            k_words.push(Regex::word(&[jh, ih]));
        }
    }
    for &(_, a) in &labels.sigma {
        for &(_, bh) in &labels.sigma_hat {
            k_words.push(Regex::word(&[a, bh]));
        }
    }
    let q_cycle = Crpq::boolean(vec![CrpqAtom {
        src: Var(0),
        dst: Var(0),
        regex: Regex::alt(k_words),
    }]);

    // M_IÎ = Σ_{i≠j} IᵢÎⱼ + Î# + #̂I + #IÎ#̂ + □□̂ (forbidden simple paths).
    let mut m_words: Vec<Regex> = Vec::new();
    for (bi, &i) in labels.idx.iter().enumerate() {
        for (bj, &j) in labels.idx_hat.iter().enumerate() {
            if bi != bj {
                m_words.push(Regex::word(&[i, j]));
            }
            m_words.push(Regex::word(&[labels.hash, i, j, labels.hash_hat]));
        }
    }
    for &j in &labels.idx_hat {
        m_words.push(Regex::word(&[j, labels.hash]));
    }
    for &i in &labels.idx {
        m_words.push(Regex::word(&[labels.hash_hat, i]));
    }
    m_words.push(Regex::word(&[labels.square, labels.square_hat]));
    // M_Ia = Σ_{i≠j} Iᵢ·□·#·Jⱼ: with the block boundaries of the I-word and
    // the a-word identified (r_k = A_k), a mismatched index pair yields a
    // simple path I_i □ # J_j through the shared boundary node.
    for (bi, &i) in labels.idx.iter().enumerate() {
        for (bj, &j) in labels.jdx.iter().enumerate() {
            if bi != bj {
                m_words.push(Regex::word(&[i, labels.square, labels.hash, j]));
            }
        }
    }
    // M_âÎ: hatted-marker vs hatted-index mismatches.
    //  * Σ_{i≠j} Ĵᵢ·#̂·□̂·Îⱼ fires **through x** for the first block (the
    //    ŵₐ path ends at x and the ŵ_I path starts there).
    //  * Σ_{i≠j} Ĵᵢ·□̂·Îⱼ fires for every inner block through the
    //    `n2_j = s'_{j-1}` identification (the `#̂`-node of ŵₐ block j is
    //    the `#̂`-target of ŵ_I block j-1, whose `□̂` continues into `Îⱼ`).
    for (bi, &jh) in labels.jdx_hat.iter().enumerate() {
        for (bj, &ih) in labels.idx_hat.iter().enumerate() {
            if bi != bj {
                m_words.push(Regex::word(&[jh, labels.hash_hat, labels.square_hat, ih]));
                m_words.push(Regex::word(&[jh, labels.square_hat, ih]));
            }
        }
    }
    // M_âa = Σ_{a≠b} a·b̂: with the letter chains of wₐ and ŵₐ staggered
    // together, position t of the u-word and position t of the v-word are
    // consecutive edges; a mismatch spells a·b̂ with a ≠ b.
    for &(ca, a) in &labels.sigma {
        for &(cb, bh) in &labels.sigma_hat {
            if ca != cb {
                m_words.push(Regex::word(&[a, bh]));
            }
        }
    }
    let q_path = Crpq::boolean(vec![CrpqAtom {
        src: Var(0),
        dst: Var(1),
        regex: Regex::alt(m_words),
    }]);

    let num_symbols = alphabet.len();
    PcpReduction {
        q1,
        q_cycle,
        q_path,
        labels,
        num_symbols,
    }
}

/// Mutation classes for validating the forbidden-pattern detector: each
/// non-`Aligned` variant violates exactly one well-formedness family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WitnessMutation {
    /// No mutation: the canonical well-formed expansion.
    Aligned,
    /// Replace the first index of the `ŵ_I` word (and the first a-side `J`
    /// marker) and drop the identifications — the Figure-5 misalignment
    /// caught by the I-Î condition.
    MisalignIndex,
    /// Replace the hatted Σ-letter at the given 0-based solution position
    /// of `ŵₐ` — violates the â-a condition (`M_âa` fires).
    HatLetter(usize),
    /// Replace the `Ĵ` marker of the given 1-based solution block of `ŵₐ`
    /// — violates the â-Î condition (`M_âÎ` fires).
    HatMarker(usize),
}

/// Builds the canonical **well-formed** a-inj-expansion for an index
/// sequence, with the Figure-5 identifications (`s_j = s'_j`,
/// `r_j = r'_j`) between the `I`- and `Î`-atoms, the block-boundary
/// identifications of the I-a and â-Î conditions, and the staggered
/// letter identifications of the â-a condition.
///
/// When `misalign` is true, the `Î`-word encodes the sequence with its first
/// index replaced (wrapping) and the identifications are dropped, producing
/// an ill-formed expansion — used to validate the forbidden-pattern
/// detector. See [`witness_expansion_with`] for finer-grained mutations.
pub fn witness_expansion(
    red: &PcpReduction,
    inst: &PcpInstance,
    indices: &[usize],
    misalign: bool,
) -> Cq {
    let mutation = if misalign {
        WitnessMutation::MisalignIndex
    } else {
        WitnessMutation::Aligned
    };
    witness_expansion_with(red, inst, indices, mutation)
}

/// [`witness_expansion`] with an explicit [`WitnessMutation`].
pub fn witness_expansion_with(
    red: &PcpReduction,
    inst: &PcpInstance,
    indices: &[usize],
    mutation: WitnessMutation,
) -> Cq {
    assert!(!indices.is_empty());
    let l = inst.len();
    let lbl = &red.labels;
    let k = indices.len();
    let misalign = mutation == WitnessMutation::MisalignIndex;

    // Words per atom, blocks ordered as the atom paths run.
    // w_I (y₁ → x): the block adjacent to x carries the FIRST index of the
    // sequence (Figure 5 pairs it with the first hatted block).
    let mut w_i: Vec<Symbol> = Vec::new();
    for step in (0..k).rev() {
        w_i.push(lbl.square);
        w_i.push(lbl.hash);
        w_i.push(lbl.idx[indices[step]]);
    }
    // ŵ_I (x → z₁): first index first.
    let mut wh_i: Vec<Symbol> = Vec::new();
    for (step, &ix) in indices.iter().enumerate() {
        let ix = if misalign && step == 0 {
            (ix + 1) % l
        } else {
            ix
        };
        wh_i.push(lbl.idx_hat[ix]);
        wh_i.push(lbl.hash_hat);
        wh_i.push(lbl.square_hat);
    }
    // wₐ (x → z₂): □ # Jᵢ uᵢ blocks, first index first; record block start
    // offsets and the edge offset of every Σ-letter (for the â-a stagger).
    let mut w_a: Vec<Symbol> = Vec::new();
    let mut a_block_starts: Vec<usize> = Vec::new();
    let mut a_letter_edges: Vec<usize> = Vec::new();
    for (step, &ix) in indices.iter().enumerate() {
        let ix_marker = if misalign && step == 0 {
            (ix + 1) % l
        } else {
            ix
        };
        a_block_starts.push(w_a.len());
        w_a.push(lbl.square);
        w_a.push(lbl.hash);
        w_a.push(lbl.jdx[ix_marker]);
        for c in inst.pairs[ix].0.chars() {
            a_letter_edges.push(w_a.len());
            w_a.push(lbl.sym(c, false));
        }
    }
    // ŵₐ (y₂ → x): blocks in reverse solution order, so the block adjacent
    // to x carries the first index. Record (start edge, letter count,
    // 1-based solution block) per path block.
    let mut wh_a: Vec<Symbol> = Vec::new();
    let mut ah_blocks: Vec<(usize, usize, usize)> = Vec::new();
    for (b, &ix) in indices.iter().rev().enumerate() {
        let j = k - b;
        let start = wh_a.len();
        let mut mlen = 0usize;
        for c in inst.pairs[ix].1.chars() {
            wh_a.push(lbl.sym(c, true));
            mlen += 1;
        }
        let marker = match mutation {
            WitnessMutation::HatMarker(bj) if bj == j => (ix + 1) % l,
            _ => ix,
        };
        wh_a.push(lbl.jdx_hat[marker]);
        wh_a.push(lbl.hash_hat);
        wh_a.push(lbl.square_hat);
        ah_blocks.push((start, mlen, j));
    }
    // Edge offset of the v̂-letter at each 0-based solution position.
    let n_v: usize = indices
        .iter()
        .map(|&ix| inst.pairs[ix].1.chars().count())
        .sum();
    let mut v_letter_edges = vec![0usize; n_v];
    {
        let mut pv = vec![0usize; k + 1];
        for j in 1..=k {
            pv[j] = pv[j - 1] + inst.pairs[indices[j - 1]].1.chars().count();
        }
        for &(start, mlen, j) in &ah_blocks {
            for r in 0..mlen {
                v_letter_edges[pv[j - 1] + r] = start + r;
            }
        }
    }
    if let WitnessMutation::HatLetter(pos) = mutation {
        let e = v_letter_edges[pos];
        let cur = wh_a[e];
        let at = lbl
            .sigma_hat
            .iter()
            .position(|&(_, s)| s == cur)
            .expect("mutated position must hold a hatted letter"); // invariant: the mutation site was hatted by construction
        wh_a[e] = lbl.sigma_hat[(at + 1) % lbl.sigma_hat.len()].1;
    }

    let expansion = crpq_query::Expansion::build(&red.q1, &[w_i, wh_a, wh_i, w_a]);

    // Identifications. Atom paths: 0 = w_I (y₁…x), 1 = ŵₐ (y₂…x),
    // 2 = ŵ_I (x…z₁), 3 = wₐ (x…z₂).
    //
    // In the I-atom path the nodes per block (□,#,I) are
    //   … -□-> r_j -#-> s_j? -I-> (next block or x)
    // and in the Î-atom: x -Î-> t'_1 -#̂-> s'_1 -□̂-> r'_1 ….
    let path_i = &expansion.atom_paths[0];
    let path_ah = &expansion.atom_paths[1];
    let path_ih = &expansion.atom_paths[2];
    let path_a = &expansion.atom_paths[3];
    let mut merges: Vec<(Var, Var)> = Vec::new();
    // I-a identifications (always applied): I-side block boundaries with
    // a-side block starts (r_j = A_j); j = 0 is x = x automatically.
    for (j, &off) in a_block_starts.iter().enumerate() {
        if j == 0 || 3 * k < 3 * j {
            continue;
        }
        merges.push((path_i[3 * k - 3 * j], path_a[off]));
    }
    if !misalign {
        // I-Î identifications (Figure 5): s_j = s'_j and r_j = r'_j, where
        // s_j is the #-source and r_j the □-source of block j from x.
        for j in 0..k {
            let base = 3 * k - 3 * (j + 1);
            merges.push((path_i[base + 1], path_ih[3 * j + 2]));
            merges.push((path_i[base], path_ih[3 * j + 3]));
        }
        // â-Î identifications: the `#̂`-source of ŵₐ block j with the
        // `#̂`-target of ŵ_I block *j-1* (n2_j = s'_{j-1}), for j ≥ 2; the
        // first block meets ŵ_I at x, so no identification is needed there.
        // (Identifying the block boundaries themselves would transitively
        // chain — via r = r' and the I-a boundaries — two nodes of the same
        // letter chain, because u- and v-block boundaries sit at different
        // string positions; see the module docs.)
        for &(start, mlen, j) in &ah_blocks {
            if j >= 2 {
                merges.push((path_ah[start + mlen + 1], path_ih[3 * (j - 2) + 2]));
            }
        }
        // â-a stagger identifications: the target of the t-th u-letter of
        // wₐ with the source of the t-th v̂-letter of ŵₐ, making the two
        // position-t letters consecutive edges.
        for t in 0..a_letter_edges.len().min(v_letter_edges.len()) {
            merges.push((path_a[a_letter_edges[t] + 1], path_ah[v_letter_edges[t]]));
        }
    }
    expansion.cq.collapse_equalities(&merges).0
}

/// Whether the candidate expansion satisfies the four well-formedness
/// conditions (I-Î, I-a, â-Î, â-a): no simple cycle labelled in `K` and no
/// simple path labelled in `M` (evaluated with the a-inj engine on the
/// forbidden-pattern queries `Q⟳`/`Q→`).
pub fn satisfies_wellformedness(red: &PcpReduction, candidate: &Cq) -> bool {
    let g: GraphDb = candidate.to_graph_anon(red.num_symbols);
    !eval_boolean(&red.q_cycle, &g, Semantics::AtomInjective)
        && !eval_boolean(&red.q_path, &g, Semantics::AtomInjective)
}

/// Former name of [`satisfies_wellformedness`] (kept for compatibility).
pub fn satisfies_i_ihat_condition(red: &PcpReduction, candidate: &Cq) -> bool {
    satisfies_wellformedness(red, candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solvable() -> PcpInstance {
        // (ab, a), (c, bc): solution 1·2: u = ab·c, v = a·bc ✓
        PcpInstance {
            pairs: vec![("ab".into(), "a".into()), ("c".into(), "bc".into())],
        }
    }

    fn unsolvable() -> PcpInstance {
        // (a, b): no solution ever.
        PcpInstance {
            pairs: vec![("a".into(), "b".into())],
        }
    }

    #[test]
    fn brute_force_finds_solutions() {
        let inst = solvable();
        let sol = pcp_brute_force(&inst, 6).expect("solution exists");
        assert!(inst.is_solution(&sol));
        assert_eq!(sol, vec![0, 1]);
        assert!(pcp_brute_force(&unsolvable(), 8).is_none());
    }

    #[test]
    fn solution_checker() {
        let inst = solvable();
        assert!(inst.is_solution(&[0, 1]));
        assert!(!inst.is_solution(&[0]));
        assert!(!inst.is_solution(&[1, 0]));
        assert!(!inst.is_solution(&[]));
    }

    #[test]
    fn languages_accept_encodings() {
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        // L_I accepts □#I₁□#I₂ style words:
        let nfa = red.q1.atoms[0].nfa();
        let lbl = &red.labels;
        assert!(nfa.accepts(&[lbl.square, lbl.hash, lbl.idx[0]]));
        assert!(nfa.accepts(&[lbl.square, lbl.hash, lbl.idx[1], lbl.square, lbl.hash, lbl.idx[0]]));
        assert!(!nfa.accepts(&[lbl.hash, lbl.idx[0]]));
        assert!(!nfa.accepts(&[]));
        // L̂_I mirrors:
        let nfa = red.q1.atoms[2].nfa();
        assert!(nfa.accepts(&[lbl.idx_hat[0], lbl.hash_hat, lbl.square_hat]));
        // Lₐ spells J-marked u-words:
        let nfa = red.q1.atoms[3].nfa();
        let a = lbl.sym('a', false);
        let b = lbl.sym('b', false);
        let c = lbl.sym('c', false);
        assert!(nfa.accepts(&[lbl.square, lbl.hash, lbl.jdx[0], a, b]));
        assert!(nfa.accepts(&[lbl.square, lbl.hash, lbl.jdx[1], c]));
        assert!(
            !nfa.accepts(&[lbl.square, lbl.hash, a, b]),
            "marker required"
        );
        assert!(
            !nfa.accepts(&[lbl.square, lbl.hash, lbl.jdx[1], a, b]),
            "marker must match the word"
        );
    }

    #[test]
    fn aligned_witness_is_well_formed() {
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        let sol = pcp_brute_force(&inst, 6).unwrap();
        let witness = witness_expansion(&red, &inst, &sol, false);
        assert!(
            satisfies_wellformedness(&red, &witness),
            "aligned witness must pass the I-Î condition"
        );
    }

    #[test]
    fn misaligned_witness_is_detected() {
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        let sol = pcp_brute_force(&inst, 6).unwrap();
        // Misaligned index word (and no identifications): the forbidden
        // patterns must fire.
        let witness = witness_expansion(&red, &inst, &sol, true);
        assert!(
            !satisfies_wellformedness(&red, &witness),
            "misaligned witness must violate the I-Î condition"
        );
    }

    #[test]
    fn unidentified_witness_is_detected() {
        // Without the s/r identifications the #IÎ#̂ path is simple → fires.
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        let sol = pcp_brute_force(&inst, 6).unwrap();
        let expansion =
            crpq_query::Expansion::build(&red.q1, &{ witness_words(&red, &inst, &sol) });
        assert!(
            !satisfies_wellformedness(&red, &expansion.cq),
            "discrete expansion must violate the I-Î condition"
        );
    }

    /// The four witness words without identifications (test helper).
    fn witness_words(
        red: &PcpReduction,
        inst: &PcpInstance,
        indices: &[usize],
    ) -> Vec<Vec<Symbol>> {
        let lbl = &red.labels;
        let k = indices.len();
        let mut w_i = Vec::new();
        for step in (0..k).rev() {
            w_i.extend([lbl.square, lbl.hash, lbl.idx[indices[step]]]);
        }
        let mut wh_i = Vec::new();
        for &ix in indices {
            wh_i.extend([lbl.idx_hat[ix], lbl.hash_hat, lbl.square_hat]);
        }
        let mut w_a = Vec::new();
        for &ix in indices {
            w_a.extend([lbl.square, lbl.hash, lbl.jdx[ix]]);
            w_a.extend(inst.pairs[ix].0.chars().map(|c| lbl.sym(c, false)));
        }
        let mut wh_a = Vec::new();
        for &ix in indices.iter().rev() {
            wh_a.extend(inst.pairs[ix].1.chars().map(|c| lbl.sym(c, true)));
            wh_a.extend([lbl.jdx_hat[ix], lbl.hash_hat, lbl.square_hat]);
        }
        vec![w_i, wh_a, wh_i, w_a]
    }

    #[test]
    fn ia_condition_detects_marker_mismatch() {
        // Misalign ONLY the word-side J marker of the first a-block (keep
        // the Î word and all identifications aligned): the M_Ia pattern
        // I_i □ # J_j (i ≠ j) fires through x.
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        let sol = pcp_brute_force(&inst, 6).unwrap();
        let aligned = witness_expansion(&red, &inst, &sol, false);
        assert!(satisfies_wellformedness(&red, &aligned));
        // Build the marker-mismatched variant by hand: same words except
        // the first J marker, same identifications.
        let lbl = &red.labels;
        let k = sol.len();
        let l = inst.len();
        let mut w_i = Vec::new();
        for step in (0..k).rev() {
            w_i.extend([lbl.square, lbl.hash, lbl.idx[sol[step]]]);
        }
        let mut wh_i = Vec::new();
        for &ix in &sol {
            wh_i.extend([lbl.idx_hat[ix], lbl.hash_hat, lbl.square_hat]);
        }
        let mut w_a = Vec::new();
        for (step, &ix) in sol.iter().enumerate() {
            let marker = if step == 0 { (ix + 1) % l } else { ix };
            w_a.extend([lbl.square, lbl.hash, lbl.jdx[marker]]);
            w_a.extend(inst.pairs[ix].0.chars().map(|c| lbl.sym(c, false)));
        }
        let mut wh_a = Vec::new();
        for &ix in sol.iter().rev() {
            wh_a.extend(inst.pairs[ix].1.chars().map(|c| lbl.sym(c, true)));
            wh_a.extend([lbl.jdx_hat[ix], lbl.hash_hat, lbl.square_hat]);
        }
        let expansion = crpq_query::Expansion::build(&red.q1, &[w_i, wh_a, wh_i, w_a]);
        // Apply the Figure-5 s/r identifications so only the marker is off.
        let path_i = &expansion.atom_paths[0];
        let path_ih = &expansion.atom_paths[2];
        let mut merges = Vec::new();
        for j in 0..k {
            let base = 3 * k - 3 * (j + 1);
            merges.push((path_i[base + 1], path_ih[3 * j + 2]));
            merges.push((path_i[base], path_ih[3 * j + 3]));
        }
        let bad = expansion.cq.collapse_equalities(&merges).0;
        assert!(
            !satisfies_wellformedness(&red, &bad),
            "mismatched first J marker must violate the I-a condition"
        );
    }

    #[test]
    fn ahat_a_condition_detects_letter_mismatch() {
        // Mutate a single hatted Σ-letter of ŵₐ (keeping lengths, markers
        // and all identifications aligned): the staggered pair spells a·b̂
        // with a ≠ b, so M_âa fires.
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        let sol = pcp_brute_force(&inst, 6).unwrap();
        let n: usize = sol.iter().map(|&i| inst.pairs[i].1.len()).sum();
        for pos in 0..n {
            let bad = witness_expansion_with(&red, &inst, &sol, WitnessMutation::HatLetter(pos));
            assert!(
                !satisfies_wellformedness(&red, &bad),
                "mutated v̂-letter at position {pos} must violate the â-a condition"
            );
        }
    }

    #[test]
    fn ahat_ihat_condition_detects_marker_mismatch() {
        // Mutate a single Ĵ marker of ŵₐ (first block: fires through x;
        // inner block: fires through the merged boundary E = D).
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        let sol = pcp_brute_force(&inst, 6).unwrap();
        for block in 1..=sol.len() {
            let bad = witness_expansion_with(&red, &inst, &sol, WitnessMutation::HatMarker(block));
            assert!(
                !satisfies_wellformedness(&red, &bad),
                "mutated Ĵ marker in block {block} must violate the â-Î condition"
            );
        }
    }

    #[test]
    fn unsolvable_instance_has_no_well_formed_candidate() {
        // (a, b) admits no solution; every candidate sequence produces a
        // letter mismatch at every position, so no canonical expansion is
        // well-formed.
        let inst = unsolvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        for seq in [vec![0], vec![0, 0], vec![0, 0, 0]] {
            let cand = witness_expansion(&red, &inst, &seq, false);
            assert!(
                !satisfies_wellformedness(&red, &cand),
                "candidate {seq:?} of an unsolvable instance must be rejected"
            );
        }
    }

    #[test]
    fn wellformedness_tracks_solutions_on_mixed_sequences() {
        // For the solvable instance, sweep all sequences up to length 3:
        // exactly the PCP solutions yield well-formed canonical expansions
        // (equal-length mismatching candidates — the unreproduced appendix
        // padding — do not occur for this instance).
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        let l = inst.len();
        let mut seqs: Vec<Vec<usize>> = Vec::new();
        for a in 0..l {
            seqs.push(vec![a]);
            for b in 0..l {
                seqs.push(vec![a, b]);
                for c in 0..l {
                    seqs.push(vec![a, b, c]);
                }
            }
        }
        for seq in seqs {
            let ground_truth = inst.is_solution(&seq);
            let lens_match = seq.iter().map(|&i| inst.pairs[i].0.len()).sum::<usize>()
                == seq.iter().map(|&i| inst.pairs[i].1.len()).sum::<usize>();
            if !lens_match {
                continue; // needs the appendix padding refinement
            }
            let cand = witness_expansion(&red, &inst, &seq, false);
            assert_eq!(
                satisfies_wellformedness(&red, &cand),
                ground_truth,
                "well-formedness must coincide with solutionhood for {seq:?}"
            );
        }
    }

    #[test]
    fn reduction_classifies_q1() {
        let inst = solvable();
        let mut it = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut it);
        use crpq_query::QueryClass;
        assert_eq!(red.q1.classify(), QueryClass::Crpq, "Q1 has stars");
        assert_eq!(red.q_cycle.classify(), QueryClass::CrpqFin);
        assert_eq!(red.q_path.classify(), QueryClass::CrpqFin);
        // Figure 4 shape: middle variable x with 2 in / 2 out atoms.
        let x = Var(2);
        assert_eq!(red.q1.atoms.iter().filter(|a| a.dst == x).count(), 2);
        assert_eq!(red.q1.atoms.iter().filter(|a| a.src == x).count(), 2);
    }
}
