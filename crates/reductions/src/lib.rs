//! # crpq-reductions
//!
//! The paper's hardness reductions, implemented as instance generators with
//! brute-force ground-truth solvers for cross-validation:
//!
//! * [`subgraph`] — Prop 3.1: subgraph isomorphism ≤ evaluation under
//!   injective semantics (the `Q⁺`/`G⁺` construction with the fresh `R`
//!   relation);
//! * [`gcp2`] — Thm 6.1 (Figure 6): the Generalized Two-Coloring Problem
//!   ≤ q-inj non-containment for `CRPQ_fin`/CQ, plus a brute-force GCP2
//!   solver;
//! * [`qbf`] — Thm 6.2 (Figure 7): ∀∃-QBF ≤ a-inj containment for
//!   CQ/`CRPQ_fin`, plus a brute-force ∀∃-QBF evaluator;
//! * [`pcp`] — Thm 5.2 (Figures 4–5): Post Correspondence Problem ≤ a-inj
//!   non-containment (the undecidability construction), plus a bounded PCP
//!   solver.

pub mod gcp2;
pub mod pcp;
pub mod qbf;
pub mod subgraph;

pub use gcp2::{gcp2_brute_force, gcp2_to_qinj_containment, Gcp2Instance};
pub use pcp::{pcp_brute_force, pcp_to_ainj_containment, PcpInstance, PcpReduction};
pub use qbf::{qbf_brute_force, qbf_to_ainj_containment, Literal, QbfInstance, QbfReduction};
pub use subgraph::{subgraph_iso_brute_force, subgraph_to_evaluation};
