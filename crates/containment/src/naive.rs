//! The counter-example containment engine (§4.1).
//!
//! `E₁(ȳ)` is a **counter-example** for ★-semantics if `E₁` is a
//! ★-expansion of `Q₁` with `ȳ ∉ Q₂(E₁)★`. Then `Q₁ ⊆★ Q₂` iff no
//! counter-example exists. The ★-expansions are:
//!
//! * ordinary expansions `Exp(Q₁)` for `st` (Prop 4.2) and `q-inj`
//!   (Prop 4.3);
//! * a-inj-expansions `Exp_a-inj(Q₁)` for `a-inj` (Prop 4.6).
//!
//! The ∃-side — `ȳ ∈ Q₂(E₁)★` — is plain ★-evaluation of `Q₂` over the
//! candidate viewed as a graph database, which [`crpq_core::eval`] decides
//! exactly. The ∀-side is exhaustive precisely when the expansion
//! enumeration is ([`ExpansionLimits`] + finiteness), which the
//! [`Outcome`] reports faithfully.

use crpq_core::{eval, Semantics};
use crpq_graph::NodeId;
use crpq_query::expansion::{enumerate_expansions, ExpansionLimits};
use crpq_query::{enumerate_a_inj_expansions, Cq, Crpq};
use crpq_util::sync::atomic::{AtomicBool, Ordering};
use crpq_util::sync::Mutex;
use std::ops::ControlFlow;

/// Result of a containment check.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// `Q₁ ⊆★ Q₂`, certified by exhaustive counter-example search.
    Contained,
    /// `Q₁ ⊄★ Q₂` with a concrete witness.
    NotContained(CounterExample),
    /// No counter-example within the budget, but the search was not
    /// exhaustive (infinite languages / caps). `Q₁ ⊆★ Q₂` *up to* the budget.
    Inconclusive {
        /// The budget that was exhausted.
        limits: ExpansionLimits,
    },
}

impl Outcome {
    /// Collapses to `Option<bool>` (`None` = inconclusive).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Outcome::Contained => Some(true),
            Outcome::NotContained(_) => Some(false),
            Outcome::Inconclusive { .. } => None,
        }
    }

    /// Whether this is a definite [`Outcome::Contained`].
    pub fn is_contained(&self) -> bool {
        matches!(self, Outcome::Contained)
    }

    /// Whether this is a definite [`Outcome::NotContained`].
    pub fn is_not_contained(&self) -> bool {
        matches!(self, Outcome::NotContained(_))
    }
}

/// A witness for non-containment: a ★-expansion of `Q₁` on which `Q₂` fails.
#[derive(Clone, Debug)]
pub struct CounterExample {
    /// The counter-example as a CQ (`E₁` or `F₁`); its free tuple is `ȳ`.
    pub witness: Cq,
    /// The expansion words chosen per atom of the ε-free variant of `Q₁`.
    pub profile: Vec<Vec<crpq_util::Symbol>>,
    /// Number of variable merges applied (0 unless ★ = a-inj).
    pub merges: usize,
}

/// Budget and execution options.
#[derive(Clone, Copy, Debug)]
pub struct ContainmentConfig {
    /// Expansion enumeration budget for the ∀-side.
    pub limits: ExpansionLimits,
    /// Worker threads for the candidate checks (1 = sequential).
    pub threads: usize,
}

impl Default for ContainmentConfig {
    fn default() -> Self {
        Self {
            limits: ExpansionLimits::default(),
            threads: 1,
        }
    }
}

/// Decides `Q₁ ⊆★ Q₂` with an explicit configuration.
///
/// Both queries must have the same free-tuple arity (containment between
/// different arities is vacuously false and rejected loudly).
pub fn contain_with(q1: &Crpq, q2: &Crpq, sem: Semantics, config: ContainmentConfig) -> Outcome {
    assert_eq!(
        q1.free.len(),
        q2.free.len(),
        "containment requires equal free-tuple arity"
    );
    if config.threads > 1 {
        return contain_parallel(q1, q2, sem, config);
    }
    let num_symbols = alphabet_span(q1, q2);
    let mut counter: Option<CounterExample> = None;

    let check = |cq: &Cq,
                 profile: &[Vec<crpq_util::Symbol>],
                 merges: usize,
                 counter: &mut Option<CounterExample>|
     -> ControlFlow<()> {
        if !is_counter_example(cq, q2, sem, num_symbols) {
            return ControlFlow::Continue(());
        }
        *counter = Some(CounterExample {
            witness: cq.clone(),
            profile: profile.to_vec(),
            merges,
        });
        ControlFlow::Break(())
    };

    let outcome = match sem {
        Semantics::Standard | Semantics::QueryInjective => {
            enumerate_expansions(q1, config.limits, |exp| {
                check(&exp.cq, &exp.profile, 0, &mut counter)
            })
        }
        Semantics::AtomInjective => enumerate_a_inj_expansions(q1, config.limits, |aexp| {
            check(&aexp.cq, &aexp.base.profile, aexp.merges(), &mut counter)
        }),
    };

    match counter {
        Some(c) => Outcome::NotContained(c),
        None if outcome.complete => Outcome::Contained,
        None => Outcome::Inconclusive {
            limits: config.limits,
        },
    }
}

/// `ȳ ∉ Q₂(E₁)★`? — the ∃-side, decided by exact evaluation.
fn is_counter_example(e1: &Cq, q2: &Crpq, sem: Semantics, num_symbols: usize) -> bool {
    let g = e1.to_graph_anon(num_symbols);
    let tuple: Vec<NodeId> = e1.free.iter().map(|v| NodeId(v.0)).collect();
    !eval::eval_contains(q2, &g, &tuple, sem)
}

/// Decides `(Q₁¹ ∨ … ∨ Q₁ᵏ) ⊆★ (Q₂¹ ∨ … ∨ Q₂ᵐ)` — unions of CRPQs
/// (UCRPQs, §7; also the natural form of the PCP reduction's right side).
///
/// The left union is contained iff **every** branch is; a branch's
/// counter-example must escape **every** right-hand branch (∃-side is the
/// union evaluation). The outcome is the weakest across branches:
/// any branch refutation refutes the union containment; any inconclusive
/// branch makes the whole answer inconclusive unless a refutation exists.
pub fn contain_union_with(
    u1: &crpq_query::UnionCrpq,
    u2: &crpq_query::UnionCrpq,
    sem: Semantics,
    config: ContainmentConfig,
) -> Outcome {
    assert_eq!(
        u1.arity(),
        u2.arity(),
        "union containment requires equal arity"
    );
    let num_symbols = u1
        .branches
        .iter()
        .chain(&u2.branches)
        .flat_map(|q| q.atoms.iter())
        .flat_map(|a| a.regex.symbols())
        .map(|s| s.index() + 1)
        .max()
        .unwrap_or(0);
    let mut inconclusive = false;
    for q1 in &u1.branches {
        let mut counter: Option<CounterExample> = None;
        let check = |cq: &Cq,
                     profile: &[Vec<crpq_util::Symbol>],
                     merges: usize,
                     counter: &mut Option<CounterExample>|
         -> ControlFlow<()> {
            let g = cq.to_graph_anon(num_symbols);
            let tuple: Vec<NodeId> = cq.free.iter().map(|v| NodeId(v.0)).collect();
            let matched = u2
                .branches
                .iter()
                .any(|q2| eval::eval_contains(q2, &g, &tuple, sem));
            if matched {
                return ControlFlow::Continue(());
            }
            *counter = Some(CounterExample {
                witness: cq.clone(),
                profile: profile.to_vec(),
                merges,
            });
            ControlFlow::Break(())
        };
        let outcome = match sem {
            Semantics::Standard | Semantics::QueryInjective => {
                enumerate_expansions(q1, config.limits, |exp| {
                    check(&exp.cq, &exp.profile, 0, &mut counter)
                })
            }
            Semantics::AtomInjective => enumerate_a_inj_expansions(q1, config.limits, |aexp| {
                check(&aexp.cq, &aexp.base.profile, aexp.merges(), &mut counter)
            }),
        };
        match counter {
            Some(c) => return Outcome::NotContained(c),
            None if outcome.complete => {}
            None => inconclusive = true,
        }
    }
    if inconclusive {
        Outcome::Inconclusive {
            limits: config.limits,
        }
    } else {
        Outcome::Contained
    }
}

fn alphabet_span(q1: &Crpq, q2: &Crpq) -> usize {
    q1.atoms
        .iter()
        .chain(&q2.atoms)
        .flat_map(|a| a.regex.symbols())
        .map(|s| s.index() + 1)
        .max()
        .unwrap_or(0)
}

/// Parallel candidate checking: the enumerator batches candidates, workers
/// evaluate them, an atomic flag short-circuits on the first counter-example.
fn contain_parallel(q1: &Crpq, q2: &Crpq, sem: Semantics, config: ContainmentConfig) -> Outcome {
    const BATCH: usize = 64;
    let num_symbols = alphabet_span(q1, q2);
    let found: Mutex<Option<CounterExample>> = Mutex::new(None);
    let stop = AtomicBool::new(false);

    let mut batch: Vec<CounterExample> = Vec::with_capacity(BATCH);
    let process_batch = |batch: &mut Vec<CounterExample>| {
        if batch.is_empty() || stop.load(Ordering::Relaxed) {
            batch.clear();
            return;
        }
        let (stop_ref, found_ref) = (&stop, &found);
        crpq_util::sync::thread::scope(|scope| {
            let chunk = batch.len().div_ceil(config.threads).max(1);
            for part in batch.chunks(chunk) {
                scope.spawn(move || {
                    for cand in part {
                        if stop_ref.load(Ordering::Relaxed) {
                            return;
                        }
                        if is_counter_example(&cand.witness, q2, sem, num_symbols) {
                            *found_ref.lock().unwrap() = Some(cand.clone()); // poison: re-raise a panicked sibling worker
                            stop_ref.store(true, Ordering::Relaxed);
                            return;
                        }
                    }
                });
            }
        });
        batch.clear();
    };

    let push = |cq: &Cq,
                profile: &[Vec<crpq_util::Symbol>],
                merges: usize,
                batch: &mut Vec<CounterExample>|
     -> ControlFlow<()> {
        batch.push(CounterExample {
            witness: cq.clone(),
            profile: profile.to_vec(),
            merges,
        });
        if batch.len() >= BATCH {
            process_batch(batch);
        }
        if stop.load(Ordering::Relaxed) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    };

    let outcome = match sem {
        Semantics::Standard | Semantics::QueryInjective => {
            enumerate_expansions(q1, config.limits, |exp| {
                push(&exp.cq, &exp.profile, 0, &mut batch)
            })
        }
        Semantics::AtomInjective => enumerate_a_inj_expansions(q1, config.limits, |aexp| {
            push(&aexp.cq, &aexp.base.profile, aexp.merges(), &mut batch)
        }),
    };
    process_batch(&mut batch);

    let result = found.into_inner().unwrap(); // poison: re-raise a panicked sibling worker
    match result {
        Some(c) => Outcome::NotContained(c),
        None if outcome.complete => Outcome::Contained,
        None => Outcome::Inconclusive {
            limits: config.limits,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_query::parse_crpq;
    use crpq_util::Interner;

    fn q(text: &str, it: &mut Interner) -> Crpq {
        parse_crpq(text, it).unwrap()
    }

    fn check(q1: &Crpq, q2: &Crpq, sem: Semantics) -> Outcome {
        contain_with(q1, q2, sem, ContainmentConfig::default())
    }

    /// Example 4.7, first pair: Q1 = x -a-> y ∧ y -b-> z, Q2 = x -[a b]-> y.
    #[test]
    fn example_4_7_q1_q2() {
        let mut it = Interner::new();
        let q1 = q("x -[a]-> y, y -[b]-> z", &mut it);
        let q2 = q("x -[a b]-> y", &mut it);
        // Q1 ⊆q-inj Q2 and Q1 ⊆st Q2, but Q1 ⊄a-inj Q2.
        assert!(check(&q1, &q2, Semantics::QueryInjective).is_contained());
        assert!(check(&q1, &q2, Semantics::Standard).is_contained());
        let out = check(&q1, &q2, Semantics::AtomInjective);
        assert!(out.is_not_contained(), "{out:?}");
        if let Outcome::NotContained(ce) = out {
            // The witness merges x and z (the a-inj-expansion F of the paper).
            assert_eq!(ce.merges, 1);
            assert_eq!(ce.witness.num_vars, 2);
        }
    }

    /// Example 4.7, second pair: Q1' = x -a-> y ∧ x -b-> y,
    /// Q2' = x -a-> y ∧ x' -b-> y'.
    #[test]
    fn example_4_7_q1p_q2p() {
        let mut it = Interner::new();
        let q1p = q("x -[a]-> y, x -[b]-> y", &mut it);
        let q2p = q("x -[a]-> y, x' -[b]-> y'", &mut it);
        // Q1' ⊆a-inj Q2' and Q1' ⊆st Q2', but Q1' ⊄q-inj Q2'.
        assert!(check(&q1p, &q2p, Semantics::AtomInjective).is_contained());
        assert!(check(&q1p, &q2p, Semantics::Standard).is_contained());
        assert!(check(&q1p, &q2p, Semantics::QueryInjective).is_not_contained());
    }

    #[test]
    fn reflexivity() {
        let mut it = Interner::new();
        let q1 = q("x -[a b]-> y, y -[c]-> x", &mut it);
        for sem in Semantics::ALL {
            assert!(check(&q1, &q1, sem).is_contained(), "Q ⊆{sem} Q");
        }
    }

    #[test]
    fn finite_relaxation_is_contained() {
        let mut it = Interner::new();
        let q1 = q("x -[a b]-> y", &mut it);
        let q2 = q("x -[a b + a c]-> y", &mut it);
        for sem in Semantics::ALL {
            assert!(check(&q1, &q2, sem).is_contained());
            assert!(check(&q2, &q1, sem).is_not_contained());
        }
    }

    #[test]
    fn star_relaxation_standard() {
        // x -[a a]-> y ⊆ x -[a^+]-> y under every semantics; the left is
        // finite so the check is complete.
        let mut it = Interner::new();
        let q1 = q("x -[a a]-> y", &mut it);
        let q2 = q("x -[a a*]-> y", &mut it);
        for sem in Semantics::ALL {
            assert!(check(&q1, &q2, sem).is_contained(), "under {sem}");
        }
    }

    #[test]
    fn star_lhs_is_inconclusive_or_refuted() {
        let mut it = Interner::new();
        // Free tuples pin the endpoints (the Boolean variants are trivially
        // contained: any a-path contains an a-edge somewhere).
        let q1 = q("(x, y) <- x -[a a*]-> y", &mut it);
        let q2 = q("(x, y) <- x -[a]-> y", &mut it);
        // aa ∈ L(Q1) refutes containment quickly.
        assert!(check(&q1, &q2, Semantics::Standard).is_not_contained());
        // Q1 ⊆ Q1' where Q1' = x -[a* a]-> y is genuinely contained but the
        // left side is infinite: the engine reports Inconclusive (sound).
        let q1b = q("(x, y) <- x -[a* a]-> y", &mut it);
        let out = check(&q1, &q1b, Semantics::Standard);
        assert!(matches!(out, Outcome::Inconclusive { .. }), "{out:?}");
    }

    #[test]
    fn boolean_star_relaxations_are_contained() {
        // Boolean existential queries: x -[a a*]-> y ⊆ x -[a]-> y holds
        // because any non-empty a-path contains an a-edge.
        let mut it = Interner::new();
        let q1 = q("x -[a a]-> y", &mut it);
        let q2 = q("x -[a]-> y", &mut it);
        for sem in Semantics::ALL {
            assert!(check(&q1, &q2, sem).is_contained(), "under {sem}");
        }
    }

    #[test]
    fn free_variable_positions_matter() {
        let mut it = Interner::new();
        let q1 = q("(x, y) <- x -[a]-> y", &mut it);
        let q2 = q("(y, x) <- x -[a]-> y", &mut it);
        // Q1(x,y) returns edges; Q2 returns reversed edges.
        for sem in Semantics::ALL {
            assert!(check(&q1, &q2, sem).is_not_contained(), "under {sem}");
        }
    }

    #[test]
    fn hierarchy_of_containment_strength() {
        // Dropping an atom is a relaxation under st and a-inj.
        let mut it = Interner::new();
        let q1 = q("x -[a]-> y, y -[b]-> z", &mut it);
        let q2 = q("x -[a]-> y", &mut it);
        assert!(check(&q1, &q2, Semantics::Standard).is_contained());
        assert!(check(&q1, &q2, Semantics::AtomInjective).is_contained());
        assert!(check(&q1, &q2, Semantics::QueryInjective).is_contained());
    }

    #[test]
    fn parallel_agrees_with_sequential() {
        let mut it = Interner::new();
        let q1 = q("x -[a+b]-> y, y -[a+b]-> z", &mut it);
        let q2 = q("x -[a]-> y, y -[a]-> z", &mut it);
        for sem in Semantics::ALL {
            let seq = check(&q1, &q2, sem);
            let par = contain_with(
                &q1,
                &q2,
                sem,
                ContainmentConfig {
                    limits: ExpansionLimits::default(),
                    threads: 4,
                },
            );
            assert_eq!(seq.as_bool(), par.as_bool(), "under {sem}");
        }
    }

    #[test]
    #[should_panic(expected = "equal free-tuple arity")]
    fn arity_mismatch_panics() {
        let mut it = Interner::new();
        let q1 = q("(x) <- x -[a]-> y", &mut it);
        let q2 = q("x -[a]-> y", &mut it);
        let _ = check(&q1, &q2, Semantics::Standard);
    }

    #[test]
    fn union_right_side_weaker_than_single() {
        use crpq_query::UnionCrpq;
        let mut it = Interner::new();
        // Q1 = x -[a+b]-> y is contained in (x-a->y ∨ x-b->y) but in
        // neither disjunct alone — the union is essential.
        let q1 = q("(x, y) <- x -[a+b]-> y", &mut it);
        let qa = q("(x, y) <- x -[a]-> y", &mut it);
        let qb = q("(x, y) <- x -[b]-> y", &mut it);
        for sem in Semantics::ALL {
            assert!(check(&q1, &qa, sem).is_not_contained());
            assert!(check(&q1, &qb, sem).is_not_contained());
            let out = contain_union_with(
                &UnionCrpq::single(q1.clone()),
                &UnionCrpq::new(vec![qa.clone(), qb.clone()]),
                sem,
                ContainmentConfig::default(),
            );
            assert!(out.is_contained(), "union containment under {sem}: {out:?}");
        }
    }

    #[test]
    fn union_left_side_needs_all_branches() {
        use crpq_query::UnionCrpq;
        let mut it = Interner::new();
        let qa = q("(x, y) <- x -[a]-> y", &mut it);
        let qb = q("(x, y) <- x -[b]-> y", &mut it);
        let u1 = UnionCrpq::new(vec![qa.clone(), qb.clone()]);
        // (a ∨ b) ⊄ a: the b-branch escapes.
        let out = contain_union_with(
            &u1,
            &UnionCrpq::single(qa.clone()),
            Semantics::Standard,
            ContainmentConfig::default(),
        );
        assert!(out.is_not_contained());
        // (a ∨ b) ⊆ (b ∨ a).
        let out = contain_union_with(
            &u1,
            &UnionCrpq::new(vec![qb, qa]),
            Semantics::Standard,
            ContainmentConfig::default(),
        );
        assert!(out.is_contained());
    }

    #[test]
    fn boolean_unsatisfiable_rhs() {
        let mut it = Interner::new();
        let q1 = q("x -[a]-> y", &mut it);
        let q2 = q("x -[∅ b]-> y", &mut it);
        // Q2 never holds, so Q1 ⊄ Q2 (Q1 is satisfiable).
        for sem in Semantics::ALL {
            assert!(check(&q1, &q2, sem).is_not_contained());
        }
    }
}
