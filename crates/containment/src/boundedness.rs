//! The **boundedness problem** (paper §7, outlook; decidable for standard
//! semantics by Barceló–Figueira–Romero, ICALP 2019 — the paper's
//! reference [5]).
//!
//! A CRPQ `Q` is *bounded* when it is equivalent, under standard semantics,
//! to a finite union of CQs. The executable characterisation used here:
//! `Q` is bounded at level `k` iff `Q ⊆st Q^{≤k}`, where the *truncation*
//! `Q^{≤k}` is the union of the expansions of `Q` whose words all have
//! length ≤ `k` (each expansion is a CQ). The reverse inclusion
//! `Q^{≤k} ⊆st Q` always holds, so equivalence reduces to one containment,
//! which the counter-example engine decides within its budget.
//!
//! The verdict is three-valued, mirroring the engine:
//!
//! * [`Boundedness::Bounded`] — certified: the containment search was
//!   exhaustive (always the case for `CRPQ_fin`, whose queries are
//!   trivially bounded);
//! * [`Boundedness::BoundedUpTo`] — `Q ≡st Q^{≤k}` held against every
//!   candidate within the budget, but the language is infinite so the
//!   search was not exhaustive (the [5] decision procedure is a full
//!   research result of its own and is not reproduced here);
//! * [`Boundedness::Refuted`] — every level up to the cap was refuted by an
//!   explicit counter-example expansion (strong evidence of unboundedness,
//!   e.g. a growing family of chains none of which folds onto a shorter
//!   one).
//!
//! ```
//! use crpq_containment::boundedness::{check_boundedness, Boundedness, BoundednessConfig};
//! use crpq_query::parse_crpq;
//! use crpq_util::Interner;
//!
//! let mut sigma = Interner::new();
//! // A redundant star: the `a`-edge atom already implies an `a a*` path.
//! let q = parse_crpq("(x, y) <- x -[a]-> y, x -[a a*]-> y", &mut sigma).unwrap();
//! let verdict = check_boundedness(&q, BoundednessConfig::default());
//! assert!(matches!(verdict, Boundedness::BoundedUpTo { level: 1, .. }));
//!
//! // A genuine reachability query is unbounded: a^{k+1} never folds onto
//! // a shorter chain.
//! let q = parse_crpq("(x, y) <- x -[a a*]-> y", &mut sigma).unwrap();
//! let verdict = check_boundedness(&q, BoundednessConfig::default());
//! assert!(matches!(verdict, Boundedness::Refuted { .. }));
//! ```

use crate::naive::{contain_union_with, ContainmentConfig, CounterExample, Outcome};
use crpq_core::Semantics;
use crpq_query::expansion::{enumerate_expansions, ExpansionLimits};
use crpq_query::{Cq, Crpq, UnionCrpq};

/// Configuration for the boundedness search.
#[derive(Clone, Copy, Debug)]
pub struct BoundednessConfig {
    /// Highest truncation level `k` to try.
    pub max_level: usize,
    /// Budget for each per-level containment check; the word-length budget
    /// is raised to at least `level + 2` so each level can be refuted.
    pub per_level: ContainmentConfig,
}

impl Default for BoundednessConfig {
    fn default() -> Self {
        BoundednessConfig {
            max_level: 3,
            per_level: ContainmentConfig::default(),
        }
    }
}

/// Verdict of [`check_boundedness`].
#[derive(Clone, Debug)]
pub enum Boundedness {
    /// `Q ≡st Q^{≤level}`, certified by exhaustive search.
    Bounded {
        /// The certified truncation level.
        level: usize,
        /// The equivalent union of CQs.
        union: Vec<Cq>,
    },
    /// `Q ≡st Q^{≤level}` within the budget (infinite languages: not
    /// exhaustive).
    BoundedUpTo {
        /// The first level with no counter-example in budget.
        level: usize,
        /// The budget that was exhausted.
        limits: ExpansionLimits,
    },
    /// Every level `k ≤ max_level` admits a counter-example expansion.
    Refuted {
        /// The highest refuted level.
        level: usize,
        /// The counter-example at that level.
        witness: Box<CounterExample>,
    },
}

/// The truncation `Q^{≤k}`: all expansions of `Q` with words of length
/// ≤ `k`, as CQ branches (exact: the enumeration at finite word length is
/// always exhaustive).
pub fn truncation(q: &Crpq, k: usize, max_branches: usize) -> Vec<Cq> {
    let mut branches: Vec<Cq> = Vec::new();
    let limits = ExpansionLimits {
        max_word_len: k,
        max_expansions: max_branches,
    };
    enumerate_expansions(q, limits, |exp| {
        if !branches.contains(&exp.cq) {
            branches.push(exp.cq.clone());
        }
        std::ops::ControlFlow::Continue(())
    });
    branches
}

/// Decides boundedness of `Q` under standard semantics, level by level.
pub fn check_boundedness(q: &Crpq, config: BoundednessConfig) -> Boundedness {
    let mut last_refutation: Option<(usize, CounterExample)> = None;
    for level in 0..=config.max_level {
        let branches = truncation(q, level, config.per_level.limits.max_expansions);
        if branches.is_empty() {
            // Q^{≤level} is empty; Q ⊆ ∅ only if Q itself has no expansion,
            // which level max_word_len-budget search below would certify —
            // treat as refuted unless Q is the empty union too.
            continue;
        }
        let union2 = UnionCrpq::new(branches.iter().map(Crpq::from_cq).collect::<Vec<_>>());
        let mut per_level = config.per_level;
        per_level.limits.max_word_len = per_level.limits.max_word_len.max(level + 2);
        let outcome = contain_union_with(
            &UnionCrpq::single(q.clone()),
            &union2,
            Semantics::Standard,
            per_level,
        );
        match outcome {
            Outcome::Contained => {
                return Boundedness::Bounded {
                    level,
                    union: branches,
                }
            }
            Outcome::Inconclusive { limits } => return Boundedness::BoundedUpTo { level, limits },
            Outcome::NotContained(counter) => {
                last_refutation = Some((level, counter));
            }
        }
    }
    match last_refutation {
        Some((level, witness)) => Boundedness::Refuted {
            level,
            witness: Box::new(witness),
        },
        // No truncation level had any branch: Q has no expansions at all
        // (empty languages) — it is equivalent to the empty union.
        None => Boundedness::Bounded {
            level: 0,
            union: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_query::parse_crpq;
    use crpq_util::Interner;

    fn q(text: &str) -> Crpq {
        let mut sigma = Interner::new();
        parse_crpq(text, &mut sigma).unwrap()
    }

    #[test]
    fn finite_queries_are_certified_bounded() {
        let verdict = check_boundedness(&q("(x, y) <- x -[a b + c]-> y"), Default::default());
        match verdict {
            Boundedness::Bounded { level, union } => {
                assert!(level <= 2);
                assert_eq!(union.len(), 2, "two expansions: ab and c");
            }
            other => panic!("expected certified boundedness, got {other:?}"),
        }
    }

    #[test]
    fn reachability_is_refuted_at_every_level() {
        let verdict = check_boundedness(&q("(x, y) <- x -[a a*]-> y"), Default::default());
        match verdict {
            Boundedness::Refuted { level, witness } => {
                assert_eq!(level, 3, "refuted at the cap");
                // The witness is a chain longer than the level.
                assert!(witness.profile[0].len() > level);
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn redundant_star_is_bounded_up_to_budget() {
        let verdict = check_boundedness(
            &q("(x, y) <- x -[a]-> y, x -[a a*]-> y"),
            Default::default(),
        );
        assert!(
            matches!(verdict, Boundedness::BoundedUpTo { level: 1, .. }),
            "got {verdict:?}"
        );
    }

    #[test]
    fn boolean_star_collapses_to_level_zero() {
        // ∃x,y x -[a*]-> y is equivalent to "some node exists": the ε-variant
        // expansion is the empty CQ, which folds onto everything.
        let verdict = check_boundedness(&q("x -[a*]-> y"), Default::default());
        assert!(
            matches!(
                verdict,
                Boundedness::BoundedUpTo { level: 0, .. } | Boundedness::Bounded { level: 0, .. }
            ),
            "got {verdict:?}"
        );
    }

    #[test]
    fn truncation_enumerates_small_expansions() {
        let branches = truncation(&q("(x, y) <- x -[a a*]-> y"), 2, 1000);
        assert_eq!(branches.len(), 2, "chains a and aa");
        let branches = truncation(&q("(x, y) <- x -[a a*]-> y"), 0, 1000);
        assert!(branches.is_empty(), "no word of a·a* has length 0");
    }

    #[test]
    fn empty_language_query_is_the_empty_union() {
        let verdict = check_boundedness(&q("(x, y) <- x -[∅]-> y"), Default::default());
        assert!(
            matches!(verdict, Boundedness::Bounded { level: 0, ref union } if union.is_empty()),
            "got {verdict:?}"
        );
    }
}
