//! The PSpace abstraction algorithm for query-injective CRPQ/CRPQ
//! containment (Theorem 5.1, Appendix C).
//!
//! Overview of the construction, following the paper:
//!
//! 1. **Global automaton.** `A_Q2` is the disjoint union of the per-atom
//!    NFAs of `Q2`, each made *complete and co-complete* over the joint
//!    alphabet. Runs never cross atom components.
//! 2. **Abstractions.** For every atom `A` of `Q1` and every expansion word
//!    `w ∈ L(A)`, the *fact set* of `w` records, over global states `q, q'`:
//!    * `⟨q-q'⟩` — a run `q →w q'` (run matrix `R`);
//!    * `⟨q-|-q'⟩` — a split `w = u·v` (`u, v ≠ ε`) with `q →u final` and
//!      `initial →v q'` (split matrix `D`);
//!    * `⟨q-|··|-q'⟩` — `w = u·s·v` (all ≠ ε) with `q →u final` and
//!      `initial →v q'` (gap matrix `Gp`);
//!    * `⟨··q-q'··⟩` — `w = u·s·v` (all ≠ ε) with `q →s q'` (infix matrix `I`).
//!      The achievable fact sets per atom are enumerated by a breadth-first
//!      *profile simulation* over `(NFA state set, profile)` pairs; an
//!      abstraction `α` of `Q1` picks one achievable fact set per atom.
//! 3. **Morphism types.** `G` is the 3-subdivision of `Q1` (each atom a path
//!    of length 3). A morphism type `(H, h)` replaces each `Q2` atom with a
//!    path and maps it injectively into `G` (free variables pinned
//!    positionally). Enumeration is a joint internally-disjoint path
//!    placement — structurally the same search as query-injective
//!    evaluation, on the label-free graph `G`.
//! 4. **Compatibility.** A morphism type is compatible with `α` if a state
//!    labelling `λ` of the internal `H` nodes satisfies, for every `Q1`
//!    atom, the constraints induced by how `Q2`-paths overlay its 3-path —
//!    the 17 cases of Figure 9, realised here as five constraint shapes
//!    (full run / meeting split / gap / dangling prefix / dangling suffix /
//!    enclosed infix).
//! 5. **Verdict** (Claim C.4): `Q1 ⊆q-inj Q2` iff every achievable
//!    abstraction admits a compatible morphism type.
//!
//! Preconditions (paper's normal form): ε-free languages, connected queries,
//! and no two parallel atoms sharing a single-letter word (Remark C.2);
//! `Q2` is normalised per Remark C.1 (non-free degree-(1,1) variables are
//! eliminated by concatenating languages). Instances outside the supported
//! fragment yield `None` and fall back to the bounded engine.

use crpq_automata::{Nfa, Regex};
use crpq_query::{Crpq, CrpqAtom, Var};
use crpq_util::{BitSet, BoolMatrix, FxHashMap, FxHashSet, Symbol};
use std::collections::VecDeque;
use std::ops::ControlFlow;

/// Resource caps for the abstraction engine.
#[derive(Clone, Copy, Debug)]
pub struct AbstractionConfig {
    /// Cap on `(state-set, profile)` pairs explored per `Q1` atom.
    pub max_profile_states: usize,
    /// Cap on morphism types enumerated.
    pub max_morphism_types: usize,
    /// Cap on abstractions checked (product over atoms of fact sets).
    pub max_abstractions: usize,
}

impl Default for AbstractionConfig {
    fn default() -> Self {
        Self {
            max_profile_states: 200_000,
            max_morphism_types: 200_000,
            max_abstractions: 1_000_000,
        }
    }
}

/// Decides `Q1 ⊆q-inj Q2` with the abstraction algorithm, if the instance
/// is in the supported fragment and within default resource caps.
///
/// ```
/// use crpq_containment::abstraction::try_contain_qinj;
/// use crpq_query::parse_crpq;
/// use crpq_util::Interner;
///
/// // Example 4.7: Q1 ⊆q-inj Q2 with an infinite-free instance the
/// // abstraction engine decides without enumerating expansions.
/// let mut sigma = Interner::new();
/// let q1 = parse_crpq("x -[a]-> y, y -[b]-> z", &mut sigma).unwrap();
/// let q2 = parse_crpq("x -[a b]-> y", &mut sigma).unwrap();
/// assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
///
/// // With stars on the left the naive engine can only be inconclusive on
/// // the positive side; the abstraction engine certifies it.
/// let q1 = parse_crpq("x -[a a*]-> y", &mut sigma).unwrap();
/// let q2 = parse_crpq("x -[a a*]-> y", &mut sigma).unwrap();
/// assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
/// ```
pub fn try_contain_qinj(q1: &Crpq, q2: &Crpq) -> Option<bool> {
    try_contain_qinj_with(q1, q2, AbstractionConfig::default())
}

/// [`try_contain_qinj`] with explicit resource caps.
pub fn try_contain_qinj_with(q1: &Crpq, q2: &Crpq, config: AbstractionConfig) -> Option<bool> {
    if q1.free.len() != q2.free.len() {
        return Some(false); // mismatched arity is never contained
    }
    // Q2 must be ε-free (right-hand unions are out of scope) and in the
    // Remark C.1 normal form.
    if q2.has_epsilon_atoms() {
        return None;
    }
    let q2 = normalize_q2(q2)?;
    if !q2.is_connected() || !no_shared_single_letter(&q2) {
        return None;
    }
    // Q1 = union of ε-free variants; containment must hold for each.
    for variant in q1.epsilon_free_union() {
        if !variant.is_connected() || !no_shared_single_letter(&variant) {
            return None;
        }
        match contain_variant(&variant, &q2, config) {
            Some(true) => continue,
            other => return other,
        }
    }
    Some(true)
}

// ---------------------------------------------------------------------------
// Normalisation (Remark C.1 / C.2)
// ---------------------------------------------------------------------------

/// Eliminates non-free existential variables of in-degree 1 and out-degree 1
/// by concatenating the two atom languages (`x -L-> y ∧ y -L'-> z` becomes
/// `x -L·L'-> z`), repeated to fixpoint. Self-loop configurations are left
/// untouched. Returns `None` only on structural surprises.
fn normalize_q2(q2: &Crpq) -> Option<Crpq> {
    let mut q = q2.clone();
    loop {
        let mut indeg = vec![0usize; q.num_vars];
        let mut outdeg = vec![0usize; q.num_vars];
        for atom in &q.atoms {
            outdeg[atom.src.index()] += 1;
            indeg[atom.dst.index()] += 1;
        }
        let free: FxHashSet<Var> = q.free.iter().copied().collect();
        let mut target: Option<usize> = None;
        for v in 0..q.num_vars {
            let var = Var(v as u32);
            if free.contains(&var) || indeg[v] != 1 || outdeg[v] != 1 {
                continue;
            }
            let into = q.atoms.iter().position(|a| a.dst == var)?;
            let out = q.atoms.iter().position(|a| a.src == var)?;
            if into == out {
                continue; // self-loop at v: not eliminable
            }
            let (x, xp) = (q.atoms[into].src, q.atoms[out].dst);
            if x == var || xp == var {
                continue; // y ∈ {x, x'}: not eliminable (Remark C.1)
            }
            target = Some(v);
            let merged = CrpqAtom {
                src: x,
                dst: xp,
                regex: Regex::concat(vec![
                    q.atoms[into].regex.clone(),
                    q.atoms[out].regex.clone(),
                ]),
            };
            let (hi, lo) = (into.max(out), into.min(out));
            q.atoms.remove(hi);
            q.atoms.remove(lo);
            q.atoms.push(merged);
            break;
        }
        match target {
            Some(v) => {
                // Re-index variables densely, dropping v.
                let renaming: Vec<usize> = (0..q.num_vars)
                    .map(|u| if u > v { u - 1 } else { u })
                    .collect();
                for atom in &mut q.atoms {
                    atom.src = Var(renaming[atom.src.index()] as u32);
                    atom.dst = Var(renaming[atom.dst.index()] as u32);
                }
                for f in &mut q.free {
                    *f = Var(renaming[f.index()] as u32);
                }
                q.num_vars -= 1;
            }
            None => return Some(q),
        }
    }
}

/// Remark C.2 check: no two distinct parallel atoms (same source and target)
/// may share a single-letter word.
fn no_shared_single_letter(q: &Crpq) -> bool {
    for i in 0..q.atoms.len() {
        for j in i + 1..q.atoms.len() {
            let (a, b) = (&q.atoms[i], &q.atoms[j]);
            if a.src == b.src && a.dst == b.dst {
                let la: FxHashSet<Vec<Symbol>> =
                    a.nfa().words_up_to(1, usize::MAX).into_iter().collect();
                let lb: FxHashSet<Vec<Symbol>> =
                    b.nfa().words_up_to(1, usize::MAX).into_iter().collect();
                if la.intersection(&lb).next().is_some() {
                    return false;
                }
            }
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Global automaton A_Q2
// ---------------------------------------------------------------------------

struct GlobalAutomaton {
    /// Per-symbol transition matrices over global states.
    delta: FxHashMap<Symbol, BoolMatrix>,
    /// Global state count.
    num_states: usize,
    /// Initial / final state sets (global).
    initials: BitSet,
    finals: BitSet,
    /// Per Q2 atom: its global state range `(offset, len)`.
    ranges: Vec<(usize, usize)>,
    /// Per Q2 atom: initial / final global state lists.
    atom_initials: Vec<Vec<usize>>,
    atom_finals: Vec<Vec<usize>>,
}

impl GlobalAutomaton {
    fn build(q2: &Crpq, alphabet: &[Symbol]) -> GlobalAutomaton {
        let completed: Vec<Nfa> = q2
            .atoms
            .iter()
            .map(|a| a.nfa().completed(alphabet).co_completed(alphabet))
            .collect();
        let total: usize = completed.iter().map(Nfa::num_states).sum();
        let mut delta: FxHashMap<Symbol, BoolMatrix> = alphabet
            .iter()
            .map(|&s| (s, BoolMatrix::zero(total)))
            .collect();
        let mut initials = BitSet::new(total);
        let mut finals = BitSet::new(total);
        let mut ranges = Vec::with_capacity(completed.len());
        let mut atom_initials = Vec::with_capacity(completed.len());
        let mut atom_finals = Vec::with_capacity(completed.len());
        let mut offset = 0usize;
        for nfa in &completed {
            ranges.push((offset, nfa.num_states()));
            let mut ai = Vec::new();
            let mut af = Vec::new();
            for q in 0..nfa.num_states() as u32 {
                for &(sym, t) in nfa.transitions_from(q) {
                    delta
                        .get_mut(&sym)
                        .unwrap() // invariant: delta is pre-seeded with every alphabet symbol
                        .set(offset + q as usize, offset + t as usize);
                }
                if nfa.is_initial(q) {
                    initials.insert(offset + q as usize);
                    ai.push(offset + q as usize);
                }
                if nfa.is_final(q) {
                    finals.insert(offset + q as usize);
                    af.push(offset + q as usize);
                }
            }
            atom_initials.push(ai);
            atom_finals.push(af);
            offset += nfa.num_states();
        }
        GlobalAutomaton {
            delta,
            num_states: total,
            initials,
            finals,
            ranges,
            atom_initials,
            atom_finals,
        }
    }
}

// ---------------------------------------------------------------------------
// Profiles & achievable fact sets
// ---------------------------------------------------------------------------

/// The fact set of an expansion word (the four Appendix-C fact matrices).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct FactSet {
    run: BoolMatrix,
    split: BoolMatrix,
    gap: BoolMatrix,
    infix: BoolMatrix,
}

/// Left-to-right simulation state while reading a word.
#[derive(Clone, PartialEq, Eq, Hash)]
struct Profile {
    /// Run matrix of the prefix read so far.
    run: BoolMatrix,
    /// `{q : some non-empty prefix has a run q → final}` (current position).
    final_pref: BitSet,
    /// Same, at the previous position (for gap bookkeeping).
    final_pref_prev: BitSet,
    split: BoolMatrix,
    gap: BoolMatrix,
    /// Pending infix runs (start > 0, not yet right-bounded).
    pending_infix: BoolMatrix,
    infix: BoolMatrix,
    /// Number of symbols read, saturating at 2 (guards `u ≠ ε` conditions).
    steps: u8,
}

impl Profile {
    fn initial(n: usize) -> Profile {
        Profile {
            run: BoolMatrix::identity(n),
            final_pref: BitSet::new(n),
            final_pref_prev: BitSet::new(n),
            split: BoolMatrix::zero(n),
            gap: BoolMatrix::zero(n),
            pending_infix: BoolMatrix::zero(n),
            infix: BoolMatrix::zero(n),
            steps: 0,
        }
    }

    /// Reads one symbol.
    fn step(&self, ga: &GlobalAutomaton, sym: Symbol) -> Profile {
        let n = ga.num_states;
        let da = &ga.delta[&sym];
        let new_run = self.run.compose(da);

        // Splits: existing v-runs advance; new splits open at the current
        // position (u = prefix read so far, non-empty ⇒ steps ≥ 1).
        let mut split = self.split.compose(da);
        if self.steps >= 1 {
            let init_img = image_of(da, &ga.initials, n);
            for q in 0..n {
                if row_hits(&self.run, q, &ga.finals) {
                    or_row(&mut split, q, &init_img);
                }
            }
        }

        // Gaps: v-runs advance; new v-runs open for u-splits that ended at
        // least one position ago (s non-empty).
        let mut gap = self.gap.compose(da);
        {
            let init_img = image_of(da, &ga.initials, n);
            for q in self.final_pref_prev.iter() {
                or_row(&mut gap, q, &init_img);
            }
        }

        // Pending infix runs: advance, plus fresh runs starting here (u ≠ ε
        // ⇒ steps ≥ 1).
        let mut pending = self.pending_infix.compose(da);
        if self.steps >= 1 {
            pending.union_with(da);
        }

        // Commit: every pending infix run is right-bounded by this symbol.
        let mut infix = self.infix.clone();
        infix.union_with(&self.pending_infix);

        // Final-prefix set update.
        let mut final_pref = self.final_pref.clone();
        for q in 0..n {
            if row_hits(&new_run, q, &ga.finals) {
                final_pref.insert(q);
            }
        }

        Profile {
            run: new_run,
            final_pref_prev: self.final_pref.clone(),
            final_pref,
            split,
            gap,
            pending_infix: pending,
            infix,
            steps: self.steps.saturating_add(1).min(2),
        }
    }

    fn facts(&self) -> FactSet {
        FactSet {
            run: self.run.clone(),
            split: self.split.clone(),
            gap: self.gap.clone(),
            infix: self.infix.clone(),
        }
    }
}

fn image_of(da: &BoolMatrix, set: &BitSet, n: usize) -> BitSet {
    let mut out = BitSet::new(n);
    for q in set.iter() {
        out.union_with(da.row(q));
    }
    out
}

fn row_hits(m: &BoolMatrix, row: usize, set: &BitSet) -> bool {
    m.row(row).intersects(set)
}

fn or_row(m: &mut BoolMatrix, row: usize, set: &BitSet) {
    for j in set.iter() {
        m.set(row, j);
    }
}

/// Enumerates the achievable fact sets of a `Q1` atom language by BFS over
/// `(L1 state set, profile)` pairs. Returns `None` if the cap is hit.
fn achievable_fact_sets(
    atom_nfa: &Nfa,
    ga: &GlobalAutomaton,
    alphabet: &[Symbol],
    cap: usize,
) -> Option<Vec<FactSet>> {
    let trimmed = atom_nfa.trimmed();
    if trimmed.is_empty_language() {
        return Some(Vec::new());
    }
    let useful = trimmed.useful_states();
    let mut start = trimmed.initials().clone();
    start.intersect_with(&useful);

    let mut seen: FxHashSet<(BitSet, Box<Profile>)> = FxHashSet::default();
    let mut queue: VecDeque<(BitSet, Box<Profile>)> = VecDeque::new();
    let init = (start, Box::new(Profile::initial(ga.num_states)));
    seen.insert(init.clone());
    queue.push_back(init);

    let mut out: FxHashSet<FactSet> = FxHashSet::default();
    while let Some((states, profile)) = queue.pop_front() {
        if seen.len() > cap {
            return None;
        }
        for &sym in alphabet {
            let mut image = trimmed.delta_set(&states, sym);
            image.intersect_with(&useful);
            if image.is_empty() {
                continue;
            }
            let next = Box::new(profile.step(ga, sym));
            if image.intersects(trimmed.finals()) {
                out.insert(next.facts());
            }
            let key = (image, next);
            if !seen.contains(&key) {
                seen.insert(key.clone());
                queue.push_back(key);
            }
        }
    }
    Some(out.into_iter().collect())
}

// ---------------------------------------------------------------------------
// The 3-subdivision G of Q1 and morphism types
// ---------------------------------------------------------------------------

/// The 3-subdivision: `Q1` variables are nodes `0..n1`; atom `i` contributes
/// internal nodes `n1 + 2i` (`u_{i,1}`) and `n1 + 2i + 1` (`u_{i,2}`).
struct Subdivision {
    num_nodes: usize,
    /// Out-adjacency: `(target, atom, position 0..2)`.
    out: Vec<Vec<(usize, usize, u8)>>,
}

impl Subdivision {
    fn build(q1: &Crpq) -> Subdivision {
        let n1 = q1.num_vars;
        let num_nodes = n1 + 2 * q1.atoms.len();
        let mut out: Vec<Vec<(usize, usize, u8)>> = vec![Vec::new(); num_nodes];
        for (i, atom) in q1.atoms.iter().enumerate() {
            let (u1, u2) = (n1 + 2 * i, n1 + 2 * i + 1);
            out[atom.src.index()].push((u1, i, 0));
            out[u1].push((u2, i, 1));
            out[u2].push((atom.dst.index(), i, 2));
        }
        Subdivision { num_nodes, out }
    }
}

/// One maximal piece of a `Q2`-atom path inside a single `Q1` atom 3-path.
#[derive(Clone, Debug)]
struct Segment {
    q1_atom: usize,
    /// First and last covered position (0..=2).
    sp: u8,
    ep: u8,
    /// Boundary state expressions at segment start/end.
    start: StateExpr,
    end: StateExpr,
}

/// A boundary state: a λ variable (internal `H` node) or an initial/final
/// state of a `Q2` atom automaton (path start/end).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StateExpr {
    Lam(usize),
    Init(usize),
    Fin(usize),
}

/// A compiled compatibility constraint on one `Q1` atom.
#[derive(Clone, Debug)]
enum Constraint {
    /// Full crossing: `run(s, e)`.
    Run {
        q1_atom: usize,
        s: StateExpr,
        e: StateExpr,
    },
    /// Prefix piece meeting suffix piece at the same internal node:
    /// `split(s, e)`.
    Split {
        q1_atom: usize,
        s: StateExpr,
        e: StateExpr,
    },
    /// Prefix piece + suffix piece with a gap: `gap(s, e)`.
    Gap {
        q1_atom: usize,
        s: StateExpr,
        e: StateExpr,
    },
    /// Dangling prefix piece: `∃q'. split(s, q')`.
    PrefixOnly { q1_atom: usize, s: StateExpr },
    /// Dangling suffix piece: `∃q. split(q, e)`.
    SuffixOnly { q1_atom: usize, e: StateExpr },
    /// Whole `Q2` path enclosed in the word: `∃q0∈init, f∈fin. infix(q0, f)`.
    Enclosed { q1_atom: usize, q2_atom: usize },
}

/// A morphism type compiled to its constraint system.
struct MorphismType {
    constraints: Vec<Constraint>,
    /// λ variable domains: `lambda_atoms[v]` = the `Q2` atom whose states
    /// the λ variable ranges over.
    lambda_atoms: Vec<usize>,
}

/// Enumerates morphism types `(H, h)`: injective variable placements plus
/// jointly node-disjoint path placements in `G`, with free tuples pinned.
/// Returns `None` on cap overflow or unsupported configurations.
fn enumerate_morphism_types(
    q1: &Crpq,
    q2: &Crpq,
    sub: &Subdivision,
    cap: usize,
) -> Option<Vec<MorphismType>> {
    // Pin free variables of Q2 to the (variable nodes of the) free tuple of Q1.
    let mut pinned: Vec<Option<usize>> = vec![None; q2.num_vars];
    for (v2, v1) in q2.free.iter().zip(&q1.free) {
        match pinned[v2.index()] {
            Some(prev) if prev != v1.index() => return Some(Vec::new()),
            _ => pinned[v2.index()] = Some(v1.index()),
        }
    }
    // Distinct pinned vars must have distinct targets (h injective).
    {
        let mut seen: FxHashMap<usize, usize> = FxHashMap::default();
        for (v, p) in pinned.iter().enumerate() {
            if let Some(node) = p {
                if let Some(&other) = seen.get(node) {
                    if other != v {
                        return Some(Vec::new());
                    }
                }
                seen.insert(*node, v);
            }
        }
    }

    let mut result = Vec::new();
    let mut assignment: Vec<Option<usize>> = pinned;
    let mut used = BitSet::new(sub.num_nodes);
    for a in assignment.iter().flatten() {
        used.insert(*a);
    }
    let mut paths: Vec<Vec<(usize, usize, u8)>> = vec![Vec::new(); q2.atoms.len()];
    let mut node_seqs: Vec<Vec<usize>> = vec![Vec::new(); q2.atoms.len()];
    // If any placement compiles to a configuration outside the supported
    // constraint vocabulary, the whole engine must abstain: dropping it
    // could turn a matchable expansion into a spurious counter-example.
    let mut unsupported = false;
    let overflow = place_q2_atom(
        q2,
        sub,
        0,
        &mut assignment,
        &mut used,
        &mut paths,
        &mut node_seqs,
        &mut |paths, node_seqs| {
            if result.len() >= cap {
                return ControlFlow::Break(());
            }
            match compile_morphism_type(q2, sub, paths, node_seqs) {
                Some(mt) => {
                    result.push(mt);
                    ControlFlow::Continue(())
                }
                None => {
                    unsupported = true;
                    ControlFlow::Break(())
                }
            }
        },
    )
    .is_break();
    if unsupported || (overflow && result.len() >= cap) {
        return None;
    }
    Some(result)
}

/// Receives candidate morphism-type placements: per-atom edge sequences
/// `(atom-of-Q1, offset, kind)` and per-atom node sequences in `G`.
type EmitFn<'a> = dyn FnMut(&[Vec<(usize, usize, u8)>], &[Vec<usize>]) -> ControlFlow<()> + 'a;

/// Places the path of `Q2` atom `i` (and recursively the rest), assigning
/// variable images on demand.
fn place_q2_atom(
    q2: &Crpq,
    sub: &Subdivision,
    i: usize,
    assignment: &mut Vec<Option<usize>>,
    used: &mut BitSet,
    paths: &mut Vec<Vec<(usize, usize, u8)>>,
    node_seqs: &mut Vec<Vec<usize>>,
    emit: &mut EmitFn<'_>,
) -> ControlFlow<()> {
    if i == q2.atoms.len() {
        // Unassigned (isolated) variables: place injectively anywhere.
        if let Some(v) = (0..assignment.len()).find(|&v| assignment[v].is_none()) {
            for node in 0..sub.num_nodes {
                if used.contains(node) {
                    continue;
                }
                assignment[v] = Some(node);
                used.insert(node);
                place_q2_atom(q2, sub, i, assignment, used, paths, node_seqs, emit)?;
                used.remove(node);
                assignment[v] = None;
            }
            return ControlFlow::Continue(());
        }
        return emit(paths, node_seqs);
    }
    let (src, dst) = (q2.atoms[i].src.index(), q2.atoms[i].dst.index());
    // Ensure src assigned.
    if assignment[src].is_none() {
        for node in 0..sub.num_nodes {
            if used.contains(node) {
                continue;
            }
            assignment[src] = Some(node);
            used.insert(node);
            place_q2_atom(q2, sub, i, assignment, used, paths, node_seqs, emit)?;
            used.remove(node);
            assignment[src] = None;
        }
        return ControlFlow::Continue(());
    }
    let start = assignment[src].unwrap(); // invariant: src is assigned before the walk starts
                                          // DFS for (simple) paths from start to the image of dst; dst may be
                                          // unassigned (then any reachable fresh node, or `start` for self-loops).
    let mut seq = vec![start];
    let mut edges: Vec<(usize, usize, u8)> = Vec::new();
    dfs_place(
        q2, sub, i, src, dst, assignment, used, paths, node_seqs, &mut seq, &mut edges, emit,
    )
}

fn dfs_place(
    q2: &Crpq,
    sub: &Subdivision,
    i: usize,
    src: usize,
    dst: usize,
    assignment: &mut Vec<Option<usize>>,
    used: &mut BitSet,
    paths: &mut Vec<Vec<(usize, usize, u8)>>,
    node_seqs: &mut Vec<Vec<usize>>,
    seq: &mut Vec<usize>,
    edges: &mut Vec<(usize, usize, u8)>,
    emit: &mut EmitFn<'_>,
) -> ControlFlow<()> {
    let here = *seq.last().unwrap(); // invariant: seq starts non-empty
    for &(to, atom, pos) in &sub.out[here] {
        // Case 1: `to` completes the path (it is, or becomes, the image of
        // `dst`). For unassigned `dst` the node must be fresh and distinct
        // from the source image (h is injective).
        if match assignment[dst] {
            Some(node) => to == node,
            None => !used.contains(to) && to != *seq.first().unwrap(), // invariant: seq starts non-empty
        } {
            let had = assignment[dst].is_some();
            if !had {
                assignment[dst] = Some(to);
                used.insert(to);
            }
            seq.push(to);
            edges.push((to, atom, pos));
            paths[i] = edges.clone();
            node_seqs[i] = seq.clone();
            let flow = place_q2_atom(q2, sub, i + 1, assignment, used, paths, node_seqs, emit);
            paths[i].clear();
            node_seqs[i].clear();
            edges.pop();
            seq.pop();
            if !had {
                used.remove(to);
                assignment[dst] = None;
            }
            flow?;
            // fall through: `to` may also serve as an intermediate node
            // (only when it is not a used/assigned node).
        }
        // Case 2: extend through `to` as a path-internal node.
        if !used.contains(to) && !seq.contains(&to) {
            seq.push(to);
            edges.push((to, atom, pos));
            used.insert(to);
            let flow = dfs_place(
                q2, sub, i, src, dst, assignment, used, paths, node_seqs, seq, edges, emit,
            );
            used.remove(to);
            edges.pop();
            seq.pop();
            flow?;
        }
    }
    ControlFlow::Continue(())
}

/// Compiles a concrete joint placement into constraint form; `None` when the
/// configuration is outside the supported fragment.
fn compile_morphism_type(
    _q2: &Crpq,
    _sub: &Subdivision,
    paths: &[Vec<(usize, usize, u8)>],
    node_seqs: &[Vec<usize>],
) -> Option<MorphismType> {
    // λ variables: internal nodes of each H path, keyed by (atom, position).
    let mut lambda_ids: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    let mut lambda_atoms: Vec<usize> = Vec::new();
    for (j, seq) in node_seqs.iter().enumerate() {
        for pos in 1..seq.len().saturating_sub(1) {
            lambda_ids.insert((j, pos), lambda_atoms.len());
            lambda_atoms.push(j);
        }
    }

    let mut segments: Vec<Segment> = Vec::new();
    for (j, edges) in paths.iter().enumerate() {
        let len = edges.len();
        let mut k = 0usize;
        while k < len {
            let (_, atom, sp) = edges[k];
            let mut end = k;
            while end + 1 < len && edges[end + 1].1 == atom {
                end += 1;
            }
            let ep = edges[end].2;
            let start_expr = if k == 0 {
                StateExpr::Init(j)
            } else {
                StateExpr::Lam(lambda_ids[&(j, k)])
            };
            let end_expr = if end + 1 == len {
                StateExpr::Fin(j)
            } else {
                StateExpr::Lam(lambda_ids[&(j, end + 1)])
            };
            segments.push(Segment {
                q1_atom: atom,
                sp,
                ep,
                start: start_expr,
                end: end_expr,
            });
            k = end + 1;
        }
    }

    // Group segments per Q1 atom and derive constraints.
    let mut per_atom: FxHashMap<usize, Vec<Segment>> = FxHashMap::default();
    for seg in segments {
        per_atom.entry(seg.q1_atom).or_default().push(seg);
    }
    let mut constraints = Vec::new();
    for (q1_atom, segs) in per_atom {
        let mut fulls = Vec::new();
        let mut prefixes = Vec::new(); // end inside
        let mut suffixes = Vec::new(); // start inside
        let mut enclosed = Vec::new();
        for seg in &segs {
            match (seg.sp, seg.ep) {
                (0, 2) => fulls.push(seg),
                (0, _) => prefixes.push(seg),
                (_, 2) => suffixes.push(seg),
                (1, 1) => enclosed.push(seg),
                _ => return None,
            }
        }
        if fulls.len() > 1 || prefixes.len() > 1 || suffixes.len() > 1 || enclosed.len() > 1 {
            return None; // outside the supported fragment
        }
        if !fulls.is_empty()
            && (!prefixes.is_empty() || !suffixes.is_empty() || !enclosed.is_empty())
        {
            return None;
        }
        if !enclosed.is_empty() && (!prefixes.is_empty() || !suffixes.is_empty()) {
            return None;
        }
        if let Some(seg) = fulls.first() {
            constraints.push(Constraint::Run {
                q1_atom,
                s: seg.start,
                e: seg.end,
            });
        }
        if let Some(seg) = enclosed.first() {
            // A (1,1) segment is a whole H path inside the word.
            if !(matches!(seg.start, StateExpr::Init(_)) && matches!(seg.end, StateExpr::Fin(_))) {
                return None;
            }
            let StateExpr::Init(j) = seg.start else {
                return None;
            };
            constraints.push(Constraint::Enclosed {
                q1_atom,
                q2_atom: j,
            });
        }
        match (prefixes.first(), suffixes.first()) {
            (Some(p), Some(s)) => {
                // p ends at internal index ep+1 ∈ {1,2}; s starts at sp ∈ {1,2}.
                let end_idx = p.ep + 1;
                let start_idx = s.sp;
                match end_idx.cmp(&start_idx) {
                    std::cmp::Ordering::Equal => constraints.push(Constraint::Split {
                        q1_atom,
                        s: p.start,
                        e: s.end,
                    }),
                    std::cmp::Ordering::Less => constraints.push(Constraint::Gap {
                        q1_atom,
                        s: p.start,
                        e: s.end,
                    }),
                    std::cmp::Ordering::Greater => return None,
                }
            }
            (Some(p), None) => constraints.push(Constraint::PrefixOnly {
                q1_atom,
                s: p.start,
            }),
            (None, Some(s)) => constraints.push(Constraint::SuffixOnly { q1_atom, e: s.end }),
            (None, None) => {}
        }
    }
    Some(MorphismType {
        constraints,
        lambda_atoms,
    })
}

// ---------------------------------------------------------------------------
// Compatibility
// ---------------------------------------------------------------------------

/// Tests whether a morphism type is compatible with the abstraction
/// `alpha` (one fact set per `Q1` atom; atoms without coverage need no
/// facts). Searches for a λ assignment by backtracking.
fn compatible(mt: &MorphismType, alpha: &[&FactSet], ga: &GlobalAutomaton) -> bool {
    let mut lambda: Vec<Option<usize>> = vec![None; mt.lambda_atoms.len()];
    search_lambda(mt, alpha, ga, &mut lambda, 0)
}

fn search_lambda(
    mt: &MorphismType,
    alpha: &[&FactSet],
    ga: &GlobalAutomaton,
    lambda: &mut Vec<Option<usize>>,
    next: usize,
) -> bool {
    // Check all constraints whose λ variables are fully assigned among the
    // first `next` variables (cheap incremental filter).
    for c in &mt.constraints {
        if !constraint_ready(c, next) {
            continue;
        }
        if !eval_constraint(c, alpha, ga, lambda) {
            return false;
        }
    }
    if next == lambda.len() {
        return true;
    }
    let (off, len) = ga.ranges[mt.lambda_atoms[next]];
    for state in off..off + len {
        lambda[next] = Some(state);
        if search_lambda(mt, alpha, ga, lambda, next + 1) {
            return true;
        }
        lambda[next] = None;
    }
    false
}

fn constraint_ready(c: &Constraint, assigned: usize) -> bool {
    let ready = |e: &StateExpr| match e {
        StateExpr::Lam(v) => *v < assigned,
        _ => true,
    };
    match c {
        Constraint::Run { s, e, .. }
        | Constraint::Split { s, e, .. }
        | Constraint::Gap { s, e, .. } => ready(s) && ready(e),
        Constraint::PrefixOnly { s, .. } => ready(s),
        Constraint::SuffixOnly { e, .. } => ready(e),
        Constraint::Enclosed { .. } => true,
    }
}

fn expr_states(e: &StateExpr, ga: &GlobalAutomaton, lambda: &[Option<usize>]) -> Vec<usize> {
    match e {
        StateExpr::Lam(v) => lambda[*v].into_iter().collect(),
        StateExpr::Init(j) => ga.atom_initials[*j].clone(),
        StateExpr::Fin(j) => ga.atom_finals[*j].clone(),
    }
}

fn eval_constraint(
    c: &Constraint,
    alpha: &[&FactSet],
    ga: &GlobalAutomaton,
    lambda: &[Option<usize>],
) -> bool {
    let matrix_check =
        |q1_atom: usize, s: &StateExpr, e: &StateExpr, pick: fn(&FactSet) -> &BoolMatrix| {
            let facts = alpha[q1_atom];
            let m = pick(facts);
            expr_states(s, ga, lambda)
                .iter()
                .any(|&qs| expr_states(e, ga, lambda).iter().any(|&qe| m.get(qs, qe)))
        };
    match c {
        Constraint::Run { q1_atom, s, e } => matrix_check(*q1_atom, s, e, |f| &f.run),
        Constraint::Split { q1_atom, s, e } => matrix_check(*q1_atom, s, e, |f| &f.split),
        Constraint::Gap { q1_atom, s, e } => matrix_check(*q1_atom, s, e, |f| &f.gap),
        Constraint::PrefixOnly { q1_atom, s } => expr_states(s, ga, lambda)
            .iter()
            .any(|&qs| !alpha[*q1_atom].split.row(qs).is_empty()),
        Constraint::SuffixOnly { q1_atom, e } => {
            let targets = expr_states(e, ga, lambda);
            (0..ga.num_states).any(|q| targets.iter().any(|&qe| alpha[*q1_atom].split.get(q, qe)))
        }
        Constraint::Enclosed { q1_atom, q2_atom } => ga.atom_initials[*q2_atom].iter().any(|&q0| {
            ga.atom_finals[*q2_atom]
                .iter()
                .any(|&f| alpha[*q1_atom].infix.get(q0, f))
        }),
    }
}

// ---------------------------------------------------------------------------
// Main per-variant decision
// ---------------------------------------------------------------------------

fn contain_variant(q1: &Crpq, q2: &Crpq, config: AbstractionConfig) -> Option<bool> {
    if q1.atoms.is_empty() || q2.atoms.is_empty() {
        return None; // degenerate; the naive engine decides these exactly
    }
    // Joint alphabet.
    let mut symbols: Vec<Symbol> = q1
        .atoms
        .iter()
        .chain(&q2.atoms)
        .flat_map(|a| a.regex.symbols())
        .collect();
    symbols.sort_unstable();
    symbols.dedup();
    if symbols.is_empty() {
        return None;
    }

    let ga = GlobalAutomaton::build(q2, &symbols);

    // Per-atom achievable fact sets.
    let mut per_atom: Vec<Vec<FactSet>> = Vec::with_capacity(q1.atoms.len());
    for atom in &q1.atoms {
        let sets = achievable_fact_sets(&atom.nfa(), &ga, &symbols, config.max_profile_states)?;
        if sets.is_empty() {
            // Empty atom language: Q1 is unsatisfiable, vacuously contained.
            return Some(true);
        }
        per_atom.push(sets);
    }

    let sub = Subdivision::build(q1);
    let morphism_types = enumerate_morphism_types(q1, q2, &sub, config.max_morphism_types)?;

    // Enumerate abstractions (product over atoms).
    let mut counter = vec![0usize; per_atom.len()];
    let mut checked = 0usize;
    loop {
        checked += 1;
        if checked > config.max_abstractions {
            return None;
        }
        let alpha: Vec<&FactSet> = counter
            .iter()
            .enumerate()
            .map(|(i, &c)| &per_atom[i][c])
            .collect();
        if !morphism_types.iter().any(|mt| compatible(mt, &alpha, &ga)) {
            return Some(false);
        }
        // advance
        let mut i = counter.len();
        loop {
            if i == 0 {
                return Some(true);
            }
            i -= 1;
            counter[i] += 1;
            if counter[i] < per_atom[i].len() {
                break;
            }
            counter[i] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{contain_with, ContainmentConfig};
    use crpq_core::Semantics;
    use crpq_query::expansion::ExpansionLimits;
    use crpq_query::parse_crpq;
    use crpq_util::Interner;

    fn q(text: &str, it: &mut Interner) -> Crpq {
        parse_crpq(text, it).unwrap()
    }

    /// Single-atom queries: q-inj containment coincides with language
    /// inclusion restricted to identical words (paths embed only as
    /// themselves), i.e. L1 ⊆ L2.
    #[test]
    fn single_atom_language_containment() {
        let mut it = Interner::new();
        let q1 = q("(x, y) <- x -[(a b)(a b)*]-> y", &mut it);
        let q2 = q("(x, y) <- x -[(a b)(a b)* + c]-> y", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
        let q3 = q("(x, y) <- x -[(a b)(a b)(a b)*]-> y", &mut it);
        assert_eq!(
            try_contain_qinj(&q1, &q3),
            Some(false),
            "ab is a counterexample"
        );
        assert_eq!(try_contain_qinj(&q3, &q1), Some(true));
    }

    #[test]
    fn chain_into_single_atom() {
        // Q1 = x -[a^+]-> y ∧ y -[b^+]-> z  ⊆q-inj  Q2 = x -[a (a+b)* b]-> z
        // with pinned endpoints: every a^m b^k chain embeds identically.
        let mut it = Interner::new();
        let q1 = q("(x, z) <- x -[a a*]-> y, y -[b b*]-> z", &mut it);
        let q2 = q("(x, z) <- x -[a (a+b)* b]-> z", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
        // Converse fails: the abab-expansion has no a^+·b^+ split between
        // the pinned endpoints.
        assert_eq!(try_contain_qinj(&q2, &q1), Some(false));
    }

    #[test]
    fn boolean_chain_into_single_atom_contained_both_ways() {
        // Without pinning, every a(a+b)*b word contains an "ab" factor, so
        // even the converse holds for the Boolean versions.
        let mut it = Interner::new();
        let q1 = q("x -[a a*]-> y, y -[b b*]-> z", &mut it);
        let q2 = q("x -[a (a+b)* b]-> z", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
        assert_eq!(try_contain_qinj(&q2, &q1), Some(true));
    }

    #[test]
    fn agrees_with_naive_on_finite_instances() {
        let mut it = Interner::new();
        let pairs = [
            ("x -[a b]-> y", "x -[a b + b a]-> y"),
            ("x -[a]-> y, y -[b]-> z", "x -[a b]-> z"),
            ("x -[a b]-> y", "x -[a]-> z, z -[b]-> y"),
            ("x -[a + b]-> y", "x -[a]-> y"),
            ("x -[a a]-> y", "x -[a a + a]-> y"),
            ("x -[a]-> y, y -[b]-> z, z -[c]-> w", "x -[a b c]-> w"),
        ];
        for (t1, t2) in pairs {
            let q1 = q(t1, &mut it);
            let q2 = q(t2, &mut it);
            let naive = contain_with(
                &q1,
                &q2,
                Semantics::QueryInjective,
                ContainmentConfig {
                    limits: ExpansionLimits {
                        max_word_len: 8,
                        max_expansions: usize::MAX,
                    },
                    threads: 1,
                },
            );
            if let Some(abs) = try_contain_qinj(&q1, &q2) {
                assert_eq!(
                    Some(abs),
                    naive.as_bool(),
                    "abstraction vs naive disagree on {t1} ⊆ {t2}"
                );
            }
        }
    }

    #[test]
    fn infinite_left_side_decided() {
        // The bounded naive engine is inconclusive here; the abstraction
        // engine decides.
        let mut it = Interner::new();
        let q1 = q("x -[a a*]-> y", &mut it);
        let q2 = q("x -[a* a]-> y", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
        assert_eq!(try_contain_qinj(&q2, &q1), Some(true));
        let q3 = q("x -[a a a*]-> y", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q3), Some(false));
        assert_eq!(try_contain_qinj(&q3, &q1), Some(true));
    }

    #[test]
    fn normalization_eliminates_middle_vars() {
        let mut it = Interner::new();
        let q2 = q("x -[a]-> m, m -[b]-> y", &mut it);
        let n = normalize_q2(&q2).unwrap();
        assert_eq!(n.atoms.len(), 1);
        assert_eq!(n.num_vars, 2);
        // language is ab
        let nfa = n.atoms[0].nfa();
        assert!(nfa.accepts(&[Symbol(0), Symbol(1)]));
        assert!(!nfa.accepts(&[Symbol(0)]));
    }

    #[test]
    fn normalization_keeps_free_vars() {
        let mut it = Interner::new();
        let q2 = q("(m) <- x -[a]-> m, m -[b]-> y", &mut it);
        let n = normalize_q2(&q2).unwrap();
        assert_eq!(n.atoms.len(), 2, "free middle variable must survive");
    }

    #[test]
    fn unsupported_instances_fall_back() {
        let mut it = Interner::new();
        // ε on the right: unsupported.
        let q1 = q("x -[a]-> y", &mut it);
        let q2 = q("x -[a?]-> y", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), None);
        // Disconnected right-hand query: unsupported.
        let q3 = q("x -[a]-> y, u -[b]-> v", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q3), None);
        // Shared single-letter word between parallel atoms: unsupported.
        let q4 = q("x -[a + b]-> y, x -[a + c]-> y", &mut it);
        assert_eq!(try_contain_qinj(&q4, &q1), None);
    }

    #[test]
    fn free_variable_pinning() {
        let mut it = Interner::new();
        let q1 = q("(x, y) <- x -[a a*]-> y", &mut it);
        let q2 = q("(y, x) <- x -[a a*]-> y", &mut it);
        // Reversed tuple: not contained (the asymmetric single edge is a
        // counterexample).
        assert_eq!(try_contain_qinj(&q1, &q2), Some(false));
    }

    /// Brute-force computation of the four fact matrices of a word,
    /// straight from their definitions — the oracle for the left-to-right
    /// profile simulation.
    fn brute_force_facts(ga: &GlobalAutomaton, word: &[Symbol]) -> FactSet {
        let n = ga.num_states;
        // run(q, w[i..j]) via stepwise image computation
        let run_over = |from: usize, lo: usize, hi: usize| -> BitSet {
            let mut cur = BitSet::new(n);
            cur.insert(from);
            for sym in &word[lo..hi] {
                let da = &ga.delta[sym];
                let mut next = BitSet::new(n);
                for q in cur.iter() {
                    next.union_with(da.row(q));
                }
                cur = next;
            }
            cur
        };
        let len = word.len();
        let mut run = BoolMatrix::zero(n);
        let mut split = BoolMatrix::zero(n);
        let mut gap = BoolMatrix::zero(n);
        let mut infix = BoolMatrix::zero(n);
        for q in 0..n {
            for t in run_over(q, 0, len).iter() {
                run.set(q, t);
            }
        }
        // ⟨q-|-q'⟩: ∃ 0 < i < len: q →w[..i] final ∧ init →w[i..] q'
        for i in 1..len {
            let mut finals_hit = BitSet::new(n);
            for q in 0..n {
                if run_over(q, 0, i).intersects(&ga.finals) {
                    finals_hit.insert(q);
                }
            }
            let mut suffix_reach = BitSet::new(n);
            for q0 in ga.initials.iter() {
                suffix_reach.union_with(&run_over(q0, i, len));
            }
            for q in finals_hit.iter() {
                for qp in suffix_reach.iter() {
                    split.set(q, qp);
                }
            }
        }
        // ⟨q-|··|-q'⟩: ∃ 0 < i < j < len: q →w[..i] final ∧ init →w[j..] q'
        for i in 1..len {
            for j in i + 1..len {
                let mut finals_hit = BitSet::new(n);
                for q in 0..n {
                    if run_over(q, 0, i).intersects(&ga.finals) {
                        finals_hit.insert(q);
                    }
                }
                let mut suffix_reach = BitSet::new(n);
                for q0 in ga.initials.iter() {
                    suffix_reach.union_with(&run_over(q0, j, len));
                }
                for q in finals_hit.iter() {
                    for qp in suffix_reach.iter() {
                        gap.set(q, qp);
                    }
                }
            }
        }
        // ⟨··q-q'··⟩: ∃ 0 < i < j < len: run q →w[i..j] q'
        for i in 1..len {
            for j in i + 1..len {
                for q in 0..n {
                    for t in run_over(q, i, j).iter() {
                        infix.set(q, t);
                    }
                }
            }
        }
        FactSet {
            run,
            split,
            gap,
            infix,
        }
    }

    #[test]
    fn profile_simulation_matches_brute_force_facts() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(517);
        let mut it = Interner::new();
        // A Q2 with two atoms of different shapes (languages {ab, b} and
        // {a}): the global automaton mixes several components.
        let q2 = q("x -[a b + b]-> y, y -[a]-> z", &mut it);
        let symbols: Vec<Symbol> = vec![Symbol(0), Symbol(1)];
        let ga = GlobalAutomaton::build(&q2, &symbols);
        for trial in 0..40 {
            let len = rng.gen_range(1..=5);
            let word: Vec<Symbol> = (0..len).map(|_| symbols[rng.gen_range(0..2)]).collect();
            let mut profile = Profile::initial(ga.num_states);
            for &sym in &word {
                profile = profile.step(&ga, sym);
            }
            let simulated = profile.facts();
            let brute = brute_force_facts(&ga, &word);
            assert_eq!(
                simulated.run, brute.run,
                "run matrix mismatch, trial {trial}, word {word:?}"
            );
            assert_eq!(
                simulated.split, brute.split,
                "split matrix mismatch, trial {trial}, word {word:?}"
            );
            assert_eq!(
                simulated.gap, brute.gap,
                "gap matrix mismatch, trial {trial}, word {word:?}"
            );
            assert_eq!(
                simulated.infix, brute.infix,
                "infix matrix mismatch, trial {trial}, word {word:?}"
            );
        }
    }

    #[test]
    fn self_loop_left_query() {
        // Q1 = x -[(a a)^+]-> x (cycle expansions), Q2 = x -[a a]-> x:
        // the 4-cycle expansion has no injective aa-cycle image.
        let mut it = Interner::new();
        let q1 = q("(x) <- x -[(a a)(a a)*]-> x", &mut it);
        let q2 = q("(x) <- x -[a a]-> x", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(false));
        // Converse holds: aa ∈ (aa)^+.
        assert_eq!(try_contain_qinj(&q2, &q1), Some(true));
    }

    #[test]
    fn self_loop_right_query_needs_cycles() {
        // Q2 is a self-loop atom but Q1's expansions are paths: the
        // 3-subdivision of Q1 is acyclic, so no morphism type exists and
        // every expansion is a counter-example.
        let mut it = Interner::new();
        let q1 = q("x -[a a*]-> y", &mut it);
        let q2 = q("z -[a a]-> z", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(false));
    }

    #[test]
    fn cyclic_left_with_self_loop_right() {
        // Q1 = x -[a⁺]-> y ∧ y -[b⁺]-> x: expansions are a^m b^k cycles.
        // Q2 = ẑ -[(a+b)⁺]-> ẑ matches every such cycle (any rotation is a
        // non-empty (a+b)-word) — exercises the meeting/split machinery for
        // self-loop morphism types.
        let mut it = Interner::new();
        let q1 = q("x -[a a*]-> y, y -[b b*]-> x", &mut it);
        let q2 = q("z -[(a+b)(a+b)*]-> z", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
        // Q2' = ẑ -[a⁺ b⁺]-> ẑ also matches (start the cycle at x).
        let q2b = q("z -[a a* b b*]-> z", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2b), Some(true));
        // Q2'' = ẑ -[b⁺ a⁺ ... wait b-first also matches starting at y.
        let q2c = q("z -[b b* a a*]-> z", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2c), Some(true));
        // But a fixed-length cycle does not absorb longer expansions.
        let q2d = q("z -[a b]-> z", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2d), Some(false));
    }

    #[test]
    fn two_sided_star_join() {
        // Q1 = x -[a^+]-> y ∧ x -[b^+]-> z (diverging), Q2 = x -[a^+]-> y:
        // dropping an atom relaxes the query.
        let mut it = Interner::new();
        let q1 = q("x -[a a*]-> y, x -[b b*]-> z", &mut it);
        let q2 = q("x -[a a*]-> y", &mut it);
        assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
        assert_eq!(try_contain_qinj(&q2, &q1), Some(false));
    }
}
