//! Complete decision procedure for **single-atom CRPQ ⊆ CQ** containment
//! under standard semantics — the `CRPQ/CQ` column of Figure 1 for
//! one-atom left-hand queries, exact even with infinite languages.
//!
//! For `Q₁(x̄) = x -[L]-> y` (with `x ≠ y`), the expansions of `Q₁` are
//! labelled paths `path(w)`, `w ∈ L`. By Prop 4.2, `Q₁ ⊆st Q₂` iff every
//! `w ∈ L` admits a homomorphism `Q₂ → (path(w), pinned free tuple)`.
//!
//! The key observation making this decidable: the set
//! `W = { w : Q₂ → (path(w), pins) }` is **regular**. A homomorphism of a
//! CQ into a path assigns each variable a position; each atom `u -a-> v`
//! forces `pos(v) = pos(u) + 1` and the label `a` at `pos(u)`. Hence each
//! connected component of `Q₂` has rigid relative offsets (or is
//! unsatisfiable), i.e. it is a *pattern*: a window of consecutive edge
//! labels, some wildcarded. Components are placed independently:
//!
//! * unanchored components must occur as a **factor** (`Σ* P Σ*`);
//! * components with a variable pinned to the path start are **prefixes**
//!   (`P Σ*`), to the path end **suffixes** (`Σ* P`), to both —
//!   **exact-length** words.
//!
//! `W` is the intersection of these regular languages, and
//! `Q₁ ⊆st Q₂ ⟺ L ⊆ W` — a language-inclusion check on our DFA toolkit.

use crpq_automata::dfa::nfa_subset;
use crpq_automata::Nfa;
use crpq_core::eval;
use crpq_core::Semantics;
use crpq_graph::NodeId;
use crpq_query::{Cq, Crpq, Var};
use crpq_util::{FxHashMap, Symbol, UnionFind};

/// Where a `Q₂` variable is pinned on the path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum Anchor {
    Start,
    End,
}

/// Decides `Q₁ ⊆st Q₂` exactly when `Q₁` has a single non-loop atom and
/// `Q₂` is a CQ; `None` when the instance is outside this fragment.
pub fn try_contain_rpq_cq_st(q1: &Crpq, q2: &Crpq) -> Option<bool> {
    if q1.free.len() != q2.free.len() {
        return Some(false);
    }
    let q2cq = q2.as_cq()?;
    for variant in q1.epsilon_free_union() {
        let verdict = match variant.atoms.len() {
            0 => collapsed_variant_contained(&variant, q2),
            1 => {
                let atom = &variant.atoms[0];
                if atom.src == atom.dst {
                    return None; // cycle expansions: different shape
                }
                single_atom_variant_contained(&variant, &q2cq)?
            }
            _ => return None,
        };
        if !verdict {
            return Some(false);
        }
    }
    Some(true)
}

/// The ε-collapsed variant: the expansion is a single isolated node.
fn collapsed_variant_contained(variant: &Crpq, q2: &Crpq) -> bool {
    // Build the 1-node-per-variable graph of the (atomless) variant and
    // evaluate Q2 on it with the pinned tuple — both are tiny.
    let cq = variant.as_cq().expect("atomless variant is a CQ"); // invariant: the caller only passes atomless variants
    let g = cq.to_graph_anon(1);
    let tuple: Vec<NodeId> = cq.free.iter().map(|v| NodeId(v.0)).collect();
    eval::eval_contains(q2, &g, &tuple, Semantics::Standard)
}

fn single_atom_variant_contained(variant: &Crpq, q2: &Cq) -> Option<bool> {
    let atom = &variant.atoms[0];
    let lang = atom.nfa();

    // Anchor map: Q1's free tuple positions name path-start (src) or
    // path-end (dst); Q2 vars outside any atom stay anchorable too.
    let mut anchors: FxHashMap<Var, Vec<Anchor>> = FxHashMap::default();
    for (q1v, q2v) in variant.free.iter().zip(&q2.free) {
        let anchor = if *q1v == atom.src {
            Anchor::Start
        } else if *q1v == atom.dst {
            Anchor::End
        } else {
            return None; // Q1 free var outside the atom: unsupported shape
        };
        anchors.entry(*q2v).or_default().push(anchor);
    }

    // Alphabet of discourse.
    let mut alphabet: Vec<Symbol> = lang.symbols();
    alphabet.extend(q2.atoms.iter().map(|a| a.label));
    alphabet.sort_unstable();
    alphabet.dedup();
    if alphabet.is_empty() {
        // Empty language on the left: vacuously contained.
        return Some(lang.is_empty_language());
    }

    // Connected components of Q2 over its constraint graph.
    let mut uf = UnionFind::new(q2.num_vars);
    for a in &q2.atoms {
        uf.union(a.src.index(), a.dst.index());
    }
    let (comp_of, num_comps) = uf.dense_classes();

    let mut component_nfas: Vec<Nfa> = Vec::new();
    for comp in 0..num_comps {
        let vars: Vec<usize> = (0..q2.num_vars).filter(|&v| comp_of[v] == comp).collect();
        let atoms: Vec<_> = q2
            .atoms
            .iter()
            .filter(|a| comp_of[a.src.index()] == comp)
            .collect();
        match component_language(&vars, &atoms, &anchors, &alphabet) {
            ComponentLang::Unsat => {
                // No placement of this component into any path: contained
                // iff the left language is empty.
                return Some(lang.is_empty_language());
            }
            ComponentLang::Trivial => {}
            ComponentLang::Nfa(nfa) => component_nfas.push(nfa),
        }
    }

    // W = ⋂ components; Q1 ⊆ Q2 iff L ⊆ W.
    let contained = match component_nfas.len() {
        0 => true, // W = Σ*: every expansion admits a hom
        _ => {
            let mut w = component_nfas.pop().unwrap(); // invariant: every component contributes an NFA
            for other in &component_nfas {
                w = w.product(other);
            }
            nfa_subset(&lang, &w, &alphabet)
        }
    };
    Some(contained)
}

enum ComponentLang {
    /// The component can never be placed: `W = ∅`.
    Unsat,
    /// The component is always placeable: contributes `Σ*`.
    Trivial,
    /// A proper regular constraint.
    Nfa(Nfa),
}

/// Computes the placement language of one component.
fn component_language(
    vars: &[usize],
    atoms: &[&crpq_query::CqAtom],
    anchors: &FxHashMap<Var, Vec<Anchor>>,
    alphabet: &[Symbol],
) -> ComponentLang {
    // Rigid offsets by BFS from the first variable.
    let mut offset: FxHashMap<usize, i64> = FxHashMap::default();
    offset.insert(vars[0], 0);
    let mut changed = true;
    while changed {
        changed = false;
        for a in atoms {
            let (s, d) = (a.src.index(), a.dst.index());
            match (offset.get(&s).copied(), offset.get(&d).copied()) {
                (Some(os), None) => {
                    offset.insert(d, os + 1);
                    changed = true;
                }
                (None, Some(od)) => {
                    offset.insert(s, od - 1);
                    changed = true;
                }
                (Some(os), Some(od)) => {
                    if od != os + 1 {
                        return ComponentLang::Unsat; // cycle of wrong length
                    }
                }
                (None, None) => {}
            }
        }
    }
    debug_assert!(
        vars.iter().all(|v| offset.contains_key(v)),
        "component connected"
    );

    let min = offset.values().copied().min().unwrap_or(0);
    let max = offset.values().copied().max().unwrap_or(0);
    let span = (max - min) as usize;

    // Edge-label pattern over relative edges `0..span`.
    let mut pattern: Vec<Option<Symbol>> = vec![None; span];
    for a in atoms {
        let pos = (offset[&a.src.index()] - min) as usize;
        match pattern[pos] {
            Some(existing) if existing != a.label => return ComponentLang::Unsat,
            _ => pattern[pos] = Some(a.label),
        }
    }

    // Anchor classification.
    let mut start_anchored = false;
    let mut end_positions: Vec<usize> = Vec::new();
    for &v in vars {
        if let Some(list) = anchors.get(&Var(v as u32)) {
            let norm = (offset[&v] - min) as usize;
            for anchor in list {
                match anchor {
                    Anchor::Start => {
                        if norm != 0 {
                            return ComponentLang::Unsat; // var left of the start
                        }
                        start_anchored = true;
                    }
                    Anchor::End => end_positions.push(norm),
                }
            }
        }
    }
    let end_anchored = !end_positions.is_empty();
    if end_anchored {
        // All end-pinned vars must sit at a common position, which must be
        // the right edge of the window (else a var overruns the path).
        if end_positions.iter().any(|&p| p != span) {
            return ComponentLang::Unsat;
        }
    }
    if start_anchored && end_anchored && span == 0 {
        // |w| = 0 forced: impossible for ε-free expansions.
        return ComponentLang::Unsat;
    }
    if span == 0 && pattern.is_empty() {
        // Isolated variable(s): placeable in any non-empty path.
        return ComponentLang::Trivial;
    }

    ComponentLang::Nfa(pattern_nfa(
        &pattern,
        start_anchored,
        end_anchored,
        alphabet,
    ))
}

/// Builds the NFA of `[Σ*] pattern [Σ*]` with the requested anchoring.
fn pattern_nfa(
    pattern: &[Option<Symbol>],
    start_anchored: bool,
    end_anchored: bool,
    alphabet: &[Symbol],
) -> Nfa {
    let span = pattern.len();
    // States: 0 = pre (if unanchored at start), 1..=span chain, post loop.
    let mut transitions: Vec<Vec<(Symbol, u32)>> = Vec::new();
    let pre = 0u32;
    transitions.push(Vec::new());
    let chain_start = pre; // pattern starts at state `pre`
    for _ in 0..span {
        transitions.push(Vec::new());
    }
    let chain_end = span as u32;
    if !start_anchored {
        for &s in alphabet {
            transitions[pre as usize].push((s, pre));
        }
    }
    for (i, slot) in pattern.iter().enumerate() {
        let (from, to) = (chain_start + i as u32, chain_start + i as u32 + 1);
        match slot {
            Some(sym) => transitions[from as usize].push((*sym, to)),
            None => {
                for &s in alphabet {
                    transitions[from as usize].push((s, to));
                }
            }
        }
    }
    if !end_anchored {
        for &s in alphabet {
            transitions[chain_end as usize].push((s, chain_end));
        }
    }
    Nfa::from_parts(transitions, [chain_start], [chain_end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{contain_with, ContainmentConfig};
    use crpq_query::expansion::ExpansionLimits;
    use crpq_query::parse_crpq;
    use crpq_util::Interner;

    fn q(text: &str, it: &mut Interner) -> Crpq {
        parse_crpq(text, it).unwrap()
    }

    #[test]
    fn boolean_rpq_into_edge() {
        let mut it = Interner::new();
        // Every non-empty a-path has an a-edge.
        let q1 = q("x -[a a*]-> y", &mut it);
        let q2 = q("u -[a]-> v", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q2), Some(true));
        // …but not necessarily a b-edge.
        let q3 = q("u -[b]-> v", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q3), Some(false));
    }

    #[test]
    fn factor_patterns() {
        let mut it = Interner::new();
        // Does every word of (ab)^+ contain the factor "ab"? Yes.
        let q1 = q("x -[(a b)(a b)*]-> y", &mut it);
        let q2 = q("u -[a]-> v, v -[b]-> w", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q2), Some(true));
        // Factor "ba" requires length ≥ 4: fails on "ab".
        let q3 = q("u -[b]-> v, v -[a]-> w", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q3), Some(false));
        // But (ab)(ab)^+ (length ≥ 4) does contain "ba".
        let q1b = q("x -[(a b)(a b)(a b)*]-> y", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1b, &q3), Some(true));
    }

    #[test]
    fn anchored_patterns() {
        let mut it = Interner::new();
        // Pinned endpoints: Q2 = exactly two a-steps from x to y.
        let q1 = q("(x, y) <- x -[a a]-> y", &mut it);
        let q2 = q("(u, w) <- u -[a]-> v, v -[a]-> w", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q2), Some(true));
        // a^+ is not always exactly two steps.
        let q1b = q("(x, y) <- x -[a a*]-> y", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1b, &q2), Some(false));
        // Prefix anchoring: does every a^≥2 word start with a? Trivially.
        let q1c = q("(x) <- x -[a a a*]-> y", &mut it);
        let q2c = q("(u) <- u -[a]-> v", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1c, &q2c), Some(true));
        // Start with a then b: fails (second letter is a).
        let q2d = q("(u) <- u -[a]-> v, v -[b]-> w", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1c, &q2d), Some(false));
    }

    #[test]
    fn reversed_free_tuple_anchors_to_end() {
        let mut it = Interner::new();
        // Q1(y, x): first tuple position is the path END.
        let q1 = q("(y, x) <- x -[a b]-> y", &mut it);
        // Q2(u, w): u pinned to END, w to START: u must be reached by b.
        let q2 = q("(u, w) <- v -[b]-> u", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q2), Some(true));
        let q3 = q("(u, w) <- v -[a]-> u", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q3), Some(false));
    }

    #[test]
    fn unsatisfiable_component_shapes() {
        let mut it = Interner::new();
        let q1 = q("x -[a a*]-> y", &mut it);
        // Q2 has a 1-cycle: u -a-> v, v -a-> u forces offset conflict.
        let q2 = q("u -[a]-> v, v -[a]-> u", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q2), Some(false));
        // Conflicting labels at the same offset.
        let q3 = q("u -[a]-> v, u -[b]-> v", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q3), Some(false));
        // And the empty left language is contained in anything.
        let q4 = q("x -[∅]-> y", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q4, &q2), Some(true));
    }

    #[test]
    fn epsilon_variants_handled() {
        let mut it = Interner::new();
        // a*: the ε-variant collapses x=y to one node with no edges;
        // Q2 = single edge fails there.
        let q1 = q("(x, y) <- x -[a*]-> y", &mut it);
        let q2 = q("(u, v) <- u -[a]-> v", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q2), Some(false));
        // Q2 with no atoms and matching pinning succeeds on both variants.
        let q3 = q("(u, v) <- true", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q3), Some(true));
    }

    #[test]
    fn agrees_with_naive_on_finite_languages() {
        let mut it = Interner::new();
        let pairs = [
            (
                "(x, y) <- x -[a b + b a]-> y",
                "(u, w) <- u -[a]-> v, v -[b]-> w",
            ),
            ("x -[a b + b a]-> y", "u -[a]-> v, v -[b]-> w"),
            ("(x, y) <- x -[a a + a]-> y", "(u, w) <- u -[a]-> w"),
            ("x -[a b a]-> y", "u -[b]-> v"),
            ("x -[a b a]-> y", "u -[b]-> v, w -[a]-> z"),
        ];
        for (t1, t2) in pairs {
            let q1 = q(t1, &mut it);
            let q2 = q(t2, &mut it);
            let exact = try_contain_rpq_cq_st(&q1, &q2);
            let naive = contain_with(
                &q1,
                &q2,
                Semantics::Standard,
                ContainmentConfig {
                    limits: ExpansionLimits {
                        max_word_len: 8,
                        max_expansions: usize::MAX,
                    },
                    threads: 1,
                },
            );
            assert_eq!(exact, naive.as_bool(), "mismatch on {t1} ⊆ {t2}");
        }
    }

    #[test]
    fn out_of_fragment_instances_bail() {
        let mut it = Interner::new();
        let q1 = q("x -[a]-> y, y -[b]-> z", &mut it); // two atoms
        let q2 = q("u -[a]-> v", &mut it);
        assert_eq!(try_contain_rpq_cq_st(&q1, &q2), None);
        let loopy = q("x -[a a]-> x", &mut it); // self-loop atom
        assert_eq!(try_contain_rpq_cq_st(&loopy, &q2), None);
        let crpq_right = q("u -[a a*]-> v", &mut it); // right side not CQ
        assert_eq!(try_contain_rpq_cq_st(&q1, &crpq_right), None);
    }
}
