//! Class-aware containment front end.
//!
//! Figure 1 of the paper gives the decidability/complexity landscape per
//! class pair and semantics. This module picks budgets that make the
//! counter-example engine *provably complete* whenever the left-hand query
//! has finite languages (`CQ` or `CRPQ_fin` rows — every Π₂ᵖ cell of
//! Figure 1), and defers to the Appendix-C abstraction engine for
//! query-injective containment with infinite left-hand languages.

use crate::abstraction;
use crate::naive::{contain_with, ContainmentConfig, Outcome};
use crate::rpq_cq;
use crpq_core::Semantics;
use crpq_query::expansion::ExpansionLimits;
use crpq_query::{Crpq, QueryClass};

/// Limits that make the ∀-side enumeration exhaustive when possible.
///
/// * Left-hand `CQ`/`CRPQ_fin`: the longest word over all ε-free variants
///   bounds the expansion length — the enumeration is finite and complete.
/// * Left-hand `CRPQ` with stars: no finite budget is complete; the default
///   budget is returned and the engine will report
///   [`Outcome::Inconclusive`] unless a counter-example is found.
pub fn recommended_limits(q1: &Crpq) -> ExpansionLimits {
    let mut max_len = 1usize;
    let mut finite = true;
    for variant in q1.epsilon_free_union() {
        for atom in &variant.atoms {
            match atom.nfa().max_word_len() {
                Some(l) => max_len = max_len.max(l),
                None => finite = false,
            }
        }
    }
    if finite {
        ExpansionLimits {
            max_word_len: max_len,
            max_expansions: usize::MAX,
        }
    } else {
        ExpansionLimits::default()
    }
}

/// Decides `Q₁ ⊆★ Q₂` with automatically chosen budgets and engines:
///
/// * finite-language left side → complete counter-example search;
/// * `q-inj` with infinite left side → the Appendix-C abstraction engine
///   when its preconditions hold, else bounded search;
/// * `st`/`a-inj` with infinite left side → bounded search (three-valued).
///
/// ```
/// use crpq_containment::{contain, Semantics};
/// use crpq_query::parse_crpq;
/// use crpq_util::Interner;
///
/// // Example 4.7: Q1' ⊆a-inj Q2' but Q1' ⊄q-inj Q2'.
/// let mut sigma = Interner::new();
/// let q1 = parse_crpq("x -[a]-> y, x -[b]-> y", &mut sigma).unwrap();
/// let q2 = parse_crpq("x -[a]-> y, u -[b]-> v", &mut sigma).unwrap();
/// assert!(contain(&q1, &q2, Semantics::AtomInjective).is_contained());
/// assert!(contain(&q1, &q2, Semantics::QueryInjective).is_not_contained());
/// ```
pub fn contain(q1: &Crpq, q2: &Crpq, sem: Semantics) -> Outcome {
    let limits = recommended_limits(q1);
    let config = ContainmentConfig { limits, threads: 1 };
    let left_finite = q1.classify() != QueryClass::Crpq;

    if !left_finite && sem == Semantics::Standard {
        // Exact regular-language procedure for the single-atom CRPQ/CQ cell.
        if let Some(verdict) = rpq_cq::try_contain_rpq_cq_st(q1, q2) {
            return if verdict {
                Outcome::Contained
            } else {
                match contain_with(q1, q2, sem, config) {
                    Outcome::NotContained(ce) => Outcome::NotContained(ce),
                    _ => Outcome::NotContained(crate::naive::CounterExample {
                        witness: crpq_query::Cq::boolean(vec![]),
                        profile: Vec::new(),
                        merges: 0,
                    }),
                }
            };
        }
    }

    if !left_finite && sem == Semantics::QueryInjective {
        if let Some(verdict) = abstraction::try_contain_qinj(q1, q2) {
            return match verdict {
                true => Outcome::Contained,
                false => {
                    // Re-run the bounded search to extract a concrete witness
                    // (the abstraction engine certifies existence only);
                    // fall back to the abstract verdict if the witness needs
                    // a longer expansion than the default budget.
                    match contain_with(q1, q2, sem, config) {
                        Outcome::NotContained(ce) => Outcome::NotContained(ce),
                        _ => Outcome::NotContained(crate::naive::CounterExample {
                            witness: crpq_query::Cq::boolean(vec![]),
                            profile: Vec::new(),
                            merges: 0,
                        }),
                    }
                }
            };
        }
    }
    contain_with(q1, q2, sem, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_query::parse_crpq;
    use crpq_util::Interner;

    #[test]
    fn finite_left_gets_exact_budget() {
        let mut it = Interner::new();
        let q1 = parse_crpq("x -[a b c + a]-> y", &mut it).unwrap();
        let limits = recommended_limits(&q1);
        assert_eq!(limits.max_word_len, 3);
        assert_eq!(limits.max_expansions, usize::MAX);
    }

    #[test]
    fn infinite_left_gets_default_budget() {
        let mut it = Interner::new();
        let q1 = parse_crpq("x -[a*]-> y", &mut it).unwrap();
        let limits = recommended_limits(&q1);
        assert_eq!(limits.max_word_len, ExpansionLimits::default().max_word_len);
    }

    #[test]
    fn figure1_cq_cq_cells() {
        // CQ/CQ: NP-complete under st and q-inj, NP-complete under a-inj —
        // all decidable; engine must return definite answers.
        let mut it = Interner::new();
        let q1 = parse_crpq("x -[a]-> y, y -[a]-> z", &mut it).unwrap();
        let q2 = parse_crpq("x -[a]-> y", &mut it).unwrap();
        for sem in Semantics::ALL {
            assert!(
                contain(&q1, &q2, sem).as_bool().is_some(),
                "decidable cell {sem}"
            );
        }
    }

    #[test]
    fn figure1_crpqfin_cells_are_decided() {
        let mut it = Interner::new();
        let q1 = parse_crpq("x -[a b + b a]-> y", &mut it).unwrap();
        let q2 = parse_crpq("x -[(a + b)(a + b)]-> y", &mut it).unwrap();
        for sem in Semantics::ALL {
            let out = contain(&q1, &q2, sem);
            assert!(out.is_contained(), "fin ⊆ relaxation under {sem}: {out:?}");
            let back = contain(&q2, &q1, sem);
            assert!(back.is_not_contained(), "strict under {sem}");
        }
    }
}
