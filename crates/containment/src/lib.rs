//! # crpq-containment
//!
//! The containment problem `Q₁ ⊆★ Q₂` (paper §4–§6) under all three
//! semantics:
//!
//! * [`naive`] — the characterisation-based **counter-example engine**:
//!   `Q₁ ⊄★ Q₂` iff some ★-expansion `E₁` of `Q₁` has `ȳ ∉ Q₂(E₁)★` (§4.1).
//!   The ∀-side enumerates ★-expansions of `Q₁` (ordinary expansions for
//!   `st`/`q-inj` by Props 4.2/4.3, a-inj-expansions for `a-inj` by
//!   Prop 4.6); the ∃-side is *evaluation* of `Q₂` over the candidate, which
//!   is complete. Decisions are exact whenever `Q₁`'s languages are finite
//!   within the budget, and three-valued otherwise — the honest rendering of
//!   an ExpSpace-complete (st), PSpace-complete (q-inj) and undecidable
//!   (a-inj) problem family on bounded hardware.
//! * [`abstraction`] — the paper's main algorithmic contribution
//!   (Thm 5.1, Appendix C): the **PSpace abstraction algorithm** for
//!   query-injective CRPQ/CRPQ containment, built on per-atom profile
//!   simulation, achievable abstraction enumeration, morphism types into the
//!   3-subdivision of `Q₁`, and the Figure-9 compatibility cases.
//! * [`rpq_cq`] — an **exact** decision procedure for single-atom CRPQ ⊆ CQ
//!   under standard semantics via regular pattern languages (the homomorphism
//!   sets `{w : Q₂ → path(w)}` are regular).
//! * [`analysis`] — class-aware front end choosing budgets and engines that
//!   make the verdict exact wherever Figure 1 promises decidability and our
//!   engines cover the fragment.

pub mod abstraction;
pub mod analysis;
pub mod boundedness;
pub mod naive;
pub mod optimize;
pub mod rpq_cq;

pub use analysis::{contain, recommended_limits};
pub use boundedness::{check_boundedness, Boundedness, BoundednessConfig};
pub use crpq_core::Semantics;
pub use naive::{contain_union_with, contain_with, ContainmentConfig, CounterExample, Outcome};
pub use optimize::{equivalent, minimize_atoms, Equivalence, MinimizeResult};
