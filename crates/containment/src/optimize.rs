//! Containment-based **static optimisation**: equivalence testing and
//! redundant-atom elimination.
//!
//! The paper's §1 motivates containment as "a means for query
//! optimization"; this module is that payoff. Both tools inherit the
//! three-valued honesty of the underlying engines: verdicts are certified
//! exactly when the relevant containments are decided exhaustively.
//!
//! Atom removal is *monotone* under all three semantics (dropping an atom
//! drops constraints — witnesses survive), so atom `i` is redundant iff
//! `Q∖{i} ⊆★ Q`. Removal keeps the variable set intact: dropping orphaned
//! existential variables is **not** equivalence-preserving under
//! query-injective semantics (injectivity needs as many distinct nodes as
//! variables), so we never do it silently.
//!
//! ```
//! use crpq_containment::optimize::{minimize_atoms, equivalent, Equivalence};
//! use crpq_containment::Semantics;
//! use crpq_query::parse_crpq;
//! use crpq_util::Interner;
//!
//! let mut sigma = Interner::new();
//! // The second atom asks for an a- or ab-path, which the a-edge of the
//! // first atom always provides: redundant under every semantics.
//! let q = parse_crpq("(x, y) <- x -[a]-> y, x -[a + a b]-> y", &mut sigma).unwrap();
//! let result = minimize_atoms(&q, Semantics::Standard);
//! assert_eq!(result.removed, vec![1]);
//! assert_eq!(result.query.atoms.len(), 1);
//!
//! // Example 4.7: x -[a b]-> y and its two-atom unfolding are equivalent
//! // under standard and query-injective semantics, but not atom-injective.
//! let q1 = parse_crpq("(x, z) <- x -[a]-> y, y -[b]-> z", &mut sigma).unwrap();
//! let q2 = parse_crpq("(x, z) <- x -[a b]-> z", &mut sigma).unwrap();
//! assert!(matches!(equivalent(&q1, &q2, Semantics::Standard), Equivalence::Equivalent));
//! assert!(matches!(equivalent(&q1, &q2, Semantics::QueryInjective), Equivalence::Equivalent));
//! assert!(matches!(
//!     equivalent(&q1, &q2, Semantics::AtomInjective),
//!     Equivalence::LeftNotContained(_)
//! ));
//! ```

use crate::analysis::contain;
use crate::naive::{CounterExample, Outcome};
use crpq_core::Semantics;
use crpq_query::Crpq;

/// Verdict of [`equivalent`].
#[derive(Clone, Debug)]
pub enum Equivalence {
    /// `Q₁ ≡★ Q₂`, both containments certified.
    Equivalent,
    /// `Q₁ ⊄★ Q₂` (a tuple of `Q₁` escapes `Q₂`).
    LeftNotContained(Box<CounterExample>),
    /// `Q₂ ⊄★ Q₁`.
    RightNotContained(Box<CounterExample>),
    /// Neither direction refuted, at least one not certified.
    Inconclusive,
}

/// Decides `Q₁ ≡★ Q₂` as two containments.
pub fn equivalent(q1: &Crpq, q2: &Crpq, sem: Semantics) -> Equivalence {
    match contain(q1, q2, sem) {
        Outcome::NotContained(c) => Equivalence::LeftNotContained(Box::new(c)),
        Outcome::Contained => match contain(q2, q1, sem) {
            Outcome::NotContained(c) => Equivalence::RightNotContained(Box::new(c)),
            Outcome::Contained => Equivalence::Equivalent,
            Outcome::Inconclusive { .. } => Equivalence::Inconclusive,
        },
        Outcome::Inconclusive { .. } => match contain(q2, q1, sem) {
            Outcome::NotContained(c) => Equivalence::RightNotContained(Box::new(c)),
            _ => Equivalence::Inconclusive,
        },
    }
}

/// Result of [`minimize_atoms`].
#[derive(Clone, Debug)]
pub struct MinimizeResult {
    /// The minimised query (variables untouched, atoms possibly fewer).
    pub query: Crpq,
    /// Indices (w.r.t. the *original* atom list) of removed atoms.
    pub removed: Vec<usize>,
    /// Whether every removal was certified (exhaustive containment); when
    /// `false`, only certified removals were applied anyway — the flag
    /// records that some candidate removals were skipped as inconclusive.
    pub certified: bool,
}

/// Whether atom `i` is redundant: `Q∖{i} ⊆★ Q` (the converse inclusion
/// always holds by monotonicity).
pub fn atom_redundant(q: &Crpq, i: usize, sem: Semantics) -> Outcome {
    let without = remove_atom(q, i);
    contain(&without, q, sem)
}

/// Greedily removes atoms whose redundancy is *certified*, scanning until a
/// fixpoint. Inconclusive candidates are kept (sound: the result is always
/// ★-equivalent to the input).
pub fn minimize_atoms(q: &Crpq, sem: Semantics) -> MinimizeResult {
    let mut current = q.clone();
    // Map current atom positions back to original indices.
    let mut origin: Vec<usize> = (0..q.atoms.len()).collect();
    let mut removed = Vec::new();
    let mut certified = true;
    let mut progress = true;
    while progress {
        progress = false;
        let mut i = 0;
        while i < current.atoms.len() {
            match atom_redundant(&current, i, sem) {
                Outcome::Contained => {
                    removed.push(origin.remove(i));
                    current = remove_atom(&current, i);
                    progress = true;
                }
                Outcome::NotContained(_) => i += 1,
                Outcome::Inconclusive { .. } => {
                    certified = false;
                    i += 1;
                }
            }
        }
    }
    removed.sort_unstable();
    MinimizeResult {
        query: current,
        removed,
        certified,
    }
}

/// `Q` without atom `i`; the variable set and free tuple are unchanged.
fn remove_atom(q: &Crpq, i: usize) -> Crpq {
    let mut atoms = q.atoms.clone();
    atoms.remove(i);
    Crpq {
        atoms,
        num_vars: q.num_vars,
        free: q.free.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_query::parse_crpq;
    use crpq_util::Interner;

    fn q(text: &str) -> Crpq {
        let mut sigma = Interner::new();
        parse_crpq(text, &mut sigma).unwrap()
    }

    #[test]
    fn redundant_atom_removed_under_all_semantics() {
        let query = q("(x, y) <- x -[a]-> y, x -[a + a b]-> y");
        for sem in Semantics::ALL {
            let result = minimize_atoms(&query, sem);
            assert_eq!(result.removed, vec![1], "under {sem}");
            assert!(result.certified);
        }
    }

    #[test]
    fn non_redundant_atoms_kept() {
        // Two genuinely different constraints.
        let query = q("(x, y) <- x -[a]-> y, x -[b]-> y");
        for sem in Semantics::ALL {
            let result = minimize_atoms(&query, sem);
            assert!(result.removed.is_empty(), "under {sem}");
            assert_eq!(result.query.atoms.len(), 2);
        }
    }

    #[test]
    fn duplicate_atom_redundancy_depends_on_semantics() {
        // Two copies of the same atom between the same variables: the copy
        // is redundant under st and a-inj (same path reused) and also under
        // q-inj: both atoms may use the same single-edge path (no internal
        // nodes to share).
        let query = q("(x, y) <- x -[a]-> y, x -[a]-> y");
        for sem in Semantics::ALL {
            let result = minimize_atoms(&query, sem);
            assert_eq!(result.removed.len(), 1, "under {sem}");
        }
        // With 2-letter words the duplicated atom needs a *second* disjoint
        // internal node under q-inj, so removal is NOT sound there…
        let query = q("(x, y) <- x -[a b]-> y, x -[a b]-> y");
        let st = minimize_atoms(&query, Semantics::Standard);
        assert_eq!(st.removed.len(), 1);
        let qi = minimize_atoms(&query, Semantics::QueryInjective);
        assert!(
            qi.removed.is_empty(),
            "duplicate 2-letter atoms are not redundant under q-inj"
        );
    }

    #[test]
    fn equivalence_follows_example_4_7() {
        let q1 = q("(x, z) <- x -[a]-> y, y -[b]-> z");
        let q2 = q("(x, z) <- x -[a b]-> z");
        assert!(matches!(
            equivalent(&q1, &q2, Semantics::Standard),
            Equivalence::Equivalent
        ));
        assert!(matches!(
            equivalent(&q1, &q2, Semantics::QueryInjective),
            Equivalence::Equivalent
        ));
        assert!(matches!(
            equivalent(&q1, &q2, Semantics::AtomInjective),
            Equivalence::LeftNotContained(_)
        ));
    }

    #[test]
    fn equivalence_detects_right_failure() {
        let q1 = q("(x, y) <- x -[a]-> y");
        let q2 = q("(x, y) <- x -[a + b]-> y");
        // Q1 ⊆ Q2 but Q2 ⊄ Q1 (the b-edge escapes).
        assert!(matches!(
            equivalent(&q1, &q2, Semantics::Standard),
            Equivalence::RightNotContained(_)
        ));
    }

    #[test]
    fn minimization_reaches_fixpoint_across_passes() {
        // Chain of implications: removing one atom can expose another.
        let query = q("(x, y) <- x -[a]-> y, x -[a + a b]-> y, x -[a + a b + a c]-> y");
        let result = minimize_atoms(&query, Semantics::Standard);
        assert_eq!(result.removed, vec![1, 2]);
        assert_eq!(result.query.atoms.len(), 1);
    }
}
