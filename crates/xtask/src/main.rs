//! Dev workflow tasks (`cargo xtask <command>`), in the cargo-xtask
//! tradition: plain Rust, no dependencies, invoked through the alias in
//! `.cargo/config.toml`.
//!
//! * `cargo xtask lint` — source-level invariant scan (see [`lint`]):
//!   the `crpq_util::sync` façade is the only door to the concurrency
//!   primitives, the `crpq_util::storage` façade the only door to the
//!   filesystem, and library code has no undocumented panic sites.
//! * `cargo xtask model-check` — build and run the bounded-exploration
//!   concurrency suite (`crates/check` unit tests plus every `model_*`
//!   protocol test) under `--cfg crpq_model_check`.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("model-check") => model_check(),
        _ => {
            eprintln!("usage: cargo xtask <lint | model-check>");
            ExitCode::FAILURE
        }
    }
}

/// Workspace root: xtask lives at `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or(manifest.clone(), Path::to_path_buf)
}

// -------------------------------------------------------------------------
// `cargo xtask lint`
// -------------------------------------------------------------------------

/// Paths (relative to the workspace root, `/`-separated) exempt from the
/// façade-only rule: the façade itself and the checker it routes to — the
/// only modules allowed to name the raw std primitives.
const FACADE_EXEMPT: &[&str] = &["crates/check/", "crates/util/src/sync.rs", "crates/xtask/"];

/// Substrings whose presence on a (non-exempt, non-comment) line flags a
/// direct use of a std concurrency primitive that has a façade double.
/// `std::sync::Arc` and friends stay legal — only the primitives the
/// model checker must interpose on are gated.
const FACADE_NAMES: &[&str] = &["Mutex", "Condvar", "mpsc", "AtomicBool", "AtomicUsize"];

struct Violation {
    file: String,
    line: usize,
    rule: &'static str,
    text: String,
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &root, &mut files);
    files.sort();

    let mut violations = Vec::new();
    for rel in &files {
        let path = root.join(rel);
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        scan_file(rel, &src, &mut violations);
    }

    if violations.is_empty() {
        println!("xtask lint: OK ({} files scanned)", files.len());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.text);
    }
    eprintln!(
        "\nxtask lint: {} violation(s).\n\
         - facade-only: import concurrency primitives through `crpq_util::sync`,\n\
           never `std::sync`/`std::thread` directly (the model checker must be\n\
           able to interpose on every acquire/release/park point).\n\
         - storage-facade: library code must not touch `std::fs` directly;\n\
           route file IO through `crpq_util::storage::Storage` so the\n\
           crash-fault harness can interpose on every write/sync/rename.\n\
         - documented-panic: library code must not panic without a stated\n\
           reason; restructure, or add a `// invariant: ...` (why it cannot\n\
           fail) or `// poison: ...` (poisoning policy) comment on or above\n\
           the line.",
        violations.len()
    );
    ExitCode::FAILURE
}

/// Recursively collect `.rs` files as `/`-separated root-relative paths,
/// skipping VCS and build output.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out);
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
}

/// Whether the documented-panic rule applies to this file at all: library
/// sources only — not tests, benches, examples, binaries, the checker, or
/// this tool.
fn panic_rule_applies(rel: &str) -> bool {
    let exempt_dir = ["tests/", "benches/", "examples/", "src/bin/"]
        .iter()
        .any(|d| rel.contains(d) || rel.starts_with(d));
    let exempt_crate = rel.starts_with("crates/check/") || rel.starts_with("crates/xtask/");
    !(exempt_dir || exempt_crate)
}

/// Whether the storage-façade rule applies: library sources only (same
/// scoping as the panic rule), minus the façade itself and the bench
/// harness (whose result-file IO is deliberately outside the crash-fault
/// seam). Everything durable in library code must flow through
/// `crpq_util::storage` so `FaultyStorage` can interpose on every write,
/// sync, and rename.
fn storage_rule_applies(rel: &str) -> bool {
    panic_rule_applies(rel)
        && rel != "crates/util/src/storage.rs"
        && !rel.starts_with("crates/bench/")
}

fn scan_file(rel: &str, src: &str, out: &mut Vec<Violation>) {
    let facade_rule = !FACADE_EXEMPT.iter().any(|p| rel.starts_with(p));
    let panic_rule = panic_rule_applies(rel);
    let storage_rule = storage_rule_applies(rel);
    if !facade_rule && !panic_rule && !storage_rule {
        return;
    }

    // Brace-depth state machine to skip `#[cfg(test)] mod ... { ... }`
    // (and `#[cfg(all(test, ...))]`) blocks: unit tests may panic freely.
    let mut depth: i32 = 0;
    let mut skip_until: Option<i32> = None;
    let mut pending_cfg_test = false;
    let mut prev_comment_justifies = false;

    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();

        if skip_until.is_none() {
            if trimmed.starts_with("#[cfg(") && trimmed.contains("test") {
                pending_cfg_test = true;
            } else if pending_cfg_test
                && (trimmed.starts_with("mod ") || trimmed.starts_with("pub mod "))
            {
                skip_until = Some(depth);
                pending_cfg_test = false;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") {
                pending_cfg_test = false;
            }
        }
        depth += raw.matches('{').count() as i32 - raw.matches('}').count() as i32;
        if let Some(d) = skip_until {
            if depth <= d {
                skip_until = None;
            }
            prev_comment_justifies = false;
            continue;
        }

        // Split off any trailing comment; comment-only lines (incl. doc
        // comments, whose examples are compiled as test code) are skipped.
        let (code, comment) = match raw.find("//") {
            Some(i) => (&raw[..i], &raw[i..]),
            None => (raw, ""),
        };
        let justified = comment.contains("invariant:") || comment.contains("poison:");
        if code.trim().is_empty() {
            prev_comment_justifies = justified;
            continue;
        }

        if facade_rule {
            let std_sync =
                code.contains("std::sync") && FACADE_NAMES.iter().any(|n| code.contains(n));
            if std_sync || code.contains("std::thread") {
                out.push(Violation {
                    file: rel.to_string(),
                    line,
                    rule: "facade-only",
                    text: trimmed.to_string(),
                });
            }
        }

        if storage_rule && code.contains("std::fs") {
            out.push(Violation {
                file: rel.to_string(),
                line,
                rule: "storage-facade",
                text: trimmed.to_string(),
            });
        }

        if panic_rule
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !justified
            && !prev_comment_justifies
        {
            out.push(Violation {
                file: rel.to_string(),
                line,
                rule: "documented-panic",
                text: trimmed.to_string(),
            });
        }
        prev_comment_justifies = false;
    }
}

// -------------------------------------------------------------------------
// `cargo xtask model-check`
// -------------------------------------------------------------------------

/// Runs the full bounded-exploration suite: the checker's own unit tests
/// (deadlock/lost-wakeup detectors, mutant detection) and every `model_*`
/// protocol test, all compiled with `--cfg crpq_model_check` so the
/// `crpq_util::sync` façade routes to the shadow primitives.
fn model_check() -> ExitCode {
    let root = workspace_root();
    let mut rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !rustflags.contains("crpq_model_check") {
        if !rustflags.is_empty() {
            rustflags.push(' ');
        }
        rustflags.push_str("--cfg crpq_model_check");
    }

    let suites: &[&[&str]] = &[
        &["test", "-p", "crpq-check", "--lib", "-q"],
        &["test", "-p", "crpq-util", "--lib", "-q", "sync"],
        &["test", "-p", "crpq-core", "--lib", "-q", "model_"],
    ];
    for args in suites {
        println!("$ RUSTFLAGS=\"{rustflags}\" cargo {}", args.join(" "));
        let status = Command::new("cargo")
            .args(*args)
            .current_dir(&root)
            .env("RUSTFLAGS", &rustflags)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("model-check suite failed: {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("failed to spawn cargo: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("xtask model-check: OK");
    ExitCode::SUCCESS
}
