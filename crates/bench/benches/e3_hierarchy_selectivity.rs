//! E3 — Remark 2.1: result-set selectivity per semantics as graph density
//! grows (the hierarchy `q-inj ⊆ a-inj ⊆ st` measured, not just proved).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_core::{check_hierarchy, Semantics};
use crpq_graph::generators;
use crpq_query::parse_crpq;
use std::time::Duration;

fn bench_selectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_hierarchy");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for edges in [10usize, 20, 30] {
        let mut g = generators::random_graph(8, edges, &["a", "b", "c"], 7);
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
        group.bench_with_input(
            BenchmarkId::new("check_hierarchy", edges),
            &edges,
            |b, _| {
                b.iter(|| {
                    let report = check_hierarchy(&q, &g);
                    assert!(report.holds());
                    report
                });
            },
        );
        // Per-semantics evaluation cost at this density.
        for sem in Semantics::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("eval_{}", sem.short_name()), edges),
                &edges,
                |b, _| b.iter(|| crpq_core::eval_tuples(&q, &g, sem)),
            );
        }
    }
    group.finish();
}

fn bench_wikidata_log(c: &mut Criterion) {
    // The paper's §1 motivation: Wikidata-style property-path shapes.
    use crpq_core::eval_tuples;
    use crpq_util::Interner;
    use crpq_workloads::wikidata;
    let mut g = wikidata::knowledge_graph(30, 11);
    let mut sigma = Interner::new();
    // Align the query alphabet with the graph's labels.
    for (_, name) in g.alphabet().iter() {
        sigma.intern(name);
    }
    let log = wikidata::query_log(6, g.alphabet_mut(), 13);
    let mut group = c.benchmark_group("e3_wikidata_log");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for (i, (shape, q)) in log.iter().enumerate() {
        for sem in Semantics::ALL {
            group.bench_function(
                BenchmarkId::new(format!("q{i}_{shape:?}"), sem.short_name()),
                |b| b.iter(|| eval_tuples(q, &g, sem)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_selectivity, bench_wikidata_log);
criterion_main!(benches);
