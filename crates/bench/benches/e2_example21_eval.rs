//! E2 — Figure 2 / Example 2.1: evaluation of the running-example query on
//! the reconstructed graphs `G` and `G′` under all three semantics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_core::{eval_tuples, Semantics};
use crpq_util::Interner;
use crpq_workloads::paper_examples as paper;
use std::time::Duration;

fn bench_example21(c: &mut Criterion) {
    let mut sigma = Interner::new();
    let q = paper::example21_query(&mut sigma);
    let graphs = [
        ("G", paper::example21_g(&sigma)),
        ("Gprime", paper::example21_gprime(&sigma)),
        ("Gfull", paper::example21_full_separation(&sigma)),
    ];
    let mut group = c.benchmark_group("e2_example21");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for (name, g) in &graphs {
        for sem in Semantics::ALL {
            group.bench_function(BenchmarkId::new(*name, sem.short_name()), |b| {
                b.iter(|| eval_tuples(std::hint::black_box(&q), g, sem));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_example21);
criterion_main!(benches);
