//! E7 — Theorem 6.1 / Figure 6: GCP2 via the q-inj containment engine
//! versus brute force, scaling in graph size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_containment::{contain, Semantics};
use crpq_reductions::{gcp2_brute_force, gcp2_to_qinj_containment, Gcp2Instance};
use crpq_util::Interner;
use std::time::Duration;

fn cycle_instance(n: usize) -> Gcp2Instance {
    let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    Gcp2Instance::new(n, &edges, 2)
}

fn bench_gcp2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_gcp2");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [3usize, 4, 5] {
        let inst = cycle_instance(n);
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| gcp2_brute_force(&inst));
        });
        group.bench_with_input(BenchmarkId::new("via_reduction", n), &n, |b, _| {
            b.iter(|| {
                let mut it = Interner::new();
                let (q1, q2, _) = gcp2_to_qinj_containment(&inst, &mut it);
                let out = contain(&q1, &q2, Semantics::QueryInjective);
                // Cn is 2-colourable iff n even: positive ⟺ not contained.
                assert_eq!(out.as_bool(), Some(n % 2 == 1));
                out
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gcp2);
criterion_main!(benches);
