//! E10 — the §3 trichotomy discussion ([3]): the simple-path tractability
//! frontier, made executable.
//!
//! Three series:
//!
//! * `classify` — cost of the language classifier itself (monoid
//!   enumeration + deletion-closure inclusion) on canonical languages;
//! * `fastpath` — atom-injective evaluation of an `a·a*` atom on a clique
//!   with an unreachable target: the exact engine enumerates all simple
//!   paths (factorial wall), the analyzed engine answers by reachability
//!   (the NL-side of the trichotomy);
//! * `hard_class` — the `(a a)*` parity language on the same family: not
//!   deletion-closed, so *both* engines pay the NP-style search, matching
//!   the trichotomy's hard class.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_automata::tractability::{classify, AnalysisLimits};
use crpq_automata::{parse_regex, Nfa};
use crpq_core::{eval_contains, eval_contains_analyzed, Semantics};
use crpq_graph::{generators, GraphDb, NodeId};
use crpq_query::parse_crpq;
use crpq_util::Interner;
use std::time::Duration;

/// Clique of `n` `a`-nodes plus an isolated target `t` — negative
/// simple-path instances with maximal search space.
fn clique_with_unreachable_target(n: usize) -> (GraphDb, NodeId, NodeId) {
    let mut b = generators::clique(n, "a").into_builder();
    let t = b.node("t");
    let g = b.finish();
    let s = g.node_by_name("v0").unwrap();
    (g, s, t)
}

fn bench_classify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_classify");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for expr in ["a*", "(a a)*", "a* b a*", "(a b)*", "(a+b)* c (a+b)*"] {
        group.bench_with_input(BenchmarkId::new("classify", expr), &expr, |bench, e| {
            bench.iter(|| {
                let mut sigma = Interner::new();
                let nfa = Nfa::from_regex(&parse_regex(e, &mut sigma).unwrap());
                let alphabet: Vec<_> = nfa.symbols();
                classify(&nfa, &alphabet, AnalysisLimits::default())
            });
        });
    }
    group.finish();
}

fn bench_fastpath(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fastpath");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [6usize, 8, 9] {
        let (mut g, s, t) = clique_with_unreachable_target(n);
        let q = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |bench, _| {
            bench.iter(|| eval_contains(&q, &g, &[s, t], Semantics::AtomInjective));
        });
        group.bench_with_input(BenchmarkId::new("analyzed", n), &n, |bench, _| {
            bench.iter(|| eval_contains_analyzed(&q, &g, &[s, t], Semantics::AtomInjective));
        });
    }
    // The analyzed engine stays flat far beyond the exact engine's horizon.
    for n in [20usize, 40] {
        let (mut g, s, t) = clique_with_unreachable_target(n);
        let q = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        group.bench_with_input(BenchmarkId::new("analyzed", n), &n, |bench, _| {
            bench.iter(|| eval_contains_analyzed(&q, &g, &[s, t], Semantics::AtomInjective));
        });
    }
    group.finish();
}

fn bench_hard_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_hard_class");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [6usize, 8, 9] {
        let (mut g, s, t) = clique_with_unreachable_target(n);
        let q = parse_crpq("(x, y) <- x -[(a a)*]-> y", g.alphabet_mut()).unwrap();
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |bench, _| {
            bench.iter(|| eval_contains(&q, &g, &[s, t], Semantics::AtomInjective));
        });
        group.bench_with_input(BenchmarkId::new("analyzed", n), &n, |bench, _| {
            bench.iter(|| eval_contains_analyzed(&q, &g, &[s, t], Semantics::AtomInjective));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classify, bench_fastpath, bench_hard_class);
criterion_main!(benches);
