//! E5 — Theorem 5.1 / Appendix C: the PSpace abstraction engine versus the
//! naive expansion engine, including the cases only the abstraction engine
//! can decide (infinite left-hand languages).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_automata::Regex;
use crpq_containment::abstraction::try_contain_qinj;
use crpq_containment::{contain, Semantics};
use crpq_query::{Crpq, CrpqAtom, Var};
use crpq_util::Interner;
use std::time::Duration;

/// `Q1(k)` = chain of `k` starred atoms `x_{i} -[a_i a_i*]-> x_{i+1}`,
/// `Q2(k)` = the single-atom fusion — contained, decided by abstraction.
fn star_chain_pair(k: usize, it: &mut Interner) -> (Crpq, Crpq) {
    let syms: Vec<_> = (0..k).map(|i| it.intern(&format!("a{i}"))).collect();
    let atoms = (0..k)
        .map(|i| CrpqAtom {
            src: Var(i as u32),
            dst: Var(i as u32 + 1),
            regex: Regex::plus(Regex::lit(syms[i])),
        })
        .collect();
    let q1 = Crpq::with_free(atoms, vec![Var(0), Var(k as u32)]);
    let fused = Regex::concat((0..k).map(|i| Regex::plus(Regex::lit(syms[i]))).collect());
    let q2 = Crpq::with_free(
        vec![CrpqAtom {
            src: Var(0),
            dst: Var(1),
            regex: fused,
        }],
        vec![Var(0), Var(1)],
    );
    (q1, q2)
}

fn bench_abstraction_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_abstraction");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for k in [1usize, 2, 3] {
        let mut it = Interner::new();
        let (q1, q2) = star_chain_pair(k, &mut it);
        group.bench_with_input(BenchmarkId::new("abstraction", k), &k, |b, _| {
            b.iter(|| {
                assert_eq!(try_contain_qinj(&q1, &q2), Some(true));
            });
        });
    }
    group.finish();
}

fn bench_vs_naive(c: &mut Criterion) {
    // Finite instance decided by both engines.
    let mut it = Interner::new();
    let q1 = crpq_query::parse_crpq("x -[a b + b a]-> y", &mut it).unwrap();
    let q2 = crpq_query::parse_crpq("x -[(a+b)(a+b)]-> y", &mut it).unwrap();
    let mut group = c.benchmark_group("e5_engines");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("naive_finite", |b| {
        b.iter(|| contain(&q1, &q2, Semantics::QueryInjective));
    });
    group.bench_function("abstraction_finite", |b| {
        b.iter(|| try_contain_qinj(&q1, &q2));
    });
    group.finish();
}

criterion_group!(benches, bench_abstraction_scaling, bench_vs_naive);
criterion_main!(benches);
