//! E8 — Theorem 6.2 / Figure 7: ∀∃-QBF via the a-inj machinery — clean
//! quotient validation and the tiny full-engine cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_reductions::qbf::{
    check_reduction_clean_quotients, clean_quotient, qbf_to_ainj_containment,
};
use crpq_reductions::{qbf_brute_force, Literal, QbfInstance};
use crpq_util::Interner;
use std::time::Duration;

fn xor_instance(n: usize) -> QbfInstance {
    // ∀x₁…xₙ ∃y: (x₁ ∨ y)(¬x₁ ∨ ¬y) ∧ tautological padding per extra x.
    let mut clauses = vec![
        vec![Literal::X(0, true), Literal::Y(0, true)],
        vec![Literal::X(0, false), Literal::Y(0, false)],
    ];
    for i in 1..n {
        clauses.push(vec![Literal::X(i, true), Literal::X(i, false)]);
    }
    QbfInstance {
        num_universal: n,
        num_existential: 1,
        clauses,
    }
}

fn bench_qbf(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_qbf");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [1usize, 2, 3] {
        let inst = xor_instance(n);
        assert!(qbf_brute_force(&inst));
        group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
            b.iter(|| qbf_brute_force(&inst));
        });
        group.bench_with_input(BenchmarkId::new("encode", n), &n, |b, _| {
            b.iter(|| {
                let mut it = Interner::new();
                qbf_to_ainj_containment(&inst, &mut it)
            });
        });
        let mut it = Interner::new();
        let red = qbf_to_ainj_containment(&inst, &mut it);
        group.bench_with_input(BenchmarkId::new("clean_quotients", n), &n, |b, _| {
            b.iter(|| assert!(check_reduction_clean_quotients(&inst, &red)));
        });
        group.bench_with_input(BenchmarkId::new("single_quotient", n), &n, |b, _| {
            let xs = vec![true; n];
            b.iter(|| clean_quotient(&red, &xs));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qbf);
criterion_main!(benches);
