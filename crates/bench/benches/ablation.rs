//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * **parallel vs sequential** counter-example checking (crossbeam fan-out);
//! * **direct vs characterisation** evaluation engines (path search vs
//!   expansion + homomorphism — Prop 2.2/2.3);
//! * **reachability pruning** in the homomorphism/evaluation engine
//!   (measured via the exact-vs-overapproximate candidate domains on
//!   clique-shaped targets);
//! * **trail vs simple-path** search primitives on the same instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_containment::{contain_with, ContainmentConfig, Semantics};
use crpq_core::{eval_boolean, eval_tuples, expansion_eval, parallel::eval_tuples_parallel};
use crpq_graph::{generators, rpq};
use crpq_query::expansion::ExpansionLimits;
use crpq_query::parse_crpq;
use crpq_util::Interner;
use std::time::Duration;

fn bench_parallel_containment(c: &mut Criterion) {
    let mut it = Interner::new();
    // 2^10 expansions on the ∀-side, all matched (worst case).
    let q1 = {
        use crpq_automata::Regex;
        use crpq_query::{Crpq, CrpqAtom, Var};
        let a = it.intern("a");
        let b = it.intern("b");
        let atoms = (0..10)
            .map(|i| CrpqAtom {
                src: Var(i as u32),
                dst: Var(i as u32 + 1),
                regex: Regex::alt(vec![Regex::lit(a), Regex::lit(b)]),
            })
            .collect();
        Crpq::boolean(atoms)
    };
    let q2 = parse_crpq("x -[a + b]-> y", &mut it).unwrap();
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let out = contain_with(
                    &q1,
                    &q2,
                    Semantics::Standard,
                    ContainmentConfig {
                        limits: ExpansionLimits {
                            max_word_len: 1,
                            max_expansions: usize::MAX,
                        },
                        threads: t,
                    },
                );
                assert!(out.is_contained());
            });
        });
    }
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let mut g = generators::random_graph(8, 20, &["a", "b"], 5);
    let q = parse_crpq("x -[a b]-> y, y -[b a]-> z", g.alphabet_mut()).unwrap();
    let mut group = c.benchmark_group("ablation_engines");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for sem in Semantics::ALL {
        group.bench_function(BenchmarkId::new("direct", sem.short_name()), |b| {
            b.iter(|| eval_boolean(&q, &g, sem));
        });
        group.bench_function(BenchmarkId::new("expansion", sem.short_name()), |b| {
            b.iter(|| expansion_eval::eval_contains_complete(&q, &g, &[], sem));
        });
    }
    group.finish();
}

fn bench_parallel_eval(c: &mut Criterion) {
    let mut g = generators::random_graph(10, 30, &["a", "b", "c"], 9);
    let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
    let mut group = c.benchmark_group("ablation_parallel_eval");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("sequential", |b| {
        b.iter(|| eval_tuples(&q, &g, Semantics::AtomInjective));
    });
    group.bench_function("parallel_4", |b| {
        b.iter(|| eval_tuples_parallel(&q, &g, Semantics::AtomInjective, 4));
    });
    group.finish();
}

fn bench_path_primitives(c: &mut Criterion) {
    let mut g = generators::grid(4, 4, "r", "d");
    let regex =
        crpq_automata::parse_regex("(r+d)(r+d)(r+d)(r+d)(r+d)(r+d)", g.alphabet_mut()).unwrap();
    let nfa = crpq_automata::Nfa::from_regex(&regex);
    let s = g.node_by_name("g0_0").unwrap();
    let t = g.node_by_name("g3_3").unwrap();
    let mut group = c.benchmark_group("ablation_path_primitives");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("standard_reach", |b| {
        b.iter(|| rpq::rpq_exists(&g, &nfa, s, t));
    });
    group.bench_function("simple_path", |b| {
        b.iter(|| rpq::simple_path_exists(&g, &nfa, s, t, &g.node_set()));
    });
    group.bench_function("trail", |b| b.iter(|| rpq::trail_exists(&g, &nfa, s, t)));
    group.finish();
}

criterion_group!(
    benches,
    bench_parallel_containment,
    bench_engines,
    bench_parallel_eval,
    bench_path_primitives
);
criterion_main!(benches);
