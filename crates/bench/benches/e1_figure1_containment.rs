//! E1 — Figure 1: containment decision time per class-pair × semantics.
//!
//! Regenerates the *shape* of the complexity table: decision times per cell
//! on crafted families, with the ∀-side blowup visible for the Π₂ᵖ cells
//! and the abstraction engine carrying the PSpace cells.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_containment::{contain, Semantics};
use crpq_util::Interner;
use crpq_workloads::figure1::{instance, ClassPair};
use std::time::Duration;

fn bench_cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_figure1");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for pair in ClassPair::ALL {
        for sem in Semantics::ALL {
            // The a-inj ∀-side enumerates quotients: keep n tiny there.
            let n = if sem == Semantics::AtomInjective {
                2
            } else {
                3
            };
            let mut it = Interner::new();
            let inst = instance(pair, n, true, &mut it);
            let id = BenchmarkId::new(format!("{}::{}", pair.name(), sem.short_name()), n);
            group.bench_function(id, |bench| {
                bench.iter(|| contain(std::hint::black_box(&inst.q1), &inst.q2, sem));
            });
        }
    }
    group.finish();
}

fn bench_forall_blowup(c: &mut Criterion) {
    // The expansion-count blowup of the ∀-side: CRPQfin/CRPQfin with 2^n
    // expansions.
    let mut group = c.benchmark_group("e1_expansion_blowup");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [2usize, 4, 6, 8] {
        let mut it = Interner::new();
        let inst = instance(ClassPair::CrpqFinCrpqFin, n, true, &mut it);
        group.bench_with_input(BenchmarkId::new("st", n), &n, |b, _| {
            b.iter(|| contain(&inst.q1, &inst.q2, Semantics::Standard));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cells, bench_forall_blowup);
criterion_main!(benches);
