//! E4 — Example 4.7: the four containment facts (q-inj/a-inj
//! incomparability) decided by the engines.

use criterion::{criterion_group, criterion_main, Criterion};
use crpq_containment::{contain, Semantics};
use crpq_util::Interner;
use crpq_workloads::paper_examples::example47_queries;
use std::time::Duration;

fn bench_example47(c: &mut Criterion) {
    let mut sigma = Interner::new();
    let (q1, q2, q1p, q2p) = example47_queries(&mut sigma);
    let mut group = c.benchmark_group("e4_example47");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("Q1_sube_qinj_Q2", |b| {
        b.iter(|| {
            assert!(contain(&q1, &q2, Semantics::QueryInjective).is_contained());
        });
    });
    group.bench_function("Q1_not_sube_ainj_Q2", |b| {
        b.iter(|| {
            assert!(contain(&q1, &q2, Semantics::AtomInjective).is_not_contained());
        });
    });
    group.bench_function("Q1p_sube_ainj_Q2p", |b| {
        b.iter(|| {
            assert!(contain(&q1p, &q2p, Semantics::AtomInjective).is_contained());
        });
    });
    group.bench_function("Q1p_not_sube_qinj_Q2p", |b| {
        b.iter(|| {
            assert!(contain(&q1p, &q2p, Semantics::QueryInjective).is_not_contained());
        });
    });
    group.finish();
}

criterion_group!(benches, bench_example47);
criterion_main!(benches);
