//! E9 — Prop 3.1/3.2: evaluation complexity.
//!
//! * data complexity: fixed query, growing graphs — standard stays
//!   polynomial, injective semantics pay the simple-path premium;
//! * combined complexity: growing chain query, fixed graph;
//! * the exponential simple-path wall on diamond ladders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_core::{eval_boolean, eval_contains, Semantics};
use crpq_graph::{rpq, NodeId};
use crpq_util::Interner;
use crpq_workloads::scaling;
use std::time::Duration;

fn bench_data_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_data");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let mut sigma = Interner::new();
    let q = scaling::data_complexity_query(&mut sigma);
    for n in [6usize, 10, 14] {
        let g = scaling::data_complexity_graph(n, 11);
        let tuple = [NodeId(0), NodeId((n - 1) as u32)];
        for sem in Semantics::ALL {
            group.bench_with_input(BenchmarkId::new(sem.short_name(), n), &n, |b, _| {
                b.iter(|| eval_contains(&q, &g, &tuple, sem));
            });
        }
    }
    group.finish();
}

fn bench_combined_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_combined");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    let g = scaling::combined_complexity_graph(3);
    for k in [2usize, 4, 6] {
        let mut sigma = Interner::new();
        let q = scaling::combined_complexity_query(k, &mut sigma);
        for sem in Semantics::ALL {
            group.bench_with_input(BenchmarkId::new(sem.short_name(), k), &k, |b, _| {
                b.iter(|| eval_boolean(&q, &g, sem));
            });
        }
    }
    group.finish();
}

fn bench_simple_path_wall(c: &mut Criterion) {
    // The NP wall in its purest form: failing simple-path search explores
    // all 2^n routes of the diamond ladder.
    let mut group = c.benchmark_group("e9_simple_path_wall");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for n in [6usize, 9, 12] {
        let mut g = scaling::diamond_ladder(n);
        let expr = vec!["a"; 2 * n + 1].join(" ");
        let regex = crpq_automata::parse_regex(&expr, g.alphabet_mut()).unwrap();
        let nfa = crpq_automata::Nfa::from_regex(&regex);
        let s = g.node_by_name("s0").unwrap();
        let t = g.node_by_name(&format!("s{n}")).unwrap();
        group.bench_with_input(BenchmarkId::new("simple_path_fail", n), &n, |b, _| {
            b.iter(|| {
                assert!(!rpq::simple_path_exists(&g, &nfa, s, t, &g.node_set()));
            });
        });
        // Standard reachability on the same instance is instant.
        group.bench_with_input(BenchmarkId::new("standard_reach", n), &n, |b, _| {
            b.iter(|| rpq::rpq_exists(&g, &nfa, s, t));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_data_complexity,
    bench_combined_complexity,
    bench_simple_path_wall
);
criterion_main!(benches);
