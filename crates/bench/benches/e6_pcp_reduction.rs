//! E6 — Theorem 5.2 / Figures 4–5: the PCP reduction pipeline — encoding
//! construction, witness building, and the I-Î condition check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use crpq_reductions::pcp::{pcp_to_ainj_containment, satisfies_wellformedness, witness_expansion};
use crpq_reductions::{pcp_brute_force, PcpInstance};
use crpq_util::Interner;
use std::time::Duration;

fn solvable() -> PcpInstance {
    PcpInstance {
        pairs: vec![("ab".into(), "a".into()), ("c".into(), "bc".into())],
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let inst = solvable();
    let mut group = c.benchmark_group("e6_pcp");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut it = Interner::new();
            pcp_to_ainj_containment(&inst, &mut it)
        });
    });
    group.bench_function("solve_bounded", |b| {
        b.iter(|| pcp_brute_force(&inst, 6).unwrap());
    });
    let mut it = Interner::new();
    let red = pcp_to_ainj_containment(&inst, &mut it);
    let sol = pcp_brute_force(&inst, 6).unwrap();
    group.bench_function("witness_and_check", |b| {
        b.iter(|| {
            let w = witness_expansion(&red, &inst, &sol, false);
            assert!(satisfies_wellformedness(&red, &w));
        });
    });
    group.finish();
}

fn bench_witness_scaling(c: &mut Criterion) {
    // Longer pumped solutions (repeating the base solution) scale the
    // witness-check cost.
    let inst = solvable();
    let mut it = Interner::new();
    let red = pcp_to_ainj_containment(&inst, &mut it);
    let base = pcp_brute_force(&inst, 6).unwrap();
    let mut group = c.benchmark_group("e6_witness_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(1));
    for reps in [1usize, 2, 4] {
        let sol: Vec<usize> = std::iter::repeat_n(base.clone(), reps).flatten().collect();
        // Repetition of a solution is again a solution.
        assert!(inst.is_solution(&sol));
        group.bench_with_input(BenchmarkId::from_parameter(reps), &reps, |b, _| {
            b.iter(|| {
                let w = witness_expansion(&red, &inst, &sol, false);
                satisfies_wellformedness(&red, &w)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_witness_scaling);
criterion_main!(benches);
