//! `BENCH_eval` — wall-clock comparison of the join-based evaluator against
//! the legacy `|V|^arity` enumeration oracle on the E2 (Example 2.1) and E9
//! (data-complexity) workloads, written to a JSON baseline file.
//!
//! The JSON is hand-serialised (the workspace's `serde` is an offline no-op
//! shim); the schema is one `rows` array with a `workload` discriminator.

use crpq_core::{eval_tuples_with, EvalStrategy, Semantics};
use crpq_graph::GraphDb;
use crpq_query::Crpq;
use crpq_util::Interner;
use crpq_workloads::{paper_examples as paper, scaling};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    workload: String,
    graph: String,
    nodes: usize,
    edges: usize,
    arity: usize,
    semantics: &'static str,
    tuples: usize,
    join_ms: f64,
    legacy_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy_ms / self.join_ms.max(1e-9)
    }
}

/// Times one invocation of `f`, returning milliseconds.
fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Best-of-`n` timing, to damp scheduler noise. Both engines go through
/// this with the same `n` — asymmetric sampling would bias the reported
/// speedups.
fn time_best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..n {
        let (v, ms) = time_once(&mut f);
        best = best.min(ms);
        out = Some(v);
    }
    (out.unwrap(), best)
}

fn measure(workload: &str, graph_name: &str, q: &Crpq, g: &GraphDb, sem: Semantics) -> Row {
    const SAMPLES: usize = 3;
    let (join, join_ms) = time_best_of(SAMPLES, || eval_tuples_with(q, g, sem, EvalStrategy::Join));
    let (legacy, legacy_ms) = time_best_of(SAMPLES, || {
        eval_tuples_with(q, g, sem, EvalStrategy::Enumerate)
    });
    assert_eq!(
        join, legacy,
        "join/legacy result mismatch on {workload}/{graph_name} {sem}"
    );
    Row {
        workload: workload.to_owned(),
        graph: graph_name.to_owned(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        arity: q.free.len(),
        semantics: sem.short_name(),
        tuples: join.len(),
        join_ms,
        legacy_ms,
    }
}

/// Runs the E2 + E9 evaluation comparison and writes `path`.
///
/// With `enforce_floor`, the ≥10× headline speedup is a hard assertion
/// (the CI smoke gate); without it, a shortfall is only reported — the
/// full experiment suite should finish with measurements either way.
pub fn run_smoke(path: &str, enforce_floor: bool) {
    println!("## BENCH_eval — join-based vs. legacy enumeration\n");
    println!("| workload | graph | n | sem | tuples | join | legacy | speedup |");
    println!("|---|---|---|---|---|---|---|---|");
    let mut rows: Vec<Row> = Vec::new();

    // E2: the paper's running example, all three semantics.
    let mut sigma = Interner::new();
    let q = paper::example21_query(&mut sigma);
    for (name, g) in [
        ("G", paper::example21_g(&sigma)),
        ("Gprime", paper::example21_gprime(&sigma)),
        ("Gfull", paper::example21_full_separation(&sigma)),
    ] {
        for sem in Semantics::ALL {
            rows.push(measure("e2_example21", name, &q, &g, sem));
        }
    }

    // E9 data complexity: fixed arity-2 query, growing random graphs.
    // Standard semantics scales to |V| = 10³ (the headline join-vs-legacy
    // comparison); the injective semantics are measured at |V| = 10² where
    // the legacy oracle still terminates quickly.
    let mut sigma = Interner::new();
    let q = scaling::data_complexity_query(&mut sigma);
    for n in [100usize, 300, 1000] {
        let g = scaling::data_complexity_graph(n, 11);
        rows.push(measure(
            "e9_data_complexity",
            &format!("random({n})"),
            &q,
            &g,
            Semantics::Standard,
        ));
        if n <= 100 {
            for sem in [Semantics::AtomInjective, Semantics::QueryInjective] {
                rows.push(measure(
                    "e9_data_complexity",
                    &format!("random({n})"),
                    &q,
                    &g,
                    sem,
                ));
            }
        }
    }

    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {:.3}ms | {:.3}ms | {:.1}x |",
            r.workload,
            r.graph,
            r.nodes,
            r.semantics,
            r.tuples,
            r.join_ms,
            r.legacy_ms,
            r.speedup()
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p crpq-bench --bin experiments -- --smoke\",\n",
    );
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"graph\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"arity\": {}, \"semantics\": \"{}\", \"tuples\": {}, \"join_ms\": {:.4}, \
             \"legacy_ms\": {:.4}, \"speedup\": {:.2}}}{}",
            r.workload,
            r.graph,
            r.nodes,
            r.edges,
            r.arity,
            r.semantics,
            r.tuples,
            r.join_ms,
            r.legacy_ms,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).expect("write BENCH_eval.json");
    println!("\nwrote {path}");

    // The headline number the CI smoke asserts on: at |V| ≈ 10³, arity 2,
    // the join engine must beat legacy enumeration by ≥ 10×.
    let headline = rows
        .iter()
        .filter(|r| r.workload == "e9_data_complexity" && r.nodes >= 1000)
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    println!("headline e9 speedup at |V|=10^3: {headline:.1}x (target ≥ 10x)");
    if enforce_floor {
        assert!(
            headline >= 10.0,
            "join-based evaluator regressed below the 10x target: {headline:.1}x"
        );
    } else if headline < 10.0 {
        println!("warning: headline below the 10x target (not enforced outside --smoke)");
    }
}
