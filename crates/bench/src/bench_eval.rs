//! `BENCH_eval` — wall-clock comparison of the catalog-backed planner
//! engine against (a) the pre-catalog per-variant join engine and (b) the
//! legacy `|V|^arity` enumeration oracle, on the E2 (Example 2.1) and E9
//! (data-complexity) workloads, written to a JSON baseline file.
//!
//! Three engines per row:
//!
//! * **join** — the catalog-backed planner ([`eval_tuples_with_catalog`]):
//!   each distinct atom relation materialised once per query (shared
//!   across ε-free variants), per-source sweeps partitioned across threads,
//!   density-adaptive relation rows. Per-row catalog metrics (hits, misses,
//!   hit rate, materialisation wall clock) come from one instrumented run.
//! * **unshared** — the PR-1 measurement baseline
//!   ([`eval_tuples_join_unshared`]): same join pipeline, but every variant
//!   rebuilds its atom relations from scratch, sequentially.
//! * **legacy** — the enumeration oracle ([`EvalStrategy::Enumerate`]).
//!
//! Every row also records a **peak-RSS proxy**: `index_bytes` (the graph's
//! adjacency indexes, node-major flat arrays + both label-partitioned
//! CSRs) and `rel_bytes` (every relation materialised by the instrumented
//! catalog run) — the two allocation sinks that gate large-graph scaling.
//!
//! The **scale workloads** (`scale_rows` in the JSON) are too large for
//! the legacy enumeration oracle, so they record only the catalog
//! engine's build/evaluation wall clock plus the memory proxies
//! (`index_bytes`, `name_bytes`, `rel_bytes`, `scratch_bytes`):
//!
//! * `scale_label_rich` evaluates [`scaling::label_rich_query`] over
//!   [`scaling::label_rich_graph`] (`4n` edges,
//!   [`scaling::LABEL_RICH_LABELS`] = 10³ Zipf-distributed labels) and
//!   asserts the sparse per-label CSR memory contract (offsets
//!   `O(|E| + Σ_l |V_l|)`, nowhere near the dense `O(|labels|·|V|)` cross
//!   product). `--smoke` runs `|V| = 10⁴`, `--scale-smoke` `|V| = 10⁵`
//!   under a hard wall-clock ceiling (the PR-3 CI gate, unchanged).
//! * `scale_million` evaluates [`scaling::million_query`] over
//!   [`scaling::million_graph`] (anonymous nodes, `4n` uniform edges over
//!   [`scaling::MILLION_LABELS`] labels) and asserts the O(touched)
//!   contract of the |V|-scale pipeline: zero name bytes, graph index +
//!   names under an explicit per-size budget, and peak sweep-scratch bytes
//!   far below one dense `|V|·|Q|` stamp array. `--smoke` runs `|V| = 10⁵`;
//!   `--scale-smoke` runs both `|V| = 10⁶ / 4·10⁶` edges (~200 MB budget)
//!   and `|V| = 10⁷ / 4·10⁷` edges (~2.4 GB index budget — the graph index
//!   is linear in |V|; the relation + scratch side must stay O(touched)),
//!   each under its own wall-clock ceiling.
//!
//! The **scheduler workloads** (`steal_rows` in `BENCH_scale.json`) time
//! the work-stealing parallel evaluator ([`eval_tuples_parallel`]) against
//! the static-partitioning baseline ([`eval_tuples_parallel_static`]) on a
//! Zipf-skewed label-rich graph ([`scaling::steal_skew_graph`]), where a
//! static top-level split strands most workers behind the hot node's
//! subtree. `--scale-smoke` enforces the ≥ 1.5× stealing floor on machines
//! with ≥ 4 CPUs; `scale_rows`/`steal_rows` are written append-style so
//! the cross-PR perf trajectory stays visible in the baseline file.
//!
//! The **cyclic workloads** (`cyclic_rows` in the JSON) time the
//! worst-case-optimal executor ([`EvalStrategy::Wcoj`]) against the forced
//! backtracking binary join ([`EvalStrategy::BinaryJoin`]) on the
//! triangle / 4-cycle / diamond-with-chord CRPQs of
//! [`crpq_workloads::cyclic`] — the shapes the default engine's structural
//! dispatch sends to WCOJ. `--smoke` asserts WCOJ is no slower than the
//! binary join on the triangle row.
//!
//! The **streaming workloads** (`stream_rows` in the JSON) time the
//! early-exit enumeration API on the million-node family: warm-catalog
//! time-to-first-tuple ([`eval_limit_with_catalog`] with k = 1),
//! time-to-k, `ASK` ([`eval_ask_with_catalog`]) and the cold end-to-end
//! first tuple off the pull stream ([`eval_stream`]), against the warm
//! full materialisation over the same catalog. `--smoke` enforces the CI
//! floors at `|V| = 10⁶`: time-to-first ≤ 10 % of the full-materialisation
//! wall clock, and `ASK` no slower than time-to-first (small noise guard).
//!
//! The **mutation workloads** (`mutate_rows` in `BENCH_scale.json`, the
//! `--mutate-smoke` gate) exercise the dynamic-graph path: a
//! [`DeltaGraph`] overlay over the `|V| = 10⁵` million-family graph under
//! single-hot-label churn, queried through a persistent
//! [`RelationCatalog`] by a mixed-label workload. Per row: mutation apply
//! latency, warm query latency, and requery latency after
//! **footprint-keyed** invalidation ([`RelationCatalog::invalidate_label`]
//! — only entries whose NFA alphabet mentions the churned label are
//! evicted) vs. after evict-all, with the CI floor that footprint keying
//! beats evict-all and the eviction counters prove a strict subset was
//! evicted.
//!
//! The JSON is hand-serialised (the workspace's `serde` is an offline no-op
//! shim); the schema is `rows` + `scale_rows` + `stream_rows` +
//! `cyclic_rows` arrays with `workload` discriminators (`BENCH_scale.json`
//! holds `scale_rows` + `steal_rows` + `mutate_rows` + `wal_rows` — the
//! last measured by the `--wal-smoke` durability gate: WAL apply latency
//! per sync policy plus recovery wall clock). Rows in **both**
//! baseline files are written append-style but **deduped** by
//! `(workload, graph, semantics, |V|, threads)` (absent fields key on
//! empty/0) — a repeated CI run replaces its own prior measurement instead
//! of growing the file unboundedly, while configurations no longer
//! measured keep their trajectory.

use crpq_core::{
    eval_ask_with_catalog, eval_limit_with_catalog, eval_stream, eval_tuples_join_unshared,
    eval_tuples_parallel, eval_tuples_parallel_static, eval_tuples_with, eval_tuples_with_catalog,
    EvalStrategy, RelationCatalog, Semantics,
};
use crpq_graph::{DeltaGraph, DurableGraph, EdgeMutation, GraphDb, GraphView, NodeId, SyncPolicy};
use crpq_query::{parse_crpq, Crpq};
use crpq_util::Interner;
use crpq_workloads::{cyclic, paper_examples as paper, scaling};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct Row {
    workload: String,
    graph: String,
    nodes: usize,
    edges: usize,
    arity: usize,
    semantics: &'static str,
    tuples: usize,
    /// Catalog-backed planner engine (the production path).
    join_ms: f64,
    /// PR-1 baseline: per-variant relation rebuild, sequential sweeps.
    unshared_ms: f64,
    /// `|V|^arity` enumeration oracle.
    legacy_ms: f64,
    /// Relation-materialisation wall clock inside one catalog-backed run.
    mat_ms: f64,
    catalog_hits: usize,
    catalog_misses: usize,
    /// Heap bytes of the graph's adjacency indexes (peak-RSS proxy).
    index_bytes: usize,
    /// Heap bytes of the catalog's materialised relations (peak-RSS proxy).
    rel_bytes: usize,
    /// Peak per-materialisation sweep-scratch bytes (stamp arrays +
    /// sparse visited maps, summed across workers) of the instrumented
    /// catalog run — so scratch regressions show up in the baselines.
    scratch_bytes: usize,
}

impl Row {
    /// The headline join-vs-legacy speedup (the ≥10× CI floor).
    fn speedup(&self) -> f64 {
        self.legacy_ms / self.join_ms.max(1e-9)
    }

    /// What atom sharing + parallel materialisation buy over the
    /// per-variant baseline (the ≥2× planner target).
    fn catalog_speedup(&self) -> f64 {
        self.unshared_ms / self.join_ms.max(1e-9)
    }

    fn hit_rate(&self) -> f64 {
        let total = self.catalog_hits + self.catalog_misses;
        if total == 0 {
            0.0
        } else {
            self.catalog_hits as f64 / total as f64
        }
    }
}

/// Times one invocation of `f`, returning milliseconds.
fn time_once<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Best-of-`n` timing, to damp scheduler noise. All engines go through
/// this with the same `n` — asymmetric sampling would bias the reported
/// speedups.
fn time_best_of<T>(n: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let (mut out, mut best) = time_once(&mut f);
    for _ in 1..n {
        let (v, ms) = time_once(&mut f);
        best = best.min(ms);
        out = v;
    }
    (out, best)
}

fn measure(
    workload: &str,
    graph_name: &str,
    q: &Crpq,
    g: &GraphDb,
    sem: Semantics,
    threads: usize,
) -> Row {
    const SAMPLES: usize = 3;
    // Every sample gets a fresh catalog so the timing covers the full
    // materialise-and-join cost (a warm catalog would make later samples
    // all-hits and flatter the engine).
    let (join, join_ms) = time_best_of(SAMPLES, || {
        let mut catalog = RelationCatalog::with_threads(g, threads);
        eval_tuples_with_catalog(q, g, sem, &mut catalog)
    });
    // One instrumented run for the catalog metrics.
    let mut catalog = RelationCatalog::with_threads(g, threads);
    let _ = eval_tuples_with_catalog(q, g, sem, &mut catalog);
    let (unshared, unshared_ms) = time_best_of(SAMPLES, || eval_tuples_join_unshared(q, g, sem));
    let (legacy, legacy_ms) = time_best_of(SAMPLES, || {
        eval_tuples_with(q, g, sem, EvalStrategy::Enumerate)
    });
    assert_eq!(
        join, legacy,
        "join/legacy result mismatch on {workload}/{graph_name} {sem}"
    );
    assert_eq!(
        join, unshared,
        "shared/unshared result mismatch on {workload}/{graph_name} {sem}"
    );
    Row {
        workload: workload.to_owned(),
        graph: graph_name.to_owned(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        arity: q.free.len(),
        semantics: sem.short_name(),
        tuples: join.len(),
        join_ms,
        unshared_ms,
        legacy_ms,
        mat_ms: catalog.materialise_ms(),
        catalog_hits: catalog.hits(),
        catalog_misses: catalog.misses(),
        index_bytes: g.index_bytes(),
        rel_bytes: catalog.relation_bytes(),
        scratch_bytes: catalog.peak_scratch_bytes(),
    }
}

/// One row of the cyclic-shape workloads (`cyclic_rows` in the JSON):
/// wall clock of the worst-case-optimal executor vs. the backtracking
/// binary join on the same variant plans, standard semantics.
struct CyclicRow {
    workload: String,
    nodes: usize,
    edges: usize,
    tuples: usize,
    /// Forced [`EvalStrategy::Wcoj`] (what [`EvalStrategy::Join`]
    /// auto-dispatch runs on these cyclic shapes).
    wcoj_ms: f64,
    /// Forced [`EvalStrategy::BinaryJoin`] (the pre-WCOJ engine).
    binary_ms: f64,
}

impl CyclicRow {
    fn wcoj_speedup(&self) -> f64 {
        self.binary_ms / self.wcoj_ms.max(1e-9)
    }
}

/// Times the two join executors on one cyclic workload (standard
/// semantics — the executors differ only in search, so `st` isolates the
/// join cost from injective verification). Both runs include their own
/// catalog materialisation, which is identical work on either side.
fn measure_cyclic(workload: &str, q: &Crpq, g: &GraphDb) -> CyclicRow {
    const SAMPLES: usize = 3;
    let (wcoj, wcoj_ms) = time_best_of(SAMPLES, || {
        eval_tuples_with(q, g, Semantics::Standard, EvalStrategy::Wcoj)
    });
    let (binary, binary_ms) = time_best_of(SAMPLES, || {
        eval_tuples_with(q, g, Semantics::Standard, EvalStrategy::BinaryJoin)
    });
    assert_eq!(wcoj, binary, "wcoj/binary result mismatch on {workload}");
    CyclicRow {
        workload: workload.to_owned(),
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        tuples: wcoj.len(),
        wcoj_ms,
        binary_ms,
    }
}

/// The cyclic workload suite: triangle (the CI floor carrier), 4-cycle and
/// diamond-with-chord, at sizes where the binary join's intermediate
/// bindings are felt but the smoke stays fast.
fn measure_cyclic_rows() -> Vec<CyclicRow> {
    let mut rows = Vec::new();
    {
        let mut g = cyclic::cyclic_graph(20_000, 11);
        let q = cyclic::triangle_query(g.alphabet_mut());
        rows.push(measure_cyclic("cyclic_triangle", &q, &g));
    }
    {
        let mut g = cyclic::cyclic_graph(8_000, 13);
        let q = cyclic::four_cycle_query(g.alphabet_mut());
        rows.push(measure_cyclic("cyclic_4cycle", &q, &g));
    }
    {
        let mut g = cyclic::cyclic_graph_with_density(3_000, 8, 17);
        let q = cyclic::diamond_chord_query(g.alphabet_mut());
        rows.push(measure_cyclic("cyclic_diamond_chord", &q, &g));
    }
    rows
}

fn cyclic_rows_json(rows: &[CyclicRow]) -> String {
    let mut json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"edges\": {}, \"tuples\": {}, \
             \"wcoj_ms\": {:.4}, \"binary_ms\": {:.4}, \"wcoj_speedup\": {:.2}}}{}",
            r.workload,
            r.nodes,
            r.edges,
            r.tuples,
            r.wcoj_ms,
            r.binary_ms,
            r.wcoj_speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json
}

fn print_cyclic_rows(rows: &[CyclicRow]) {
    println!("\n## cyclic shapes — worst-case-optimal join vs. backtracking binary join (st)\n");
    println!("| workload | n | edges | tuples | wcoj | binary | wcoj-x |");
    println!("|---|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {:.1}ms | {:.1}ms | {:.1}x |",
            r.workload,
            r.nodes,
            r.edges,
            r.tuples,
            r.wcoj_ms,
            r.binary_ms,
            r.wcoj_speedup(),
        );
    }
}

/// One row of the streaming workloads (`stream_rows` in the JSON): the
/// early-exit enumeration fast paths against full materialisation on the
/// million-node family, standard semantics.
struct StreamRow {
    workload: &'static str,
    nodes: usize,
    edges: usize,
    tuples: usize,
    /// Warm-catalog full materialisation — the baseline the floors
    /// compare against. Warm on both sides so the ratios measure search
    /// early-exit, not relation-materialisation sharing.
    full_ms: f64,
    /// Warm-catalog time-to-first-tuple (`eval_limit` with k = 1).
    ttf_ms: f64,
    /// Warm-catalog time-to-k.
    ttk_ms: f64,
    /// The k of `ttk_ms`.
    k: usize,
    /// Warm-catalog existence check (`eval_ask`).
    ask_ms: f64,
    /// Cold end-to-end wall clock until the pull stream yields its first
    /// tuple — includes relation materialisation, i.e. what a fresh
    /// caller actually waits.
    stream_first_ms: f64,
}

impl StreamRow {
    fn ttf_fraction(&self) -> f64 {
        self.ttf_ms / self.full_ms.max(1e-9)
    }
}

/// Measures the streaming fast paths on the million-node family at `n`
/// nodes. With `enforce_floor` (the CI gate at `|V| = 10⁶`):
/// time-to-first-tuple must be ≤ 10 % of the warm full-materialisation
/// wall clock, and `ASK` must be no slower than time-to-first (they do
/// the same search; a 5 % + 1 ms guard absorbs timer noise).
fn measure_stream(n: usize, threads: usize, enforce_floor: bool) -> StreamRow {
    const SAMPLES: usize = 3;
    const K: usize = 64;
    let mut g = scaling::million_graph(n, 7);
    let q = scaling::million_query(g.alphabet_mut());
    // Warm the shared catalog once; every timed path below then runs over
    // identical, already-materialised relations.
    let mut catalog = RelationCatalog::with_threads(&g, threads);
    let tuples = eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog).len();
    assert!(
        tuples > K,
        "stream workload returned {tuples} tuples — too few for the time-to-k comparison"
    );
    let (_, full_ms) = time_best_of(SAMPLES, || {
        eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog)
    });
    let (first, ttf_ms) = time_best_of(SAMPLES, || {
        eval_limit_with_catalog(&q, &g, Semantics::Standard, 1, &mut catalog)
    });
    assert_eq!(first.len(), 1, "time-to-first run must yield one tuple");
    let (topk, ttk_ms) = time_best_of(SAMPLES, || {
        eval_limit_with_catalog(&q, &g, Semantics::Standard, K, &mut catalog)
    });
    assert_eq!(topk.len(), K, "time-to-k run must yield k tuples");
    let (exists, ask_ms) = time_best_of(SAMPLES, || {
        eval_ask_with_catalog(&q, &g, Semantics::Standard, &mut catalog)
    });
    assert!(exists, "ASK must find the witness the full run found");
    // Cold path: a fresh stream materialises its own relations before the
    // first tuple can surface.
    let g = Arc::new(g);
    let (_, stream_first_ms) = time_once(|| {
        eval_stream(&q, &g, Semantics::Standard)
            .next()
            .expect("stream must yield a first tuple") // invariant: the workload has answers (asserted above)
    });
    let row = StreamRow {
        workload: "stream_million",
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        tuples,
        full_ms,
        ttf_ms,
        ttk_ms,
        k: K,
        ask_ms,
        stream_first_ms,
    };
    if enforce_floor {
        assert!(
            row.ttf_fraction() <= 0.10,
            "time-to-first-tuple above 10% of full materialisation at n={n}: \
             {:.2}ms vs {:.2}ms ({:.0}%)",
            row.ttf_ms,
            row.full_ms,
            row.ttf_fraction() * 100.0
        );
        assert!(
            row.ask_ms <= row.ttf_ms * 1.05 + 1.0,
            "ASK slower than time-to-first-tuple at n={n}: {:.2}ms vs {:.2}ms",
            row.ask_ms,
            row.ttf_ms
        );
    }
    row
}

fn stream_rows_json(rows: &[StreamRow]) -> String {
    let mut json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"edges\": {}, \"tuples\": {}, \
             \"full_ms\": {:.4}, \"ttf_ms\": {:.4}, \"ttk_ms\": {:.4}, \"k\": {}, \
             \"ask_ms\": {:.4}, \"stream_first_ms\": {:.4}, \"ttf_fraction\": {:.4}}}{}",
            r.workload,
            r.nodes,
            r.edges,
            r.tuples,
            r.full_ms,
            r.ttf_ms,
            r.ttk_ms,
            r.k,
            r.ask_ms,
            r.stream_first_ms,
            r.ttf_fraction(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json
}

fn print_stream_rows(rows: &[StreamRow]) {
    println!("\n## streaming enumeration — early-exit fast paths vs full materialisation (st)\n");
    println!("| workload | n | tuples | full (warm) | first | k={} | ask | first (cold stream) | first/full |", rows.first().map_or(64, |r| r.k));
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {:.1}ms | {:.2}ms | {:.2}ms | {:.2}ms | {:.1}ms | {:.1}% |",
            r.workload,
            r.nodes,
            r.tuples,
            r.full_ms,
            r.ttf_ms,
            r.ttk_ms,
            r.ask_ms,
            r.stream_first_ms,
            r.ttf_fraction() * 100.0,
        );
    }
}

/// One row of the scale workloads (`scale_rows` in the JSON): the
/// label-rich Zipf family (`scale_label_rich`) and the million-node
/// anonymous family (`scale_million`).
struct ScaleRow {
    workload: &'static str,
    nodes: usize,
    edges: usize,
    labels: usize,
    tuples: usize,
    build_ms: f64,
    eval_ms: f64,
    mat_ms: f64,
    index_bytes: usize,
    /// Node-name storage bytes (single arena for named graphs, 0 for
    /// anonymous ones) — the term that used to be per-name `String`s.
    name_bytes: usize,
    rel_bytes: usize,
    /// Peak sweep-scratch bytes across workers (see [`Row::scratch_bytes`]).
    scratch_bytes: usize,
    /// Offset/index bytes of the two label-partitioned CSRs — the term
    /// that was `O(|labels|·|V|)` in the dense layout.
    csr_offset_bytes: usize,
    /// What the dense `label × node` layout would have paid for the same
    /// graph (both directions).
    dense_offset_bytes: usize,
}

/// Builds the label-rich graph at `n` nodes and evaluates the scale query
/// once through the catalog engine, asserting the sparse-offset memory
/// contract. With `enforce_ceiling`, build + evaluation must also finish
/// under `ceiling_ms` — the CI scale gate.
fn measure_scale(n: usize, ceiling_ms: f64, enforce_ceiling: bool, threads: usize) -> ScaleRow {
    let (mut g, build_ms) = time_once(|| scaling::label_rich_graph(n, 5));
    let q = scaling::label_rich_query(g.alphabet_mut());
    let mut catalog = RelationCatalog::with_threads(&g, threads);
    let (tuples, eval_ms) =
        time_once(|| eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog).len());

    assert!(
        tuples > 0,
        "label-rich scale workload returned no tuples — the join is degenerate \
         and the smoke proves nothing"
    );
    let (fwd, rev) = (g.forward_csr(), g.reverse_csr());
    let csr_offset_bytes = fwd.offset_bytes() + rev.offset_bytes();
    let dense_offset_bytes = 2 * 4 * (g.alphabet().len() * g.num_nodes() + 1);
    // The sparse layout's contract: offsets are O(|E| + Σ_l |V_l|) —
    // bounded by a small constant per edge/slot/label — and nowhere near
    // the dense label × node cross product on label-rich graphs.
    let slots = fwd.touched_slots() + rev.touched_slots();
    let structural_bound = 4 * (2 * slots + 2 * (g.alphabet().len() + 1) + 2) + 64;
    assert!(
        csr_offset_bytes <= structural_bound,
        "label-index offsets {csr_offset_bytes} B exceed the O(|E| + Σ_l |V_l|) bound \
         {structural_bound} B"
    );
    assert!(
        csr_offset_bytes * 8 <= dense_offset_bytes,
        "label-index offsets {csr_offset_bytes} B not an 8x+ win over the dense \
         label × node layout ({dense_offset_bytes} B)"
    );
    if enforce_ceiling {
        let total = build_ms + eval_ms;
        assert!(
            total <= ceiling_ms,
            "scale smoke exceeded the wall-clock ceiling: {total:.0}ms > {ceiling_ms:.0}ms"
        );
    }
    ScaleRow {
        workload: "scale_label_rich",
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        labels: g.alphabet().len(),
        tuples,
        build_ms,
        eval_ms,
        mat_ms: catalog.materialise_ms(),
        index_bytes: g.index_bytes(),
        name_bytes: g.name_bytes(),
        rel_bytes: catalog.relation_bytes(),
        scratch_bytes: catalog.peak_scratch_bytes(),
        csr_offset_bytes,
        dense_offset_bytes,
    }
}

/// Builds the million-node anonymous graph at `n` nodes / `4n` edges and
/// evaluates the anchored chain query once through the catalog engine (st),
/// asserting the |V|-scale memory contracts of the O(touched) pipeline:
///
/// * node-name storage is **zero** bytes (anonymous mode — the named mode
///   would be a single arena, never per-name `String`s);
/// * graph index + names stay under the ~200 MB budget at 10⁶ nodes (the
///   pre-arena layout extrapolated to ≥ 1.5 GB);
/// * no materialisation run allocated dense per-worker stamp arrays: peak
///   sweep-scratch bytes stay far below one `|V|·|Q|` stamp array, let
///   alone one per worker.
///
/// With `enforce_ceiling`, build + evaluation must also finish under
/// `ceiling_ms` — the CI scale gate. `build_bytes_budget` is the explicit
/// index + names contract for the size being measured
/// ([`MILLION_BYTES_BUDGET`] at 10⁶ nodes, [`TEN_MILLION_BYTES_BUDGET`]
/// at 10⁷ — the budget is per-row because the graph index itself grows
/// linearly; what must NOT grow with |V| is the relation/scratch side).
fn measure_million(
    n: usize,
    ceiling_ms: f64,
    enforce_ceiling: bool,
    threads: usize,
    build_bytes_budget: usize,
) -> ScaleRow {
    let (mut g, build_ms) = time_once(|| scaling::million_graph(n, 7));
    let q = scaling::million_query(g.alphabet_mut());
    let mut catalog = RelationCatalog::with_threads(&g, threads);
    let (tuples, eval_ms) =
        time_once(|| eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog).len());
    assert!(
        tuples > 0,
        "million-scale workload returned no tuples — the smoke proves nothing"
    );
    assert_eq!(
        g.name_bytes(),
        0,
        "anonymous scale graph must store zero name bytes"
    );
    let build_bytes = g.index_bytes() + g.name_bytes();
    assert!(
        build_bytes <= build_bytes_budget,
        "graph index + names {build_bytes} B exceed the {build_bytes_budget} B scale budget"
    );
    // One dense |V|·|Q| stamp array would be ≥ 4·|V| bytes **per worker**
    // (that is what the pre-adaptive layout paid): peak scratch far below
    // that pins the sparse sweep contract. `peak_scratch_bytes` sums over
    // every worker, so the bound must scale with the resolved thread
    // count — a fixed `O(n)` bound would fail spuriously on many-core
    // machines whose per-worker floors add up. 256 KB/worker is ~100× the
    // measured footprint and ~10–100× below one dense stamp array.
    let workers = crpq_graph::rpq::effective_threads(threads) + 1;
    let scratch_budget = workers * 256 * 1024;
    let scratch_bytes = catalog.peak_scratch_bytes();
    assert!(
        scratch_bytes < scratch_budget,
        "sweep scratch {scratch_bytes} B over {workers} worker(s) exceeds the \
         {scratch_budget} B budget — dense stamp arrays were likely allocated \
         (one would be ≥ {} B per worker)",
        4 * n
    );
    if enforce_ceiling {
        let total = build_ms + eval_ms;
        assert!(
            total <= ceiling_ms,
            "million-scale smoke exceeded the wall-clock ceiling: \
             {total:.0}ms > {ceiling_ms:.0}ms"
        );
    }
    let (fwd, rev) = (g.forward_csr(), g.reverse_csr());
    ScaleRow {
        workload: "scale_million",
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        labels: g.alphabet().len(),
        tuples,
        build_ms,
        eval_ms,
        mat_ms: catalog.materialise_ms(),
        index_bytes: g.index_bytes(),
        name_bytes: g.name_bytes(),
        rel_bytes: catalog.relation_bytes(),
        scratch_bytes,
        csr_offset_bytes: fwd.offset_bytes() + rev.offset_bytes(),
        dense_offset_bytes: 2 * 4 * (g.alphabet().len() * g.num_nodes() + 1),
    }
}

fn scale_rows_json(scale_rows: &[ScaleRow]) -> String {
    let mut json = String::new();
    for (i, r) in scale_rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"labels\": {}, \"tuples\": {}, \"build_ms\": {:.4}, \"eval_ms\": {:.4}, \
             \"mat_ms\": {:.4}, \"index_bytes\": {}, \"name_bytes\": {}, \"rel_bytes\": {}, \
             \"scratch_bytes\": {}, \"csr_offset_bytes\": {}, \"dense_offset_bytes\": {}}}{}",
            r.workload,
            r.nodes,
            r.edges,
            r.labels,
            r.tuples,
            r.build_ms,
            r.eval_ms,
            r.mat_ms,
            r.index_bytes,
            r.name_bytes,
            r.rel_bytes,
            r.scratch_bytes,
            r.csr_offset_bytes,
            r.dense_offset_bytes,
            if i + 1 < scale_rows.len() { "," } else { "" }
        );
    }
    json
}

fn print_scale_rows(scale_rows: &[ScaleRow]) {
    println!(
        "\n## scale workloads — label-rich Zipf + million-node anonymous (catalog engine only)\n"
    );
    println!("| workload | n | edges | labels | tuples | build | eval | mat | index MB | names MB | rel MB | scratch KB | csr offsets | dense offsets |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|");
    for r in scale_rows {
        println!(
            "| {} | {} | {} | {} | {} | {:.0}ms | {:.0}ms | {:.0}ms | {:.1} | {:.2} | {:.1} | {:.1} | {} KB | {} KB |",
            r.workload,
            r.nodes,
            r.edges,
            r.labels,
            r.tuples,
            r.build_ms,
            r.eval_ms,
            r.mat_ms,
            r.index_bytes as f64 / 1e6,
            r.name_bytes as f64 / 1e6,
            r.rel_bytes as f64 / 1e6,
            r.scratch_bytes as f64 / 1024.0,
            r.csr_offset_bytes / 1024,
            r.dense_offset_bytes / 1024,
        );
    }
}

/// One row of the work-stealing-vs-static scheduler comparison
/// (`steal_rows` in `BENCH_scale.json`): full parallel evaluation (st) of
/// [`scaling::steal_query`] over the Zipf-skewed
/// [`scaling::steal_skew_graph`] under both schedulers, same resolved
/// thread count.
struct StealRow {
    workload: &'static str,
    nodes: usize,
    edges: usize,
    labels: usize,
    /// The resolved worker count both schedulers ran with.
    threads: usize,
    /// Hardware parallelism actually available — the speedup column is
    /// only meaningful (and only CI-enforced) when this is ≥ 4; on a
    /// 1-core runner both schedulers timeshare one CPU and the ratio
    /// hovers around 1×.
    cpus: usize,
    tuples: usize,
    /// Work-stealing scheduler ([`eval_tuples_parallel`]).
    ws_ms: f64,
    /// Static atomic-cursor baseline ([`eval_tuples_parallel_static`]).
    static_ms: f64,
}

impl StealRow {
    fn speedup(&self) -> f64 {
        self.static_ms / self.ws_ms.max(1e-9)
    }
}

/// Measures both parallel schedulers on the skewed-Zipf workload at `n`
/// nodes. With `enforce_floor` (the CI gate), work stealing must beat the
/// static baseline by ≥ 1.5× — enforced only when the machine actually
/// has ≥ 4 CPUs, since scheduling cannot buy wall clock that the hardware
/// doesn't have.
fn measure_steal(n: usize, threads: usize, enforce_floor: bool) -> StealRow {
    const SAMPLES: usize = 3;
    let mut g = scaling::steal_skew_graph(n, 19);
    let q = scaling::steal_query(g.alphabet_mut());
    let (ws, ws_ms) = time_best_of(SAMPLES, || {
        eval_tuples_parallel(&q, &g, Semantics::Standard, threads)
    });
    let (st, static_ms) = time_best_of(SAMPLES, || {
        eval_tuples_parallel_static(&q, &g, Semantics::Standard, threads)
    });
    assert_eq!(ws, st, "work-stealing/static result mismatch at n={n}");
    assert!(
        !ws.is_empty(),
        "steal workload returned no tuples — the scheduler comparison proves nothing"
    );
    let cpus = crpq_util::sync::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let row = StealRow {
        workload: "steal_skew_zipf",
        nodes: g.num_nodes(),
        edges: g.num_edges(),
        labels: g.alphabet().len(),
        threads: crpq_graph::rpq::effective_threads(threads),
        cpus,
        tuples: ws.len(),
        ws_ms,
        static_ms,
    };
    if enforce_floor && cpus >= 4 {
        assert!(
            row.speedup() >= 1.5,
            "work stealing below the 1.5x floor over static partitioning on the skewed \
             workload: {:.2}x ({:.1}ms vs {:.1}ms at {} threads, {} cpus)",
            row.speedup(),
            row.ws_ms,
            row.static_ms,
            row.threads,
            row.cpus
        );
    }
    row
}

fn steal_rows_json(rows: &[StealRow]) -> String {
    let mut json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"edges\": {}, \"labels\": {}, \
             \"threads\": {}, \"cpus\": {}, \"tuples\": {}, \"ws_ms\": {:.4}, \
             \"static_ms\": {:.4}, \"ws_speedup\": {:.2}}}{}",
            r.workload,
            r.nodes,
            r.edges,
            r.labels,
            r.threads,
            r.cpus,
            r.tuples,
            r.ws_ms,
            r.static_ms,
            r.speedup(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json
}

fn print_steal_rows(rows: &[StealRow]) {
    println!("\n## skewed-Zipf join parallelism — work-stealing vs static partitioning (st)\n");
    println!("| workload | n | edges | threads | cpus | tuples | stealing | static | ws-x |");
    println!("|---|---|---|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.1}ms | {:.1}ms | {:.2}x |",
            r.workload,
            r.nodes,
            r.edges,
            r.threads,
            r.cpus,
            r.tuples,
            r.ws_ms,
            r.static_ms,
            r.speedup(),
        );
    }
}

/// One row of the dynamic-graph churn workloads (`mutate_rows` in
/// `BENCH_scale.json`): mutation apply latency, catalog-backed query
/// latency warm / after footprint-keyed invalidation / after evict-all,
/// and the catalog's eviction counters, on a [`DeltaGraph`] under
/// single-hot-label churn with a mixed-label query workload.
struct MutateRow {
    workload: &'static str,
    nodes: usize,
    edges: usize,
    threads: usize,
    /// Mutations applied per churn batch.
    churn_ops: usize,
    /// Mean per-mutation apply latency (µs) across all churn batches.
    apply_us: f64,
    /// Catalog-backed latency for the full query workload, fully warm
    /// catalog, no intervening mutation (the all-hits baseline).
    warm_ms: f64,
    /// Same workload right after a churn batch +
    /// [`RelationCatalog::invalidate_label`] on the churned label — only
    /// footprint-matching entries re-materialise.
    footprint_ms: f64,
    /// Same workload right after a churn batch +
    /// [`RelationCatalog::invalidate_all`] — the evict-everything
    /// baseline footprint keying is measured against.
    evict_all_ms: f64,
    /// Entries evicted by one footprint-keyed invalidation round.
    evictions_footprint: usize,
    /// Entries evicted by one evict-all round (= live entries).
    evictions_all: usize,
    /// Live catalog entries once the full workload is materialised.
    cached_entries: usize,
    catalog_hits: usize,
    catalog_misses: usize,
}

impl MutateRow {
    /// The headline ratio: how much cheaper requerying is when only the
    /// churned label's footprint is evicted instead of everything.
    fn footprint_speedup(&self) -> f64 {
        self.evict_all_ms / self.footprint_ms.max(1e-9)
    }

    fn hit_rate(&self) -> f64 {
        let total = self.catalog_hits + self.catalog_misses;
        if total == 0 {
            0.0
        } else {
            self.catalog_hits as f64 / total as f64
        }
    }
}

/// Deterministic splitmix64 for churn schedules — the bench must be
/// reproducible across runs without pulling a RNG dependency in.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Measures the dynamic-graph churn workload at `n` nodes: the
/// million-family graph wrapped in a [`DeltaGraph`], churned on one hot
/// label (`l0`, alternating inserts and deletes), queried through a
/// persistent [`RelationCatalog`] by a **mixed-label workload** — the
/// scale query (footprint `l0..l4`) plus a disjoint-footprint twin over
/// `l8..l12`. Per batch the catalog is invalidated either by
/// [`RelationCatalog::invalidate_label`] on the churned label (only the
/// one `l0`-footprint entry re-materialises) or by
/// [`RelationCatalog::invalidate_all`] (every entry does).
///
/// With `enforce_floor` (the CI gate): footprint-keyed requery must be
/// strictly cheaper than requery after evict-all, and the eviction
/// counters must show footprint keying actually evicted a strict,
/// non-empty subset of the live entries.
fn measure_mutate(n: usize, threads: usize, enforce_floor: bool) -> MutateRow {
    const SAMPLES: usize = 3;
    const CHURN_OPS: usize = 2_000;
    let mut base = scaling::million_graph(n, 7);
    let q_hot = scaling::million_query(base.alphabet_mut());
    // Same chain shape over labels disjoint from `q_hot`'s footprint: the
    // entries footprint keying must keep alive across `l0` churn.
    let q_cold = parse_crpq(
        "(x, y) <- x -[l8 (l9+l10)*]-> y, y -[l10 (l11+l12)*]-> z",
        base.alphabet_mut(),
    )
    .unwrap(); // invariant: fixed bench query text parses
    let mut g = DeltaGraph::new(base);
    let hot = g.label("l0");

    let mut catalog = RelationCatalog::with_threads(&g, threads);
    let tuples = eval_tuples_with_catalog(&q_hot, &g, Semantics::Standard, &mut catalog).len()
        + eval_tuples_with_catalog(&q_cold, &g, Semantics::Standard, &mut catalog).len();
    assert!(
        tuples > 0,
        "mutate workload returned no tuples — the churn smoke proves nothing"
    );
    let cached_entries = catalog.cached_entries();
    assert!(
        cached_entries >= 4,
        "expected at least four distinct atom relations, got {cached_entries}"
    );
    let (_, warm_ms) = time_best_of(SAMPLES, || {
        eval_tuples_with_catalog(&q_hot, &g, Semantics::Standard, &mut catalog).len()
            + eval_tuples_with_catalog(&q_cold, &g, Semantics::Standard, &mut catalog).len()
    });

    let mut rng = SplitMix(0xC0FFEE ^ n as u64);
    let mut apply_us_sum = 0.0;
    let mut batches = 0usize;
    let churn = |g: &mut DeltaGraph, rng: &mut SplitMix| -> f64 {
        let t0 = Instant::now();
        for i in 0..CHURN_OPS {
            let u = NodeId(rng.below(n) as u32);
            let v = NodeId(rng.below(n) as u32);
            if i.is_multiple_of(2) {
                g.insert_edge(u, hot, v);
            } else {
                g.delete_edge(u, hot, v);
            }
        }
        t0.elapsed().as_secs_f64() * 1e6 / CHURN_OPS as f64
    };

    let mut footprint_ms = f64::INFINITY;
    let mut evict_all_ms = f64::INFINITY;
    let mut evictions_footprint = 0usize;
    let mut evictions_all = 0usize;
    for _ in 0..SAMPLES {
        // Footprint-keyed round: churn, evict only the hot label's
        // entries, requery the whole workload.
        apply_us_sum += churn(&mut g, &mut rng);
        batches += 1;
        evictions_footprint = catalog.invalidate_label(hot);
        let (_, ms) = time_once(|| {
            eval_tuples_with_catalog(&q_hot, &g, Semantics::Standard, &mut catalog).len()
                + eval_tuples_with_catalog(&q_cold, &g, Semantics::Standard, &mut catalog).len()
        });
        footprint_ms = footprint_ms.min(ms);
        // Evict-all round on the same (already mutated) graph.
        apply_us_sum += churn(&mut g, &mut rng);
        batches += 1;
        evictions_all = catalog.invalidate_all();
        let (_, ms) = time_once(|| {
            eval_tuples_with_catalog(&q_hot, &g, Semantics::Standard, &mut catalog).len()
                + eval_tuples_with_catalog(&q_cold, &g, Semantics::Standard, &mut catalog).len()
        });
        evict_all_ms = evict_all_ms.min(ms);
    }
    // Soundness of footprint-keyed invalidation: after one more churn +
    // label-keyed eviction, the catalog-backed answers equal a fresh
    // catalog-free evaluation of the mutated view.
    apply_us_sum += churn(&mut g, &mut rng);
    batches += 1;
    catalog.invalidate_label(hot);
    let via_catalog = eval_tuples_with_catalog(&q_hot, &g, Semantics::Standard, &mut catalog);
    assert_eq!(
        via_catalog,
        crpq_core::eval_tuples(&q_hot, &g, Semantics::Standard),
        "catalog-backed answers diverged from a fresh evaluation after churn"
    );

    let row = MutateRow {
        workload: "mutate_churn_million",
        nodes: GraphView::num_nodes(&g),
        edges: GraphView::num_edges(&g),
        threads: crpq_graph::rpq::effective_threads(threads),
        churn_ops: CHURN_OPS,
        apply_us: apply_us_sum / batches as f64,
        warm_ms,
        footprint_ms,
        evict_all_ms,
        evictions_footprint,
        evictions_all,
        cached_entries,
        catalog_hits: catalog.hits(),
        catalog_misses: catalog.misses(),
    };
    if enforce_floor {
        assert!(
            row.evictions_footprint > 0 && row.evictions_footprint < row.evictions_all,
            "footprint keying must evict a strict non-empty subset: {} vs {} entries",
            row.evictions_footprint,
            row.evictions_all
        );
        assert!(
            row.footprint_ms < row.evict_all_ms,
            "footprint-keyed requery not cheaper than evict-all on the mixed-label \
             workload: {:.2}ms vs {:.2}ms",
            row.footprint_ms,
            row.evict_all_ms
        );
    }
    row
}

fn mutate_rows_json(rows: &[MutateRow]) -> String {
    let mut json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"edges\": {}, \"threads\": {}, \
             \"churn_ops\": {}, \"apply_us\": {:.4}, \"warm_ms\": {:.4}, \
             \"footprint_ms\": {:.4}, \"evict_all_ms\": {:.4}, \"footprint_speedup\": {:.2}, \
             \"evictions_footprint\": {}, \"evictions_all\": {}, \"cached_entries\": {}, \
             \"catalog_hits\": {}, \"catalog_misses\": {}, \"catalog_hit_rate\": {:.3}}}{}",
            r.workload,
            r.nodes,
            r.edges,
            r.threads,
            r.churn_ops,
            r.apply_us,
            r.warm_ms,
            r.footprint_ms,
            r.evict_all_ms,
            r.footprint_speedup(),
            r.evictions_footprint,
            r.evictions_all,
            r.cached_entries,
            r.catalog_hits,
            r.catalog_misses,
            r.hit_rate(),
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json
}

fn print_mutate_rows(rows: &[MutateRow]) {
    println!(
        "\n## dynamic graphs — base+delta churn, footprint-keyed vs evict-all invalidation (st)\n"
    );
    println!("| workload | n | edges | threads | apply/op | warm | footprint | evict-all | fp-x | evicted | hit-rate |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {:.2}µs | {:.1}ms | {:.1}ms | {:.1}ms | {:.2}x | {}/{} | {:.0}% |",
            r.workload,
            r.nodes,
            r.edges,
            r.threads,
            r.apply_us,
            r.warm_ms,
            r.footprint_ms,
            r.evict_all_ms,
            r.footprint_speedup(),
            r.evictions_footprint,
            r.evictions_all,
            r.hit_rate() * 100.0,
        );
    }
}

/// Index + names budget of the 10⁶-node scale row (the PR-5 contract,
/// unchanged).
const MILLION_BYTES_BUDGET: usize = 200_000_000;

/// Index + names budget of the 10⁷-node / 4·10⁷-edge scale row: the graph
/// index grows linearly with |V| and |E| (~10× the 10⁶ row, plus slack for
/// the per-label CSR tails), so the explicit contract at this size is
/// 2.4 GB — what must stay O(touched), and is separately asserted, is the
/// relation + sweep-scratch side.
const TEN_MILLION_BYTES_BUDGET: usize = 2_400_000_000;

/// Extracts the rows of an existing `"name": [...]` array from a
/// previously written baseline file, returning them with a trailing comma
/// so new rows can be appended after them — the cross-PR perf trajectory.
/// Defensive on purpose: a missing file, missing array or empty array all
/// yield `""` (fresh start) rather than an error.
fn prior_rows(path: &str, name: &str) -> String {
    let Ok(text) = std::fs::read_to_string(path) else {
        return String::new();
    };
    let open = format!("\"{name}\": [\n");
    let Some(start) = text.find(&open) else {
        return String::new();
    };
    let body = &text[start + open.len()..];
    let Some(end) = body.find("\n  ]") else {
        return String::new();
    };
    let inner = &body[..end];
    if inner.trim().is_empty() {
        String::new()
    } else {
        format!("{inner},\n")
    }
}

/// The append-dedupe key of one serialised row:
/// `(workload, graph, semantics, |V|, threads)`. Rows without a `threads`
/// field (the scale rows) key on 0; rows without `graph` / `semantics`
/// discriminators (everything except `BENCH_eval.json`'s `rows`) key on
/// the empty string. `None` for lines that don't look like a measurement
/// row.
fn row_key(line: &str) -> Option<(String, String, String, usize, usize)> {
    fn field_num(line: &str, name: &str) -> Option<usize> {
        let tag = format!("\"{name}\": ");
        let rest = &line[line.find(&tag)? + tag.len()..];
        let digits = &rest[..rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len())];
        digits.parse().ok()
    }
    fn field_str(line: &str, name: &str) -> Option<String> {
        let tag = format!("\"{name}\": \"");
        let rest = &line[line.find(&tag)? + tag.len()..];
        Some(rest[..rest.find('"')?].to_string())
    }
    let workload = field_str(line, "workload")?;
    let nodes = field_num(line, "nodes")?;
    Some((
        workload,
        field_str(line, "graph").unwrap_or_default(),
        field_str(line, "semantics").unwrap_or_default(),
        nodes,
        field_num(line, "threads").unwrap_or(0),
    ))
}

/// [`prior_rows`] minus every row whose `(workload, |V|, threads)` key is
/// re-measured in `new_rows` — and minus within-file duplicates (keeping
/// the most recent, i.e. last, occurrence). This is what bounds
/// `BENCH_scale.json`: repeated CI runs replace their own prior rows
/// instead of appending forever, while rows of configurations *not*
/// re-measured keep their trajectory.
fn prior_rows_deduped(path: &str, name: &str, new_rows: &str) -> String {
    let prior = prior_rows(path, name);
    if prior.is_empty() {
        return prior;
    }
    let new_keys: Vec<_> = new_rows.lines().filter_map(row_key).collect();
    let lines: Vec<&str> = prior.lines().collect();
    let mut kept: Vec<String> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let keep = match row_key(line) {
            // Defensive: pass unrecognised non-empty lines through rather
            // than silently deleting hand-edited content.
            None => !line.trim().is_empty(),
            Some(key) => {
                !new_keys.contains(&key)
                    && !lines[i + 1..]
                        .iter()
                        .filter_map(|l| row_key(l))
                        .any(|k| k == key)
            }
        };
        if keep {
            kept.push(line.trim_end().trim_end_matches(',').to_string());
        }
    }
    if kept.is_empty() {
        String::new()
    } else {
        format!("{},\n", kept.join(",\n"))
    }
}

/// Re-emits a [`prior_rows`] extraction verbatim as a complete array body
/// (no new rows appended): strips the trailing separator comma so the
/// array stays valid JSON. Used to carry arrays a bench mode does *not*
/// re-measure through its rewrite of a shared baseline file.
fn array_body(prior: &str) -> String {
    match prior.strip_suffix(",\n") {
        Some(inner) => format!("{inner}\n"),
        None => prior.to_string(),
    }
}

/// The `--mutate-smoke` CI gate: the dynamic-graph churn workload at
/// `|V| = 10⁵` (see [`measure_mutate`]), with the footprint-vs-evict-all
/// floor enforced. Writes `mutate_rows` into `path` (`BENCH_scale.json`),
/// appending to prior rows with `(workload, |V|, threads)` dedupe and
/// carrying the file's `scale_rows` / `steal_rows` through untouched.
pub fn run_mutate_smoke(path: &str, threads: usize) {
    let rows = vec![measure_mutate(100_000, threads, true)];
    print_mutate_rows(&rows);
    let new_mutate = mutate_rows_json(&rows);
    let prior_mutate = prior_rows_deduped(path, "mutate_rows", &new_mutate);
    let scale = array_body(&prior_rows(path, "scale_rows"));
    let steal = array_body(&prior_rows(path, "steal_rows"));
    let wal = array_body(&prior_rows(path, "wal_rows"));
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p crpq-bench --bin experiments -- --mutate-smoke\",\n",
    );
    json.push_str("  \"scale_rows\": [\n");
    json.push_str(&scale);
    json.push_str("  ],\n");
    json.push_str("  \"steal_rows\": [\n");
    json.push_str(&steal);
    json.push_str("  ],\n");
    json.push_str("  \"mutate_rows\": [\n");
    json.push_str(&prior_mutate);
    json.push_str(&new_mutate);
    json.push_str("  ],\n");
    json.push_str("  \"wal_rows\": [\n");
    json.push_str(&wal);
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).expect("write mutate smoke JSON"); // invariant: harness IO is fail-fast
    println!("\nwrote {path}");
}

/// One row of the durability workloads (`wal_rows` in `BENCH_scale.json`):
/// per-mutation WAL apply latency under one sync policy, plus the
/// recovery (reopen + replay) wall clock, at `|V| = 10⁵` single-label
/// churn over the real filesystem ([`crpq_util::StdStorage`]).
struct WalRow {
    /// `wal_churn_<policy>` — the policy is part of the workload name so
    /// the append-dedupe key keeps one row per policy.
    workload: &'static str,
    nodes: usize,
    edges: usize,
    policy: String,
    churn_ops: usize,
    /// Mean per-mutation apply latency (µs), WAL append + policy sync
    /// included.
    apply_us: f64,
    /// Reopen wall clock: read checkpoint, verify, replay the full WAL.
    recover_ms: f64,
    /// Records replayed by that reopen (= records logged by the churn).
    replayed: usize,
    /// WAL size after the churn (bytes).
    wal_bytes: usize,
}

fn wal_rows_json(rows: &[WalRow]) -> String {
    let mut json = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"nodes\": {}, \"edges\": {}, \"policy\": \"{}\", \
             \"churn_ops\": {}, \"apply_us\": {:.4}, \"recover_ms\": {:.4}, \
             \"replayed\": {}, \"wal_bytes\": {}}}{}",
            r.workload,
            r.nodes,
            r.edges,
            r.policy,
            r.churn_ops,
            r.apply_us,
            r.recover_ms,
            r.replayed,
            r.wal_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json
}

fn print_wal_rows(rows: &[WalRow]) {
    println!("\n## durable graphs — WAL apply + recovery vs sync policy (single-label churn)\n");
    println!("| workload | n | edges | policy | apply/op | recover | replayed | wal bytes |");
    println!("|---|---|---|---|---|---|---|---|");
    for r in rows {
        println!(
            "| {} | {} | {} | {} | {:.2}µs | {:.1}ms | {} | {} |",
            r.workload,
            r.nodes,
            r.edges,
            r.policy,
            r.apply_us,
            r.recover_ms,
            r.replayed,
            r.wal_bytes,
        );
    }
}

/// Measures one durability row: churn `ops` single-label mutations at `n`
/// nodes through a [`DurableGraph`] on the real filesystem under
/// `policy`, then reopen and time recovery. `Always` drives group-commit
/// batches (100 mutations per `apply_batch`, one sync each); the other
/// policies apply single mutations. With `enforce_ceiling` (the CI gate),
/// the mean apply latency and the recovery wall clock must stay under
/// generous ceilings — like the scale gates, these only catch asymptotic
/// regressions (an fsync per byte, or recovery re-reading the WAL per
/// record, would blow straight through).
fn measure_wal(
    n: usize,
    ops: usize,
    workload: &'static str,
    policy: SyncPolicy,
    enforce_ceiling: bool,
) -> WalRow {
    const APPLY_CEILING_US: f64 = 2_000.0;
    const RECOVER_CEILING_MS: f64 = 60_000.0;
    let dir = std::env::temp_dir().join(format!("crpq_wal_smoke_{workload}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create wal smoke dir"); // invariant: harness IO is fail-fast
    let snap = dir.join("g.snap");
    let wal = dir.join("g.wal");
    let (snap, wal) = (snap.to_str().unwrap(), wal.to_str().unwrap()); // invariant: temp paths are UTF-8

    let base = scaling::million_graph(n, 7);
    let mut d =
        DurableGraph::create(snap, wal, base, policy).expect("init durable store for wal smoke"); // invariant: harness IO is fail-fast
    let hot = d.label("l0").expect("million graph interns l0"); // invariant: million_graph always interns l0
    let mut rng = SplitMix(0xD04AB1E ^ n as u64);
    let mutation = |rng: &mut SplitMix, i: usize| {
        let u = NodeId(rng.below(n) as u32);
        let v = NodeId(rng.below(n) as u32);
        if i.is_multiple_of(2) {
            EdgeMutation::Insert { u, label: hot, v }
        } else {
            EdgeMutation::Delete { u, label: hot, v }
        }
    };
    let t0 = Instant::now();
    if policy == SyncPolicy::Always {
        // Group commit: one append + one fsync per 100-mutation batch —
        // per-mutation fsync would measure the disk, not the WAL.
        for batch_start in (0..ops).step_by(100) {
            let batch: Vec<EdgeMutation> = (batch_start..(batch_start + 100).min(ops))
                .map(|i| mutation(&mut rng, i))
                .collect();
            d.apply_batch(&batch).expect("wal smoke batch"); // invariant: harness IO is fail-fast
        }
    } else {
        for i in 0..ops {
            match mutation(&mut rng, i) {
                EdgeMutation::Insert { u, label, v } => d.insert_edge(u, label, v),
                EdgeMutation::Delete { u, label, v } => d.delete_edge(u, label, v),
            }
            .expect("wal smoke mutation"); // invariant: harness IO is fail-fast
        }
        d.sync_wal().expect("wal smoke final sync"); // invariant: harness IO is fail-fast
    }
    let apply_us = t0.elapsed().as_secs_f64() * 1e6 / ops as f64;
    let logged = d.records_since_checkpoint();
    let live_edges = GraphView::num_edges(d.graph());
    drop(d);

    let wal_bytes = std::fs::metadata(wal).expect("stat wal").len() as usize; // invariant: harness IO is fail-fast
    let ((d2, report), recover_ms) =
        time_once(|| DurableGraph::open(snap, wal, policy).expect("wal smoke recovery")); // invariant: harness IO is fail-fast
    assert_eq!(
        report.replayed, logged,
        "recovery replayed a different record count than the writer logged"
    );
    assert_eq!(
        GraphView::num_edges(d2.graph()),
        live_edges,
        "recovered edge count diverged from the live graph"
    );
    assert_eq!(
        report.mutated_labels,
        vec![hot],
        "single-label churn must report exactly the hot label"
    );
    let row = WalRow {
        workload,
        nodes: GraphView::num_nodes(d2.graph()),
        edges: live_edges,
        policy: policy.to_string(),
        churn_ops: ops,
        apply_us,
        recover_ms,
        replayed: report.replayed,
        wal_bytes,
    };
    if enforce_ceiling {
        assert!(
            row.apply_us < APPLY_CEILING_US,
            "wal apply exceeded the per-mutation ceiling under {}: {:.1}µs > {APPLY_CEILING_US}µs",
            row.policy,
            row.apply_us
        );
        assert!(
            row.recover_ms < RECOVER_CEILING_MS,
            "wal recovery exceeded the wall-clock ceiling under {}: {:.0}ms > {RECOVER_CEILING_MS}ms",
            row.policy,
            row.recover_ms
        );
    }
    drop(d2);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

/// The `--wal-smoke` CI gate: single-label churn through the durability
/// layer at `|V| = 10⁵` under each sync policy (`always` via 100-mutation
/// group commits, `every:64`, `never`), with apply-latency and
/// recovery-wall-clock ceilings enforced. Writes `wal_rows` into `path`
/// (`BENCH_scale.json`), appending with the usual `(workload, |V|)`
/// dedupe and carrying the other arrays through untouched.
pub fn run_wal_smoke(path: &str) {
    const OPS: usize = 10_000;
    const N: usize = 100_000;
    let rows = vec![
        measure_wal(N, OPS, "wal_churn_always", SyncPolicy::Always, true),
        measure_wal(N, OPS, "wal_churn_every64", SyncPolicy::EveryN(64), true),
        measure_wal(N, OPS, "wal_churn_never", SyncPolicy::Never, true),
    ];
    print_wal_rows(&rows);
    let new_wal = wal_rows_json(&rows);
    let prior_wal = prior_rows_deduped(path, "wal_rows", &new_wal);
    let scale = array_body(&prior_rows(path, "scale_rows"));
    let steal = array_body(&prior_rows(path, "steal_rows"));
    let mutate = array_body(&prior_rows(path, "mutate_rows"));
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p crpq-bench --bin experiments -- --wal-smoke\",\n",
    );
    json.push_str("  \"scale_rows\": [\n");
    json.push_str(&scale);
    json.push_str("  ],\n");
    json.push_str("  \"steal_rows\": [\n");
    json.push_str(&steal);
    json.push_str("  ],\n");
    json.push_str("  \"mutate_rows\": [\n");
    json.push_str(&mutate);
    json.push_str("  ],\n");
    json.push_str("  \"wal_rows\": [\n");
    json.push_str(&prior_wal);
    json.push_str(&new_wal);
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).expect("write wal smoke JSON"); // invariant: harness IO is fail-fast
    println!("\nwrote {path}");
}

/// The `--scale-smoke` CI gate, four rows:
///
/// * `|V| = 10⁵`, 10³-label Zipf workload under its wall-clock ceiling
///   with the sparse label-index memory contract (the PR-3 gate,
///   unchanged);
/// * `|V| = 10⁶` / `4·10⁶`-edge anonymous workload (build + catalog
///   evaluation, st) under its own ceiling, with the O(touched) memory
///   contract: zero name bytes, index + names ≤ ~200 MB, and peak sweep
///   scratch far below one dense `|V|·|Q|` stamp array (the PR-5 gate,
///   unchanged);
/// * `|V| = 10⁷` / `4·10⁷`-edge anonymous workload under the same
///   O(touched) contracts at its own index budget (~2.4 GB — the graph
///   index is linear in |V|; relations and scratch must not be);
/// * the skewed-Zipf work-stealing row: full parallel evaluation under
///   the work-stealing and static schedulers, with the ≥ 1.5× stealing
///   floor enforced on machines with ≥ 4 CPUs.
///
/// Writes the measurements to `path` (same `scale_rows` schema as
/// `BENCH_eval.json`), **appending** to any rows already present in the
/// file so the trajectory across PRs stays visible. `threads = 0` keeps
/// the documented fallback (one worker per CPU, capped at 16).
pub fn run_scale_smoke(path: &str, threads: usize) {
    // Generous ceilings: the workloads run in seconds on a laptop; the
    // ceilings only have to catch asymptotic regressions (a dense
    // label × node index rebuild, per-source quadratic sweeps or dense
    // per-worker scratch at 10⁶ nodes would blow straight through them).
    const CEILING_MS: f64 = 120_000.0;
    const MILLION_CEILING_MS: f64 = 300_000.0;
    const TEN_MILLION_CEILING_MS: f64 = 600_000.0;
    let rows = vec![
        measure_scale(100_000, CEILING_MS, true, threads),
        measure_million(
            1_000_000,
            MILLION_CEILING_MS,
            true,
            threads,
            MILLION_BYTES_BUDGET,
        ),
        measure_million(
            10_000_000,
            TEN_MILLION_CEILING_MS,
            true,
            threads,
            TEN_MILLION_BYTES_BUDGET,
        ),
    ];
    // The scheduler comparison runs at 16 workers (the CI criterion size)
    // unless --threads overrides it.
    let steal_rows = vec![measure_steal(
        60_000,
        if threads == 0 { 16 } else { threads },
        true,
    )];
    print_scale_rows(&rows);
    print_steal_rows(&steal_rows);
    let new_scale = scale_rows_json(&rows);
    let new_steal = steal_rows_json(&steal_rows);
    let prior_scale = prior_rows_deduped(path, "scale_rows", &new_scale);
    let prior_steal = prior_rows_deduped(path, "steal_rows", &new_steal);
    // Not re-measured here — carried through so the smoke modes can
    // rewrite the shared file in any order.
    let mutate = array_body(&prior_rows(path, "mutate_rows"));
    let wal = array_body(&prior_rows(path, "wal_rows"));
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p crpq-bench --bin experiments -- --scale-smoke\",\n",
    );
    json.push_str("  \"scale_rows\": [\n");
    json.push_str(&prior_scale);
    json.push_str(&new_scale);
    json.push_str("  ],\n");
    json.push_str("  \"steal_rows\": [\n");
    json.push_str(&prior_steal);
    json.push_str(&new_steal);
    json.push_str("  ],\n");
    json.push_str("  \"mutate_rows\": [\n");
    json.push_str(&mutate);
    json.push_str("  ],\n");
    json.push_str("  \"wal_rows\": [\n");
    json.push_str(&wal);
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).expect("write scale smoke JSON"); // invariant: harness IO is fail-fast
    println!("\nwrote {path}");
}

/// Runs the E2 + E9 evaluation comparison and writes `path`.
///
/// With `enforce_floor`, the headline numbers are hard assertions (the CI
/// smoke gate): the ≥10× join-vs-legacy speedup, a catalog hit-rate > 0 on
/// the multi-variant E9 workload, and the ≥2× catalog-vs-per-variant
/// planner win at |V| = 10³. Without it, shortfalls are only reported —
/// the full experiment suite should finish with measurements either way.
/// `threads = 0` keeps the documented fallback (one materialisation
/// worker per CPU, capped at 16).
pub fn run_smoke(path: &str, enforce_floor: bool, threads: usize) {
    println!(
        "## BENCH_eval — catalog-backed planner vs. per-variant join vs. legacy enumeration\n"
    );
    println!(
        "| workload | graph | n | sem | tuples | join | unshared | legacy | mat | hit-rate | cat-x | legacy-x |"
    );
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|");
    let mut rows: Vec<Row> = Vec::new();

    // E2: the paper's running example, all three semantics.
    let mut sigma = Interner::new();
    let q = paper::example21_query(&mut sigma);
    for (name, g) in [
        ("G", paper::example21_g(&sigma)),
        ("Gprime", paper::example21_gprime(&sigma)),
        ("Gfull", paper::example21_full_separation(&sigma)),
    ] {
        for sem in Semantics::ALL {
            rows.push(measure("e2_example21", name, &q, &g, sem, threads));
        }
    }

    // E9 data complexity: fixed arity-2 queries over growing random
    // graphs. Two query shapes:
    //
    // * `e9_data_complexity` — the original 2-atom query (both atoms
    //   nullable → 4 ε-free variants over 2 distinct atoms, hit rate 1/2);
    //   carries the historical ≥10× join-vs-legacy floor.
    // * `e9_multi_variant` — the 3-atom triangle with every atom nullable
    //   (2³ = 8 variants over 3 distinct atoms, hit rate 3/4): the
    //   planner-layer stress case, where a per-variant engine materialises
    //   12 relations against the catalog's 3. Carries the ≥2×
    //   catalog-vs-per-variant floor.
    //
    // Standard semantics scales to |V| = 10³ (the headline comparisons);
    // the injective semantics are measured at |V| = 10² where the legacy
    // oracle still terminates quickly.
    let mut sigma = Interner::new();
    let q2 = scaling::data_complexity_query(&mut sigma);
    let mut sigma_mv = Interner::new();
    let qmv = scaling::multi_variant_query(&mut sigma_mv);
    for (workload, q) in [("e9_data_complexity", &q2), ("e9_multi_variant", &qmv)] {
        for n in [100usize, 300, 1000] {
            let g = scaling::data_complexity_graph(n, 11);
            rows.push(measure(
                workload,
                &format!("random({n})"),
                q,
                &g,
                Semantics::Standard,
                threads,
            ));
            if n <= 100 {
                for sem in [Semantics::AtomInjective, Semantics::QueryInjective] {
                    rows.push(measure(
                        workload,
                        &format!("random({n})"),
                        q,
                        &g,
                        sem,
                        threads,
                    ));
                }
            }
        }
    }

    // Scale workloads at trajectory sizes (the CI scale gate runs
    // |V| = 10⁵ / 10⁶ via `--scale-smoke`): records build/eval wall clock
    // plus the index/name/relation/scratch memory proxies, and asserts
    // the sparse label-index and O(touched) memory contracts here too.
    let scale_rows = vec![
        measure_scale(10_000, f64::INFINITY, false, threads),
        measure_million(100_000, f64::INFINITY, false, threads, MILLION_BYTES_BUDGET),
    ];

    // Cyclic shapes: the worst-case-optimal executor vs. the backtracking
    // binary join on the same plans. The triangle row carries the CI
    // "WCOJ no slower than the binary join" floor.
    let cyclic_rows = measure_cyclic_rows();

    // Streaming fast paths on the million family: 10⁵ for the trajectory,
    // 10⁶ as the CI floor carrier (time-to-first ≤ 10% of full, ASK no
    // slower than time-to-first).
    let stream_rows = vec![
        measure_stream(100_000, threads, false),
        measure_stream(1_000_000, threads, enforce_floor),
    ];

    for r in &rows {
        println!(
            "| {} | {} | {} | {} | {} | {:.3}ms | {:.3}ms | {:.3}ms | {:.3}ms | {:.0}% | {:.1}x | {:.1}x |",
            r.workload,
            r.graph,
            r.nodes,
            r.semantics,
            r.tuples,
            r.join_ms,
            r.unshared_ms,
            r.legacy_ms,
            r.mat_ms,
            r.hit_rate() * 100.0,
            r.catalog_speedup(),
            r.speedup()
        );
    }

    print_scale_rows(&scale_rows);
    print_stream_rows(&stream_rows);
    print_cyclic_rows(&cyclic_rows);

    let mut new_rows = String::new();
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            new_rows,
            "    {{\"workload\": \"{}\", \"graph\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"arity\": {}, \"semantics\": \"{}\", \"tuples\": {}, \"join_ms\": {:.4}, \
             \"unshared_ms\": {:.4}, \"legacy_ms\": {:.4}, \"mat_ms\": {:.4}, \
             \"catalog_hits\": {}, \"catalog_misses\": {}, \"catalog_hit_rate\": {:.3}, \
             \"catalog_speedup\": {:.2}, \"speedup\": {:.2}, \"index_bytes\": {}, \
             \"rel_bytes\": {}, \"scratch_bytes\": {}}}{}",
            r.workload,
            r.graph,
            r.nodes,
            r.edges,
            r.arity,
            r.semantics,
            r.tuples,
            r.join_ms,
            r.unshared_ms,
            r.legacy_ms,
            r.mat_ms,
            r.catalog_hits,
            r.catalog_misses,
            r.hit_rate(),
            r.catalog_speedup(),
            r.speedup(),
            r.index_bytes,
            r.rel_bytes,
            r.scratch_bytes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    // Every array appends to the prior baseline with per-configuration
    // dedupe — same policy as BENCH_scale.json, so configurations dropped
    // from a future smoke keep their last measurement on record.
    let new_scale = scale_rows_json(&scale_rows);
    let new_stream = stream_rows_json(&stream_rows);
    let new_cyclic = cyclic_rows_json(&cyclic_rows);
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(
        "  \"generated_by\": \"cargo run --release -p crpq-bench --bin experiments -- --smoke\",\n",
    );
    json.push_str("  \"rows\": [\n");
    json.push_str(&prior_rows_deduped(path, "rows", &new_rows));
    json.push_str(&new_rows);
    json.push_str("  ],\n");
    json.push_str("  \"scale_rows\": [\n");
    json.push_str(&prior_rows_deduped(path, "scale_rows", &new_scale));
    json.push_str(&new_scale);
    json.push_str("  ],\n");
    json.push_str("  \"stream_rows\": [\n");
    json.push_str(&prior_rows_deduped(path, "stream_rows", &new_stream));
    json.push_str(&new_stream);
    json.push_str("  ],\n");
    json.push_str("  \"cyclic_rows\": [\n");
    json.push_str(&prior_rows_deduped(path, "cyclic_rows", &new_cyclic));
    json.push_str(&new_cyclic);
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).expect("write BENCH_eval.json"); // invariant: harness IO is fail-fast
    println!("\nwrote {path}");

    // Headline numbers the CI smoke asserts on, over the E9 rows at
    // |V| ≈ 10³, arity 2:
    //
    // 1. the join engine must beat legacy enumeration by ≥ 10× (both E9
    //    query shapes);
    // 2. the multi-variant query must actually share atoms through the
    //    catalog (hit-rate > 0);
    // 3. on the multi-variant query, atom sharing + the modern
    //    materialisers must beat the per-variant PR-1 baseline by ≥ 2×.
    let e9: Vec<&Row> = rows
        .iter()
        .filter(|r| r.workload.starts_with("e9_") && r.nodes >= 1000)
        .collect();
    let mv: Vec<&Row> = rows
        .iter()
        .filter(|r| r.workload == "e9_multi_variant" && r.nodes >= 1000)
        .collect();
    let headline = e9.iter().map(|r| r.speedup()).fold(f64::INFINITY, f64::min);
    let min_hit_rate = mv
        .iter()
        .map(|r| r.hit_rate())
        .fold(f64::INFINITY, f64::min);
    let cat_speedup = mv
        .iter()
        .map(|r| r.catalog_speedup())
        .fold(f64::INFINITY, f64::min);
    println!("headline e9 speedup at |V|=10^3: {headline:.1}x (target ≥ 10x)");
    println!(
        "e9 multi-variant catalog hit-rate at |V|=10^3: {:.0}% (target > 0)",
        min_hit_rate * 100.0
    );
    println!(
        "e9 multi-variant catalog-vs-per-variant speedup at |V|=10^3: {cat_speedup:.1}x \
         (target ≥ 2x)"
    );
    let triangle = cyclic_rows
        .iter()
        .find(|r| r.workload == "cyclic_triangle")
        .expect("triangle row must be measured"); // invariant: cyclic_triangle is in the fixed workload list
    println!(
        "cyclic triangle wcoj vs binary join: {:.1}ms vs {:.1}ms ({:.1}x, target: wcoj no slower)",
        triangle.wcoj_ms,
        triangle.binary_ms,
        triangle.wcoj_speedup()
    );
    if enforce_floor {
        assert!(
            headline >= 10.0,
            "join-based evaluator regressed below the 10x target: {headline:.1}x"
        );
        assert!(
            min_hit_rate > 0.0,
            "catalog hit-rate is 0 on the multi-variant E9 workload — atom sharing broke"
        );
        assert!(
            cat_speedup >= 2.0,
            "catalog-backed planner below the 2x target over the per-variant baseline: \
             {cat_speedup:.1}x"
        );
        assert!(
            triangle.wcoj_ms <= triangle.binary_ms,
            "worst-case-optimal join slower than the binary join on the triangle workload: \
             {:.1}ms vs {:.1}ms",
            triangle.wcoj_ms,
            triangle.binary_ms
        );
        assert!(
            triangle.tuples > 0,
            "triangle workload returned no tuples — the WCOJ floor proves nothing"
        );
    } else {
        if headline < 10.0 {
            println!("warning: headline below the 10x target (not enforced outside --smoke)");
        }
        if cat_speedup < 2.0 {
            println!("warning: catalog speedup below the 2x target (not enforced outside --smoke)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{prior_rows_deduped, row_key};

    #[test]
    fn row_key_reads_workload_nodes_and_optional_discriminators() {
        let steal = r#"    {"workload": "zipf_steal", "nodes": 60000, "threads": 16, "ms": 1.0},"#;
        assert_eq!(
            row_key(steal),
            Some((
                "zipf_steal".to_string(),
                String::new(),
                String::new(),
                60_000,
                16
            ))
        );
        let scale = r#"    {"workload": "million", "nodes": 1000000, "eval_ms": 3.0}"#;
        assert_eq!(
            row_key(scale),
            Some((
                "million".to_string(),
                String::new(),
                String::new(),
                1_000_000,
                0
            ))
        );
        // The eval rows carry graph + semantics discriminators, so the
        // three semantics of one workload/graph pair stay distinct keys.
        let eval = r#"    {"workload": "e2", "graph": "G", "nodes": 5, "semantics": "a-inj"},"#;
        assert_eq!(
            row_key(eval),
            Some(("e2".to_string(), "G".to_string(), "a-inj".to_string(), 5, 0))
        );
        assert_eq!(row_key("  ],"), None);
    }

    #[test]
    fn prior_rows_dedupe_replaces_remeasured_and_keeps_last_duplicate() {
        let path = std::env::temp_dir().join(format!("bench-dedupe-{}.json", std::process::id()));
        let text = concat!(
            "{\n",
            "  \"scale_rows\": [\n",
            "    {\"workload\": \"zipf\", \"nodes\": 100000, \"threads\": 4, \"eval_ms\": 1.0},\n",
            "    {\"workload\": \"zipf\", \"nodes\": 100000, \"threads\": 4, \"eval_ms\": 2.0},\n",
            "    {\"workload\": \"million\", \"nodes\": 1000000, \"eval_ms\": 3.0}\n",
            "  ]\n",
            "}\n",
        );
        std::fs::write(&path, text).unwrap();
        let path_str = path.to_str().unwrap();

        // Re-measuring `million` drops its prior row; the duplicated `zipf`
        // row keeps only its last (most recent) occurrence.
        let new_rows = "    {\"workload\": \"million\", \"nodes\": 1000000, \"eval_ms\": 9.0},\n";
        let deduped = prior_rows_deduped(path_str, "scale_rows", new_rows);
        assert_eq!(
            deduped,
            "    {\"workload\": \"zipf\", \"nodes\": 100000, \"threads\": 4, \"eval_ms\": 2.0},\n"
        );

        // Nothing re-measured: both distinct keys survive, still deduped.
        let untouched = prior_rows_deduped(path_str, "scale_rows", "");
        assert_eq!(untouched.lines().count(), 2);
        assert!(untouched.contains("\"eval_ms\": 2.0"));
        assert!(untouched.contains("\"million\""));
        assert!(!untouched.contains("\"eval_ms\": 1.0"));

        // Missing file / missing array stay a fresh start.
        assert_eq!(prior_rows_deduped(path_str, "no_such_array", ""), "");
        std::fs::remove_file(&path).unwrap();
        assert_eq!(prior_rows_deduped(path_str, "scale_rows", ""), "");
    }
}
