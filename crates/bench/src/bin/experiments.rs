//! The experiment harness: regenerates every figure/table of the paper as
//! console tables (the source of EXPERIMENTS.md's measured columns).
//!
//! ```sh
//! cargo run --release -p crpq-bench --bin experiments
//! ```
//!
//! With `--smoke`, runs only the evaluation benchmark (E2/E9 workloads,
//! join-based engine vs. the legacy enumeration oracle, plus the
//! label-rich scale workload at |V| = 10⁴ and the anonymous million-node
//! family at |V| = 10⁵, plus the streaming rows: time-to-first-tuple,
//! time-to-k, and ASK latency against the warm full-materialisation wall
//! clock at 10⁵ and 10⁶ nodes, with the ≤ 10% time-to-first floor and the
//! ASK ≤ time-to-first floor enforced at 10⁶) and writes the wall-clock
//! and index/name/relation/scratch-memory numbers to `BENCH_eval.json` —
//! the CI perf baseline:
//!
//! ```sh
//! cargo run --release -p crpq-bench --bin experiments -- --smoke
//! ```
//!
//! With `--scale-smoke`, runs the CI scale gates under hard wall-clock
//! ceilings: the |V| = 10⁵, ~10³-label Zipf workload (label-index offsets
//! stay O(|E| + Σ_l |V_l|), not O(|labels|·|V|)), the |V| = 10⁶ and
//! |V| = 10⁷ anonymous workloads at 4 edges/node (zero name bytes, index +
//! names under explicit per-size budgets, sweep scratch far below one
//! dense |V|·|Q| stamp array), plus the skewed-Zipf scheduler comparison
//! (work-stealing vs. static partitioning, ≥ 1.5× floor on ≥ 4-CPU
//! machines). Rows append to `BENCH_scale.json` across runs, with
//! re-measured `(workload, |V|, threads)` configurations replacing their
//! prior rows instead of duplicating them:
//!
//! ```sh
//! cargo run --release -p crpq-bench --bin experiments -- --scale-smoke
//! ```
//!
//! With `--mutate-smoke`, runs the dynamic-graph churn gate: the
//! `|V| = 10⁵` million-family graph wrapped in a `DeltaGraph` overlay,
//! churned on one hot label and queried through a persistent catalog by a
//! mixed-label workload, asserting that footprint-keyed invalidation
//! (evict only the entries whose NFA alphabet mentions the churned label)
//! requeries strictly cheaper than evict-all, and that the eviction
//! counters show a strict non-empty subset was evicted. Writes
//! `mutate_rows` into `BENCH_scale.json` (append + dedupe, other arrays
//! carried through):
//!
//! ```sh
//! cargo run --release -p crpq-bench --bin experiments -- --mutate-smoke
//! ```
//!
//! With `--wal-smoke`, runs the durability gate: `|V| = 10⁵` single-label
//! churn through the write-ahead-logged `DurableGraph` on the real
//! filesystem under each sync policy (`always` via group commit,
//! `every:64`, `never`), asserting per-mutation apply latency and
//! recovery (reopen + replay) wall clock stay under their ceilings.
//! Writes `wal_rows` into `BENCH_scale.json` (append + dedupe, other
//! arrays carried through):
//!
//! ```sh
//! cargo run --release -p crpq-bench --bin experiments -- --wal-smoke
//! ```
//!
//! `--threads N` overrides the materialisation/evaluation worker count in
//! all benchmark modes (`0` keeps the documented fallback: one worker per
//! CPU, capped at 16), so baseline numbers are reproducible across
//! machines.

use crpq_containment::abstraction::try_contain_qinj;
use crpq_containment::{contain, Semantics};
use crpq_core::{check_hierarchy, eval_contains, eval_tuples};
use crpq_graph::{generators, rpq};
use crpq_reductions as red;
use crpq_util::Interner;
use crpq_workloads::{figure1, paper_examples as paper, scaling};
use std::time::Instant;

use crpq_bench::bench_eval;

/// Parses `--threads N` from the command line; `0` (the default) keeps
/// the documented per-CPU fallback.
fn threads_flag() -> usize {
    let args: Vec<String> = std::env::args().collect();
    for pair in args.windows(2) {
        if pair[0] == "--threads" {
            return pair[1]
                .parse()
                .unwrap_or_else(|e| panic!("bad --threads {:?}: {e}", pair[1]));
        }
    }
    0
}

fn main() {
    let threads = threads_flag();
    if std::env::args().any(|a| a == "--scale-smoke") {
        bench_eval::run_scale_smoke("BENCH_scale.json", threads);
        return;
    }
    if std::env::args().any(|a| a == "--mutate-smoke") {
        bench_eval::run_mutate_smoke("BENCH_scale.json", threads);
        return;
    }
    if std::env::args().any(|a| a == "--wal-smoke") {
        bench_eval::run_wal_smoke("BENCH_scale.json");
        return;
    }
    if std::env::args().any(|a| a == "--smoke") {
        bench_eval::run_smoke("BENCH_eval.json", true, threads);
        return;
    }
    println!("# crpq-injective experiment suite\n");
    e1_figure1();
    e2_example21();
    e3_hierarchy();
    e4_example47();
    e5_abstraction();
    e6_pcp();
    e7_gcp2();
    e8_qbf();
    e9_evaluation();
    e10_tractability();
    bench_eval::run_smoke("BENCH_eval.json", false, threads);
    println!("\nAll experiments completed.");
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

fn verdict(v: Option<bool>) -> &'static str {
    match v {
        Some(true) => "⊆",
        Some(false) => "⊄",
        None => "?",
    }
}

// ---------------------------------------------------------------------------

fn e1_figure1() {
    println!("## E1 — Figure 1 (containment landscape)\n");
    println!("| class pair | n | st | q-inj | a-inj |");
    println!("|---|---|---|---|---|");
    for pair in figure1::ClassPair::ALL {
        let n = 2;
        let mut it = Interner::new();
        let inst = figure1::instance(pair, n, true, &mut it);
        let mut row = format!("| {} | {} |", pair.name(), n);
        for sem in [
            Semantics::Standard,
            Semantics::QueryInjective,
            Semantics::AtomInjective,
        ] {
            let (out, ms) = timed(|| contain(&inst.q1, &inst.q2, sem));
            row += &format!(" {} {:.2}ms |", verdict(out.as_bool()), ms);
        }
        println!("{row}");
    }
    println!();
}

fn e2_example21() {
    println!("## E2 — Figure 2 / Example 2.1\n");
    let mut sigma = Interner::new();
    let q = paper::example21_query(&mut sigma);
    let g = paper::example21_g(&sigma);
    let (u, w) = (g.node_by_name("u").unwrap(), g.node_by_name("w").unwrap());
    println!(
        "(u,w) on G : st={} a-inj={} q-inj={}",
        eval_contains(&q, &g, &[u, w], Semantics::Standard),
        eval_contains(&q, &g, &[u, w], Semantics::AtomInjective),
        eval_contains(&q, &g, &[u, w], Semantics::QueryInjective),
    );
    let gp = paper::example21_gprime(&sigma);
    let (u, v) = (gp.node_by_name("u").unwrap(), gp.node_by_name("v").unwrap());
    println!(
        "(u,v) on G′: st={} a-inj={} q-inj={}",
        eval_contains(&q, &gp, &[u, v], Semantics::Standard),
        eval_contains(&q, &gp, &[u, v], Semantics::AtomInjective),
        eval_contains(&q, &gp, &[u, v], Semantics::QueryInjective),
    );
    println!(
        "Q(G)_st == Q(G)_a-inj: {}\n",
        eval_tuples(&q, &g, Semantics::Standard) == eval_tuples(&q, &g, Semantics::AtomInjective)
    );
}

fn e3_hierarchy() {
    println!("## E3 — Remark 2.1 (hierarchy & selectivity)\n");
    println!("| graph | edges | |st| | |a-inj| | |q-inj| | holds |");
    println!("|---|---|---|---|---|---|");
    let mut sigma = Interner::new();
    let q = paper::example21_query(&mut sigma);
    for (name, g) in [
        ("G", paper::example21_g(&sigma)),
        ("G′", paper::example21_gprime(&sigma)),
        ("G∪G′", paper::example21_full_separation(&sigma)),
    ] {
        let r = check_hierarchy(&q, &g);
        println!(
            "| {name} | {} | {} | {} | {} | {} |",
            g.num_edges(),
            r.standard,
            r.atom_injective,
            r.query_injective,
            r.holds()
        );
    }
    for edges in [12usize, 24, 36] {
        let mut g = generators::random_graph(8, edges, &["a", "b", "c"], 7);
        let q = crpq_query::parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut())
            .unwrap();
        let r = check_hierarchy(&q, &g);
        println!(
            "| random(8,{edges}) | {edges} | {} | {} | {} | {} |",
            r.standard,
            r.atom_injective,
            r.query_injective,
            r.holds()
        );
    }
    println!();
}

fn e4_example47() {
    println!("## E4 — Example 4.7 (containment incomparability)\n");
    let mut sigma = Interner::new();
    let (q1, q2, q1p, q2p) = paper::example47_queries(&mut sigma);
    println!("| claim | paper | measured |");
    println!("|---|---|---|");
    let rows: Vec<(&str, bool, Option<bool>)> = vec![
        (
            "Q1 ⊆q-inj Q2",
            true,
            contain(&q1, &q2, Semantics::QueryInjective).as_bool(),
        ),
        (
            "Q1 ⊆st Q2",
            true,
            contain(&q1, &q2, Semantics::Standard).as_bool(),
        ),
        (
            "Q1 ⊆a-inj Q2",
            false,
            contain(&q1, &q2, Semantics::AtomInjective).as_bool(),
        ),
        (
            "Q1′ ⊆a-inj Q2′",
            true,
            contain(&q1p, &q2p, Semantics::AtomInjective).as_bool(),
        ),
        (
            "Q1′ ⊆st Q2′",
            true,
            contain(&q1p, &q2p, Semantics::Standard).as_bool(),
        ),
        (
            "Q1′ ⊆q-inj Q2′",
            false,
            contain(&q1p, &q2p, Semantics::QueryInjective).as_bool(),
        ),
    ];
    for (claim, expected, got) in rows {
        println!(
            "| {claim} | {expected} | {} {} |",
            got.map_or("?".into(), |b| b.to_string()),
            if got == Some(expected) { "✓" } else { "✗" }
        );
    }
    println!();
}

fn e5_abstraction() {
    println!("## E5 — Theorem 5.1 (PSpace abstraction engine)\n");
    let mut it = Interner::new();
    let q1 = crpq_query::parse_crpq("(x, z) <- x -[a a*]-> y, y -[b b*]-> z", &mut it).unwrap();
    let q2 = crpq_query::parse_crpq("(x, z) <- x -[a (a+b)* b]-> z", &mut it).unwrap();
    let (fwd, ms1) = timed(|| try_contain_qinj(&q1, &q2));
    let (bwd, ms2) = timed(|| try_contain_qinj(&q2, &q1));
    println!("a⁺·b⁺ ⊆q-inj a(a+b)*b : {fwd:?} in {ms1:.2}ms (bounded engine: inconclusive)");
    println!("a(a+b)*b ⊆q-inj a⁺·b⁺ : {bwd:?} in {ms2:.2}ms (counter-example abab)");
    // Agreement corpus on finite instances:
    let mut agree = 0;
    let mut total = 0;
    for seed in 0..10u64 {
        let mut sigma = Interner::new();
        let p = crpq_workloads::random::RandomQueryParams {
            class: crpq_query::QueryClass::CrpqFin,
            num_vars: 2,
            num_atoms: 2,
            alphabet: 2,
            arity: 0,
            max_word: 2,
        };
        let qa = crpq_workloads::random::random_query(p, &mut sigma, seed);
        let qb = crpq_workloads::random::random_query(
            crpq_workloads::random::RandomQueryParams { num_atoms: 1, ..p },
            &mut sigma,
            seed + 500,
        );
        if let (Some(abs), Some(naive)) = (
            try_contain_qinj(&qa, &qb),
            contain(&qa, &qb, Semantics::QueryInjective).as_bool(),
        ) {
            total += 1;
            agree += usize::from(abs == naive);
        }
    }
    println!("abstraction vs naive agreement on random CRPQ_fin pairs: {agree}/{total}\n");
}

fn e6_pcp() {
    println!("## E6 — Theorem 5.2 (PCP reduction)\n");
    let solvable = red::PcpInstance {
        pairs: vec![("ab".into(), "a".into()), ("c".into(), "bc".into())],
    };
    let unsolvable = red::PcpInstance {
        pairs: vec![("a".into(), "b".into())],
    };
    let (sol, ms) = timed(|| red::pcp_brute_force(&solvable, 6));
    println!("solvable instance (ab,a)(c,bc): solution {sol:?} in {ms:.2}ms");
    let (none, ms) = timed(|| red::pcp_brute_force(&unsolvable, 8));
    println!("unsolvable instance (a,b): {none:?} within bound 8 in {ms:.2}ms");
    let mut it = Interner::new();
    let r = red::pcp_to_ainj_containment(&solvable, &mut it);
    println!(
        "encoding sizes: Q1 {} atoms over {} symbols; Q⟳/Q→ languages finite",
        r.q1.atoms.len(),
        it.len()
    );
    let s = sol.unwrap();
    let (wf, ms) = timed(|| {
        let w = red::pcp::witness_expansion(&r, &solvable, &s, false);
        red::pcp::satisfies_wellformedness(&r, &w)
    });
    println!("solution witness passes all four conditions: {wf} in {ms:.2}ms");
    let (ill, ms) = timed(|| {
        let w = red::pcp::witness_expansion(&r, &solvable, &s, true);
        red::pcp::satisfies_wellformedness(&r, &w)
    });
    println!("misaligned witness passes: {ill} (must be false) in {ms:.2}ms\n");
}

fn e7_gcp2() {
    println!("## E7 — Theorem 6.1 (GCP2 reduction)\n");
    println!("| instance | GCP2 (brute) | reduction verdict | agrees | time |");
    println!("|---|---|---|---|---|");
    let cases: Vec<(&str, red::Gcp2Instance)> = vec![
        (
            "C3, n=2",
            red::Gcp2Instance::new(3, &[(0, 1), (1, 2), (0, 2)], 2),
        ),
        ("P3, n=2", red::Gcp2Instance::new(3, &[(0, 1), (1, 2)], 2)),
        (
            "C4, n=2",
            red::Gcp2Instance::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)], 2),
        ),
        (
            "C5, n=2",
            red::Gcp2Instance::new(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)], 2),
        ),
        (
            "K3, n=3",
            red::Gcp2Instance::new(3, &[(0, 1), (1, 2), (0, 2)], 3),
        ),
    ];
    for (name, inst) in cases {
        let brute = red::gcp2_brute_force(&inst);
        let ((via, ms), _) = (
            timed(|| {
                let mut it = Interner::new();
                let (q1, q2, _) = red::gcp2_to_qinj_containment(&inst, &mut it);
                contain(&q1, &q2, Semantics::QueryInjective)
                    .as_bool()
                    .map(|contained| !contained)
            }),
            (),
        );
        println!(
            "| {name} | {brute} | {via:?} | {} | {ms:.1}ms |",
            via == Some(brute)
        );
    }
    println!();
}

fn e8_qbf() {
    println!("## E8 — Theorem 6.2 (∀∃-QBF reduction)\n");
    use red::{Literal, QbfInstance};
    let cases: Vec<(&str, QbfInstance)> = vec![
        (
            "∀x (x)",
            QbfInstance {
                num_universal: 1,
                num_existential: 0,
                clauses: vec![vec![Literal::X(0, true)]],
            },
        ),
        (
            "∀x (x ∨ ¬x)",
            QbfInstance {
                num_universal: 1,
                num_existential: 0,
                clauses: vec![vec![Literal::X(0, true), Literal::X(0, false)]],
            },
        ),
        (
            "∀x ∃y (x∨y)(¬x∨¬y)",
            QbfInstance {
                num_universal: 1,
                num_existential: 1,
                clauses: vec![
                    vec![Literal::X(0, true), Literal::Y(0, true)],
                    vec![Literal::X(0, false), Literal::Y(0, false)],
                ],
            },
        ),
    ];
    println!("| formula | valid (brute) | clean-quotient semantics agree | time |");
    println!("|---|---|---|---|");
    for (name, inst) in cases {
        let brute = red::qbf_brute_force(&inst);
        let (ok, ms) = timed(|| {
            let mut it = Interner::new();
            let r = red::qbf_to_ainj_containment(&inst, &mut it);
            red::qbf::check_reduction_clean_quotients(&inst, &r)
        });
        println!("| {name} | {brute} | {ok} | {ms:.1}ms |");
    }
    println!();
}

fn e9_evaluation() {
    println!("## E9 — Prop 3.1/3.2 (evaluation complexity)\n");
    println!("### data complexity (fixed query, growing random graph)\n");
    println!("| n | st | a-inj | q-inj |");
    println!("|---|---|---|---|");
    let mut sigma = Interner::new();
    let q = scaling::data_complexity_query(&mut sigma);
    for n in [6usize, 10, 14, 18] {
        let g = scaling::data_complexity_graph(n, 11);
        let tuple = [crpq_graph::NodeId(0), crpq_graph::NodeId((n - 1) as u32)];
        let mut row = format!("| {n} |");
        for sem in Semantics::ALL {
            let (_, ms) = timed(|| eval_contains(&q, &g, &tuple, sem));
            row += &format!(" {ms:.2}ms |");
        }
        println!("{row}");
    }
    println!("\n### the simple-path wall (diamond ladder, failing query)\n");
    println!("| n | simple paths | simple-path search | standard reach |");
    println!("|---|---|---|---|");
    for n in [6usize, 10, 14] {
        let mut g = scaling::diamond_ladder(n);
        let expr = vec!["a"; 2 * n + 1].join(" ");
        let regex = crpq_automata::parse_regex(&expr, g.alphabet_mut()).unwrap();
        let nfa = crpq_automata::Nfa::from_regex(&regex);
        let s = g.node_by_name("s0").unwrap();
        let t = g.node_by_name(&format!("s{n}")).unwrap();
        let (_, ms_simple) = timed(|| rpq::simple_path_exists(&g, &nfa, s, t, &g.node_set()));
        let (_, ms_std) = timed(|| rpq::rpq_exists(&g, &nfa, s, t));
        println!("| {n} | 2^{n} | {ms_simple:.2}ms | {ms_std:.3}ms |");
    }
}

fn e10_tractability() {
    use crpq_automata::tractability::{classify, AnalysisLimits};
    use crpq_core::eval_contains_analyzed;
    use crpq_query::parse_crpq;

    println!("\n## E10 — §3 trichotomy discussion ([3]): simple-path tractability\n");
    println!("### language classification\n");
    println!("| language | class |");
    println!("|---|---|");
    for expr in [
        "a*",
        "(a a)*",
        "a* b a*",
        "(a b)*",
        "a b + b a",
        "(a+b)* c*",
    ] {
        let mut sigma = Interner::new();
        let nfa =
            crpq_automata::Nfa::from_regex(&crpq_automata::parse_regex(expr, &mut sigma).unwrap());
        let class = classify(&nfa, &nfa.symbols(), AnalysisLimits::default());
        println!("| `{expr}` | {class:?} |");
    }

    println!("\n### deletion-closed fast path (clique + unreachable target, a-inj)\n");
    println!("| n | exact (a·a*) | analyzed (a·a*) | exact ((aa)*) | analyzed ((aa)*) |");
    println!("|---|---|---|---|---|");
    for n in [6usize, 8, 9, 10] {
        let mut b = generators::clique(n, "a").into_builder();
        let t = b.node("t");
        let mut g = b.finish();
        let s = g.node_by_name("v0").unwrap();
        let q_easy = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        let q_hard = parse_crpq("(x, y) <- x -[(a a)*]-> y", g.alphabet_mut()).unwrap();
        let (_, e1) = timed(|| eval_contains(&q_easy, &g, &[s, t], Semantics::AtomInjective));
        let (_, a1) =
            timed(|| eval_contains_analyzed(&q_easy, &g, &[s, t], Semantics::AtomInjective));
        let (_, e2) = timed(|| eval_contains(&q_hard, &g, &[s, t], Semantics::AtomInjective));
        let (_, a2) =
            timed(|| eval_contains_analyzed(&q_hard, &g, &[s, t], Semantics::AtomInjective));
        println!("| {n} | {e1:.2}ms | {a1:.3}ms | {e2:.2}ms | {a2:.2}ms |");
    }
}
