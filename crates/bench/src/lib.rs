//! Benchmark helpers shared by the bench targets and the experiments
//! binary. The criterion benches live in `benches/`; the join-vs-legacy
//! evaluation baseline lives in [`bench_eval`].
//!
//! # `BENCH_eval.json` schema
//!
//! * `rows` — one entry per (workload, graph, semantics): the three-engine
//!   wall clocks (`join_ms` / `unshared_ms` / `legacy_ms`), catalog
//!   counters, and the **memory proxies** `index_bytes` (graph adjacency
//!   indexes: node-major flat arrays + both label-partitioned sparse CSRs)
//!   and `rel_bytes` (all relations the instrumented catalog run
//!   materialised).
//! * `scale_rows` — the label-rich Zipf workload
//!   (`crpq_workloads::scaling::label_rich_graph`; knobs:
//!   `LABEL_RICH_LABELS` = 10³ labels, `LABEL_RICH_ZIPF_EXPONENT` = 1.0,
//!   4n edges): catalog-engine-only build/eval/materialise wall clocks,
//!   the same memory proxies, plus `csr_offset_bytes` (what the sparse
//!   per-label CSR offsets actually cost, asserted
//!   `O(|E| + Σ_l |V_l|)`) against `dense_offset_bytes` (what the retired
//!   dense `label × node` layout would have cost). `--smoke` records it at
//!   `|V| = 10⁴`; `--scale-smoke` gates CI at `|V| = 10⁵` and writes the
//!   same schema to `BENCH_scale.json`.

pub mod bench_eval;
