//! Benchmark helpers live in the bench targets; see benches/.
