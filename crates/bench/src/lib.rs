//! Benchmark helpers shared by the bench targets and the experiments
//! binary. The criterion benches live in `benches/`; the join-vs-legacy
//! evaluation baseline lives in [`bench_eval`].

pub mod bench_eval;
