//! Property tests for the automata algebra: language-level laws that every
//! operation must respect.

use crpq_automata::{dfa, Dfa, Nfa, Regex};
use crpq_util::Symbol;
use proptest::prelude::*;

fn regex_strategy(k: u32) -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..k).prop_map(|i| Regex::Literal(Symbol(i))),
        Just(Regex::Epsilon),
        Just(Regex::Empty),
    ];
    leaf.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::optional),
        ]
    })
}

fn all_words(k: u32, len: usize) -> Vec<Vec<Symbol>> {
    let mut out: Vec<Vec<Symbol>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::new();
        for w in &frontier {
            for s in 0..k {
                let mut w2 = w.clone();
                w2.push(Symbol(s));
                out.push(w2.clone());
                next.push(w2);
            }
        }
        frontier = next;
    }
    out
}

const ALPHABET: [Symbol; 2] = [Symbol(0), Symbol(1)];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Product recognises exactly the intersection.
    #[test]
    fn product_is_intersection(r1 in regex_strategy(2), r2 in regex_strategy(2)) {
        let (n1, n2) = (Nfa::from_regex(&r1), Nfa::from_regex(&r2));
        let p = n1.product(&n2);
        for w in all_words(2, 4) {
            prop_assert_eq!(p.accepts(&w), n1.accepts(&w) && n2.accepts(&w), "word {:?}", w);
        }
    }

    /// Disjoint union recognises exactly the union.
    #[test]
    fn disjoint_union_is_union(r1 in regex_strategy(2), r2 in regex_strategy(2)) {
        let (n1, n2) = (Nfa::from_regex(&r1), Nfa::from_regex(&r2));
        let (u, _) = Nfa::disjoint_union(&[&n1, &n2]);
        for w in all_words(2, 4) {
            prop_assert_eq!(u.accepts(&w), n1.accepts(&w) || n2.accepts(&w), "word {:?}", w);
        }
    }

    /// DFA complement flips membership exactly.
    #[test]
    fn complement_flips(r in regex_strategy(2)) {
        let d = Dfa::from_nfa(&Nfa::from_regex(&r), &ALPHABET);
        let c = d.complement();
        for w in all_words(2, 4) {
            prop_assert_eq!(d.accepts(&w), !c.accepts(&w), "word {:?}", w);
        }
    }

    /// Completion and co-completion preserve the language.
    #[test]
    fn completions_preserve_language(r in regex_strategy(2)) {
        let n = Nfa::from_regex(&r);
        let comp = n.completed(&ALPHABET);
        let cocomp = n.co_completed(&ALPHABET);
        let both = comp.co_completed(&ALPHABET);
        for w in all_words(2, 4) {
            let expect = n.accepts(&w);
            prop_assert_eq!(comp.accepts(&w), expect, "completed, word {:?}", w);
            prop_assert_eq!(cocomp.accepts(&w), expect, "co-completed, word {:?}", w);
            prop_assert_eq!(both.accepts(&w), expect, "both, word {:?}", w);
        }
    }

    /// Trimming preserves the language.
    #[test]
    fn trim_preserves_language(r in regex_strategy(2)) {
        let n = Nfa::from_regex(&r);
        let t = n.trimmed();
        for w in all_words(2, 4) {
            prop_assert_eq!(n.accepts(&w), t.accepts(&w), "word {:?}", w);
        }
    }

    /// Reversal recognises exactly the mirror language.
    #[test]
    fn reverse_is_mirror(r in regex_strategy(2)) {
        let n = Nfa::from_regex(&r);
        let rev = n.reverse();
        for w in all_words(2, 4) {
            let mut m = w.clone();
            m.reverse();
            prop_assert_eq!(rev.accepts(&w), n.accepts(&m), "word {:?}", w);
        }
    }

    /// `max_word_len` is exact on finite languages.
    #[test]
    fn max_word_len_exact(r in regex_strategy(2)) {
        let n = Nfa::from_regex(&r);
        if let Some(max) = n.max_word_len() {
            // no accepted word longer than max (sample up to max+2)
            let longer = n.words_up_to(max + 2, usize::MAX);
            prop_assert!(longer.iter().all(|w| w.len() <= max));
            if !n.is_empty_language() {
                // some word of exactly max length exists
                prop_assert!(
                    n.words_up_to(max, usize::MAX).iter().any(|w| w.len() == max),
                    "no word of maximal length {}", max
                );
            }
        }
    }

    /// Equivalence is reflexive and inclusion is antisymmetric on samples.
    #[test]
    fn inclusion_laws(r1 in regex_strategy(2), r2 in regex_strategy(2)) {
        let (n1, n2) = (Nfa::from_regex(&r1), Nfa::from_regex(&r2));
        prop_assert!(dfa::nfa_equivalent(&n1, &n1, &ALPHABET));
        let fwd = dfa::nfa_subset(&n1, &n2, &ALPHABET);
        let bwd = dfa::nfa_subset(&n2, &n1, &ALPHABET);
        let eq = dfa::nfa_equivalent(&n1, &n2, &ALPHABET);
        prop_assert_eq!(eq, fwd && bwd);
    }

    /// Shortest word is indeed shortest and accepted.
    #[test]
    fn shortest_word_minimal(r in regex_strategy(2)) {
        let n = Nfa::from_regex(&r);
        match n.shortest_word() {
            None => prop_assert!(n.is_empty_language()),
            Some(w) => {
                prop_assert!(n.accepts(&w));
                for shorter in all_words(2, w.len().saturating_sub(1)) {
                    prop_assert!(!n.accepts(&shorter) || shorter.len() >= w.len());
                }
            }
        }
    }
}
