//! # crpq-automata
//!
//! Regular-language toolkit built from scratch for the CRPQ reproduction:
//! regular expression ASTs and a parser, Thompson NFA construction,
//! ε-elimination, subset-construction DFAs, minimisation, boolean language
//! algebra (product, union, complement), emptiness/finiteness/universality
//! tests, and shortlex word enumeration.
//!
//! The paper manipulates the languages of CRPQ atoms in several ways that
//! this crate supports directly:
//!
//! * expansions pick *words* from atom languages → [`Nfa::words_up_to`]
//!   enumerates them in shortlex order;
//! * `CRPQ_fin` is the star-free fragment → [`Regex::is_star_free`] and
//!   [`Nfa::is_finite`] classify queries;
//! * ε-elimination of queries needs `ε ∈ L` and `L \ {ε}` →
//!   [`Nfa::accepts_epsilon`] and [`Nfa::without_epsilon`];
//! * the Appendix-C abstraction machinery needs complete **and co-complete**
//!   automata with disjoint state spaces → [`Nfa::completed`] and
//!   [`Nfa::co_completed`].

pub mod dfa;
pub mod nfa;
pub mod parser;
pub mod regex;
pub mod tractability;

pub use dfa::Dfa;
pub use nfa::{Nfa, NfaKey, StateId};
pub use parser::{parse_regex, ParseError};
pub use regex::Regex;
pub use tractability::{classify as classify_simple_path, SimplePathClass};
