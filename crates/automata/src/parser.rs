//! Regular expression parser.
//!
//! Concrete syntax follows the paper's conventions:
//!
//! * `+` (or `|`) is **union** — as in `(a+b)`;
//! * juxtaposition is concatenation — `a b`, `ab` is *not* one identifier
//!   unless interned as such, so multi-letter labels are identifiers and
//!   single-letter sequences must be whitespace- or paren-separated;
//! * postfix `*` is Kleene star, postfix `^+` is Kleene plus (the paper's
//!   superscript `+`), postfix `?` is option;
//! * `ε` / `eps` is the empty word, `∅` / `empty` the empty language;
//! * identifiers are `[A-Za-z_][A-Za-z0-9_]*` or any single non-operator,
//!   non-whitespace character (so alphabets like `{#, □, â}` parse).
//!
//! Grammar:
//! ```text
//! alt    := concat (("+" | "|") concat)*
//! concat := repeat+
//! repeat := atom ("*" | "?" | "^+")*
//! atom   := IDENT | "(" alt ")" | "ε" | "∅"
//! ```

use crate::regex::Regex;
use crpq_util::Interner;
use std::fmt;

/// Error produced by [`parse_regex`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex parse error at byte {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Union,
    Star,
    Caret,
    Question,
    LParen,
    RParen,
    Epsilon,
    Empty,
}

struct Lexer<'a> {
    input: &'a str,
    tokens: Vec<(Token, usize)>,
}

impl<'a> Lexer<'a> {
    fn lex(input: &'a str) -> Result<Vec<(Token, usize)>, ParseError> {
        let mut lx = Lexer {
            input,
            tokens: Vec::new(),
        };
        lx.run()?;
        Ok(lx.tokens)
    }

    fn run(&mut self) -> Result<(), ParseError> {
        let mut chars = self.input.char_indices().peekable();
        while let Some((pos, c)) = chars.next() {
            let token = match c {
                c if c.is_whitespace() => continue,
                '+' | '|' => Token::Union,
                '*' => Token::Star,
                '?' => Token::Question,
                '(' => Token::LParen,
                ')' => Token::RParen,
                '^' => Token::Caret,
                'ε' => Token::Epsilon,
                '∅' => Token::Empty,
                c if c.is_alphanumeric() || c == '_' => {
                    let mut end = pos + c.len_utf8();
                    // ASCII identifier continuation only; a lone unicode
                    // letter like `â` is a single-symbol token.
                    if c.is_ascii_alphanumeric() || c == '_' {
                        while let Some(&(p, nc)) = chars.peek() {
                            // `⁻` continues identifiers so two-way labels
                            // like `knows⁻` are single tokens.
                            if nc.is_ascii_alphanumeric() || nc == '_' || nc == '⁻' {
                                end = p + nc.len_utf8();
                                chars.next();
                            } else {
                                break;
                            }
                        }
                    }
                    let word = &self.input[pos..end];
                    match word {
                        "eps" => Token::Epsilon,
                        "empty" => Token::Empty,
                        _ => Token::Ident(word.to_owned()),
                    }
                }
                other => Token::Ident(other.to_string()),
            };
            self.tokens.push((token, pos));
        }
        Ok(())
    }
}

struct Parser<'a> {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    interner: &'a mut Interner,
    input_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |(_, p)| *p)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.here(),
        }
    }

    fn alt(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.concat()?];
        while matches!(self.peek(), Some(Token::Union)) {
            self.bump();
            parts.push(self.concat()?);
        }
        Ok(Regex::alt(parts))
    }

    fn concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.repeat()?];
        while matches!(
            self.peek(),
            Some(Token::Ident(_) | Token::LParen | Token::Epsilon | Token::Empty)
        ) {
            parts.push(self.repeat()?);
        }
        Ok(Regex::concat(parts))
    }

    fn repeat(&mut self) -> Result<Regex, ParseError> {
        let mut base = self.atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    base = Regex::star(base);
                }
                Some(Token::Question) => {
                    self.bump();
                    base = Regex::optional(base);
                }
                Some(Token::Caret) => {
                    self.bump();
                    match self.bump() {
                        Some(Token::Union) => base = Regex::plus(base),
                        _ => return Err(self.err("expected `+` after `^` (Kleene plus is `^+`)")),
                    }
                }
                _ => return Ok(base),
            }
        }
    }

    fn atom(&mut self) -> Result<Regex, ParseError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(Regex::Literal(self.interner.intern(&name))),
            Some(Token::Epsilon) => Ok(Regex::Epsilon),
            Some(Token::Empty) => Ok(Regex::Empty),
            Some(Token::LParen) => {
                let inner = self.alt()?;
                match self.bump() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(self.err("expected `)`")),
                }
            }
            Some(tok) => Err(self.err(format!("unexpected token {tok:?}"))),
            None => Err(self.err("unexpected end of expression")),
        }
    }
}

/// Parses a regular expression, interning letters into `interner`.
///
/// ```
/// use crpq_automata::{parse_regex, Nfa};
/// use crpq_util::Interner;
///
/// let mut sigma = Interner::new();
/// let r = parse_regex("(a b)* + c", &mut sigma).unwrap();
/// let nfa = Nfa::from_regex(&r);
/// let (a, b, c) = (sigma.get("a").unwrap(), sigma.get("b").unwrap(), sigma.get("c").unwrap());
/// assert!(nfa.accepts(&[a, b, a, b]));
/// assert!(nfa.accepts(&[c]));
/// assert!(!nfa.accepts(&[a, c]));
/// ```
pub fn parse_regex(input: &str, interner: &mut Interner) -> Result<Regex, ParseError> {
    let tokens = Lexer::lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError {
            message: "empty expression".into(),
            position: 0,
        });
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        interner,
        input_len: input.len(),
    };
    let regex = parser.alt()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.err("trailing input"));
    }
    Ok(regex)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_util::Symbol;

    fn parse(s: &str) -> (Regex, Interner) {
        let mut it = Interner::new();
        let r = parse_regex(s, &mut it).unwrap();
        (r, it)
    }

    #[test]
    fn paper_examples_parse() {
        let (r, it) = parse("(a+b)(a+b)*");
        assert_eq!(format!("{}", r.display(&it)), "(a+b) (a+b)*");

        let (r, it) = parse("(a b)*");
        assert_eq!(format!("{}", r.display(&it)), "(a b)*");

        let (r, it) = parse("c*");
        assert_eq!(format!("{}", r.display(&it)), "c*");
    }

    #[test]
    fn kleene_plus_via_caret() {
        let (r, _) = parse("(a+b)^+");
        assert!(matches!(r, Regex::Plus(_)));
        // `+` alone is union:
        let (r, _) = parse("a+b");
        assert!(matches!(r, Regex::Alt(_)));
    }

    #[test]
    fn multi_char_identifiers() {
        let (r, it) = parse("knows likes*");
        match &r {
            Regex::Concat(parts) => {
                assert_eq!(parts.len(), 2);
                assert_eq!(format!("{}", r.display(&it)), "knows likes*");
            }
            other => panic!("expected concat, got {other:?}"),
        }
    }

    #[test]
    fn unicode_single_symbols() {
        let (r, it) = parse("# □ â");
        if let Regex::Concat(parts) = &r {
            assert_eq!(parts.len(), 3);
        } else {
            panic!("expected concat");
        }
        assert_eq!(format!("{}", r.display(&it)), "# □ â");
    }

    #[test]
    fn epsilon_and_empty() {
        let (r, _) = parse("ε");
        assert_eq!(r, Regex::Epsilon);
        let (r, _) = parse("eps + a");
        assert!(r.nullable());
        let (r, _) = parse("∅");
        assert_eq!(r, Regex::Empty);
        let (r, _) = parse("empty + a");
        assert!(matches!(r, Regex::Literal(_)));
    }

    #[test]
    fn pipe_is_union_too() {
        let (r1, _) = parse("a|b|c");
        let (r2, _) = parse("a+b+c");
        assert_eq!(r1, r2);
    }

    #[test]
    fn precedence_star_binds_tightest() {
        let (r, it) = parse("a b* + c");
        assert_eq!(format!("{}", r.display(&it)), "a b*+c");
        // i.e. (a·b*) + c — union of a concat and a literal.
        assert!(matches!(r, Regex::Alt(ref parts) if parts.len() == 2));
    }

    #[test]
    fn errors() {
        let mut it = Interner::new();
        assert!(parse_regex("", &mut it).is_err());
        assert!(parse_regex("(a", &mut it).is_err());
        assert!(parse_regex("a)", &mut it).is_err());
        assert!(parse_regex("*a", &mut it).is_err());
        assert!(parse_regex("a^b", &mut it).is_err());
    }

    #[test]
    fn interner_shared_across_parses() {
        let mut it = Interner::new();
        let _ = parse_regex("a b", &mut it).unwrap();
        let r2 = parse_regex("b a", &mut it).unwrap();
        assert_eq!(it.len(), 2);
        if let Regex::Concat(parts) = r2 {
            assert_eq!(parts[0], Regex::Literal(Symbol(1)));
            assert_eq!(parts[1], Regex::Literal(Symbol(0)));
        } else {
            panic!("expected concat");
        }
    }
}
