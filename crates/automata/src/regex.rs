//! Regular expression ASTs.
//!
//! The paper writes atom languages as regular expressions over the edge
//! alphabet, e.g. `(a+b)+`, `(ab)*`, `c*`. We keep the AST small and provide
//! smart constructors that perform the obvious simplifications (so that
//! e.g. ε-removal and reductions produce readable expressions).

use crpq_util::{FxHashSet, Interner, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A regular expression over interned alphabet symbols.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regex {
    /// The empty language `∅`.
    Empty,
    /// The language `{ε}`.
    Epsilon,
    /// A single letter.
    Literal(Symbol),
    /// Concatenation `r₁ r₂ … rₙ` (n ≥ 2 after smart construction).
    Concat(Vec<Regex>),
    /// Union `r₁ + r₂ + … + rₙ` (the paper's `+`; n ≥ 2 after smart construction).
    Alt(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
    /// Kleene plus `r⁺` (= `r r*`); kept primitive so `(a+b)+` pretty-prints.
    Plus(Box<Regex>),
    /// Option `r?` (= `r + ε`).
    Optional(Box<Regex>),
}

impl Regex {
    /// Literal letter.
    pub fn lit(sym: Symbol) -> Regex {
        Regex::Literal(sym)
    }

    /// A word `a₁a₂…aₙ` as a concatenation of literals (`ε` when empty).
    pub fn word(word: &[Symbol]) -> Regex {
        Regex::concat(word.iter().map(|&s| Regex::Literal(s)).collect())
    }

    /// Smart concatenation: drops `ε` factors, collapses to `∅` if any factor
    /// is `∅`, and flattens nested concatenations.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Epsilon => {}
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Epsilon,
            1 => flat.pop().unwrap(), // invariant: the len-1 match arm
            _ => Regex::Concat(flat),
        }
    }

    /// Smart union: drops `∅` alternatives, flattens, dedups.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut flat: Vec<Regex> = Vec::with_capacity(parts.len());
        let mut seen: FxHashSet<Regex> = FxHashSet::default();
        let push = |r: Regex, flat: &mut Vec<Regex>, seen: &mut FxHashSet<Regex>| {
            if seen.insert(r.clone()) {
                flat.push(r);
            }
        };
        let mut stack: Vec<Regex> = parts.into_iter().rev().collect();
        while let Some(p) = stack.pop() {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => stack.extend(inner.into_iter().rev()),
                other => push(other, &mut flat, &mut seen),
            }
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.pop().unwrap(), // invariant: the len-1 match arm
            _ => Regex::Alt(flat),
        }
    }

    /// Union over an iterator of words (a finite language).
    pub fn finite_language<'a, I: IntoIterator<Item = &'a [Symbol]>>(words: I) -> Regex {
        Regex::alt(words.into_iter().map(Regex::word).collect())
    }

    /// Smart star.
    pub fn star(inner: Regex) -> Regex {
        match inner {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Star(r) => Regex::Star(r),
            Regex::Plus(r) => Regex::Star(r),
            Regex::Optional(r) => Regex::Star(r),
            other => Regex::Star(Box::new(other)),
        }
    }

    /// Smart plus.
    pub fn plus(inner: Regex) -> Regex {
        match inner {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(r) => Regex::Star(r),
            Regex::Plus(r) => Regex::Plus(r),
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Smart option.
    pub fn optional(inner: Regex) -> Regex {
        match inner {
            Regex::Empty => Regex::Epsilon,
            Regex::Epsilon => Regex::Epsilon,
            Regex::Star(r) => Regex::Star(r),
            Regex::Optional(r) => Regex::Optional(r),
            other => Regex::Optional(Box::new(other)),
        }
    }

    /// Whether `ε` belongs to the language (nullability).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Literal(_) | Regex::Plus(_) => match self {
                Regex::Plus(r) => r.nullable(),
                _ => false,
            },
            Regex::Epsilon | Regex::Star(_) | Regex::Optional(_) => true,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Alt(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Whether the expression is star-free (no `*`/`⁺`), i.e. denotes a
    /// finite language — the paper's `CRPQ_fin` criterion.
    pub fn is_star_free(&self) -> bool {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Literal(_) => true,
            Regex::Concat(parts) | Regex::Alt(parts) => parts.iter().all(Regex::is_star_free),
            Regex::Star(_) | Regex::Plus(_) => false,
            Regex::Optional(r) => r.is_star_free(),
        }
    }

    /// Whether the language is `∅` (syntactic check, exact thanks to smart
    /// constructors collapsing `∅` upward).
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Literal(_) => false,
            Regex::Concat(parts) => parts.iter().any(Regex::is_empty_language),
            Regex::Alt(parts) => parts.iter().all(Regex::is_empty_language),
            Regex::Star(_) | Regex::Optional(_) => false,
            Regex::Plus(r) => r.is_empty_language(),
        }
    }

    /// All alphabet symbols that occur in the expression.
    pub fn symbols(&self) -> FxHashSet<Symbol> {
        let mut out = FxHashSet::default();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols(&self, out: &mut FxHashSet<Symbol>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Literal(s) => {
                out.insert(*s);
            }
            Regex::Concat(parts) | Regex::Alt(parts) => {
                parts.iter().for_each(|p| p.collect_symbols(out));
            }
            Regex::Star(r) | Regex::Plus(r) | Regex::Optional(r) => r.collect_symbols(out),
        }
    }

    /// Renders the expression using `interner` for symbol names.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> RegexDisplay<'a> {
        RegexDisplay {
            regex: self,
            interner,
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, interner: &Interner, prec: u8) -> fmt::Result {
        // precedence: alt(0) < concat(1) < postfix(2)
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Literal(s) => write!(f, "{}", interner.resolve(*s)),
            Regex::Alt(parts) => {
                let need = prec > 0;
                if need {
                    write!(f, "(")?;
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    p.fmt_prec(f, interner, 1)?;
                }
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Regex::Concat(parts) => {
                let need = prec > 1;
                if need {
                    write!(f, "(")?;
                }
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    p.fmt_prec(f, interner, 2)?;
                }
                if need {
                    write!(f, ")")?;
                }
                Ok(())
            }
            Regex::Star(r) => {
                r.fmt_prec(f, interner, 2)?;
                write!(f, "*")
            }
            Regex::Plus(r) => {
                // Render r⁺ as (r r*)-equivalent sugar `r^+` to avoid
                // ambiguity with the union operator `+`.
                r.fmt_prec(f, interner, 2)?;
                write!(f, "^+")
            }
            Regex::Optional(r) => {
                r.fmt_prec(f, interner, 2)?;
                write!(f, "?")
            }
        }
    }
}

impl fmt::Debug for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Epsilon => write!(f, "ε"),
            Regex::Literal(s) => write!(f, "{s:?}"),
            Regex::Concat(p) => {
                write!(f, "(")?;
                for (i, r) in p.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    write!(f, "{r:?}")?;
                }
                write!(f, ")")
            }
            Regex::Alt(p) => {
                write!(f, "(")?;
                for (i, r) in p.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{r:?}")?;
                }
                write!(f, ")")
            }
            Regex::Star(r) => write!(f, "{r:?}*"),
            Regex::Plus(r) => write!(f, "{r:?}^+"),
            Regex::Optional(r) => write!(f, "{r:?}?"),
        }
    }
}

/// Pretty-printer returned by [`Regex::display`].
pub struct RegexDisplay<'a> {
    regex: &'a Regex,
    interner: &'a Interner,
}

impl fmt::Display for RegexDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.regex.fmt_prec(f, self.interner, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(n: u32) -> Vec<Symbol> {
        (0..n).map(Symbol).collect()
    }

    #[test]
    fn smart_concat_simplifies() {
        let s = syms(3);
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(Regex::concat(vec![Regex::lit(s[0])]), Regex::lit(s[0]));
        assert_eq!(
            Regex::concat(vec![Regex::Epsilon, Regex::lit(s[0]), Regex::Epsilon]),
            Regex::lit(s[0])
        );
        assert_eq!(
            Regex::concat(vec![Regex::lit(s[0]), Regex::Empty]),
            Regex::Empty
        );
        // flattening
        let nested = Regex::concat(vec![
            Regex::concat(vec![Regex::lit(s[0]), Regex::lit(s[1])]),
            Regex::lit(s[2]),
        ]);
        assert_eq!(
            nested,
            Regex::Concat(vec![Regex::lit(s[0]), Regex::lit(s[1]), Regex::lit(s[2])])
        );
    }

    #[test]
    fn smart_alt_simplifies() {
        let s = syms(2);
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(
            Regex::alt(vec![Regex::Empty, Regex::lit(s[0])]),
            Regex::lit(s[0])
        );
        // dedup
        assert_eq!(
            Regex::alt(vec![Regex::lit(s[0]), Regex::lit(s[0])]),
            Regex::lit(s[0])
        );
        let a = Regex::alt(vec![Regex::lit(s[0]), Regex::lit(s[1])]);
        assert_eq!(a, Regex::Alt(vec![Regex::lit(s[0]), Regex::lit(s[1])]));
    }

    #[test]
    fn star_plus_option_normalise() {
        let a = Regex::lit(Symbol(0));
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::star(a.clone())), Regex::star(a.clone()));
        assert_eq!(Regex::star(Regex::plus(a.clone())), Regex::star(a.clone()));
        assert_eq!(Regex::plus(Regex::star(a.clone())), Regex::star(a.clone()));
        assert_eq!(
            Regex::optional(Regex::star(a.clone())),
            Regex::star(a.clone())
        );
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(Regex::optional(Regex::Empty), Regex::Epsilon);
    }

    #[test]
    fn nullability() {
        let a = Regex::lit(Symbol(0));
        assert!(!a.nullable());
        assert!(Regex::Epsilon.nullable());
        assert!(Regex::star(a.clone()).nullable());
        assert!(!Regex::plus(a.clone()).nullable());
        assert!(Regex::optional(a.clone()).nullable());
        assert!(!Regex::concat(vec![a.clone(), Regex::star(a.clone())]).nullable());
        assert!(Regex::alt(vec![a.clone(), Regex::Epsilon]).nullable());
    }

    #[test]
    fn star_free_classification() {
        let a = Regex::lit(Symbol(0));
        let b = Regex::lit(Symbol(1));
        assert!(Regex::concat(vec![a.clone(), b.clone()]).is_star_free());
        assert!(Regex::alt(vec![a.clone(), b.clone()]).is_star_free());
        assert!(!Regex::star(a.clone()).is_star_free());
        assert!(!Regex::plus(a.clone()).is_star_free());
        assert!(Regex::optional(a.clone()).is_star_free());
    }

    #[test]
    fn empty_language_detection() {
        let a = Regex::lit(Symbol(0));
        assert!(Regex::Empty.is_empty_language());
        assert!(!Regex::Epsilon.is_empty_language());
        assert!(!Regex::star(a.clone()).is_empty_language());
        assert!(Regex::Concat(vec![a.clone(), Regex::Empty]).is_empty_language());
    }

    #[test]
    fn display_roundtrips_syntax() {
        let mut it = Interner::new();
        let (a, b, c) = (it.intern("a"), it.intern("b"), it.intern("c"));
        let r = Regex::concat(vec![
            Regex::star(Regex::concat(vec![Regex::lit(a), Regex::lit(b)])),
            Regex::alt(vec![Regex::lit(b), Regex::lit(c)]),
        ]);
        assert_eq!(format!("{}", r.display(&it)), "(a b)* (b+c)");
    }

    #[test]
    fn symbols_collected() {
        let r = Regex::alt(vec![
            Regex::word(&[Symbol(0), Symbol(1)]),
            Regex::star(Regex::lit(Symbol(2))),
        ]);
        let syms = r.symbols();
        assert_eq!(syms.len(), 3);
        assert!(syms.contains(&Symbol(2)));
    }
}
