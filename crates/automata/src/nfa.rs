//! Non-deterministic finite automata (ε-free after construction).
//!
//! NFAs are the workhorse representation for CRPQ atom languages: evaluation
//! runs product searches of graph × NFA, expansions enumerate accepted words
//! in shortlex order, and the Appendix-C containment machinery simulates
//! profile relations over per-atom NFAs made complete and co-complete.

use crate::regex::Regex;
use crpq_util::{BitSet, FxHashMap, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Dense automaton state id.
pub type StateId = u32;

/// An ε-free NFA over interned symbols.
///
/// Multiple initial states are allowed (convenient after ε-elimination and
/// for reversed automata).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nfa {
    /// `transitions[q]` = sorted list of `(symbol, successor)` pairs.
    transitions: Vec<Vec<(Symbol, StateId)>>,
    initials: BitSet,
    finals: BitSet,
}

impl Nfa {
    // ----------------------------------------------------------- construction

    /// The automaton of the empty language.
    pub fn empty() -> Nfa {
        Nfa {
            transitions: vec![Vec::new()],
            initials: single(0, 1),
            finals: BitSet::new(1),
        }
    }

    /// The automaton of `{ε}`.
    pub fn epsilon() -> Nfa {
        let mut finals = BitSet::new(1);
        finals.insert(0);
        Nfa {
            transitions: vec![Vec::new()],
            initials: single(0, 1),
            finals,
        }
    }

    /// The automaton of a single word.
    pub fn word(word: &[Symbol]) -> Nfa {
        let n = word.len() + 1;
        let mut transitions = vec![Vec::new(); n];
        for (i, &sym) in word.iter().enumerate() {
            transitions[i].push((sym, (i + 1) as StateId));
        }
        let mut finals = BitSet::new(n);
        finals.insert(n - 1);
        Nfa {
            transitions,
            initials: single(0, n),
            finals,
        }
    }

    /// Thompson construction followed by ε-elimination.
    pub fn from_regex(regex: &Regex) -> Nfa {
        let mut builder = ThompsonBuilder::default();
        let frag = builder.build(regex);
        builder.into_nfa(frag)
    }

    /// Builds an NFA from explicit parts. `transitions[q]` need not be sorted.
    pub fn from_parts(
        mut transitions: Vec<Vec<(Symbol, StateId)>>,
        initials: impl IntoIterator<Item = StateId>,
        finals: impl IntoIterator<Item = StateId>,
    ) -> Nfa {
        let n = transitions.len().max(1);
        transitions.resize(n, Vec::new());
        for row in &mut transitions {
            row.sort_unstable();
            row.dedup();
        }
        let mut init = BitSet::new(n);
        for q in initials {
            init.insert(q as usize);
        }
        let mut fin = BitSet::new(n);
        for q in finals {
            fin.insert(q as usize);
        }
        Nfa {
            transitions,
            initials: init,
            finals: fin,
        }
    }

    // ------------------------------------------------------------- accessors

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// Initial states.
    pub fn initials(&self) -> &BitSet {
        &self.initials
    }

    /// Final states.
    pub fn finals(&self) -> &BitSet {
        &self.finals
    }

    /// Whether `q` is final.
    #[inline]
    pub fn is_final(&self, q: StateId) -> bool {
        self.finals.contains(q as usize)
    }

    /// Whether `q` is initial.
    #[inline]
    pub fn is_initial(&self, q: StateId) -> bool {
        self.initials.contains(q as usize)
    }

    /// All outgoing `(symbol, successor)` pairs of `q`.
    #[inline]
    pub fn transitions_from(&self, q: StateId) -> &[(Symbol, StateId)] {
        &self.transitions[q as usize]
    }

    /// Successors of `q` on `sym`.
    pub fn successors(&self, q: StateId, sym: Symbol) -> impl Iterator<Item = StateId> + '_ {
        let row = &self.transitions[q as usize];
        let start = row.partition_point(|&(s, _)| s < sym);
        row[start..]
            .iter()
            .take_while(move |&&(s, _)| s == sym)
            .map(|&(_, t)| t)
    }

    /// Image of a state set under `sym`.
    pub fn delta_set(&self, states: &BitSet, sym: Symbol) -> BitSet {
        let mut out = BitSet::new(self.num_states());
        for q in states.iter() {
            for t in self.successors(q as StateId, sym) {
                out.insert(t as usize);
            }
        }
        out
    }

    /// The set of symbols appearing on any transition, in id order.
    pub fn symbols(&self) -> Vec<Symbol> {
        let mut syms: Vec<Symbol> = self.transitions.iter().flatten().map(|&(s, _)| s).collect();
        syms.sort_unstable();
        syms.dedup();
        syms
    }

    // ----------------------------------------------------------- recognition

    /// Whether the automaton accepts `word`.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.initials.clone();
        for &sym in word {
            current = self.delta_set(&current, sym);
            if current.is_empty() {
                return false;
            }
        }
        current.intersects(&self.finals)
    }

    /// Whether `ε` is in the language.
    pub fn accepts_epsilon(&self) -> bool {
        self.initials.intersects(&self.finals)
    }

    /// Whether the language is empty.
    pub fn is_empty_language(&self) -> bool {
        self.reachable_from_initials()
            .intersects(&self.finals)
            .then_some(())
            .is_none()
    }

    fn reachable_from_initials(&self) -> BitSet {
        let mut seen = self.initials.clone();
        let mut queue: VecDeque<usize> = self.initials.iter().collect();
        while let Some(q) = queue.pop_front() {
            for &(_, t) in &self.transitions[q] {
                if seen.insert(t as usize) {
                    queue.push_back(t as usize);
                }
            }
        }
        seen
    }

    fn coreachable_to_finals(&self) -> BitSet {
        let rev = self.reverse();
        let mut seen = self.finals.clone();
        let mut queue: VecDeque<usize> = self.finals.iter().collect();
        while let Some(q) = queue.pop_front() {
            for &(_, t) in &rev.transitions[q] {
                if seen.insert(t as usize) {
                    queue.push_back(t as usize);
                }
            }
        }
        seen
    }

    /// States that lie on some accepting path (reachable ∧ co-reachable).
    pub fn useful_states(&self) -> BitSet {
        let mut useful = self.reachable_from_initials();
        useful.intersect_with(&self.coreachable_to_finals());
        useful
    }

    // -------------------------------------------------------- transformations

    /// Removes useless states, re-indexing densely. The language is preserved.
    pub fn trimmed(&self) -> Nfa {
        let useful = self.useful_states();
        if useful.is_empty() {
            return Nfa::empty();
        }
        let mut renumber = vec![u32::MAX; self.num_states()];
        for (new, old) in useful.iter().enumerate() {
            renumber[old] = new as u32;
        }
        let n = useful.len();
        let mut transitions = vec![Vec::new(); n];
        for old in useful.iter() {
            for &(sym, t) in &self.transitions[old] {
                if renumber[t as usize] != u32::MAX {
                    transitions[renumber[old] as usize].push((sym, renumber[t as usize]));
                }
            }
        }
        let initials = useful
            .iter()
            .filter(|&q| self.initials.contains(q))
            .map(|q| renumber[q]);
        let finals = useful
            .iter()
            .filter(|&q| self.finals.contains(q))
            .map(|q| renumber[q]);
        Nfa::from_parts(transitions, initials, finals)
    }

    /// The reversed automaton (recognising the mirror language).
    pub fn reverse(&self) -> Nfa {
        let n = self.num_states();
        let mut transitions = vec![Vec::new(); n];
        for (q, row) in self.transitions.iter().enumerate() {
            for &(sym, t) in row {
                transitions[t as usize].push((sym, q as StateId));
            }
        }
        Nfa::from_parts(
            transitions,
            self.finals.iter().map(|q| q as u32),
            self.initials.iter().map(|q| q as u32),
        )
    }

    /// The same language minus `ε`.
    ///
    /// Initial states that are final get non-final fresh duplicates, so words
    /// that *return* to an initial state are preserved.
    pub fn without_epsilon(&self) -> Nfa {
        if !self.accepts_epsilon() {
            return self.clone();
        }
        let n = self.num_states();
        // Fresh initial state n copying all initial out-transitions, not final.
        let mut transitions = self.transitions.clone();
        let mut fresh: Vec<(Symbol, StateId)> = Vec::new();
        for q in self.initials.iter() {
            fresh.extend(self.transitions[q].iter().copied());
        }
        transitions.push(fresh);
        let finals: Vec<StateId> = self.finals.iter().map(|q| q as u32).collect();
        Nfa::from_parts(transitions, [n as StateId], finals)
    }

    /// The same language plus `ε`.
    pub fn with_epsilon(&self) -> Nfa {
        if self.accepts_epsilon() {
            return self.clone();
        }
        let n = self.num_states();
        let mut transitions = self.transitions.clone();
        let mut fresh: Vec<(Symbol, StateId)> = Vec::new();
        for q in self.initials.iter() {
            fresh.extend(self.transitions[q].iter().copied());
        }
        transitions.push(fresh);
        let mut finals: Vec<StateId> = self.finals.iter().map(|q| q as u32).collect();
        finals.push(n as StateId);
        let mut initials: Vec<StateId> = self.initials.iter().map(|q| q as u32).collect();
        initials.push(n as StateId);
        Nfa::from_parts(transitions, initials, finals)
    }

    /// A complete version: every state has an outgoing transition for every
    /// symbol of `alphabet` (adding a non-final sink if needed). Language
    /// preserved.
    pub fn completed(&self, alphabet: &[Symbol]) -> Nfa {
        let n = self.num_states();
        let mut transitions = self.transitions.clone();
        let sink = n as StateId;
        let mut need_sink = false;
        for (q, row) in transitions.iter_mut().enumerate() {
            for &sym in alphabet {
                if self.successors(q as StateId, sym).next().is_none() {
                    row.push((sym, sink));
                    need_sink = true;
                }
            }
        }
        if need_sink {
            transitions.push(alphabet.iter().map(|&s| (s, sink)).collect());
        }
        Nfa::from_parts(
            transitions,
            self.initials.iter().map(|q| q as u32),
            self.finals.iter().map(|q| q as u32),
        )
    }

    /// A co-complete version: every state has an *incoming* transition for
    /// every symbol (adding a non-initial, non-final source if needed).
    /// Language preserved: the source is unreachable from initial states.
    pub fn co_completed(&self, alphabet: &[Symbol]) -> Nfa {
        let n = self.num_states();
        let mut has_incoming: FxHashMap<(Symbol, StateId), bool> = FxHashMap::default();
        for row in &self.transitions {
            for &(sym, t) in row {
                has_incoming.insert((sym, t), true);
            }
        }
        let source = n as StateId;
        let mut source_row: Vec<(Symbol, StateId)> = Vec::new();
        for q in 0..=n as StateId {
            for &sym in alphabet {
                if q == source || !has_incoming.contains_key(&(sym, q)) {
                    source_row.push((sym, q));
                }
            }
        }
        if source_row.len() == alphabet.len() {
            // Only the source itself would need incoming edges; check whether
            // every existing state was already co-complete.
            let complete = (0..n as StateId)
                .all(|q| alphabet.iter().all(|&s| has_incoming.contains_key(&(s, q))));
            if complete && n > 0 {
                return self.clone();
            }
        }
        let mut transitions = self.transitions.clone();
        transitions.push(source_row);
        Nfa::from_parts(
            transitions,
            self.initials.iter().map(|q| q as u32),
            self.finals.iter().map(|q| q as u32),
        )
    }

    /// Disjoint union of automata, returning the combined NFA and the state
    /// offset of each input automaton. The union's language is the union of
    /// languages.
    pub fn disjoint_union(parts: &[&Nfa]) -> (Nfa, Vec<StateId>) {
        let mut offsets = Vec::with_capacity(parts.len());
        let mut transitions = Vec::new();
        let mut initials = Vec::new();
        let mut finals = Vec::new();
        for nfa in parts {
            let off = transitions.len() as StateId;
            offsets.push(off);
            for row in &nfa.transitions {
                transitions.push(row.iter().map(|&(s, t)| (s, t + off)).collect());
            }
            initials.extend(nfa.initials.iter().map(|q| q as StateId + off));
            finals.extend(nfa.finals.iter().map(|q| q as StateId + off));
        }
        (Nfa::from_parts(transitions, initials, finals), offsets)
    }

    /// Product automaton recognising the intersection of languages.
    pub fn product(&self, other: &Nfa) -> Nfa {
        let mut index: FxHashMap<(StateId, StateId), StateId> = FxHashMap::default();
        let mut transitions: Vec<Vec<(Symbol, StateId)>> = Vec::new();
        let mut initials = Vec::new();
        let mut finals = Vec::new();
        let mut queue = VecDeque::new();
        for a in self.initials.iter() {
            for b in other.initials.iter() {
                let key = (a as StateId, b as StateId);
                let id = transitions.len() as StateId;
                index.insert(key, id);
                transitions.push(Vec::new());
                initials.push(id);
                queue.push_back(key);
            }
        }
        while let Some((a, b)) = queue.pop_front() {
            let id = index[&(a, b)];
            if self.is_final(a) && other.is_final(b) {
                finals.push(id);
            }
            for &(sym, ta) in self.transitions_from(a) {
                for tb in other.successors(b, sym) {
                    let key = (ta, tb);
                    let next = *index.entry(key).or_insert_with(|| {
                        transitions.push(Vec::new());
                        queue.push_back(key);
                        (transitions.len() - 1) as StateId
                    });
                    transitions[id as usize].push((sym, next));
                }
            }
        }
        Nfa::from_parts(transitions, initials, finals)
    }

    // ------------------------------------------------------ finiteness & words

    /// Whether the language is finite (trimmed automaton is acyclic).
    pub fn is_finite(&self) -> bool {
        let t = self.trimmed();
        t.topological_order().is_some()
    }

    /// Length of the longest accepted word; `None` for infinite languages,
    /// `Some(None)` is never produced — empty language yields `Some(0)`-like
    /// semantics via `None` words. Returns `None` if infinite.
    pub fn max_word_len(&self) -> Option<usize> {
        let t = self.trimmed();
        let order = t.topological_order()?;
        if t.is_empty_language() {
            return Some(0);
        }
        // longest path from an initial state to a final state
        let mut dist = vec![isize::MIN; t.num_states()];
        for q in t.initials.iter() {
            dist[q] = 0;
        }
        for &q in &order {
            if dist[q as usize] == isize::MIN {
                continue;
            }
            for &(_, to) in t.transitions_from(q) {
                dist[to as usize] = dist[to as usize].max(dist[q as usize] + 1);
            }
        }
        let best = t
            .finals
            .iter()
            .map(|q| dist[q])
            .filter(|&d| d != isize::MIN)
            .max()
            .unwrap_or(0);
        Some(best.max(0) as usize)
    }

    fn topological_order(&self) -> Option<Vec<StateId>> {
        let n = self.num_states();
        let mut indegree = vec![0usize; n];
        for row in &self.transitions {
            for &(_, t) in row {
                indegree[t as usize] += 1;
            }
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&q| indegree[q] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(q) = queue.pop_front() {
            order.push(q as StateId);
            for &(_, t) in &self.transitions[q] {
                indegree[t as usize] -= 1;
                if indegree[t as usize] == 0 {
                    queue.push_back(t as usize);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Enumerates accepted words in shortlex order (length, then symbol id),
    /// up to length `max_len` and at most `max_count` words.
    pub fn words_up_to(&self, max_len: usize, max_count: usize) -> Vec<Vec<Symbol>> {
        let mut out = Vec::new();
        if max_count == 0 {
            return out;
        }
        let trimmed = self.trimmed();
        if trimmed.is_empty_language() {
            return out;
        }
        let coreach = trimmed.useful_states();
        let syms = trimmed.symbols();
        // BFS frontier of (word, state-set) pairs, expanded level by level.
        let mut frontier: Vec<(Vec<Symbol>, BitSet)> = vec![(Vec::new(), trimmed.initials.clone())];
        if trimmed.accepts_epsilon() {
            out.push(Vec::new());
            if out.len() >= max_count {
                return out;
            }
        }
        for _len in 0..max_len {
            let mut next: Vec<(Vec<Symbol>, BitSet)> = Vec::new();
            for (word, states) in &frontier {
                for &sym in &syms {
                    let mut image = trimmed.delta_set(states, sym);
                    image.intersect_with(&coreach);
                    if image.is_empty() {
                        continue;
                    }
                    let mut w = word.clone();
                    w.push(sym);
                    if image.intersects(&trimmed.finals) {
                        out.push(w.clone());
                        if out.len() >= max_count {
                            return out;
                        }
                    }
                    next.push((w, image));
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        out
    }

    /// All accepted words, provided the language is finite.
    pub fn all_words(&self) -> Option<Vec<Vec<Symbol>>> {
        let max = self.max_word_len()?;
        Some(self.words_up_to(max, usize::MAX))
    }

    /// A shortest accepted word, if the language is non-empty.
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        self.words_up_to(self.num_states(), 1).into_iter().next()
    }

    // ---------------------------------------------------------- canonical key

    /// The canonical structural key of this automaton: a hashable normal
    /// form that drops unreachable garbage states and renumbers the rest
    /// by BFS discovery order from the initial states (initials in
    /// ascending id order, successor rows in their sorted
    /// `(symbol, target)` order).
    ///
    /// **Soundness** (the correctness contract): equal keys imply equal
    /// languages, which is what lets a relation catalog reuse one
    /// materialised RPQ relation for every atom whose compiled NFA
    /// normalises identically. **Unification** is best-effort: automata
    /// produced by the same deterministic pipeline (e.g. `Nfa::from_regex`
    /// on equal regexes, the planner's case) always coincide, and many
    /// renumberings normalise away — but a permutation that reorders
    /// same-symbol branches of one state can still change BFS discovery
    /// order and yield distinct keys for isomorphic automata. That only
    /// costs a duplicate materialisation, never a wrong reuse.
    pub fn canonical_key(&self) -> NfaKey {
        let mut renumber = vec![u32::MAX; self.num_states()];
        let mut order: Vec<StateId> = Vec::new();
        let mut queue: VecDeque<StateId> = VecDeque::new();
        for q in self.initials.iter() {
            if renumber[q] == u32::MAX {
                renumber[q] = order.len() as u32;
                order.push(q as StateId);
                queue.push_back(q as StateId);
            }
        }
        while let Some(q) = queue.pop_front() {
            for &(_, t) in self.transitions_from(q) {
                if renumber[t as usize] == u32::MAX {
                    renumber[t as usize] = order.len() as u32;
                    order.push(t);
                    queue.push_back(t);
                }
            }
        }
        let mut transitions = Vec::new();
        let mut finals = Vec::new();
        for &old in &order {
            let new = renumber[old as usize];
            if self.finals.contains(old as usize) {
                finals.push(new);
            }
            for &(sym, t) in self.transitions_from(old) {
                transitions.push((new, sym, renumber[t as usize]));
            }
        }
        transitions.sort_unstable();
        transitions.dedup();
        NfaKey {
            num_states: order.len() as u32,
            num_initials: self.initials.len() as u32,
            transitions,
            finals,
        }
    }
}

/// Canonical structural normal form of an [`Nfa`], produced by
/// [`Nfa::canonical_key`]. Hashable and totally ordered, so it can key
/// hash maps (relation catalogs, memo tables) and appear in sorted
/// diagnostics. Equal keys guarantee equal languages.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NfaKey {
    num_states: u32,
    /// Initial states are exactly `0..num_initials` after BFS renumbering.
    num_initials: u32,
    transitions: Vec<(StateId, Symbol, StateId)>,
    finals: Vec<StateId>,
}

impl NfaKey {
    /// A short content fingerprint for logs and bench output (not
    /// collision-free — use the full key for correctness).
    pub fn fingerprint(&self) -> u64 {
        use std::hash::BuildHasher;
        crpq_util::FxBuildHasher::default().hash_one(self)
    }
}

fn single(q: usize, cap: usize) -> BitSet {
    let mut s = BitSet::new(cap);
    s.insert(q);
    s
}

// --------------------------------------------------------------------------
// Thompson construction with ε edges, then ε-elimination.
// --------------------------------------------------------------------------

#[derive(Default)]
struct ThompsonBuilder {
    /// labelled transitions
    trans: Vec<Vec<(Symbol, StateId)>>,
    /// ε transitions
    eps: Vec<Vec<StateId>>,
}

#[derive(Clone, Copy)]
struct Fragment {
    start: StateId,
    end: StateId,
}

impl ThompsonBuilder {
    fn fresh(&mut self) -> StateId {
        self.trans.push(Vec::new());
        self.eps.push(Vec::new());
        (self.trans.len() - 1) as StateId
    }

    fn build(&mut self, regex: &Regex) -> Fragment {
        match regex {
            Regex::Empty => {
                let s = self.fresh();
                let e = self.fresh();
                Fragment { start: s, end: e }
            }
            Regex::Epsilon => {
                let s = self.fresh();
                let e = self.fresh();
                self.eps[s as usize].push(e);
                Fragment { start: s, end: e }
            }
            Regex::Literal(sym) => {
                let s = self.fresh();
                let e = self.fresh();
                self.trans[s as usize].push((*sym, e));
                Fragment { start: s, end: e }
            }
            Regex::Concat(parts) => {
                let frags: Vec<Fragment> = parts.iter().map(|p| self.build(p)).collect();
                for pair in frags.windows(2) {
                    self.eps[pair[0].end as usize].push(pair[1].start);
                }
                Fragment {
                    start: frags[0].start,
                    end: frags[frags.len() - 1].end,
                }
            }
            Regex::Alt(parts) => {
                let s = self.fresh();
                let e = self.fresh();
                for p in parts {
                    let f = self.build(p);
                    self.eps[s as usize].push(f.start);
                    self.eps[f.end as usize].push(e);
                }
                Fragment { start: s, end: e }
            }
            Regex::Star(inner) => {
                let s = self.fresh();
                let e = self.fresh();
                let f = self.build(inner);
                self.eps[s as usize].push(f.start);
                self.eps[s as usize].push(e);
                self.eps[f.end as usize].push(f.start);
                self.eps[f.end as usize].push(e);
                Fragment { start: s, end: e }
            }
            Regex::Plus(inner) => {
                let s = self.fresh();
                let e = self.fresh();
                let f = self.build(inner);
                self.eps[s as usize].push(f.start);
                self.eps[f.end as usize].push(f.start);
                self.eps[f.end as usize].push(e);
                Fragment { start: s, end: e }
            }
            Regex::Optional(inner) => {
                let s = self.fresh();
                let e = self.fresh();
                let f = self.build(inner);
                self.eps[s as usize].push(f.start);
                self.eps[s as usize].push(e);
                self.eps[f.end as usize].push(e);
                Fragment { start: s, end: e }
            }
        }
    }

    /// ε-closure of a single state.
    fn closure(&self, q: StateId) -> BitSet {
        let mut seen = BitSet::new(self.trans.len());
        seen.insert(q as usize);
        let mut stack = vec![q];
        while let Some(s) = stack.pop() {
            for &t in &self.eps[s as usize] {
                if seen.insert(t as usize) {
                    stack.push(t);
                }
            }
        }
        seen
    }

    fn into_nfa(self, frag: Fragment) -> Nfa {
        let n = self.trans.len();
        let mut transitions: Vec<Vec<(Symbol, StateId)>> = vec![Vec::new(); n];
        let mut finals = Vec::new();
        for q in 0..n as StateId {
            let cl = self.closure(q);
            if cl.contains(frag.end as usize) {
                finals.push(q);
            }
            for p in cl.iter() {
                for &(sym, t) in &self.trans[p] {
                    transitions[q as usize].push((sym, t));
                }
            }
        }
        Nfa::from_parts(transitions, [frag.start], finals).trimmed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crpq_util::Interner;

    fn nfa(expr: &str) -> (Nfa, Interner) {
        let mut it = Interner::new();
        let r = parse_regex(expr, &mut it).unwrap();
        (Nfa::from_regex(&r), it)
    }

    fn w(ids: &[u32]) -> Vec<Symbol> {
        ids.iter().map(|&i| Symbol(i)).collect()
    }

    #[test]
    fn literal_and_word() {
        let (n, _) = nfa("a");
        assert!(n.accepts(&w(&[0])));
        assert!(!n.accepts(&w(&[0, 0])));
        assert!(!n.accepts(&[]));

        let m = Nfa::word(&w(&[0, 1, 0]));
        assert!(m.accepts(&w(&[0, 1, 0])));
        assert!(!m.accepts(&w(&[0, 1])));
    }

    #[test]
    fn union_concat_star() {
        let (n, _) = nfa("(a b)*");
        assert!(n.accepts(&[]));
        assert!(n.accepts(&w(&[0, 1])));
        assert!(n.accepts(&w(&[0, 1, 0, 1])));
        assert!(!n.accepts(&w(&[0])));
        assert!(!n.accepts(&w(&[1, 0])));

        let (n, _) = nfa("(a+b)(a+b)*");
        assert!(!n.accepts(&[]));
        assert!(n.accepts(&w(&[0])));
        assert!(n.accepts(&w(&[1, 0, 1])));

        let (n, _) = nfa("(a+b)^+");
        assert!(!n.accepts(&[]));
        assert!(n.accepts(&w(&[1, 1, 0])));
    }

    #[test]
    fn epsilon_handling() {
        let (n, _) = nfa("a*");
        assert!(n.accepts_epsilon());
        let no_eps = n.without_epsilon();
        assert!(!no_eps.accepts_epsilon());
        assert!(no_eps.accepts(&w(&[0])));
        assert!(no_eps.accepts(&w(&[0, 0, 0])));

        let back = no_eps.with_epsilon();
        assert!(back.accepts_epsilon());
        assert!(back.accepts(&w(&[0, 0])));
    }

    #[test]
    fn without_epsilon_preserves_returning_words() {
        // L = (aa)*: removing ε must keep aa, aaaa, …
        let (n, _) = nfa("(a a)*");
        let no_eps = n.without_epsilon();
        assert!(!no_eps.accepts(&[]));
        assert!(no_eps.accepts(&w(&[0, 0])));
        assert!(no_eps.accepts(&w(&[0, 0, 0, 0])));
        assert!(!no_eps.accepts(&w(&[0])));
    }

    #[test]
    fn emptiness() {
        let (n, _) = nfa("∅");
        assert!(n.is_empty_language());
        let (n, _) = nfa("a ∅ + ∅");
        assert!(n.is_empty_language());
        let (n, _) = nfa("a");
        assert!(!n.is_empty_language());
    }

    #[test]
    fn finiteness_and_max_len() {
        let (n, _) = nfa("(a+b)(c+ε)");
        assert!(n.is_finite());
        assert_eq!(n.max_word_len(), Some(2));

        let (n, _) = nfa("a*");
        assert!(!n.is_finite());
        assert_eq!(n.max_word_len(), None);

        let (n, _) = nfa("a b c");
        assert_eq!(n.max_word_len(), Some(3));
    }

    #[test]
    fn shortlex_enumeration() {
        let (n, _) = nfa("(a+b)(a+b)*");
        let words = n.words_up_to(2, usize::MAX);
        assert_eq!(
            words,
            vec![
                w(&[0]),
                w(&[1]),
                w(&[0, 0]),
                w(&[0, 1]),
                w(&[1, 0]),
                w(&[1, 1])
            ]
        );
        assert_eq!(n.shortest_word(), Some(w(&[0])));

        let (n, _) = nfa("(a b)*");
        let words = n.words_up_to(4, usize::MAX);
        assert_eq!(words, vec![vec![], w(&[0, 1]), w(&[0, 1, 0, 1])]);
    }

    #[test]
    fn all_words_of_finite_language() {
        let (n, _) = nfa("(a+b)(c?)");
        let mut words = n.all_words().unwrap();
        words.sort();
        assert_eq!(words.len(), 4); // a, b, ac, bc
        let (n, _) = nfa("a*");
        assert!(n.all_words().is_none());
    }

    #[test]
    fn product_intersection() {
        let (n1, mut it) = {
            let mut it = Interner::new();
            let r = parse_regex("(a+b)*", &mut it).unwrap();
            (Nfa::from_regex(&r), it)
        };
        let r2 = parse_regex("a (a+b)*", &mut it).unwrap();
        let n2 = Nfa::from_regex(&r2);
        let p = n1.product(&n2);
        assert!(p.accepts(&w(&[0])));
        assert!(p.accepts(&w(&[0, 1])));
        assert!(!p.accepts(&w(&[1, 0])));
        assert!(!p.accepts(&[]));
    }

    #[test]
    fn disjoint_union_language() {
        let (n1, mut it) = {
            let mut it = Interner::new();
            let r = parse_regex("a a", &mut it).unwrap();
            (Nfa::from_regex(&r), it)
        };
        let r2 = parse_regex("b", &mut it).unwrap();
        let n2 = Nfa::from_regex(&r2);
        let (u, offsets) = Nfa::disjoint_union(&[&n1, &n2]);
        assert_eq!(offsets.len(), 2);
        assert!(u.accepts(&w(&[0, 0])));
        assert!(u.accepts(&w(&[1])));
        assert!(!u.accepts(&w(&[0])));
    }

    #[test]
    fn reverse_language() {
        let (n, _) = nfa("a b c");
        let r = n.reverse();
        assert!(r.accepts(&w(&[2, 1, 0])));
        assert!(!r.accepts(&w(&[0, 1, 2])));
    }

    #[test]
    fn completion_preserves_language() {
        let (n, _) = nfa("a b");
        let alphabet = [Symbol(0), Symbol(1)];
        let c = n.completed(&alphabet);
        assert!(c.accepts(&w(&[0, 1])));
        assert!(!c.accepts(&w(&[1, 0])));
        // complete: every state has successors on both symbols
        for q in 0..c.num_states() as StateId {
            for &s in &alphabet {
                assert!(
                    c.successors(q, s).next().is_some(),
                    "state {q} missing {s:?}"
                );
            }
        }
    }

    #[test]
    fn co_completion_preserves_language() {
        let (n, _) = nfa("a b");
        let alphabet = [Symbol(0), Symbol(1)];
        let c = n.co_completed(&alphabet);
        assert!(c.accepts(&w(&[0, 1])));
        assert!(!c.accepts(&w(&[1, 1])));
        assert!(!c.accepts(&w(&[0, 1, 0])));
        // co-complete: every state has a predecessor on both symbols
        let rev = c.reverse();
        for q in 0..rev.num_states() as StateId {
            for &s in &alphabet {
                assert!(
                    rev.successors(q, s).next().is_some(),
                    "state {q} missing incoming {s:?}"
                );
            }
        }
    }

    #[test]
    fn trimmed_keeps_language() {
        let mut transitions = vec![vec![(Symbol(0), 1)], vec![], vec![(Symbol(1), 1)]];
        transitions.push(Vec::new()); // unreachable garbage state
        let n = Nfa::from_parts(transitions, [0], [1]);
        let t = n.trimmed();
        assert_eq!(t.num_states(), 2);
        assert!(t.accepts(&w(&[0])));
        assert!(!t.accepts(&w(&[1])));
    }

    #[test]
    fn canonical_key_invariant_under_renumbering() {
        // a·b as states 0→1→2 versus the same automaton with ids permuted
        // (2→0→1) and an unreachable garbage state appended.
        let direct = Nfa::from_parts(
            vec![vec![(Symbol(0), 1)], vec![(Symbol(1), 2)], vec![]],
            [0],
            [2],
        );
        let permuted = Nfa::from_parts(
            vec![
                vec![(Symbol(1), 1)],
                vec![],
                vec![(Symbol(0), 0)],
                vec![(Symbol(0), 3)], // unreachable
            ],
            [2],
            [1],
        );
        assert_eq!(direct.canonical_key(), permuted.canonical_key());
        // Same shape, different finals: keys must differ.
        let other_final = Nfa::from_parts(
            vec![vec![(Symbol(0), 1)], vec![(Symbol(1), 2)], vec![]],
            [0],
            [1],
        );
        assert_ne!(direct.canonical_key(), other_final.canonical_key());
    }

    #[test]
    fn canonical_key_same_regex_same_key() {
        let (n1, _) = nfa("(a b)* c");
        let (n2, _) = nfa("(a b)* c");
        assert_eq!(n1.canonical_key(), n2.canonical_key());
        assert_eq!(
            n1.canonical_key().fingerprint(),
            n2.canonical_key().fingerprint()
        );
        let (n3, _) = nfa("(a b)* c c");
        assert_ne!(n1.canonical_key(), n3.canonical_key());
    }

    #[test]
    fn useful_states_empty_language() {
        let n = Nfa::empty();
        assert!(n.useful_states().is_empty());
        assert_eq!(n.shortest_word(), None);
        assert_eq!(n.words_up_to(5, usize::MAX), Vec::<Vec<Symbol>>::new());
    }
}
