//! Deterministic finite automata: subset construction, minimisation,
//! complement, and decision procedures for language inclusion/equivalence.
//!
//! DFAs are used for the *language-level* checks of the reproduction:
//! `CRPQ_fin` classification cross-checks, regression tests of the regex
//! pipeline, and the reduction validators (e.g. checking that the PCP
//! encoding languages are the intended ones).

use crate::nfa::{Nfa, StateId};
use crpq_util::{BitSet, FxHashMap, Symbol};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A complete DFA over a fixed, dense alphabet.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dfa {
    /// Alphabet symbols; transitions are indexed by position in this vector.
    alphabet: Vec<Symbol>,
    /// `transitions[q][a]` = successor state (complete by construction).
    transitions: Vec<Vec<u32>>,
    initial: u32,
    finals: BitSet,
}

impl Dfa {
    /// Subset construction from an NFA, over an explicit alphabet.
    ///
    /// The alphabet must cover every symbol used by the NFA; symbols outside
    /// `alphabet` would make the result unsound, so this is checked.
    pub fn from_nfa(nfa: &Nfa, alphabet: &[Symbol]) -> Dfa {
        let mut sorted: Vec<Symbol> = alphabet.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for sym in nfa.symbols() {
            assert!(
                sorted.contains(&sym),
                "alphabet missing {sym:?} used by NFA"
            );
        }

        let mut index: FxHashMap<BitSet, u32> = FxHashMap::default();
        let mut transitions: Vec<Vec<u32>> = Vec::new();
        let mut finals_list: Vec<u32> = Vec::new();
        let mut queue: VecDeque<BitSet> = VecDeque::new();

        let start = nfa.initials().clone();
        index.insert(start.clone(), 0);
        transitions.push(vec![u32::MAX; sorted.len()]);
        if start.intersects(nfa.finals()) {
            finals_list.push(0);
        }
        queue.push_back(start);

        while let Some(states) = queue.pop_front() {
            let id = index[&states];
            for (ai, &sym) in sorted.iter().enumerate() {
                let image = nfa.delta_set(&states, sym);
                let next = *index.entry(image.clone()).or_insert_with(|| {
                    let nid = transitions.len() as u32;
                    transitions.push(vec![u32::MAX; sorted.len()]);
                    if image.intersects(nfa.finals()) {
                        finals_list.push(nid);
                    }
                    queue.push_back(image);
                    nid
                });
                transitions[id as usize][ai] = next;
            }
        }

        let n = transitions.len();
        let mut finals = BitSet::new(n);
        for f in finals_list {
            finals.insert(f as usize);
        }
        Dfa {
            alphabet: sorted,
            transitions,
            initial: 0,
            finals,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// The alphabet (sorted).
    pub fn alphabet(&self) -> &[Symbol] {
        &self.alphabet
    }

    fn sym_index(&self, sym: Symbol) -> Option<usize> {
        self.alphabet.binary_search(&sym).ok()
    }

    /// Whether the DFA accepts `word` (symbols outside the alphabet reject).
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut q = self.initial;
        for &sym in word {
            match self.sym_index(sym) {
                Some(ai) => q = self.transitions[q as usize][ai],
                None => return false,
            }
        }
        self.finals.contains(q as usize)
    }

    /// Complement over the same alphabet.
    pub fn complement(&self) -> Dfa {
        let mut finals = BitSet::new(self.num_states());
        for q in 0..self.num_states() {
            if !self.finals.contains(q) {
                finals.insert(q);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions: self.transitions.clone(),
            initial: self.initial,
            finals,
        }
    }

    /// Whether the language is empty.
    pub fn is_empty_language(&self) -> bool {
        let mut seen = BitSet::new(self.num_states());
        seen.insert(self.initial as usize);
        let mut queue = VecDeque::from([self.initial]);
        while let Some(q) = queue.pop_front() {
            if self.finals.contains(q as usize) {
                return false;
            }
            for &t in &self.transitions[q as usize] {
                if seen.insert(t as usize) {
                    queue.push_back(t);
                }
            }
        }
        true
    }

    /// Whether the language is all of `Σ*`.
    pub fn is_universal(&self) -> bool {
        self.complement().is_empty_language()
    }

    /// Product with `other` (same alphabet required), keeping states
    /// reachable from the initial pair; final states chosen by `accept`.
    fn product_with<F: Fn(bool, bool) -> bool>(&self, other: &Dfa, accept: F) -> Dfa {
        assert_eq!(
            self.alphabet, other.alphabet,
            "product requires equal alphabets"
        );
        let mut index: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut transitions: Vec<Vec<u32>> = Vec::new();
        let mut finals_list = Vec::new();
        let mut queue = VecDeque::new();
        index.insert((self.initial, other.initial), 0);
        transitions.push(vec![u32::MAX; self.alphabet.len()]);
        queue.push_back((self.initial, other.initial));
        while let Some((a, b)) = queue.pop_front() {
            let id = index[&(a, b)];
            if accept(
                self.finals.contains(a as usize),
                other.finals.contains(b as usize),
            ) {
                finals_list.push(id);
            }
            for ai in 0..self.alphabet.len() {
                let key = (
                    self.transitions[a as usize][ai],
                    other.transitions[b as usize][ai],
                );
                let next = *index.entry(key).or_insert_with(|| {
                    transitions.push(vec![u32::MAX; self.alphabet.len()]);
                    queue.push_back(key);
                    (transitions.len() - 1) as u32
                });
                transitions[id as usize][ai] = next;
            }
        }
        let n = transitions.len();
        let mut finals = BitSet::new(n);
        for f in finals_list {
            finals.insert(f as usize);
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            initial: 0,
            finals,
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |a, b| a && b)
    }

    /// Union.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product_with(other, |a, b| a || b)
    }

    /// Whether `L(self) ⊆ L(other)`.
    pub fn is_subset_of(&self, other: &Dfa) -> bool {
        self.product_with(other, |a, b| a && !b).is_empty_language()
    }

    /// The transition function of the `i`-th alphabet symbol as a dense
    /// state-indexed vector (`row[q] = δ(q, alphabet[i])`) — the generator
    /// functions of the transition monoid.
    pub fn letter_function(&self, sym_index: usize) -> Vec<u32> {
        self.transitions.iter().map(|row| row[sym_index]).collect()
    }

    /// Whether the two DFAs recognise the same language.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        self.is_subset_of(other) && other.is_subset_of(self)
    }

    /// Moore partition-refinement minimisation (complete DFAs).
    pub fn minimized(&self) -> Dfa {
        let n = self.num_states();
        // Restrict to reachable states first.
        let mut reachable = BitSet::new(n);
        reachable.insert(self.initial as usize);
        let mut queue = VecDeque::from([self.initial]);
        while let Some(q) = queue.pop_front() {
            for &t in &self.transitions[q as usize] {
                if reachable.insert(t as usize) {
                    queue.push_back(t);
                }
            }
        }

        // class[q]: initial split final / non-final.
        let mut class = vec![0u32; n];
        for (q, c) in class.iter_mut().enumerate() {
            *c = u32::from(self.finals.contains(q));
        }
        let mut num_classes = 2;
        loop {
            // signature of q = (class[q], class of each successor)
            let mut sig_index: FxHashMap<(u32, Vec<u32>), u32> = FxHashMap::default();
            let mut new_class = vec![0u32; n];
            let mut next_id = 0u32;
            for q in 0..n {
                if !reachable.contains(q) {
                    continue;
                }
                let sig: Vec<u32> = self.transitions[q]
                    .iter()
                    .map(|&t| class[t as usize])
                    .collect();
                let key = (class[q], sig);
                let id = *sig_index.entry(key).or_insert_with(|| {
                    let id = next_id;
                    next_id += 1;
                    id
                });
                new_class[q] = id;
            }
            if next_id as usize == num_classes {
                class = new_class;
                break;
            }
            num_classes = next_id as usize;
            class = new_class;
        }

        let k = num_classes.max(1);
        let mut transitions = vec![vec![u32::MAX; self.alphabet.len()]; k];
        let mut finals = BitSet::new(k);
        for q in 0..n {
            if !reachable.contains(q) {
                continue;
            }
            let c = class[q] as usize;
            for ai in 0..self.alphabet.len() {
                transitions[c][ai] = class[self.transitions[q][ai] as usize];
            }
            if self.finals.contains(q) {
                finals.insert(c);
            }
        }
        Dfa {
            alphabet: self.alphabet.clone(),
            transitions,
            initial: class[self.initial as usize],
            finals,
        }
    }

    /// Converts back to an NFA (identity on structure).
    pub fn to_nfa(&self) -> Nfa {
        let transitions: Vec<Vec<(Symbol, StateId)>> = self
            .transitions
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(ai, &t)| (self.alphabet[ai], t))
                    .collect()
            })
            .collect();
        Nfa::from_parts(
            transitions,
            [self.initial],
            self.finals.iter().map(|q| q as u32),
        )
    }
}

/// Convenience: whether `L(a) ⊆ L(b)` for NFAs over a shared alphabet.
pub fn nfa_subset(a: &Nfa, b: &Nfa, alphabet: &[Symbol]) -> bool {
    Dfa::from_nfa(a, alphabet).is_subset_of(&Dfa::from_nfa(b, alphabet))
}

/// Convenience: whether `L(a) = L(b)` for NFAs over a shared alphabet.
pub fn nfa_equivalent(a: &Nfa, b: &Nfa, alphabet: &[Symbol]) -> bool {
    Dfa::from_nfa(a, alphabet).equivalent(&Dfa::from_nfa(b, alphabet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crpq_util::Interner;

    fn setup(exprs: &[&str]) -> (Vec<Dfa>, Vec<Symbol>) {
        let mut it = Interner::new();
        let regexes: Vec<_> = exprs
            .iter()
            .map(|e| parse_regex(e, &mut it).unwrap())
            .collect();
        let alphabet: Vec<Symbol> = (0..it.len() as u32).map(Symbol).collect();
        let dfas = regexes
            .iter()
            .map(|r| Dfa::from_nfa(&Nfa::from_regex(r), &alphabet))
            .collect();
        (dfas, alphabet)
    }

    fn w(ids: &[u32]) -> Vec<Symbol> {
        ids.iter().map(|&i| Symbol(i)).collect()
    }

    #[test]
    fn subset_construction_accepts() {
        let (dfas, _) = setup(&["(a+b)* a"]);
        let d = &dfas[0];
        assert!(d.accepts(&w(&[0])));
        assert!(d.accepts(&w(&[1, 1, 0])));
        assert!(!d.accepts(&w(&[0, 1])));
        assert!(!d.accepts(&[]));
    }

    #[test]
    fn complement_flips_membership() {
        let (dfas, _) = setup(&["a b"]);
        let c = dfas[0].complement();
        assert!(!c.accepts(&w(&[0, 1])));
        assert!(c.accepts(&w(&[0])));
        assert!(c.accepts(&[]));
        assert!(c.accepts(&w(&[1, 0])));
    }

    #[test]
    fn inclusion_and_equivalence() {
        let (dfas, _) = setup(&["a b", "(a+b)(a+b)", "a b + b a", "(a+b)(b+a)"]);
        let (ab, any2, abba, any2bis) = (&dfas[0], &dfas[1], &dfas[2], &dfas[3]);
        assert!(ab.is_subset_of(any2));
        assert!(!any2.is_subset_of(ab));
        assert!(ab.is_subset_of(abba));
        assert!(any2.equivalent(any2bis));
        assert!(!ab.equivalent(abba));
    }

    #[test]
    fn minimisation_shrinks_and_preserves() {
        // (a+b)(a+b)* via subset construction has redundant states;
        // minimal complete DFA has 3 states (start, accept-loop, none needed for sink? start->accept, accept->accept; complete over {a,b}: 2 states!)
        let (dfas, _) = setup(&["(a+b)(a+b)*"]);
        let m = dfas[0].minimized();
        assert!(m.num_states() <= dfas[0].num_states());
        assert_eq!(m.num_states(), 2);
        assert!(m.equivalent(&dfas[0]));
        assert!(m.accepts(&w(&[0, 1, 1])));
        assert!(!m.accepts(&[]));
    }

    #[test]
    fn minimisation_of_empty_and_universal() {
        let (dfas, _) = setup(&["∅ a + ∅ b", "(a+b)*"]);
        let empty = dfas[0].minimized();
        assert!(empty.is_empty_language());
        assert_eq!(empty.num_states(), 1);
        let uni = dfas[1].minimized();
        assert!(uni.is_universal());
        assert_eq!(uni.num_states(), 1);
    }

    #[test]
    fn union_and_intersection() {
        let (dfas, _) = setup(&["a (a+b)*", "(a+b)* b"]);
        let (starts_a, ends_b) = (&dfas[0], &dfas[1]);
        let both = starts_a.intersect(ends_b);
        assert!(both.accepts(&w(&[0, 1])));
        assert!(!both.accepts(&w(&[0])));
        assert!(!both.accepts(&w(&[1, 1])));
        let either = starts_a.union(ends_b);
        assert!(either.accepts(&w(&[0])));
        assert!(either.accepts(&w(&[1, 1])));
        assert!(!either.accepts(&w(&[1, 0])));
    }

    #[test]
    fn nfa_roundtrip() {
        let (dfas, alphabet) = setup(&["(a b)* + c"]);
        let n = dfas[0].to_nfa();
        let d2 = Dfa::from_nfa(&n, &alphabet);
        assert!(d2.equivalent(&dfas[0]));
    }

    #[test]
    fn nfa_level_helpers() {
        let mut it = Interner::new();
        let r1 = parse_regex("a a*", &mut it).unwrap();
        let r2 = parse_regex("a*", &mut it).unwrap();
        let alphabet: Vec<Symbol> = (0..it.len() as u32).map(Symbol).collect();
        let (n1, n2) = (Nfa::from_regex(&r1), Nfa::from_regex(&r2));
        assert!(nfa_subset(&n1, &n2, &alphabet));
        assert!(!nfa_subset(&n2, &n1, &alphabet));
        assert!(!nfa_equivalent(&n1, &n2, &alphabet));
        assert!(nfa_equivalent(&n2, &n2, &alphabet));
    }
}
