//! Simple-path evaluation **tractability analysis** of regular languages.
//!
//! The paper's §3 recalls that RPQ evaluation under simple-path semantics is
//! NP-complete in data complexity even for very simple languages
//! (Mendelzon & Wood, `(aa)*`), and that the tractable languages have been
//! characterised by a trichotomy [Bagan, Bonifati, Groz; JCSS 2020 — the
//! paper's reference [3]]: evaluation is either AC⁰ (finite languages),
//! NL-complete, or NP-complete. This module implements two *decidable,
//! sound* criteria in the spirit of that trichotomy — it is a conservative
//! classifier, not a reproduction of the exact `C_tract` frontier:
//!
//! * [`deletion_closed`] — `L` is **factor-deletion closed** when
//!   `u·w·v ∈ L ⟹ u·v ∈ L` for every non-empty `w` with `u·v ≠ ε` (the
//!   guard matches walks between distinct endpoints, which never prune to
//!   the empty word). For such languages a walk witness can be
//!   *loop-pruned* to a simple path whose label stays in `L`, so
//!   simple-path evaluation coincides with arbitrary-path reachability and
//!   is solvable in NL (e.g. `a*`, `a⁺`, `A*` over a sub-alphabet,
//!   `a*c*`). This is a sufficient tractability condition and
//!   yields an actual fast path for atom-injective evaluation
//!   (see `crpq-core`).
//! * [`insertion_closed`] — `L` is **loop-insertion closed** when some `k`
//!   satisfies `u·wᵏ·v ∈ L ⟹ u·wᵏ⁺¹·v ∈ L` for all `u, w, v`. Failure of
//!   this condition is the parity/counting obstruction behind the classical
//!   NP-hardness proofs (`(aa)*`-style gadgets force witnesses to thread
//!   simple paths of constrained length). On the minimal DFA the condition
//!   is *equivalent to aperiodicity of the transition monoid* (inclusions
//!   around a cycle of residual languages compose to equality, and equal
//!   residuals collapse in the minimal DFA), which is how we decide it.
//!
//! Neither condition is the exact frontier: `a*·b·a*` is insertion-closed
//! (aperiodic) yet NP-hard — a simple path labelled `a*ba*` threads two
//! internally disjoint `a`-paths through a `b`-edge, which encodes the
//! directed two-disjoint-paths problem. Such languages are reported as
//! [`SimplePathClass::Frontier`].
//!
//! ```
//! use crpq_automata::{parse_regex, Nfa};
//! use crpq_automata::tractability::{classify, SimplePathClass, AnalysisLimits};
//! use crpq_util::Interner;
//!
//! let mut sigma = Interner::new();
//! let nfa = |s: &str, sigma: &mut Interner| Nfa::from_regex(&parse_regex(s, sigma).unwrap());
//! let alphabet: Vec<_> = ["a", "b"].iter().map(|s| sigma.intern(s)).collect();
//! let mut cls = |s: &str, sigma: &mut Interner| {
//!     classify(&nfa(s, sigma), &alphabet, AnalysisLimits::default()).unwrap()
//! };
//! assert_eq!(cls("a*", &mut sigma), SimplePathClass::DeletionClosed);
//! assert_eq!(cls("(a a)*", &mut sigma), SimplePathClass::ParityHard);
//! assert_eq!(cls("a* b a*", &mut sigma), SimplePathClass::Frontier);
//! assert_eq!(cls("a b + b", &mut sigma), SimplePathClass::Finite { max_len: 2 });
//! ```

use crate::dfa::{nfa_subset, Dfa};
use crate::nfa::Nfa;
use crpq_util::{FxHashSet, Symbol};
use std::collections::VecDeque;

/// Conservative classification of simple-path RPQ evaluation for a regular
/// language, in the spirit of the trichotomy of [3].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimplePathClass {
    /// Finite language: witnesses have bounded length, evaluation is
    /// AC⁰-style in data complexity.
    Finite {
        /// Length of the longest word.
        max_len: usize,
    },
    /// Factor-deletion closed: simple-path evaluation reduces to
    /// arbitrary-path reachability (NL-style) by loop pruning.
    DeletionClosed,
    /// Not loop-insertion closed: the parity/counting obstruction of the
    /// classical NP-hardness constructions applies.
    ParityHard,
    /// Insertion-closed but not deletion-closed: outside both sound
    /// criteria; may be tractable or NP-hard (e.g. `a*ba*`).
    Frontier,
}

impl SimplePathClass {
    /// Whether the class comes with a polynomial-time evaluation guarantee.
    pub fn is_tractable(self) -> bool {
        matches!(
            self,
            SimplePathClass::Finite { .. } | SimplePathClass::DeletionClosed
        )
    }
}

/// Resource caps for the analysis (the transition monoid can have up to
/// `|Q|^|Q|` elements).
#[derive(Clone, Copy, Debug)]
pub struct AnalysisLimits {
    /// Maximum number of monoid elements to enumerate.
    pub max_monoid: usize,
}

impl Default for AnalysisLimits {
    fn default() -> Self {
        AnalysisLimits {
            max_monoid: 100_000,
        }
    }
}

/// Classifies a language; `None` when the monoid enumeration exceeds the
/// configured cap (inconclusive).
pub fn classify(nfa: &Nfa, alphabet: &[Symbol], limits: AnalysisLimits) -> Option<SimplePathClass> {
    if nfa.is_finite() {
        return Some(SimplePathClass::Finite {
            max_len: nfa.max_word_len().unwrap_or(0),
        });
    }
    if deletion_closed(nfa, alphabet) {
        return Some(SimplePathClass::DeletionClosed);
    }
    match insertion_closed(nfa, alphabet, limits.max_monoid) {
        Some(true) => Some(SimplePathClass::Frontier),
        Some(false) => Some(SimplePathClass::ParityHard),
        None => None,
    }
}

/// Whether `L` is factor-deletion closed: `u·w·v ∈ L ⟹ u·v ∈ L` for all
/// non-empty `w` with `u·v ≠ ε`. Decided as the regular inclusion
/// `{u·v : ∃w≠ε, u·w·v ∈ L} ∖ {ε} ⊆ L`.
///
/// The `u·v ≠ ε` guard matches the loop-pruning use case exactly: pruning a
/// cycle out of a walk between **distinct** endpoints never empties the
/// word, so `a·a*` (= `a⁺`) rightly qualifies even though deleting a whole
/// word would leave `ε ∉ a⁺`.
pub fn deletion_closed(nfa: &Nfa, alphabet: &[Symbol]) -> bool {
    nfa_subset(&delete_one_factor(nfa).without_epsilon(), nfa, alphabet)
}

/// The language `{u·v : ∃w ≠ ε, u·w·v ∈ L(nfa)}` (one non-empty factor
/// deleted). Closure under a single deletion implies closure under any
/// number, so this suffices for [`deletion_closed`].
pub fn delete_one_factor(nfa: &Nfa) -> Nfa {
    let ns = nfa.num_states();
    // Two copies: read `u` in copy 1, jump over a non-empty factor, read `v`
    // in copy 2. Jumps are folded into the following letter (or into
    // finality when `v = ε`).
    let reach_plus: Vec<FxHashSet<u32>> = (0..ns as u32).map(|q| reach_plus(nfa, q)).collect();
    let mut transitions: Vec<Vec<(Symbol, u32)>> = vec![Vec::new(); 2 * ns];
    for q in 0..ns as u32 {
        for &(sym, to) in nfa.transitions_from(q) {
            transitions[q as usize].push((sym, to)); // copy 1
            transitions[ns + q as usize].push((sym, ns as u32 + to)); // copy 2
        }
    }
    let mut finals: Vec<u32> = nfa.finals().iter().map(|q| (ns + q) as u32).collect();
    for q in 0..ns as u32 {
        for &p in &reach_plus[q as usize] {
            // Jump q ⇝ p, then read the first letter of `v` in copy 2 …
            for &(sym, to) in nfa.transitions_from(p) {
                transitions[q as usize].push((sym, ns as u32 + to));
            }
            // … or end immediately (`v = ε`).
            if nfa.is_final(p) {
                finals.push(q);
            }
        }
    }
    Nfa::from_parts(transitions, nfa.initials().iter().map(|q| q as u32), finals)
}

/// States reachable from `q` by at least one transition.
fn reach_plus(nfa: &Nfa, q: u32) -> FxHashSet<u32> {
    let mut seen = FxHashSet::default();
    let mut queue: VecDeque<u32> = nfa.transitions_from(q).iter().map(|&(_, t)| t).collect();
    for &t in &queue {
        seen.insert(t);
    }
    while let Some(p) = queue.pop_front() {
        for &(_, t) in nfa.transitions_from(p) {
            if seen.insert(t) {
                queue.push_back(t);
            }
        }
    }
    seen
}

/// Whether `L` is loop-insertion closed (`∃k ∀u,w,v: u·wᵏ·v ∈ L ⟹
/// u·wᵏ⁺¹·v ∈ L`), decided as aperiodicity of the transition monoid of the
/// minimal DFA. Returns `None` when the monoid exceeds `max_monoid`.
pub fn insertion_closed(nfa: &Nfa, alphabet: &[Symbol], max_monoid: usize) -> Option<bool> {
    let dfa = Dfa::from_nfa(nfa, alphabet).minimized();
    let n = dfa.num_states();
    let generators: Vec<Vec<u32>> = (0..dfa.alphabet().len())
        .map(|i| dfa.letter_function(i))
        .collect();
    // BFS closure of the generators under composition with generators.
    let mut seen: FxHashSet<Vec<u32>> = FxHashSet::default();
    let mut queue: VecDeque<Vec<u32>> = VecDeque::new();
    for g in &generators {
        if seen.insert(g.clone()) {
            queue.push_back(g.clone());
        }
    }
    while let Some(f) = queue.pop_front() {
        if !aperiodic_element(&f, n) {
            return Some(false);
        }
        if seen.len() > max_monoid {
            return None;
        }
        for g in &generators {
            // h = g ∘ f (read f's word, then g's letter).
            let h: Vec<u32> = f.iter().map(|&q| g[q as usize]).collect();
            if seen.insert(h.clone()) {
                queue.push_back(h);
            }
        }
    }
    Some(true)
}

/// Whether the functional graph of `f` on `n` states has only trivial
/// cycles (`f^n(p)` is a fixed point of `f` for every `p`).
fn aperiodic_element(f: &[u32], n: usize) -> bool {
    (0..n).all(|p| {
        let mut x = p as u32;
        for _ in 0..n {
            x = f[x as usize];
        }
        f[x as usize] == x
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use crpq_util::Interner;

    fn setup(exprs: &[&str]) -> (Vec<Nfa>, Vec<Symbol>, Interner) {
        let mut sigma = Interner::new();
        let nfas: Vec<Nfa> = exprs
            .iter()
            .map(|e| Nfa::from_regex(&parse_regex(e, &mut sigma).unwrap()))
            .collect();
        let alphabet: Vec<Symbol> = (0..sigma.len() as u32).map(Symbol).collect();
        (nfas, alphabet, sigma)
    }

    fn cls(expr: &str) -> SimplePathClass {
        let (nfas, mut alphabet, mut sigma) = setup(&[expr]);
        // Ensure at least two symbols so complements are meaningful.
        if alphabet.len() < 2 {
            alphabet.push(Symbol(sigma.intern("zz").0));
        }
        classify(&nfas[0], &alphabet, AnalysisLimits::default()).unwrap()
    }

    #[test]
    fn kleene_star_languages_are_deletion_closed() {
        assert_eq!(cls("a*"), SimplePathClass::DeletionClosed);
        assert_eq!(cls("(a + b)*"), SimplePathClass::DeletionClosed);
        assert_eq!(cls("a* b*"), SimplePathClass::DeletionClosed);
        // The ε-guard: a⁺ prunes to a⁺ between distinct endpoints.
        assert_eq!(cls("a a*"), SimplePathClass::DeletionClosed);
        assert_eq!(cls("(a + b)(a + b)*"), SimplePathClass::DeletionClosed);
    }

    #[test]
    fn parity_languages_are_hard() {
        assert_eq!(cls("(a a)*"), SimplePathClass::ParityHard);
        assert_eq!(cls("a (a a)*"), SimplePathClass::ParityHard);
        assert_eq!(cls("(a a a)*"), SimplePathClass::ParityHard);
    }

    #[test]
    fn finite_languages_are_bounded() {
        assert_eq!(cls("a b + b a"), SimplePathClass::Finite { max_len: 2 });
        assert_eq!(cls("∅"), SimplePathClass::Finite { max_len: 0 });
        assert_eq!(cls("ε"), SimplePathClass::Finite { max_len: 0 });
    }

    #[test]
    fn frontier_languages_detected() {
        // a*ba*: aperiodic (insertion-closed) but not deletion-closed —
        // NP-hard via two-disjoint-paths, outside both sound criteria.
        assert_eq!(cls("a* b a*"), SimplePathClass::Frontier);
        // (ab)*: star-free, deleting "a" from "ab" leaves "b" ∉ L.
        assert_eq!(cls("(a b)*"), SimplePathClass::Frontier);
    }

    #[test]
    fn deletion_closure_decision_is_exact() {
        let (nfas, alphabet, _) = setup(&["a* b a*", "(a + b)*", "(a a)*"]);
        assert!(!deletion_closed(&nfas[0], &alphabet));
        assert!(deletion_closed(&nfas[1], &alphabet));
        assert!(!deletion_closed(&nfas[2], &alphabet));
    }

    #[test]
    fn delete_one_factor_language() {
        let (nfas, _, _) = setup(&["a b c"]);
        let del = delete_one_factor(&nfas[0]);
        // Deleting one non-empty factor of "abc":
        let words = del.words_up_to(3, 100);
        let as_sets: std::collections::HashSet<Vec<Symbol>> = words.into_iter().collect();
        // ε (delete abc), a (delete bc), c (delete ab), ab, bc, ac (delete b).
        assert!(as_sets.contains(&vec![]));
        assert!(as_sets.contains(&vec![Symbol(0)]));
        assert!(as_sets.contains(&vec![Symbol(0), Symbol(1)]));
        assert!(as_sets.contains(&vec![Symbol(0), Symbol(2)]));
        assert!(as_sets.contains(&vec![Symbol(1), Symbol(2)]));
        assert!(as_sets.contains(&vec![Symbol(2)]));
        assert!(
            !as_sets.contains(&vec![Symbol(0), Symbol(1), Symbol(2)]),
            "no deletion is not allowed"
        );
        assert!(!as_sets.contains(&vec![Symbol(1)]), "b needs two deletions");
    }

    #[test]
    fn insertion_closure_matches_word_level_sampling() {
        // Cross-check aperiodicity against the defining property with k = n
        // on small words.
        for expr in ["a*", "(a a)*", "(a b)*", "a* b a*", "a b a"] {
            let (nfas, alphabet, _) = setup(&[expr]);
            let nfa = &nfas[0];
            let closed = insertion_closed(nfa, &alphabet, 100_000).unwrap();
            let k = 6; // ≥ number of DFA states for these tiny languages
            let mut violated = false;
            let words = |len: usize| -> Vec<Vec<Symbol>> {
                let mut out: Vec<Vec<Symbol>> = vec![Vec::new()];
                for _ in 0..len {
                    out = out
                        .into_iter()
                        .flat_map(|w| {
                            alphabet.iter().map(move |&s| {
                                let mut w2 = w.clone();
                                w2.push(s);
                                w2
                            })
                        })
                        .collect();
                }
                out
            };
            for u in [vec![], vec![Symbol(0)]] {
                for w in words(1).into_iter().chain(words(2)) {
                    for v in [vec![], vec![Symbol(0)], vec![Symbol(1)]] {
                        let mut base = u.clone();
                        for _ in 0..k {
                            base.extend(&w);
                        }
                        base.extend(&v);
                        let mut more = u.clone();
                        for _ in 0..k + 1 {
                            more.extend(&w);
                        }
                        more.extend(&v);
                        if nfa.accepts(&base) && !nfa.accepts(&more) {
                            violated = true;
                        }
                    }
                }
            }
            if violated {
                assert!(
                    !closed,
                    "{expr}: word-level violation but classified closed"
                );
            }
        }
    }
}
