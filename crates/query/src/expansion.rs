//! Expansions of CRPQs (paper §2.2).
//!
//! A `w`-expansion of an atom `x -[L]-> y` replaces the atom by a path of
//! fresh variables spelling `w ∈ L`; an expansion of a CRPQ chooses one word
//! per atom (the *expansion profile*) and is a CQ. ε-handling happens
//! upstream: expansions are taken over the ε-free variants produced by
//! [`Crpq::epsilon_free_union`], so every chosen word is non-empty and no
//! equality collapsing is needed at this layer — exactly the paper's scheme
//! of defining semantics on ε-free queries first.

use crate::cq::{Cq, CqAtom, Var};
use crate::crpq::Crpq;
use crpq_util::{FxHashSet, Symbol};
use std::ops::ControlFlow;

/// An expansion `E ∈ Exp(Q)`: the expanded CQ plus provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Expansion {
    /// The expansion as a CQ. Variables `0..variant_vars` are the variables
    /// of the ε-free variant; the rest are fresh internal path variables.
    pub cq: Cq,
    /// Number of variables of the ε-free variant query.
    pub variant_vars: usize,
    /// The chosen word per atom of the variant query (all non-empty).
    pub profile: Vec<Vec<Symbol>>,
    /// Per atom: the variable path `[src, z₁, …, z_{k-1}, dst]` in `cq`.
    pub atom_paths: Vec<Vec<Var>>,
    /// Index of the ε-free variant within `epsilon_free_union()` that
    /// produced this expansion (set by [`enumerate_expansions`]).
    pub variant_index: usize,
}

impl Expansion {
    /// Builds the expansion of an **ε-free** query from one non-empty word
    /// per atom.
    pub fn build(query: &Crpq, words: &[Vec<Symbol>]) -> Expansion {
        assert_eq!(words.len(), query.atoms.len());
        assert!(
            words.iter().all(|w| !w.is_empty()),
            "expansion words must be non-empty"
        );
        let mut next_var = query.num_vars as u32;
        let mut atoms = Vec::new();
        let mut atom_paths = Vec::with_capacity(query.atoms.len());
        for (atom, word) in query.atoms.iter().zip(words) {
            let mut path = Vec::with_capacity(word.len() + 1);
            path.push(atom.src);
            for _ in 0..word.len() - 1 {
                path.push(Var(next_var));
                next_var += 1;
            }
            path.push(atom.dst);
            for (i, &sym) in word.iter().enumerate() {
                atoms.push(CqAtom {
                    src: path[i],
                    label: sym,
                    dst: path[i + 1],
                });
            }
            atom_paths.push(path);
        }
        let cq = Cq {
            num_vars: next_var as usize,
            atoms,
            free: query.free.clone(),
        };
        Expansion {
            cq,
            variant_vars: query.num_vars,
            profile: words.to_vec(),
            atom_paths,
            variant_index: 0,
        }
    }

    /// Pairs of distinct variables that are φ-atom-related (occur in the
    /// same atom expansion), as canonical `(min, max)` pairs.
    ///
    /// These are exactly the pairs an atom-injective homomorphism must keep
    /// apart (§2.2), and the pairs `Exp_a-inj` quotients may never merge
    /// (§4.1).
    pub fn atom_related_pairs(&self) -> FxHashSet<(Var, Var)> {
        let mut out = FxHashSet::default();
        for path in &self.atom_paths {
            for i in 0..path.len() {
                for j in i + 1..path.len() {
                    let (a, b) = (path[i].min(path[j]), path[i].max(path[j]));
                    if a != b {
                        out.insert((a, b));
                    }
                }
            }
        }
        out
    }

    /// Total size (number of CQ atoms) of the expansion.
    pub fn size(&self) -> usize {
        self.cq.atoms.len()
    }
}

/// Bounds for expansion enumeration.
#[derive(Clone, Copy, Debug)]
pub struct ExpansionLimits {
    /// Maximum word length considered per atom.
    pub max_word_len: usize,
    /// Maximum number of expansions visited across all variants.
    pub max_expansions: usize,
}

impl Default for ExpansionLimits {
    fn default() -> Self {
        Self {
            max_word_len: 6,
            max_expansions: 100_000,
        }
    }
}

/// Result of an enumeration run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnumerationOutcome {
    /// Whether the set of visited expansions is provably all of `Exp(Q)`
    /// (every atom language finite with all words within the length bound,
    /// and no cap/early-exit was hit).
    pub complete: bool,
    /// Number of expansions visited.
    pub count: usize,
}

/// Enumerates `Exp(Q)` (over all ε-free variants), in order of variant then
/// lexicographic word choice, within `limits`. The visitor may break early.
///
/// Returns an [`EnumerationOutcome`] whose `complete` flag is the engine's
/// completeness certificate: when `true`, every expansion of `Q` was visited.
pub fn enumerate_expansions<F>(
    query: &Crpq,
    limits: ExpansionLimits,
    mut visit: F,
) -> EnumerationOutcome
where
    F: FnMut(&Expansion) -> ControlFlow<()>,
{
    let variants = query.epsilon_free_union();
    let mut complete = true;
    let mut count = 0usize;

    'variants: for (vi, variant) in variants.iter().enumerate() {
        // Per-atom candidate words in shortlex order.
        let mut word_lists: Vec<Vec<Vec<Symbol>>> = Vec::with_capacity(variant.atoms.len());
        let mut variant_sat = true;
        for atom in &variant.atoms {
            let nfa = atom.nfa();
            match nfa.max_word_len() {
                Some(max) if max <= limits.max_word_len => {
                    // finite language fully within bounds
                }
                Some(_) | None => {
                    // Either finite-but-longer or infinite: bounded slice.
                    complete = false;
                }
            }
            let cap = limits.max_expansions.saturating_add(1);
            let mut words = nfa.words_up_to(limits.max_word_len, cap);
            if words.len() > limits.max_expansions {
                // Truncated word list: cannot certify exhaustiveness.
                complete = false;
                words.truncate(limits.max_expansions);
            }
            if words.is_empty() {
                // No word within bound: variant contributes nothing here.
                variant_sat = false;
            }
            word_lists.push(words);
        }
        if !variant_sat {
            continue;
        }
        // Cartesian product over atoms.
        let mut choice = vec![0usize; variant.atoms.len()];
        loop {
            let words: Vec<Vec<Symbol>> = choice
                .iter()
                .enumerate()
                .map(|(i, &c)| word_lists[i][c].clone())
                .collect();
            let mut exp = Expansion::build(variant, &words);
            exp.variant_index = vi;
            count += 1;
            if visit(&exp).is_break() {
                complete = false;
                break 'variants;
            }
            if count >= limits.max_expansions {
                // Reaching the cap is only incompleteness if more remain
                // (in this variant or any later one).
                if next_choice(&mut choice, &word_lists) || vi + 1 < variants.len() {
                    complete = false;
                }
                break 'variants;
            }
            if !next_choice(&mut choice, &word_lists) {
                break;
            }
        }
    }
    EnumerationOutcome { complete, count }
}

/// Advances a mixed-radix counter; returns `false` when wrapped (done).
fn next_choice(choice: &mut [usize], lists: &[Vec<Vec<Symbol>>]) -> bool {
    for i in (0..choice.len()).rev() {
        choice[i] += 1;
        if choice[i] < lists[i].len() {
            return true;
        }
        choice[i] = 0;
    }
    // Wrapped around (including the empty-atom query's single choice).
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crpq::CrpqAtom;
    use crpq_automata::parse_regex;
    use crpq_util::Interner;

    fn atom(s: u32, expr: &str, d: u32, it: &mut Interner) -> CrpqAtom {
        CrpqAtom {
            src: Var(s),
            dst: Var(d),
            regex: parse_regex(expr, it).unwrap(),
        }
    }

    fn collect(q: &Crpq, limits: ExpansionLimits) -> (Vec<Expansion>, EnumerationOutcome) {
        let mut out = Vec::new();
        let outcome = enumerate_expansions(q, limits, |e| {
            out.push(e.clone());
            ControlFlow::Continue(())
        });
        (out, outcome)
    }

    #[test]
    fn build_single_atom() {
        let mut it = Interner::new();
        let q = Crpq::with_free(vec![atom(0, "a b a", 1, &mut it)], vec![Var(0), Var(1)]);
        let word: Vec<Symbol> = vec![Symbol(0), Symbol(1), Symbol(0)];
        let e = Expansion::build(&q, std::slice::from_ref(&word));
        assert_eq!(e.cq.num_vars, 4); // x0, x1 + two internals
        assert_eq!(e.cq.atoms.len(), 3);
        assert_eq!(e.atom_paths[0].len(), 4);
        assert_eq!(e.atom_paths[0][0], Var(0));
        assert_eq!(e.atom_paths[0][3], Var(1));
        assert_eq!(e.profile, vec![word]);
        assert_eq!(e.cq.free, vec![Var(0), Var(1)]);
    }

    #[test]
    fn self_loop_atom_expansion() {
        // x -[a a]-> x gives path x, z, x and atoms x-a->z, z-a->x.
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a a", 0, &mut it)]);
        let e = Expansion::build(&q, &[vec![Symbol(0), Symbol(0)]]);
        assert_eq!(e.cq.num_vars, 2);
        assert_eq!(e.atom_paths[0], vec![Var(0), Var(1), Var(0)]);
        // atom-related pairs: only (x0, z)
        let rel = e.atom_related_pairs();
        assert_eq!(rel.len(), 1);
        assert!(rel.contains(&(Var(0), Var(1))));
    }

    #[test]
    fn atom_related_pairs_do_not_span_atoms() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a a", 1, &mut it), atom(0, "b b", 2, &mut it)]);
        let e = Expansion::build(
            &q,
            &[vec![Symbol(0), Symbol(0)], vec![Symbol(1), Symbol(1)]],
        );
        let rel = e.atom_related_pairs();
        // path1 = [x0, z3, x1], path2 = [x0, z4, x2]
        // pairs: (x0,z3),(x0,x1),(z3,x1) + (x0,z4),(x0,x2),(z4,x2)
        assert_eq!(rel.len(), 6);
        // the two internals are NOT related (different atoms)
        assert!(!rel.contains(&(Var(3), Var(4))));
        // endpoints of different atoms are not related either
        assert!(!rel.contains(&(Var(1), Var(2))));
    }

    #[test]
    fn enumerate_finite_query_is_complete() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a+b c", 1, &mut it)]);
        let (exps, outcome) = collect(&q, ExpansionLimits::default());
        assert!(outcome.complete);
        assert_eq!(outcome.count, 2); // words: a, bc
        assert_eq!(exps.len(), 2);
        assert_eq!(exps[0].profile[0], vec![Symbol(0)]);
        assert_eq!(exps[1].profile[0], vec![Symbol(1), Symbol(2)]);
    }

    #[test]
    fn enumerate_star_is_incomplete_but_bounded() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a*", 1, &mut it)]);
        let (exps, outcome) = collect(
            &q,
            ExpansionLimits {
                max_word_len: 3,
                max_expansions: 100,
            },
        );
        assert!(!outcome.complete);
        // Variants: keep (a^+ words a, aa, aaa) + collapse (no atoms → 1 expansion).
        assert_eq!(exps.len(), 4);
        let empty_variant = exps.iter().find(|e| e.cq.atoms.is_empty()).unwrap();
        assert_eq!(empty_variant.cq.num_vars, 1);
    }

    #[test]
    fn enumerate_cartesian_product() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a+b", 1, &mut it), atom(1, "a+b", 2, &mut it)]);
        let (exps, outcome) = collect(&q, ExpansionLimits::default());
        assert!(outcome.complete);
        assert_eq!(exps.len(), 4);
    }

    #[test]
    fn cap_marks_incomplete() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a+b", 1, &mut it), atom(1, "a+b", 2, &mut it)]);
        let (exps, outcome) = collect(
            &q,
            ExpansionLimits {
                max_word_len: 4,
                max_expansions: 3,
            },
        );
        assert_eq!(exps.len(), 3);
        assert!(!outcome.complete);
    }

    #[test]
    fn early_break_marks_incomplete() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a+b", 1, &mut it)]);
        let mut seen = 0;
        let outcome = enumerate_expansions(&q, ExpansionLimits::default(), |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
        assert!(!outcome.complete);
    }

    #[test]
    fn atomless_query_single_expansion() {
        let q = Crpq::with_free(vec![], vec![Var(0)]);
        let (exps, outcome) = collect(&q, ExpansionLimits::default());
        assert!(outcome.complete);
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].cq.num_vars, 1);
    }

    #[test]
    fn epsilon_union_feeds_enumeration() {
        // x -[a?]-> y: variants are x -[a]-> y and collapse(x=y).
        let mut it = Interner::new();
        let q = Crpq::with_free(vec![atom(0, "a?", 1, &mut it)], vec![Var(0), Var(1)]);
        let (exps, outcome) = collect(&q, ExpansionLimits::default());
        assert!(outcome.complete);
        assert_eq!(exps.len(), 2);
        let collapsed = exps.iter().find(|e| e.cq.atoms.is_empty()).unwrap();
        assert_eq!(collapsed.cq.free, vec![Var(0), Var(0)]);
    }
}
