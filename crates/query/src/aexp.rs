//! Atom-injective expansions `Exp_a-inj(Q)` (paper §4.1).
//!
//! An a-inj-expansion of `Q` is obtained from an ordinary expansion `E` by
//! identifying variables that are **not** φ-atom-related (the conjunction
//! `J` of equality atoms), then collapsing. Lemma 4.4 shows these quotients
//! characterise atom-injective homomorphisms via plain injective ones, and
//! Prop 4.6 builds the containment characterisation on them.

use crate::cq::{Cq, Var};
use crate::crpq::Crpq;
use crate::expansion::{enumerate_expansions, EnumerationOutcome, Expansion, ExpansionLimits};
use crpq_util::partition::partitions_with;
use std::ops::ControlFlow;

/// An a-inj-expansion `F ∈ Exp_a-inj(Q)`: a quotient of an ordinary
/// expansion by a partition that never merges atom-related variables.
#[derive(Clone, Debug)]
pub struct AInjExpansion {
    /// The quotient CQ.
    pub cq: Cq,
    /// The underlying ordinary expansion.
    pub base: Expansion,
    /// Canonical renaming `Φ`: variable of `base.cq` → variable of `cq`.
    pub renaming: Vec<usize>,
}

impl AInjExpansion {
    /// Number of merged classes (0 for the discrete partition, i.e. when the
    /// a-inj-expansion is the ordinary expansion itself).
    pub fn merges(&self) -> usize {
        self.base.cq.num_vars - self.cq.num_vars
    }
}

/// Enumerates the a-inj-expansions of a single ordinary expansion: all
/// quotients by partitions separating atom-related pairs (the ordinary
/// expansion itself appears as the discrete partition).
pub fn a_inj_expansions_of<F>(base: &Expansion, mut visit: F) -> bool
where
    F: FnMut(&AInjExpansion) -> ControlFlow<()>,
{
    let related = base.atom_related_pairs();
    let n = base.cq.num_vars;
    partitions_with(
        n,
        |a, b| related.contains(&(Var(a as u32), Var(b as u32))),
        |partition| {
            let quotient = base
                .cq
                .quotient(&partition.assignment, partition.num_blocks());
            let aexp = AInjExpansion {
                cq: quotient,
                base: base.clone(),
                renaming: partition.assignment.clone(),
            };
            visit(&aexp)
        },
    )
}

/// Enumerates `Exp_a-inj(Q)` within `limits`: for every ordinary expansion,
/// every admissible quotient. `limits.max_expansions` caps the number of
/// *a-inj*-expansions visited.
pub fn enumerate_a_inj_expansions<F>(
    query: &Crpq,
    limits: ExpansionLimits,
    mut visit: F,
) -> EnumerationOutcome
where
    F: FnMut(&AInjExpansion) -> ControlFlow<()>,
{
    let mut count = 0usize;
    let base_outcome = enumerate_expansions(query, limits, |exp| {
        let completed = a_inj_expansions_of(exp, |aexp| {
            count += 1;
            if visit(aexp).is_break() || count >= limits.max_expansions {
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        // An inner break (visitor stop or cap) aborts the outer enumeration,
        // which records incompleteness in `base_outcome`.
        if completed {
            ControlFlow::Continue(())
        } else {
            ControlFlow::Break(())
        }
    });
    EnumerationOutcome {
        complete: base_outcome.complete,
        count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crpq::CrpqAtom;
    use crpq_automata::parse_regex;
    use crpq_util::Interner;

    fn atom(s: u32, expr: &str, d: u32, it: &mut Interner) -> CrpqAtom {
        CrpqAtom {
            src: Var(s),
            dst: Var(d),
            regex: parse_regex(expr, it).unwrap(),
        }
    }

    fn collect_all(q: &Crpq, limits: ExpansionLimits) -> Vec<AInjExpansion> {
        let mut out = Vec::new();
        enumerate_a_inj_expansions(q, limits, |a| {
            out.push(a.clone());
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn example_4_7_a_inj_expansion() {
        // Q1 = x -a-> y ∧ y -b-> z; identifying x and z (not atom-related)
        // yields the a-inj-expansion F of Example 4.7.
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a", 1, &mut it), atom(1, "b", 2, &mut it)]);
        let aexps = collect_all(&q, ExpansionLimits::default());
        // Partitions of {x,y,z} separating (x,y) and (y,z):
        // discrete + merge{x,z} = 2.
        assert_eq!(aexps.len(), 2);
        assert!(
            aexps.iter().any(|a| a.merges() == 0),
            "discrete partition present"
        );
        let merged = aexps.iter().find(|a| a.merges() == 1).unwrap();
        assert_eq!(merged.cq.num_vars, 2);
        // The merged query is x -a-> y ∧ y -b-> x (a 2-cycle shape).
        assert_eq!(merged.cq.atoms.len(), 2);
        assert_eq!(merged.renaming[0], merged.renaming[2]);
    }

    #[test]
    fn atom_internal_variables_never_merge() {
        // Single atom x -[a a]-> y: its expansion path x, z, y is fully
        // atom-related; the only a-inj-expansion is the expansion itself.
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a a", 1, &mut it)]);
        let aexps = collect_all(&q, ExpansionLimits::default());
        assert_eq!(aexps.len(), 1);
        assert_eq!(aexps[0].merges(), 0);
    }

    #[test]
    fn cross_atom_internals_can_merge() {
        // x -[a a]-> y ∧ x -[b b]-> y: internals z1 (a-path) and z2 (b-path)
        // are unrelated and may merge.
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a a", 1, &mut it), atom(0, "b b", 1, &mut it)]);
        let aexps = collect_all(&q, ExpansionLimits::default());
        // Partitions of {x, y, z1, z2} separating within-atom pairs:
        // atom1 relates (x,z1),(x,y),(z1,y); atom2 relates (x,z2),(x,y),(z2,y).
        // Only z1/z2 may merge: discrete + {z1,z2} = 2.
        assert_eq!(aexps.len(), 2);
        let merged = aexps.iter().find(|a| a.merges() == 1).unwrap();
        assert_eq!(merged.cq.num_vars, 3);
    }

    #[test]
    fn enumeration_counts_across_expansions() {
        // x -[a+b]-> y: two expansions, each a single edge (no merges
        // possible: endpoints are atom-related).
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a+b", 1, &mut it)]);
        let aexps = collect_all(&q, ExpansionLimits::default());
        assert_eq!(aexps.len(), 2);
    }

    #[test]
    fn cap_respected() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a", 1, &mut it), atom(2, "b", 3, &mut it)]);
        let mut seen = 0;
        let outcome = enumerate_a_inj_expansions(
            &q,
            ExpansionLimits {
                max_word_len: 3,
                max_expansions: 2,
            },
            |_| {
                seen += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(seen, 2);
        assert_eq!(outcome.count, 2);
        assert!(!outcome.complete);
    }

    #[test]
    fn free_variables_follow_quotient() {
        let mut it = Interner::new();
        let q = Crpq::with_free(
            vec![atom(0, "a", 1, &mut it), atom(1, "b", 2, &mut it)],
            vec![Var(0), Var(2)],
        );
        let aexps = collect_all(&q, ExpansionLimits::default());
        let merged = aexps.iter().find(|a| a.merges() == 1).unwrap();
        // free tuple (x, z) collapses to (v, v)
        assert_eq!(merged.cq.free[0], merged.cq.free[1]);
    }
}
