//! The homomorphism engine.
//!
//! One backtracking solver covers the three homomorphism notions the paper
//! uses (§2, Lemma 4.4):
//!
//! * **ordinary** homomorphisms `Q → (G, v̄)` — no disequality constraints;
//! * **injective** homomorphisms `Q -inj-> (G, v̄)` — all variable pairs
//!   distinct;
//! * **atom-injective** homomorphisms `E -a-inj-> (G, v̄)` — exactly the
//!   φ-atom-related pairs distinct.
//!
//! The solver does forward-checked backtracking with a fail-first
//! (minimum-remaining-values) variable order. Candidate domains are seeded
//! from label-degree indexes, pre-assignments pin free variables.

use crate::cq::{Cq, Var};
use crpq_graph::{GraphDb, NodeId};
use crpq_util::{BitSet, FxHashSet};
use std::ops::ControlFlow;

/// Which variable pairs must be mapped to distinct nodes.
#[derive(Clone, Debug)]
pub enum DistinctSpec {
    /// No disequality constraints (ordinary homomorphism).
    None,
    /// All pairs distinct (injective homomorphism).
    AllPairs,
    /// Exactly these pairs distinct (atom-injective homomorphism); pairs are
    /// canonical `(min, max)`.
    Pairs(FxHashSet<(Var, Var)>),
}

impl DistinctSpec {
    fn must_differ(&self, a: Var, b: Var) -> bool {
        if a == b {
            return false;
        }
        match self {
            DistinctSpec::None => false,
            DistinctSpec::AllPairs => true,
            DistinctSpec::Pairs(pairs) => pairs.contains(&(a.min(b), a.max(b))),
        }
    }
}

/// Finds a homomorphism from `source` into `target` extending the partial
/// assignment `pre` and satisfying `distinct`. Returns the full assignment
/// (indexed by variable) if one exists.
pub fn find_hom(
    source: &Cq,
    target: &GraphDb,
    pre: &[(Var, NodeId)],
    distinct: &DistinctSpec,
) -> Option<Vec<NodeId>> {
    let mut result = None;
    for_each_hom(source, target, pre, distinct, |assignment| {
        result = Some(assignment.to_vec());
        ControlFlow::Break(())
    });
    result
}

/// Whether a homomorphism exists (see [`find_hom`]).
pub fn hom_exists(
    source: &Cq,
    target: &GraphDb,
    pre: &[(Var, NodeId)],
    distinct: &DistinctSpec,
) -> bool {
    find_hom(source, target, pre, distinct).is_some()
}

/// Enumerates all homomorphisms; `visit` receives the assignment indexed by
/// variable. Returns `true` if enumeration ran to completion.
pub fn for_each_hom<F>(
    source: &Cq,
    target: &GraphDb,
    pre: &[(Var, NodeId)],
    distinct: &DistinctSpec,
    mut visit: F,
) -> bool
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let n_vars = source.num_vars;
    if n_vars == 0 {
        // The empty query has the empty homomorphism.
        return visit(&[]).is_continue();
    }
    let n_nodes = target.num_nodes();

    // Per-variable static domains from label-degree requirements.
    let mut domains: Vec<BitSet> = vec![BitSet::full(n_nodes); n_vars];
    for atom in &source.atoms {
        let mut out_ok = BitSet::new(n_nodes);
        let mut in_ok = BitSet::new(n_nodes);
        for v in target.nodes() {
            if target.successors(v, atom.label).next().is_some() {
                out_ok.insert(v.index());
            }
            if target.predecessors(v, atom.label).next().is_some() {
                in_ok.insert(v.index());
            }
        }
        domains[atom.src.index()].intersect_with(&out_ok);
        domains[atom.dst.index()].intersect_with(&in_ok);
    }
    for &(v, node) in pre {
        if node.index() >= n_nodes || !domains[v.index()].contains(node.index()) {
            return true; // pre-assignment infeasible: zero homs, completed
        }
        let mut only = BitSet::new(n_nodes);
        only.insert(node.index());
        domains[v.index()] = only;
    }
    // Check pre-assignment consistency against `distinct` immediately.
    for &(a, na) in pre {
        for &(b, nb) in pre {
            if a != b && na == nb && distinct.must_differ(a, b) {
                return true;
            }
        }
    }

    // Adjacency of the constraint network: per var, atoms touching it.
    let mut var_atoms: Vec<Vec<usize>> = vec![Vec::new(); n_vars];
    for (i, atom) in source.atoms.iter().enumerate() {
        var_atoms[atom.src.index()].push(i);
        if atom.dst != atom.src {
            var_atoms[atom.dst.index()].push(i);
        }
    }

    let mut assignment: Vec<Option<NodeId>> = vec![None; n_vars];
    let mut search = Search {
        source,
        target,
        distinct,
        domains: &domains,
        var_atoms: &var_atoms,
        visit: &mut visit,
    };
    search.go(&mut assignment).is_continue()
}

struct Search<'a, F> {
    source: &'a Cq,
    target: &'a GraphDb,
    distinct: &'a DistinctSpec,
    domains: &'a [BitSet],
    var_atoms: &'a [Vec<usize>],
    visit: &'a mut F,
}

impl<F> Search<'_, F>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    fn go(&mut self, assignment: &mut Vec<Option<NodeId>>) -> ControlFlow<()> {
        // Pick the unassigned variable with fewest consistent candidates.
        let mut best: Option<(Var, Vec<NodeId>)> = None;
        for v in 0..assignment.len() {
            if assignment[v].is_some() {
                continue;
            }
            let cands = self.candidates(Var(v as u32), assignment);
            if cands.is_empty() {
                return ControlFlow::Continue(()); // dead branch
            }
            let better = best.as_ref().is_none_or(|(_, c)| cands.len() < c.len());
            if better {
                let single = cands.len() == 1;
                best = Some((Var(v as u32), cands));
                if single {
                    break;
                }
            }
        }
        let Some((var, cands)) = best else {
            // All variables assigned: emit.
            let full: Vec<NodeId> = assignment.iter().map(|a| a.unwrap()).collect(); // invariant: every variable is bound at a leaf
            return (self.visit)(&full);
        };
        for node in cands {
            assignment[var.index()] = Some(node);
            self.go(assignment)?;
            assignment[var.index()] = None;
        }
        ControlFlow::Continue(())
    }

    /// Candidate nodes for `var` consistent with the current partial
    /// assignment (edge constraints to assigned neighbours + disequalities).
    fn candidates(&self, var: Var, assignment: &[Option<NodeId>]) -> Vec<NodeId> {
        let mut cands: Option<Vec<NodeId>> = None;
        let restrict = |cands: &mut Option<Vec<NodeId>>, allowed: Vec<NodeId>| {
            *cands = Some(match cands.take() {
                None => allowed,
                Some(prev) => {
                    let set: FxHashSet<NodeId> = allowed.into_iter().collect();
                    prev.into_iter().filter(|n| set.contains(n)).collect()
                }
            });
        };

        for &ai in &self.var_atoms[var.index()] {
            let atom = &self.source.atoms[ai];
            if atom.src == var {
                if let Some(dst_node) = assignment[atom.dst.index()] {
                    let preds: Vec<NodeId> =
                        self.target.predecessors(dst_node, atom.label).collect();
                    restrict(&mut cands, preds);
                }
            }
            if atom.dst == var {
                if let Some(src_node) = assignment[atom.src.index()] {
                    let succs: Vec<NodeId> = self.target.successors(src_node, atom.label).collect();
                    restrict(&mut cands, succs);
                }
            }
            // Self-loop atoms on var with var unassigned on both ends are
            // handled by the static domain + final edge check below.
        }

        let base = &self.domains[var.index()];
        let mut out: Vec<NodeId> = match cands {
            Some(list) => {
                let mut list: Vec<NodeId> = list
                    .into_iter()
                    .filter(|n| base.contains(n.index()))
                    .collect();
                list.sort_unstable();
                list.dedup();
                list
            }
            None => base.iter().map(|i| NodeId(i as u32)).collect(),
        };

        // Self-loop atoms `var -l-> var` require a loop edge at the node.
        for &ai in &self.var_atoms[var.index()] {
            let atom = &self.source.atoms[ai];
            if atom.src == var && atom.dst == var {
                out.retain(|&n| self.target.has_edge(n, atom.label, n));
            }
        }

        // Disequality constraints against assigned variables.
        for (other, assigned) in assignment.iter().enumerate() {
            if let Some(node) = assigned {
                if self.distinct.must_differ(var, Var(other as u32)) {
                    out.retain(|n| n != node);
                }
            }
        }
        out
    }
}

/// Counts homomorphisms (careful: can be exponential; meant for tests).
pub fn count_homs(
    source: &Cq,
    target: &GraphDb,
    pre: &[(Var, NodeId)],
    distinct: &DistinctSpec,
) -> usize {
    let mut count = 0;
    for_each_hom(source, target, pre, distinct, |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    count
}

/// Pins the free tuple of `source` to the nodes `tuple` (positionally).
/// Returns `None` if the tuple length mismatches or a repeated free variable
/// would be pinned to two different nodes.
pub fn pin_free_tuple(source: &Cq, tuple: &[NodeId]) -> Option<Vec<(Var, NodeId)>> {
    if source.free.len() != tuple.len() {
        return None;
    }
    let mut pre: Vec<(Var, NodeId)> = Vec::with_capacity(tuple.len());
    for (&v, &n) in source.free.iter().zip(tuple) {
        if let Some(&(_, prev)) = pre.iter().find(|&&(pv, _)| pv == v) {
            if prev != n {
                return None;
            }
        } else {
            pre.push((v, n));
        }
    }
    Some(pre)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqAtom;
    use crpq_graph::GraphBuilder;
    use crpq_util::{Interner, Symbol};

    fn triangle() -> (GraphDb, Symbol) {
        let mut b = GraphBuilder::new();
        b.edge("u", "e", "v");
        b.edge("v", "e", "w");
        b.edge("w", "e", "u");
        let g = b.finish();
        let e = g.alphabet().get("e").unwrap();
        (g, e)
    }

    fn path_query(len: usize, label: Symbol) -> Cq {
        let atoms = (0..len)
            .map(|i| CqAtom {
                src: Var(i as u32),
                label,
                dst: Var(i as u32 + 1),
            })
            .collect();
        Cq::boolean(atoms)
    }

    #[test]
    fn plain_hom_wraps_cycle() {
        let (g, e) = triangle();
        // A 6-path maps around the triangle twice.
        let q = path_query(6, e);
        assert!(hom_exists(&q, &g, &[], &DistinctSpec::None));
        // Injectively impossible: 7 variables, 3 nodes.
        assert!(!hom_exists(&q, &g, &[], &DistinctSpec::AllPairs));
    }

    #[test]
    fn injective_hom_needs_capacity() {
        let (g, e) = triangle();
        let q = path_query(2, e);
        assert!(hom_exists(&q, &g, &[], &DistinctSpec::AllPairs));
        let q3 = path_query(3, e); // 4 vars > 3 nodes
        assert!(!hom_exists(&q3, &g, &[], &DistinctSpec::AllPairs));
        // But plain homomorphism exists (wrap around).
        assert!(hom_exists(&q3, &g, &[], &DistinctSpec::None));
    }

    #[test]
    fn selected_pairs_constraint() {
        let (g, e) = triangle();
        let q = path_query(3, e);
        // Only require x0 ≠ x1: satisfiable (wrap may reuse other nodes).
        let mut pairs = FxHashSet::default();
        pairs.insert((Var(0), Var(1)));
        assert!(hom_exists(&q, &g, &[], &DistinctSpec::Pairs(pairs)));
        // Require x0 ≠ x3: on a 3-cycle a 3-path returns to start, so x0=x3
        // is forced; the constraint kills it.
        let mut pairs = FxHashSet::default();
        pairs.insert((Var(0), Var(3)));
        assert!(!hom_exists(&q, &g, &[], &DistinctSpec::Pairs(pairs)));
    }

    #[test]
    fn pre_assignment_pins_variables() {
        let (g, e) = triangle();
        let q = path_query(1, e);
        let u = g.node_by_name("u").unwrap();
        let v = g.node_by_name("v").unwrap();
        let w = g.node_by_name("w").unwrap();
        assert!(hom_exists(
            &q,
            &g,
            &[(Var(0), u), (Var(1), v)],
            &DistinctSpec::None
        ));
        assert!(!hom_exists(
            &q,
            &g,
            &[(Var(0), u), (Var(1), w)],
            &DistinctSpec::None
        ));
    }

    #[test]
    fn count_homs_on_triangle() {
        let (g, e) = triangle();
        // Single edge: 3 homs (one per edge).
        let q = path_query(1, e);
        assert_eq!(count_homs(&q, &g, &[], &DistinctSpec::None), 3);
        // Edge with distinct endpoints: still 3 (no self-loops present).
        assert_eq!(count_homs(&q, &g, &[], &DistinctSpec::AllPairs), 3);
    }

    #[test]
    fn self_loop_atoms() {
        let mut b = GraphBuilder::new();
        b.edge("u", "e", "u");
        b.edge("u", "e", "v");
        let g = b.finish();
        let e = g.alphabet().get("e").unwrap();
        let q = Cq::boolean(vec![CqAtom {
            src: Var(0),
            label: e,
            dst: Var(0),
        }]);
        let homs = count_homs(&q, &g, &[], &DistinctSpec::None);
        assert_eq!(homs, 1, "only u has a self-loop");
    }

    #[test]
    fn empty_query_has_empty_hom() {
        let (g, _) = triangle();
        let q = Cq::boolean(vec![]);
        assert!(hom_exists(&q, &g, &[], &DistinctSpec::AllPairs));
    }

    #[test]
    fn isolated_variables_range_over_all_nodes() {
        let (g, _) = triangle();
        let q = Cq::with_free(vec![], vec![Var(0), Var(1)]);
        assert_eq!(count_homs(&q, &g, &[], &DistinctSpec::None), 9);
        assert_eq!(count_homs(&q, &g, &[], &DistinctSpec::AllPairs), 6);
    }

    #[test]
    fn pin_free_tuple_handles_repeats() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let q = Cq::with_free(
            vec![CqAtom {
                src: Var(0),
                label: a,
                dst: Var(1),
            }],
            vec![Var(0), Var(0)],
        );
        let n0 = NodeId(0);
        let n1 = NodeId(1);
        assert!(pin_free_tuple(&q, &[n0, n0]).is_some());
        assert!(
            pin_free_tuple(&q, &[n0, n1]).is_none(),
            "repeated var, different nodes"
        );
        assert!(pin_free_tuple(&q, &[n0]).is_none(), "arity mismatch");
    }

    #[test]
    fn directed_edges_matter() {
        let mut b = GraphBuilder::new();
        b.edge("u", "e", "v");
        let g = b.finish();
        let e = g.alphabet().get("e").unwrap();
        let q = path_query(1, e);
        let u = g.node_by_name("u").unwrap();
        let v = g.node_by_name("v").unwrap();
        assert!(hom_exists(&q, &g, &[(Var(0), u)], &DistinctSpec::None));
        assert!(!hom_exists(&q, &g, &[(Var(0), v)], &DistinctSpec::None));
    }
}
