//! Unions of CRPQs (UCRPQs).
//!
//! The paper uses unions in two places: ε-elimination produces a union of
//! ε-free CRPQs (§2.1), and the PCP reduction's right-hand side is
//! `Q⟳ ∨ Q→` before being folded into a single query (Thm 5.2). §7 lists
//! UC2RPQs as the natural next class. Union semantics is the union of
//! branch results; containment treats the left side ∀-branch-wise and the
//! right side ∃-branch-wise.

use crate::crpq::{Crpq, QueryClass};
use serde::{Deserialize, Serialize};

/// A union of CRPQs with a common free-tuple arity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UnionCrpq {
    /// The branches (disjuncts); non-empty.
    pub branches: Vec<Crpq>,
}

impl UnionCrpq {
    /// Wraps branches, checking arity agreement.
    pub fn new(branches: Vec<Crpq>) -> UnionCrpq {
        assert!(!branches.is_empty(), "a union needs at least one branch");
        let arity = branches[0].free.len();
        assert!(
            branches.iter().all(|b| b.free.len() == arity),
            "all union branches must share the free-tuple arity"
        );
        UnionCrpq { branches }
    }

    /// A single-branch union.
    pub fn single(q: Crpq) -> UnionCrpq {
        UnionCrpq { branches: vec![q] }
    }

    /// Free-tuple arity.
    pub fn arity(&self) -> usize {
        self.branches[0].free.len()
    }

    /// The most general class among the branches.
    pub fn classify(&self) -> QueryClass {
        self.branches
            .iter()
            .map(Crpq::classify)
            .max()
            .unwrap_or(QueryClass::Cq)
    }

    /// Whether every branch is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }
}

impl From<Crpq> for UnionCrpq {
    fn from(q: Crpq) -> UnionCrpq {
        UnionCrpq::single(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_crpq;
    use crpq_util::Interner;

    #[test]
    fn union_construction() {
        let mut it = Interner::new();
        let q1 = parse_crpq("x -[a]-> y", &mut it).unwrap();
        let q2 = parse_crpq("x -[b b]-> y", &mut it).unwrap();
        let u = UnionCrpq::new(vec![q1, q2]);
        assert_eq!(u.arity(), 0);
        assert!(u.is_boolean());
        assert_eq!(u.classify(), QueryClass::CrpqFin);
    }

    #[test]
    #[should_panic(expected = "share the free-tuple arity")]
    fn arity_mismatch_rejected() {
        let mut it = Interner::new();
        let q1 = parse_crpq("(x) <- x -[a]-> y", &mut it).unwrap();
        let q2 = parse_crpq("x -[b]-> y", &mut it).unwrap();
        let _ = UnionCrpq::new(vec![q1, q2]);
    }

    #[test]
    fn classify_takes_max() {
        let mut it = Interner::new();
        let cq = parse_crpq("x -[a]-> y", &mut it).unwrap();
        let star = parse_crpq("x -[a a*]-> y", &mut it).unwrap();
        let u = UnionCrpq::new(vec![cq, star]);
        assert_eq!(u.classify(), QueryClass::Crpq);
    }
}
