//! Conjunctive regular path queries (CRPQs).
//!
//! A CRPQ atom is `x -[L]-> y` for a regular language `L`. The class
//! hierarchy `CQ ⊆ CRPQ_fin ⊆ CRPQ` (paper §2) is captured by
//! [`QueryClass`]. ε-elimination (§2.1) rewrites a CRPQ into an equivalent
//! finite union of ε-free CRPQs, which is how every engine in this workspace
//! handles ε: all downstream algorithms assume ε-free atoms.

use crate::cq::{Cq, CqAtom, Var};
use crpq_automata::{Nfa, Regex};
use crpq_util::{Interner, UnionFind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A CRPQ atom `src -[regex]-> dst`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrpqAtom {
    /// Source variable.
    pub src: Var,
    /// Target variable.
    pub dst: Var,
    /// The atom language as a regular expression.
    pub regex: Regex,
}

impl CrpqAtom {
    /// Compiles the atom language to an NFA.
    pub fn nfa(&self) -> Nfa {
        Nfa::from_regex(&self.regex)
    }

    /// Canonical structural key of the atom *language*
    /// ([`Nfa::canonical_key`] of the compiled automaton).
    ///
    /// ε-elimination copies most atoms verbatim into every ε-free variant,
    /// so their keys coincide across variants — the property the relation
    /// catalog in `crpq-core` exploits to materialise each distinct atom
    /// relation once per graph instead of once per variant. Callers that
    /// already hold the compiled NFA should key off that instead of paying
    /// for a second compilation here.
    pub fn canonical_key(&self) -> crpq_automata::NfaKey {
        self.nfa().canonical_key()
    }
}

/// The paper's query classes, ordered by generality.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum QueryClass {
    /// Conjunctive queries: every atom is a single letter.
    Cq,
    /// CRPQs with star-free (finite-language) expressions.
    CrpqFin,
    /// Unrestricted CRPQs.
    Crpq,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryClass::Cq => write!(f, "CQ"),
            QueryClass::CrpqFin => write!(f, "CRPQ_fin"),
            QueryClass::Crpq => write!(f, "CRPQ"),
        }
    }
}

/// A conjunctive regular path query.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crpq {
    /// Number of variables (ids `0..num_vars`).
    pub num_vars: usize,
    /// Atoms.
    pub atoms: Vec<CrpqAtom>,
    /// Free-variable tuple (possibly repeating; empty = Boolean).
    pub free: Vec<Var>,
}

impl Crpq {
    /// A Boolean CRPQ, inferring `num_vars`.
    pub fn boolean(atoms: Vec<CrpqAtom>) -> Crpq {
        let num_vars = atoms
            .iter()
            .map(|a| a.src.0.max(a.dst.0) as usize + 1)
            .max()
            .unwrap_or(0);
        Crpq {
            num_vars,
            atoms,
            free: Vec::new(),
        }
    }

    /// A CRPQ with an explicit free tuple.
    pub fn with_free(atoms: Vec<CrpqAtom>, free: Vec<Var>) -> Crpq {
        let mut q = Crpq::boolean(atoms);
        let max_free = free.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        q.num_vars = q.num_vars.max(max_free);
        q.free = free;
        q
    }

    /// Lifts a CQ into a CRPQ (single-letter languages).
    pub fn from_cq(cq: &Cq) -> Crpq {
        Crpq {
            num_vars: cq.num_vars,
            atoms: cq
                .atoms
                .iter()
                .map(|a| CrpqAtom {
                    src: a.src,
                    dst: a.dst,
                    regex: Regex::Literal(a.label),
                })
                .collect(),
            free: cq.free.clone(),
        }
    }

    /// Whether the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// Classifies the query into the paper's hierarchy.
    ///
    /// Star-free syntax implies a finite language; a query is a `CQ` when
    /// every atom is exactly one letter.
    pub fn classify(&self) -> QueryClass {
        let all_single = self
            .atoms
            .iter()
            .all(|a| matches!(a.regex, Regex::Literal(_)));
        if all_single {
            return QueryClass::Cq;
        }
        if self.atoms.iter().all(|a| a.regex.is_star_free()) {
            QueryClass::CrpqFin
        } else {
            QueryClass::Crpq
        }
    }

    /// Downcasts to a CQ if all atoms are single letters.
    pub fn as_cq(&self) -> Option<Cq> {
        let mut atoms = Vec::with_capacity(self.atoms.len());
        for a in &self.atoms {
            match a.regex {
                Regex::Literal(sym) => atoms.push(CqAtom {
                    src: a.src,
                    label: sym,
                    dst: a.dst,
                }),
                _ => return None,
            }
        }
        Some(Cq {
            num_vars: self.num_vars,
            atoms,
            free: self.free.clone(),
        })
    }

    /// Whether some atom language contains ε.
    pub fn has_epsilon_atoms(&self) -> bool {
        self.atoms.iter().any(|a| a.regex.nullable())
    }

    /// Whether the query's *constraint graph* (atoms as undirected edges,
    /// isolated variables excluded) is connected. Used as a precondition by
    /// the Appendix-C engine.
    pub fn is_connected(&self) -> bool {
        if self.atoms.is_empty() {
            return true;
        }
        let mut uf = UnionFind::new(self.num_vars);
        for a in &self.atoms {
            uf.union(a.src.index(), a.dst.index());
        }
        let root = uf.find(self.atoms[0].src.index());
        let mut touched = vec![false; self.num_vars];
        for a in &self.atoms {
            touched[a.src.index()] = true;
            touched[a.dst.index()] = true;
        }
        (0..self.num_vars).all(|v| !touched[v] || uf.find(v) == root)
    }

    /// The ε-elimination of §2.1: an equivalent union of **ε-free** CRPQs.
    ///
    /// Each nullable atom is either kept with language `L \ {ε}` or removed
    /// while merging its endpoints (substitution `[x/y]`); atoms with
    /// `L = {ε}` are always removed; atoms with `∅` language make the branch
    /// unsatisfiable (dropped from the union).
    pub fn epsilon_free_union(&self) -> Vec<Crpq> {
        let nullable: Vec<usize> = self
            .atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.regex.nullable())
            .map(|(i, _)| i)
            .collect();
        let mut out = Vec::new();
        // Iterate over subsets S of nullable atoms taken as ε (removed).
        for mask in 0u64..(1u64 << nullable.len()) {
            let removed: Vec<usize> = nullable
                .iter()
                .enumerate()
                .filter(|&(bit, _)| mask & (1 << bit) != 0)
                .map(|(_, &i)| i)
                .collect();
            let mut uf = UnionFind::new(self.num_vars);
            for &i in &removed {
                uf.union(self.atoms[i].src.index(), self.atoms[i].dst.index());
            }
            let (renaming, k) = uf.dense_classes();
            let mut atoms = Vec::new();
            let mut unsat = false;
            for (i, a) in self.atoms.iter().enumerate() {
                if removed.contains(&i) {
                    continue;
                }
                let regex = if a.regex.nullable() {
                    // keep with ε removed: L \ {ε}
                    remove_epsilon_syntactically(&a.regex)
                } else {
                    a.regex.clone()
                };
                if regex.is_empty_language() {
                    unsat = true;
                    break;
                }
                atoms.push(CrpqAtom {
                    src: Var(renaming[a.src.index()] as u32),
                    dst: Var(renaming[a.dst.index()] as u32),
                    regex,
                });
            }
            if unsat {
                continue;
            }
            let free = self
                .free
                .iter()
                .map(|v| Var(renaming[v.index()] as u32))
                .collect();
            out.push(Crpq {
                num_vars: k,
                atoms,
                free,
            });
        }
        out
    }

    /// Pretty-printer.
    pub fn display<'a>(&'a self, alphabet: &'a Interner) -> CrpqDisplay<'a> {
        CrpqDisplay { q: self, alphabet }
    }
}

/// `L \ {ε}` as a regular expression, via the NFA route (exact).
fn remove_epsilon_syntactically(regex: &Regex) -> Regex {
    // Syntactic shortcuts for the common shapes, falling back to the
    // NFA-based derivative expansion for the rest.
    match regex {
        Regex::Epsilon => Regex::Empty,
        Regex::Star(inner) => Regex::plus((**inner).clone()),
        Regex::Optional(inner) => {
            if inner.nullable() {
                remove_epsilon_syntactically(inner)
            } else {
                (**inner).clone()
            }
        }
        Regex::Alt(parts) => Regex::alt(
            parts
                .iter()
                .map(|p| {
                    if p.nullable() {
                        remove_epsilon_syntactically(p)
                    } else {
                        p.clone()
                    }
                })
                .collect(),
        ),
        other => {
            // General case: first-symbol expansion. L\{ε} = Σ_a a·(a⁻¹L).
            // We realise it as the NFA with initial-finality stripped,
            // reconstructed as a regex via a symbolic wrapper: since our
            // engines consume NFAs, we keep the regex but mark it through an
            // equivalent construct: (L) ∩ Σ⁺ — expressed by wrapping the
            // NFA at compile time. For the regex level we conservatively
            // build `concat of nothing`… instead we use the precise NFA:
            RegexFromNfa::rebuild(other)
        }
    }
}

/// Helper that turns `L \ {ε}` into a regex by state elimination on the
/// ε-stripped NFA. Exact but potentially large; only used for shapes not
/// covered by the syntactic cases (e.g. `(a b)* c?` nested nullables).
struct RegexFromNfa;

impl RegexFromNfa {
    fn rebuild(regex: &Regex) -> Regex {
        let nfa = Nfa::from_regex(regex).without_epsilon().trimmed();
        nfa_to_regex(&nfa)
    }
}

/// Classic state-elimination (Brzozowski–McCluskey) conversion NFA → regex.
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    if nfa.is_empty_language() {
        return Regex::Empty;
    }
    let n = nfa.num_states();
    // GNFA with fresh start (n) and accept (n+1) states.
    let total = n + 2;
    let (start, accept) = (n, n + 1);
    let mut edge: Vec<Vec<Option<Regex>>> = vec![vec![None; total]; total];
    let add = |edge: &mut Vec<Vec<Option<Regex>>>, i: usize, j: usize, r: Regex| {
        let slot = &mut edge[i][j];
        *slot = Some(match slot.take() {
            Some(prev) => Regex::alt(vec![prev, r]),
            None => r,
        });
    };
    for q in 0..n {
        for &(sym, t) in nfa.transitions_from(q as u32) {
            add(&mut edge, q, t as usize, Regex::Literal(sym));
        }
    }
    for q in nfa.initials().iter() {
        add(&mut edge, start, q, Regex::Epsilon);
    }
    for q in nfa.finals().iter() {
        add(&mut edge, q, accept, Regex::Epsilon);
    }
    // Eliminate the original states one by one.
    for k in 0..n {
        let self_loop = edge[k][k].take();
        let loop_star = self_loop.map(Regex::star);
        let preds: Vec<usize> = (0..total)
            .filter(|&i| i != k && edge[i][k].is_some())
            .collect();
        let succs: Vec<usize> = (0..total)
            .filter(|&j| j != k && edge[k][j].is_some())
            .collect();
        for &i in &preds {
            for &j in &succs {
                let mut parts = vec![edge[i][k].clone().unwrap()]; // invariant: checked Some above
                if let Some(ls) = &loop_star {
                    parts.push(ls.clone());
                }
                parts.push(edge[k][j].clone().unwrap()); // invariant: checked Some above
                add(&mut edge, i, j, Regex::concat(parts));
            }
        }
        for row in &mut edge {
            row[k] = None;
        }
        for cell in &mut edge[k] {
            *cell = None;
        }
    }
    edge[start][accept].take().unwrap_or(Regex::Empty)
}

/// Pretty-printer for [`Crpq`].
pub struct CrpqDisplay<'a> {
    q: &'a Crpq,
    alphabet: &'a Interner,
}

impl fmt::Display for CrpqDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.q.free.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "x{}", v.0)?;
        }
        write!(f, ") <- ")?;
        for (i, a) in self.q.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(
                f,
                "x{} -[{}]-> x{}",
                a.src.0,
                a.regex.display(self.alphabet),
                a.dst.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_automata::parse_regex;
    use crpq_util::Symbol;

    fn atom(s: u32, expr: &str, d: u32, it: &mut Interner) -> CrpqAtom {
        CrpqAtom {
            src: Var(s),
            dst: Var(d),
            regex: parse_regex(expr, it).unwrap(),
        }
    }

    #[test]
    fn classification() {
        let mut it = Interner::new();
        let cq = Crpq::boolean(vec![atom(0, "a", 1, &mut it)]);
        assert_eq!(cq.classify(), QueryClass::Cq);
        assert!(cq.as_cq().is_some());

        let fin = Crpq::boolean(vec![atom(0, "a b + c", 1, &mut it)]);
        assert_eq!(fin.classify(), QueryClass::CrpqFin);
        assert!(fin.as_cq().is_none());

        let full = Crpq::boolean(vec![atom(0, "(a b)*", 1, &mut it)]);
        assert_eq!(full.classify(), QueryClass::Crpq);
    }

    #[test]
    fn connectivity() {
        let mut it = Interner::new();
        let conn = Crpq::boolean(vec![atom(0, "a", 1, &mut it), atom(1, "b", 2, &mut it)]);
        assert!(conn.is_connected());
        let disc = Crpq::boolean(vec![atom(0, "a", 1, &mut it), atom(2, "b", 3, &mut it)]);
        assert!(!disc.is_connected());
    }

    #[test]
    fn epsilon_free_union_star() {
        // Q(x,y) = x -[(a b)*]-> y yields two variants: x -[(ab)^+]-> y and
        // the collapse x=y with no atoms.
        let mut it = Interner::new();
        let q = Crpq::with_free(vec![atom(0, "(a b)*", 1, &mut it)], vec![Var(0), Var(1)]);
        let union = q.epsilon_free_union();
        assert_eq!(union.len(), 2);
        let kept = union.iter().find(|v| !v.atoms.is_empty()).unwrap();
        assert!(!kept.atoms[0].regex.nullable());
        let nfa = kept.atoms[0].nfa();
        assert!(nfa.accepts(&[Symbol(0), Symbol(1)]));
        assert!(!nfa.accepts(&[]));
        let collapsed = union.iter().find(|v| v.atoms.is_empty()).unwrap();
        assert_eq!(collapsed.num_vars, 1);
        assert_eq!(collapsed.free, vec![Var(0), Var(0)]);
    }

    #[test]
    fn epsilon_free_union_no_nullables() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "a b", 1, &mut it)]);
        let union = q.epsilon_free_union();
        assert_eq!(union.len(), 1);
        assert_eq!(&union[0], &q);
    }

    #[test]
    fn epsilon_only_atom_always_collapses() {
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "ε", 1, &mut it), atom(0, "a", 1, &mut it)]);
        let union = q.epsilon_free_union();
        // keep-branch of the ε-atom is unsat (∅ language), so only the
        // collapse branch survives: x0=x1 with a self-loop a-atom.
        assert_eq!(union.len(), 1);
        assert_eq!(union[0].num_vars, 1);
        assert_eq!(union[0].atoms.len(), 1);
        assert_eq!(union[0].atoms[0].src, union[0].atoms[0].dst);
    }

    #[test]
    fn nfa_to_regex_roundtrip() {
        let mut it = Interner::new();
        for expr in ["a", "a b", "(a+b)* c", "(a b)^+", "a? b*"] {
            let r = parse_regex(expr, &mut it).unwrap();
            let nfa = Nfa::from_regex(&r);
            let back = nfa_to_regex(&nfa);
            let nfa2 = Nfa::from_regex(&back);
            let alphabet: Vec<Symbol> = (0..it.len() as u32).map(Symbol).collect();
            assert!(
                crpq_automata::dfa::nfa_equivalent(&nfa, &nfa2, &alphabet),
                "roundtrip failed for {expr}"
            );
        }
    }

    #[test]
    fn remove_epsilon_complex_shape() {
        // (a b)* c? is nullable in a nested way; check L\{ε} exact.
        let mut it = Interner::new();
        let q = Crpq::boolean(vec![atom(0, "(a b)* c?", 1, &mut it)]);
        let union = q.epsilon_free_union();
        let kept = union.iter().find(|v| !v.atoms.is_empty()).unwrap();
        let nfa = kept.atoms[0].nfa();
        assert!(!nfa.accepts(&[]));
        let (a, b, c) = (Symbol(0), Symbol(1), Symbol(2));
        assert!(nfa.accepts(&[c]));
        assert!(nfa.accepts(&[a, b]));
        assert!(nfa.accepts(&[a, b, c]));
        assert!(nfa.accepts(&[a, b, a, b]));
        assert!(!nfa.accepts(&[a]));
    }

    #[test]
    fn from_cq_roundtrip() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let cq = Cq::with_free(
            vec![CqAtom {
                src: Var(0),
                label: a,
                dst: Var(1),
            }],
            vec![Var(1)],
        );
        let crpq = Crpq::from_cq(&cq);
        assert_eq!(crpq.classify(), QueryClass::Cq);
        assert_eq!(crpq.as_cq().unwrap(), cq);
    }
}
