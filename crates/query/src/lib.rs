//! # crpq-query
//!
//! The query model of the paper (§2):
//!
//! * [`Cq`] — conjunctive queries over edge-labelled graphs, with free-variable
//!   tuples that may repeat variables;
//! * [`Crpq`] — conjunctive regular path queries, atoms `x -[L]-> y` with a
//!   regular language per atom; classification into the paper's classes
//!   `CQ ⊆ CRPQ_fin ⊆ CRPQ` ([`QueryClass`]);
//! * ε-elimination into a union of ε-free CRPQs (§2.1);
//! * expansions `Exp(Q)` with their expansion profiles (§2.2), and
//!   atom-injective expansions `Exp_a-inj(Q)` (§4.1);
//! * a single homomorphism engine parameterised by disequality constraints,
//!   covering ordinary, injective, and atom-injective homomorphisms
//!   (Prop 2.2/2.3, Lemma 4.4).

pub mod aexp;
pub mod cq;
pub mod crpq;
pub mod expansion;
pub mod hom;
pub mod parser;
pub mod union;

pub use aexp::{enumerate_a_inj_expansions, AInjExpansion};
pub use cq::{Cq, CqAtom, Var};
pub use crpq::{Crpq, CrpqAtom, QueryClass};
pub use expansion::{enumerate_expansions, Expansion, ExpansionLimits};
pub use hom::{find_hom, DistinctSpec};
pub use parser::{parse_crpq, QueryParseError};
pub use union::UnionCrpq;
