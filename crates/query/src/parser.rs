//! CRPQ text syntax.
//!
//! ```text
//! query  := (tuple "<-")? atoms
//! tuple  := "(" [ var ("," var)* ] ")"
//! atoms  := atom ("," atom)* | "true"
//! atom   := var "-[" regex "]->" var
//! ```
//!
//! Examples (the paper's running queries):
//!
//! * `x -[(a b)*]-> y, y -[c*]-> x` — Boolean form of Example 2.1's Q;
//! * `(x, y) <- x -[(a b)*]-> y, y -[c*]-> x` — with free tuple `(x, y)`;
//! * `(x, x) <- true` — atomless query with a repeated free variable.
//!
//! The regex between `-[` and `]->` uses the syntax of
//! [`crpq_automata::parse_regex`] (union `+`/`|`, star `*`, plus `^+`,
//! option `?`, `ε`, `∅`).

use crate::cq::Var;
use crate::crpq::{Crpq, CrpqAtom};
use crpq_automata::parse_regex;
use crpq_util::{FxHashMap, Interner};
use std::fmt;

/// Error from [`parse_crpq`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for QueryParseError {}

fn err(message: impl Into<String>) -> QueryParseError {
    QueryParseError {
        message: message.into(),
    }
}

/// Parses a CRPQ; atom labels are interned into `alphabet`.
///
/// Grammar: an optional free tuple `(x, y) <-` followed by comma-separated
/// atoms `x -[regex]-> y`. Without a tuple the query is Boolean. Regexes
/// use `+` for alternation, juxtaposition for concatenation, `*`
/// (postfix) for Kleene star, `ε` and `∅` for the trivial languages.
///
/// ```
/// use crpq_query::parse_crpq;
/// use crpq_util::Interner;
///
/// let mut sigma = Interner::new();
/// let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut sigma).unwrap();
/// assert_eq!(q.free.len(), 2);
/// assert_eq!(q.atoms.len(), 2);
/// assert!(parse_crpq("x -[a]->", &mut sigma).is_err());
/// ```
pub fn parse_crpq(input: &str, alphabet: &mut Interner) -> Result<Crpq, QueryParseError> {
    let input = input.trim();
    let (tuple_part, body) = match input.split_once("<-") {
        Some((head, rest)) if head.trim_start().starts_with('(') => {
            (Some(head.trim()), rest.trim())
        }
        _ => (None, input),
    };

    let mut vars: FxHashMap<String, Var> = FxHashMap::default();
    let var_of = |name: &str, vars: &mut FxHashMap<String, Var>| -> Var {
        if let Some(&v) = vars.get(name) {
            return v;
        }
        let v = Var(vars.len() as u32);
        vars.insert(name.to_owned(), v);
        v
    };

    // Free tuple first so free variables get the smallest ids.
    let mut free: Vec<Var> = Vec::new();
    if let Some(tuple) = tuple_part {
        let inner = tuple
            .strip_prefix('(')
            .and_then(|t| t.strip_suffix(')'))
            .ok_or_else(|| err("free tuple must be parenthesised, e.g. `(x, y) <- …`"))?
            .trim();
        if !inner.is_empty() {
            for name in inner.split(',') {
                let name = name.trim();
                if name.is_empty() || !is_var_name(name) {
                    return Err(err(format!("bad free variable name `{name}`")));
                }
                free.push(var_of(name, &mut vars));
            }
        }
    }

    let mut atoms = Vec::new();
    let body = body.trim();
    if body != "true" && !body.is_empty() {
        for raw_atom in split_atoms(body)? {
            let atom = raw_atom.trim();
            let (src_name, rest) = atom
                .split_once("-[")
                .ok_or_else(|| err(format!("missing `-[` in `{atom}`")))?;
            let (regex_text, dst_name) = rest
                .rsplit_once("]->")
                .ok_or_else(|| err(format!("missing `]->` in `{atom}`")))?;
            let (src_name, dst_name) = (src_name.trim(), dst_name.trim());
            if !is_var_name(src_name) || !is_var_name(dst_name) {
                return Err(err(format!("bad variable names in `{atom}`")));
            }
            let regex = parse_regex(regex_text, alphabet)
                .map_err(|e| err(format!("in atom `{atom}`: {e}")))?;
            let src = var_of(src_name, &mut vars);
            let dst = var_of(dst_name, &mut vars);
            atoms.push(CrpqAtom { src, dst, regex });
        }
    } else if body.is_empty() && tuple_part.is_none() {
        return Err(err("empty query (use `true` for the atomless body)"));
    }

    let num_vars = vars.len();
    Ok(Crpq {
        num_vars,
        atoms,
        free,
    })
}

fn is_var_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        && name
            .chars()
            .all(|c| c.is_alphanumeric() || c == '_' || c == '\'')
}

/// Splits the body on commas that are not inside `[...]` brackets.
fn split_atoms(body: &str) -> Result<Vec<&str>, QueryParseError> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth < 0 {
                    return Err(err("unbalanced `]`"));
                }
            }
            ',' if depth == 0 => {
                out.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return Err(err("unbalanced `[`"));
    }
    out.push(&body[start..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crpq::QueryClass;

    #[test]
    fn boolean_query() {
        let mut it = Interner::new();
        let q = parse_crpq("x -[(a b)*]-> y, y -[c*]-> x", &mut it).unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.num_vars, 2);
        assert_eq!(q.atoms.len(), 2);
        assert_eq!(q.classify(), QueryClass::Crpq);
        assert_eq!(q.atoms[0].src, Var(0));
        assert_eq!(q.atoms[0].dst, Var(1));
        assert_eq!(q.atoms[1].src, Var(1));
        assert_eq!(q.atoms[1].dst, Var(0));
    }

    #[test]
    fn free_tuple_query() {
        let mut it = Interner::new();
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut it).unwrap();
        assert_eq!(q.free, vec![Var(0), Var(1)]);
    }

    #[test]
    fn repeated_free_vars() {
        let mut it = Interner::new();
        let q = parse_crpq("(x, x) <- x -[a]-> y", &mut it).unwrap();
        assert_eq!(q.free, vec![Var(0), Var(0)]);
        assert_eq!(q.num_vars, 2);
    }

    #[test]
    fn atomless_query() {
        let mut it = Interner::new();
        let q = parse_crpq("(x) <- true", &mut it).unwrap();
        assert!(q.atoms.is_empty());
        assert_eq!(q.num_vars, 1);
    }

    #[test]
    fn commas_inside_regex_are_not_separators() {
        // No commas in regex syntax, but `+` unions with parens shouldn't
        // confuse the splitter.
        let mut it = Interner::new();
        let q = parse_crpq("x -[(a+b) c]-> y, y -[d]-> z", &mut it).unwrap();
        assert_eq!(q.atoms.len(), 2);
    }

    #[test]
    fn self_loop_atom() {
        let mut it = Interner::new();
        let q = parse_crpq("x -[a^+]-> x", &mut it).unwrap();
        assert_eq!(q.atoms[0].src, q.atoms[0].dst);
    }

    #[test]
    fn paper_example_query_classification() {
        let mut it = Interner::new();
        // Q'1 = x -a-> y ∧ x -b-> y (Example 4.7): a CQ.
        let q = parse_crpq("x -[a]-> y, x -[b]-> y", &mut it).unwrap();
        assert_eq!(q.classify(), QueryClass::Cq);
        // Q2 = x -[a b]-> y: CRPQ_fin.
        let q = parse_crpq("x -[a b]-> y", &mut it).unwrap();
        assert_eq!(q.classify(), QueryClass::CrpqFin);
    }

    #[test]
    fn errors() {
        let mut it = Interner::new();
        assert!(parse_crpq("", &mut it).is_err());
        assert!(parse_crpq("x -[a] y", &mut it).is_err());
        assert!(parse_crpq("x a y", &mut it).is_err());
        assert!(parse_crpq("x -[(a]-> y", &mut it).is_err());
        assert!(parse_crpq("(x y) <- x -[a]-> y", &mut it).is_err());
        assert!(parse_crpq("x -[a]-> y, ", &mut it).is_err());
    }

    #[test]
    fn primed_variables() {
        // Example 4.7 uses x' and y'.
        let mut it = Interner::new();
        let q = parse_crpq("x -[a]-> y, x' -[b]-> y'", &mut it).unwrap();
        assert_eq!(q.num_vars, 4);
    }

    #[test]
    fn shared_alphabet_ids() {
        let mut it = Interner::new();
        let q1 = parse_crpq("x -[a]-> y", &mut it).unwrap();
        let q2 = parse_crpq("x -[b a]-> y", &mut it).unwrap();
        // `a` has the same symbol in both queries.
        let a = it.get("a").unwrap();
        match (&q1.atoms[0].regex, &q2.atoms[0].regex) {
            (crpq_automata::Regex::Literal(s1), crpq_automata::Regex::Concat(parts)) => {
                assert_eq!(*s1, a);
                assert_eq!(parts[1], crpq_automata::Regex::Literal(a));
            }
            other => panic!("unexpected shapes {other:?}"),
        }
    }
}
