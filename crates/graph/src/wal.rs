//! Write-ahead log: durability for [`DeltaGraph`] mutations.
//!
//! A [`DurableGraph`] pairs an in-memory [`DeltaGraph`] with two on-disk
//! artifacts behind a [`Storage`] façade:
//!
//! * a **checkpoint** — a binary snapshot v2 ([`crate::format::to_binary`])
//!   of the frozen base, always replaced atomically
//!   (write-temp → fsync → rename);
//! * a **write-ahead log** — an append-only sequence of length-prefixed,
//!   CRC32-checksummed records, one per effective mutation, headed by a
//!   checkpoint marker that binds the log to its snapshot by `(len, crc)`.
//!
//! Every frame on disk is `[payload_len: u32 LE][payload][crc32(payload):
//! u32 LE]`. The CRC reuses the snapshot-v2 checksum
//! ([`crate::format::crc32`]). Compaction folds the overlay into a new
//! base ([`DeltaGraph::compact_in_place`]), writes the new checkpoint
//! atomically, and truncates the WAL back to a fresh header — the
//! header *is* the compaction marker: a log whose header names a
//! different snapshot generation is a leftover from an interrupted
//! compaction and is discarded on recovery.
//!
//! # Recovery contract
//!
//! [`DurableGraph::open`] loads the checkpoint and replays the log:
//!
//! * **prefix-consistency** — the recovered graph equals the state after
//!   some prefix of the logged mutations, never a subset mix;
//! * **torn-tail tolerance** — a final record that is truncated or fails
//!   its CRC is dropped (a crash mid-append is expected), reported in the
//!   [`RecoveryReport`], and the log is truncated back to the good
//!   prefix. Corruption *before* the final record is a hard
//!   [`WalError`] naming the byte offset — that data was durable, so a
//!   damaged middle means real corruption, not a crash artifact;
//! * **loss bounds by sync policy** — [`SyncPolicy::Always`] loses at
//!   most the in-flight record; [`SyncPolicy::EveryN`] at most the last
//!   un-synced group; [`SyncPolicy::Never`] syncs only at checkpoints.
//!
//! The crash-matrix tests in `tests/durability.rs` enforce all of the
//! above by simulated crashes at every record boundary and sampled
//! mid-record offsets (see `DURABILITY.md`).

use crate::db::{GraphDb, NodeId};
use crate::delta::DeltaGraph;
use crate::format::{crc32, from_binary, to_binary};
use crate::view::GraphView;
use bytes::Bytes;
use crpq_util::storage::{StdStorage, Storage};
use crpq_util::Symbol;
use std::fmt;

/// When the WAL is fsynced relative to mutation appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Sync after every logged record (or batch — group commit makes one
    /// sync cover a whole [`DurableGraph::apply_batch`]).
    Always,
    /// Sync once every `n` logged records.
    EveryN(usize),
    /// Never sync on the mutation path; only checkpoints sync.
    Never,
}

impl fmt::Display for SyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncPolicy::Always => write!(f, "always"),
            SyncPolicy::EveryN(n) => write!(f, "every:{n}"),
            SyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl SyncPolicy {
    /// Parse the CLI spelling: `always`, `never`, or `every:N`.
    pub fn parse(s: &str) -> Result<SyncPolicy, String> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "never" => Ok(SyncPolicy::Never),
            _ => {
                let n = s
                    .strip_prefix("every:")
                    .and_then(|n| n.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        format!("bad sync policy `{s}` (expected always | never | every:N)")
                    })?;
                Ok(SyncPolicy::EveryN(n))
            }
        }
    }
}

/// Error from the durability layer. `offset` is the absolute byte offset
/// into the WAL file when the failure is positional (framing/corruption);
/// storage and snapshot errors carry their own context in `message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalError {
    pub message: String,
    pub offset: Option<usize>,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "wal error at byte offset {off}: {}", self.message),
            None => write!(f, "durability error: {}", self.message),
        }
    }
}

impl std::error::Error for WalError {}

impl WalError {
    fn io(context: &str, e: &std::io::Error) -> Self {
        WalError {
            message: format!("{context}: {e}"),
            offset: None,
        }
    }

    fn at(offset: usize, message: String) -> Self {
        WalError {
            message,
            offset: Some(offset),
        }
    }
}

/// One logged mutation (or the header marker). The on-disk payload is a
/// tag byte followed by little-endian fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Header/compaction marker: binds this log to the snapshot whose
    /// whole-file length and CRC32 are given. Always the first record;
    /// never legal elsewhere.
    Checkpoint {
        snap_len: u64,
        snap_crc: u32,
    },
    InsertEdge {
        u: NodeId,
        label: Symbol,
        v: NodeId,
    },
    DeleteEdge {
        u: NodeId,
        label: Symbol,
        v: NodeId,
    },
    AddNode,
    /// A label newly interned after the checkpoint; `sym` is the id the
    /// replay must reproduce.
    InternLabel {
        sym: Symbol,
        name: String,
    },
}

const TAG_CHECKPOINT: u8 = 0;
const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_ADD_NODE: u8 = 3;
const TAG_INTERN_LABEL: u8 = 4;

/// Upper bound on a record payload. Real records are tens of bytes (label
/// names bounded by the interner); a length field beyond this inside a
/// complete frame is corruption, not data.
const MAX_RECORD_LEN: usize = 1 << 20;

fn encode_record_into(buf: &mut Vec<u8>, rec: &WalRecord) {
    let mut payload = Vec::with_capacity(16);
    match rec {
        WalRecord::Checkpoint { snap_len, snap_crc } => {
            payload.push(TAG_CHECKPOINT);
            payload.extend_from_slice(&snap_len.to_le_bytes());
            payload.extend_from_slice(&snap_crc.to_le_bytes());
        }
        WalRecord::InsertEdge { u, label, v } => {
            payload.push(TAG_INSERT);
            payload.extend_from_slice(&u.0.to_le_bytes());
            payload.extend_from_slice(&label.0.to_le_bytes());
            payload.extend_from_slice(&v.0.to_le_bytes());
        }
        WalRecord::DeleteEdge { u, label, v } => {
            payload.push(TAG_DELETE);
            payload.extend_from_slice(&u.0.to_le_bytes());
            payload.extend_from_slice(&label.0.to_le_bytes());
            payload.extend_from_slice(&v.0.to_le_bytes());
        }
        WalRecord::AddNode => payload.push(TAG_ADD_NODE),
        WalRecord::InternLabel { sym, name } => {
            payload.push(TAG_INTERN_LABEL);
            payload.extend_from_slice(&sym.0.to_le_bytes());
            payload.extend_from_slice(name.as_bytes());
        }
    }
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let checksum = crc32(&payload);
    buf.extend_from_slice(&payload);
    buf.extend_from_slice(&checksum.to_le_bytes());
}

fn read_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn read_u64(b: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[..8]);
    u64::from_le_bytes(a)
}

fn decode_record(payload: &[u8]) -> Result<WalRecord, String> {
    match payload.first() {
        Some(&TAG_CHECKPOINT) if payload.len() == 13 => Ok(WalRecord::Checkpoint {
            snap_len: read_u64(&payload[1..]),
            snap_crc: read_u32(&payload[9..]),
        }),
        Some(&TAG_INSERT) if payload.len() == 13 => Ok(WalRecord::InsertEdge {
            u: NodeId(read_u32(&payload[1..])),
            label: Symbol(read_u32(&payload[5..])),
            v: NodeId(read_u32(&payload[9..])),
        }),
        Some(&TAG_DELETE) if payload.len() == 13 => Ok(WalRecord::DeleteEdge {
            u: NodeId(read_u32(&payload[1..])),
            label: Symbol(read_u32(&payload[5..])),
            v: NodeId(read_u32(&payload[9..])),
        }),
        Some(&TAG_ADD_NODE) if payload.len() == 1 => Ok(WalRecord::AddNode),
        Some(&TAG_INTERN_LABEL) if payload.len() >= 5 => {
            let name = std::str::from_utf8(&payload[5..])
                .map_err(|_| "label name is not utf-8".to_string())?;
            Ok(WalRecord::InternLabel {
                sym: Symbol(read_u32(&payload[1..])),
                name: name.to_string(),
            })
        }
        Some(&tag) => Err(format!(
            "malformed record (tag {tag}, payload {} bytes)",
            payload.len()
        )),
        None => Err("empty record payload".to_string()),
    }
}

/// Outcome of decoding one frame at a given offset.
enum Frame {
    /// A valid record and the offset one past its frame.
    Record(WalRecord, usize),
    /// The bytes end mid-frame, or the final frame fails its CRC: the
    /// torn-tail case recovery tolerates by dropping it.
    Torn(String),
    /// A complete, durable frame is damaged: a hard error.
    Corrupt(String),
}

/// Does a valid frame chain (structural + CRC) run from `off` exactly to
/// the end of `buf`, with at least one frame?
fn chain_parses(buf: &[u8], mut off: usize) -> bool {
    let mut frames = 0usize;
    while off < buf.len() {
        if buf.len() - off < 8 {
            return false;
        }
        let len = read_u32(&buf[off..]) as usize;
        if len > MAX_RECORD_LEN {
            return false;
        }
        let frame_end = off + 4 + len + 4;
        if frame_end > buf.len() {
            return false;
        }
        let payload = &buf[off + 4..off + 4 + len];
        if read_u32(&buf[off + 4 + len..]) != crc32(payload) || decode_record(payload).is_err() {
            return false;
        }
        frames += 1;
        off = frame_end;
    }
    frames > 0
}

/// How far past a damaged frame to look for a resynchronising frame chain
/// before concluding the damage is the torn tail.
const RESYNC_WINDOW: usize = 1 << 16;

/// Tell torn tail from mid-log corruption at a damaged frame: if any
/// offset shortly after `from` starts a valid frame chain running to the
/// exact end of the log, durable records follow the damage — it is real
/// corruption, not a crash artifact. (CRC32 makes a garbage chain
/// validating by accident a ~2⁻³² event per candidate.)
fn resyncs_after(buf: &[u8], from: usize) -> bool {
    let end = buf.len().min(from + RESYNC_WINDOW);
    (from..end).any(|cand| chain_parses(buf, cand))
}

fn decode_frame(buf: &[u8], off: usize, verify_tail_crc: bool) -> Frame {
    let remaining = buf.len() - off;
    if remaining < 4 {
        return Frame::Torn(format!("truncated length prefix ({remaining} bytes)"));
    }
    let len = read_u32(&buf[off..]) as usize;
    let frame_end = off + 4 + len + 4;
    if frame_end > buf.len() || len > MAX_RECORD_LEN {
        // The claimed extent overruns the log (or is absurd). Either the
        // length field itself was torn mid-write, or a durable length
        // field was corrupted — valid records further on distinguish the
        // two.
        if resyncs_after(buf, off + 1) {
            return Frame::Corrupt(format!(
                "record claims {len}-byte payload but later records parse — corrupted length field"
            ));
        }
        return Frame::Torn(format!(
            "truncated record (claimed {len}-byte payload, {} bytes on disk)",
            buf.len() - off
        ));
    }
    let payload = &buf[off + 4..off + 4 + len];
    let stored = read_u32(&buf[off + 4 + len..]);
    let actual = crc32(payload);
    if stored != actual {
        if resyncs_after(buf, off + 1) {
            return Frame::Corrupt(format!(
                "record checksum mismatch ({actual:#010x} vs stored {stored:#010x})"
            ));
        }
        // No durable record follows: this frame is the (bit-flipped or
        // torn) tail.
        if verify_tail_crc {
            return Frame::Torn(format!(
                "final record checksum mismatch ({actual:#010x} vs stored {stored:#010x})"
            ));
        }
        // Seeded durability mutant (tests only): accept the tail frame
        // without its checksum. The crash matrix must catch this.
    }
    match decode_record(payload) {
        Ok(rec) => Frame::Record(rec, frame_end),
        Err(m) => Frame::Corrupt(m),
    }
}

/// Frame-start offsets of every complete, checksum-valid record in
/// `wal_bytes`, plus the end offset of the good prefix as a final entry.
/// Test-harness surface for crash-point enumeration.
pub fn frame_boundaries(wal_bytes: &[u8]) -> Vec<usize> {
    let mut offs = vec![0];
    let mut off = 0;
    while off < wal_bytes.len() {
        match decode_frame(wal_bytes, off, true) {
            Frame::Record(_, next) => {
                offs.push(next);
                off = next;
            }
            _ => break,
        }
    }
    offs
}

/// What recovery found and did. Returned by [`DurableGraph::open`].
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Mutation records replayed onto the checkpoint.
    pub replayed: usize,
    /// A torn final record that was dropped (offset + reason), if any.
    pub dropped_tail: Option<DroppedTail>,
    /// The WAL header named a different snapshot generation (interrupted
    /// compaction); the log was discarded as superseded.
    pub stale_wal: bool,
    /// No WAL existed; a fresh one was written.
    pub fresh_wal: bool,
    /// Labels whose relations were touched by replayed mutations —
    /// the catalog-invalidation set a recovered process must apply
    /// (sorted, deduped).
    pub mutated_labels: Vec<Symbol>,
    /// Length of the good WAL prefix in bytes after recovery.
    pub good_wal_bytes: usize,
}

/// A dropped torn tail: where the good prefix ends and why the rest was
/// discarded.
#[derive(Debug, Clone)]
pub struct DroppedTail {
    pub offset: usize,
    pub reason: String,
}

/// Seeded recovery mutants for the crash-matrix harness (tests only):
/// each deliberately weakens recovery, and `tests/durability.rs` asserts
/// the matrix catches it.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityMutants {
    /// Skip the CRC check on the final WAL record.
    pub skip_tail_crc: bool,
}

/// An edge mutation for [`DurableGraph::apply_batch`] group commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMutation {
    Insert { u: NodeId, label: Symbol, v: NodeId },
    Delete { u: NodeId, label: Symbol, v: NodeId },
}

/// A [`DeltaGraph`] whose mutations survive crashes: every effective
/// mutation is logged to a checksummed WAL before the call returns, and
/// [`open`](Self::open) rebuilds the exact pre-crash state (minus at most
/// the sync-policy loss bound) from checkpoint + log.
pub struct DurableGraph<S: Storage> {
    graph: DeltaGraph,
    storage: S,
    snapshot_path: String,
    wal_path: String,
    policy: SyncPolicy,
    /// Records appended since the last WAL sync.
    unsynced: usize,
    /// Mutation records in the log since the last checkpoint.
    records: usize,
}

impl DurableGraph<StdStorage> {
    /// [`Self::create_with`] over the real filesystem.
    pub fn create(
        snapshot_path: &str,
        wal_path: &str,
        base: GraphDb,
        policy: SyncPolicy,
    ) -> Result<Self, WalError> {
        Self::create_with(StdStorage::new(), snapshot_path, wal_path, base, policy)
    }

    /// [`Self::open_with`] over the real filesystem.
    pub fn open(
        snapshot_path: &str,
        wal_path: &str,
        policy: SyncPolicy,
    ) -> Result<(Self, RecoveryReport), WalError> {
        Self::open_with(StdStorage::new(), snapshot_path, wal_path, policy)
    }
}

impl<S: Storage> DurableGraph<S> {
    /// Initialise a durable store: writes the checkpoint snapshot of
    /// `base` (atomically) and a fresh WAL headed by its marker.
    pub fn create_with(
        storage: S,
        snapshot_path: &str,
        wal_path: &str,
        base: GraphDb,
        policy: SyncPolicy,
    ) -> Result<Self, WalError> {
        let mut s = DurableGraph {
            graph: DeltaGraph::new(base),
            storage,
            snapshot_path: snapshot_path.to_string(),
            wal_path: wal_path.to_string(),
            policy,
            unsynced: 0,
            records: 0,
        };
        s.write_checkpoint()?;
        Ok(s)
    }

    /// Load the checkpoint and replay the WAL (see the module docs for
    /// the recovery contract). Side effects on disk: a torn tail is
    /// truncated away; a stale or missing WAL is replaced by a fresh one.
    pub fn open_with(
        storage: S,
        snapshot_path: &str,
        wal_path: &str,
        policy: SyncPolicy,
    ) -> Result<(Self, RecoveryReport), WalError> {
        Self::open_with_mutants(
            storage,
            snapshot_path,
            wal_path,
            policy,
            DurabilityMutants::default(),
        )
    }

    /// [`Self::open_with`] with seeded recovery mutants — test harness
    /// only; see [`DurabilityMutants`].
    #[doc(hidden)]
    pub fn open_with_mutants(
        mut storage: S,
        snapshot_path: &str,
        wal_path: &str,
        policy: SyncPolicy,
        mutants: DurabilityMutants,
    ) -> Result<(Self, RecoveryReport), WalError> {
        let snap_bytes = storage
            .read(snapshot_path)
            .map_err(|e| WalError::io(&format!("cannot read snapshot `{snapshot_path}`"), &e))?;
        let base = from_binary(Bytes::from(snap_bytes.clone())).map_err(|e| WalError {
            message: format!("snapshot `{snapshot_path}`: {e}"),
            offset: None,
        })?;
        let snap_len = snap_bytes.len() as u64;
        let snap_crc = crc32(&snap_bytes);
        let mut s = DurableGraph {
            graph: DeltaGraph::new(base),
            storage,
            snapshot_path: snapshot_path.to_string(),
            wal_path: wal_path.to_string(),
            policy,
            unsynced: 0,
            records: 0,
        };
        let mut report = RecoveryReport::default();

        if !s.storage.exists(&s.wal_path) {
            s.reset_wal(snap_len, snap_crc)?;
            report.fresh_wal = true;
            report.good_wal_bytes = s.wal_header_len();
            return Ok((s, report));
        }
        let wal_bytes = s
            .storage
            .read(&s.wal_path)
            .map_err(|e| WalError::io(&format!("cannot read wal `{}`", s.wal_path), &e))?;

        // Header: the checkpoint marker binding the log to the snapshot.
        let mut off = match decode_frame(&wal_bytes, 0, !mutants.skip_tail_crc) {
            Frame::Record(
                WalRecord::Checkpoint {
                    snap_len: l,
                    snap_crc: c,
                },
                next,
            ) => {
                if l != snap_len || c != snap_crc {
                    // Interrupted compaction: the snapshot moved on but the
                    // WAL reset never landed. Everything in this log is
                    // already folded into the newer snapshot.
                    s.reset_wal(snap_len, snap_crc)?;
                    report.stale_wal = true;
                    report.good_wal_bytes = s.wal_header_len();
                    return Ok((s, report));
                }
                next
            }
            Frame::Record(_, _) => {
                return Err(WalError::at(
                    0,
                    "first WAL record is not a checkpoint header".to_string(),
                ));
            }
            Frame::Torn(reason) => {
                // Crash during the initial WAL reset: no mutation can have
                // been logged against this header. Start fresh.
                s.reset_wal(snap_len, snap_crc)?;
                report.dropped_tail = Some(DroppedTail { offset: 0, reason });
                report.good_wal_bytes = s.wal_header_len();
                return Ok((s, report));
            }
            Frame::Corrupt(reason) => return Err(WalError::at(0, reason)),
        };

        // Replay, tolerating only a torn tail.
        while off < wal_bytes.len() {
            match decode_frame(&wal_bytes, off, !mutants.skip_tail_crc) {
                Frame::Record(rec, next) => {
                    s.replay(rec, off, &mut report)?;
                    off = next;
                }
                Frame::Torn(reason) => {
                    s.storage
                        .truncate(&s.wal_path, off as u64)
                        .map_err(|e| WalError::io("cannot truncate torn wal tail", &e))?;
                    s.storage
                        .sync(&s.wal_path)
                        .map_err(|e| WalError::io("cannot sync truncated wal", &e))?;
                    report.dropped_tail = Some(DroppedTail {
                        offset: off,
                        reason,
                    });
                    break;
                }
                Frame::Corrupt(reason) => return Err(WalError::at(off, reason)),
            }
        }
        report.good_wal_bytes = off;
        report.mutated_labels.sort_unstable_by_key(|s| s.0);
        report.mutated_labels.dedup();
        s.records = report.replayed;
        Ok((s, report))
    }

    /// Apply one replayed record, validating ids against the current state
    /// so corrupt-but-checksum-valid data surfaces as an error, never a
    /// panic.
    fn replay(
        &mut self,
        rec: WalRecord,
        off: usize,
        report: &mut RecoveryReport,
    ) -> Result<(), WalError> {
        let n = self.graph.num_nodes();
        let n_labels = self.graph.base().alphabet().len();
        let check_edge = |u: NodeId, label: Symbol, v: NodeId| -> Result<(), WalError> {
            if u.index() >= n || v.index() >= n {
                return Err(WalError::at(
                    off,
                    format!("edge endpoint out of range ({u:?}, {v:?} vs {n} nodes)"),
                ));
            }
            if label.0 as usize >= n_labels {
                return Err(WalError::at(
                    off,
                    format!("edge label {} out of range ({n_labels} labels)", label.0),
                ));
            }
            Ok(())
        };
        match rec {
            WalRecord::InsertEdge { u, label, v } => {
                check_edge(u, label, v)?;
                self.graph.insert_edge(u, label, v);
                report.mutated_labels.push(label);
                report.replayed += 1;
            }
            WalRecord::DeleteEdge { u, label, v } => {
                check_edge(u, label, v)?;
                self.graph.delete_edge(u, label, v);
                report.mutated_labels.push(label);
                report.replayed += 1;
            }
            WalRecord::AddNode => {
                self.graph.add_node();
                report.replayed += 1;
            }
            WalRecord::InternLabel { sym, name } => {
                let len = self.graph.base().alphabet().len();
                if sym.0 as usize == len {
                    let got = self.graph.label(&name);
                    debug_assert_eq!(got, sym);
                } else if (sym.0 as usize) < len
                    && self.graph.base().alphabet().resolve(sym) == name
                {
                    // Already present (same id): replay is a no-op.
                } else {
                    return Err(WalError::at(
                        off,
                        format!("label record `{name}` maps to id {} out of order", sym.0),
                    ));
                }
                report.replayed += 1;
            }
            WalRecord::Checkpoint { .. } => {
                return Err(WalError::at(
                    off,
                    "checkpoint marker in the middle of the log".to_string(),
                ));
            }
        }
        Ok(())
    }

    /// The live graph (read-only: all mutations go through `self` so they
    /// are logged).
    pub fn graph(&self) -> &DeltaGraph {
        &self.graph
    }

    pub fn policy(&self) -> SyncPolicy {
        self.policy
    }

    pub fn set_policy(&mut self, policy: SyncPolicy) {
        self.policy = policy;
    }

    /// Mutation records logged since the last checkpoint.
    pub fn records_since_checkpoint(&self) -> usize {
        self.records
    }

    /// Reconfigure the in-memory overlay's compaction budget.
    pub fn set_compact_threshold(&mut self, threshold: usize) {
        self.graph.set_compact_threshold(threshold);
    }

    /// Fault-injection seam: the harness reaches through to the storage to
    /// schedule crashes and inspect durable bytes.
    pub fn storage_mut(&mut self) -> &mut S {
        &mut self.storage
    }

    /// Consume `self`, handing the storage back (a "crashed process"
    /// leaves only its disk behind; reopen with [`Self::open_with`]).
    pub fn into_storage(self) -> S {
        self.storage
    }

    /// Validate ids so a bad call surfaces as an error, not the
    /// `DeltaGraph` panic.
    fn check_ids(&self, u: NodeId, v: NodeId, label: Symbol) -> Result<(), WalError> {
        let n = self.graph.num_nodes();
        if u.index() >= n || v.index() >= n {
            return Err(WalError {
                message: format!("edge endpoint out of range ({u:?}, {v:?} vs {n} nodes)"),
                offset: None,
            });
        }
        if label.0 as usize >= self.graph.base().alphabet().len() {
            return Err(WalError {
                message: format!("unknown label id {}", label.0),
                offset: None,
            });
        }
        Ok(())
    }

    /// Insert an edge; logs iff the graph changed. Returns the change flag.
    pub fn insert_edge(&mut self, u: NodeId, label: Symbol, v: NodeId) -> Result<bool, WalError> {
        self.check_ids(u, v, label)?;
        if !self.graph.insert_edge(u, label, v) {
            return Ok(false);
        }
        self.log_one(&WalRecord::InsertEdge { u, label, v })?;
        Ok(true)
    }

    /// Delete an edge; logs iff the graph changed. Returns the change flag.
    pub fn delete_edge(&mut self, u: NodeId, label: Symbol, v: NodeId) -> Result<bool, WalError> {
        self.check_ids(u, v, label)?;
        if !self.graph.delete_edge(u, label, v) {
            return Ok(false);
        }
        self.log_one(&WalRecord::DeleteEdge { u, label, v })?;
        Ok(true)
    }

    /// Append a fresh node.
    pub fn add_node(&mut self) -> Result<NodeId, WalError> {
        let id = self.graph.add_node();
        self.log_one(&WalRecord::AddNode)?;
        Ok(id)
    }

    /// Intern a label; logs only when the label is new.
    pub fn label(&mut self, name: &str) -> Result<Symbol, WalError> {
        if let Some(sym) = self.graph.base().alphabet().get(name) {
            return Ok(sym);
        }
        let sym = self.graph.label(name);
        self.log_one(&WalRecord::InternLabel {
            sym,
            name: name.to_string(),
        })?;
        Ok(sym)
    }

    /// Group commit: apply a batch of edge mutations, append all their
    /// records as one write, and sync (per policy) once for the whole
    /// batch. Returns how many mutations changed the graph.
    pub fn apply_batch(&mut self, batch: &[EdgeMutation]) -> Result<usize, WalError> {
        let mut buf = Vec::with_capacity(batch.len() * 21);
        let mut changed = 0usize;
        for m in batch {
            match *m {
                EdgeMutation::Insert { u, label, v } => {
                    self.check_ids(u, v, label)?;
                    if self.graph.insert_edge(u, label, v) {
                        encode_record_into(&mut buf, &WalRecord::InsertEdge { u, label, v });
                        changed += 1;
                    }
                }
                EdgeMutation::Delete { u, label, v } => {
                    self.check_ids(u, v, label)?;
                    if self.graph.delete_edge(u, label, v) {
                        encode_record_into(&mut buf, &WalRecord::DeleteEdge { u, label, v });
                        changed += 1;
                    }
                }
            }
        }
        if changed > 0 {
            self.storage
                .append(&self.wal_path, &buf)
                .map_err(|e| WalError::io("wal append failed", &e))?;
            self.records += changed;
            self.unsynced += changed;
            self.policy_sync()?;
        }
        Ok(changed)
    }

    fn log_one(&mut self, rec: &WalRecord) -> Result<(), WalError> {
        let mut buf = Vec::with_capacity(32);
        encode_record_into(&mut buf, rec);
        self.storage
            .append(&self.wal_path, &buf)
            .map_err(|e| WalError::io("wal append failed", &e))?;
        self.records += 1;
        self.unsynced += 1;
        self.policy_sync()
    }

    fn policy_sync(&mut self) -> Result<(), WalError> {
        let due = match self.policy {
            SyncPolicy::Always => self.unsynced > 0,
            SyncPolicy::EveryN(n) => self.unsynced >= n,
            SyncPolicy::Never => false,
        };
        if due {
            self.sync_wal()?;
        }
        Ok(())
    }

    /// Force the log durable regardless of policy.
    pub fn sync_wal(&mut self) -> Result<(), WalError> {
        self.storage
            .sync(&self.wal_path)
            .map_err(|e| WalError::io("wal sync failed", &e))?;
        self.unsynced = 0;
        Ok(())
    }

    /// Fold the overlay into a new checkpoint and truncate the WAL.
    /// Crash-safe at every step: the snapshot is replaced atomically, and
    /// until the WAL reset lands the old log stays replayable (a new
    /// snapshot with the old log is detected as stale by the header
    /// marker and discarded — its mutations are all inside the new
    /// snapshot).
    pub fn compact(&mut self) -> Result<(), WalError> {
        self.graph.compact_in_place();
        self.write_checkpoint()
    }

    /// [`Self::compact`] iff the overlay passed its mutation budget.
    pub fn maybe_compact(&mut self) -> Result<bool, WalError> {
        if self.graph.should_compact() {
            self.compact()?;
            return Ok(true);
        }
        Ok(false)
    }

    fn write_checkpoint(&mut self) -> Result<(), WalError> {
        debug_assert!(
            self.graph.delta().is_empty(),
            "checkpoint with a non-empty overlay"
        );
        let bytes = to_binary(self.graph.base());
        let tmp = format!("{}.tmp", self.snapshot_path);
        self.storage
            .write(&tmp, &bytes)
            .map_err(|e| WalError::io("cannot write checkpoint temp", &e))?;
        self.storage
            .sync(&tmp)
            .map_err(|e| WalError::io("cannot sync checkpoint temp", &e))?;
        self.storage
            .rename(&tmp, &self.snapshot_path)
            .map_err(|e| WalError::io("cannot publish checkpoint", &e))?;
        self.reset_wal(bytes.len() as u64, crc32(&bytes))
    }

    /// Replace the WAL with a fresh one holding only the checkpoint
    /// marker for the given snapshot generation — atomically, so a crash
    /// leaves either the old log (still replayable or stale-detected) or
    /// the new one.
    fn reset_wal(&mut self, snap_len: u64, snap_crc: u32) -> Result<(), WalError> {
        let mut buf = Vec::with_capacity(32);
        encode_record_into(&mut buf, &WalRecord::Checkpoint { snap_len, snap_crc });
        let tmp = format!("{}.tmp", self.wal_path);
        self.storage
            .write(&tmp, &buf)
            .map_err(|e| WalError::io("cannot write wal temp", &e))?;
        self.storage
            .sync(&tmp)
            .map_err(|e| WalError::io("cannot sync wal temp", &e))?;
        self.storage
            .rename(&tmp, &self.wal_path)
            .map_err(|e| WalError::io("cannot publish wal", &e))?;
        self.unsynced = 0;
        self.records = 0;
        Ok(())
    }

    /// Byte length of a bare header frame (4 len + 13 payload + 4 crc).
    fn wal_header_len(&self) -> usize {
        21
    }
}

impl DeltaGraph {
    /// Open a durable dynamic graph on the real filesystem: load the
    /// checkpoint at `snapshot_path`, replay `wal_path` (see the
    /// [`crate::wal`] module docs for the recovery contract), and return
    /// the [`DurableGraph`] handle plus what recovery found.
    pub fn open(
        snapshot_path: &str,
        wal_path: &str,
        policy: SyncPolicy,
    ) -> Result<(DurableGraph<StdStorage>, RecoveryReport), WalError> {
        DurableGraph::open(snapshot_path, wal_path, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::GraphBuilder;
    use crpq_util::storage::FaultyStorage;

    fn small_base() -> GraphDb {
        let mut b = GraphBuilder::anonymous(4);
        let a = b.label("a");
        b.edge_ids(NodeId(0), a, NodeId(1));
        b.edge_ids(NodeId(1), a, NodeId(2));
        b.finish()
    }

    fn edge_set(g: &DeltaGraph) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for v in 0..g.num_nodes() {
            let v = NodeId(v as u32);
            for (l, t) in g.out_edges_iter(v) {
                out.push((v.0, l.0, t.0));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn record_round_trip() {
        let records = vec![
            WalRecord::Checkpoint {
                snap_len: 123,
                snap_crc: 0xDEAD_BEEF,
            },
            WalRecord::InsertEdge {
                u: NodeId(7),
                label: Symbol(1),
                v: NodeId(9),
            },
            WalRecord::DeleteEdge {
                u: NodeId(0),
                label: Symbol(0),
                v: NodeId(1),
            },
            WalRecord::AddNode,
            WalRecord::InternLabel {
                sym: Symbol(3),
                name: "höp".to_string(),
            },
        ];
        let mut buf = Vec::new();
        for r in &records {
            encode_record_into(&mut buf, r);
        }
        let mut off = 0;
        for expected in &records {
            match decode_frame(&buf, off, true) {
                Frame::Record(rec, next) => {
                    assert_eq!(&rec, expected);
                    off = next;
                }
                _ => panic!("frame at {off} failed to decode"),
            }
        }
        assert_eq!(off, buf.len());
        assert_eq!(frame_boundaries(&buf).len(), records.len() + 1);
    }

    #[test]
    fn create_mutate_reopen_round_trip() {
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Always,
        )
        .unwrap();
        let a = d.label("a").unwrap();
        let b = d.label("b").unwrap();
        assert!(d.insert_edge(NodeId(2), a, NodeId(3)).unwrap());
        assert!(!d.insert_edge(NodeId(2), a, NodeId(3)).unwrap(), "no-op");
        assert!(d.delete_edge(NodeId(0), a, NodeId(1)).unwrap());
        let n = d.add_node().unwrap();
        assert!(d.insert_edge(n, b, NodeId(0)).unwrap());
        let want = edge_set(d.graph());
        assert_eq!(d.records_since_checkpoint(), 5); // b + 2 ins + 1 del + node
        let storage = d.into_storage();
        let (d2, report) =
            DurableGraph::open_with(storage, "snap", "wal", SyncPolicy::Always).unwrap();
        assert_eq!(edge_set(d2.graph()), want);
        assert_eq!(report.replayed, 5);
        assert!(report.dropped_tail.is_none());
        assert!(!report.stale_wal);
        assert_eq!(report.mutated_labels.len(), 2, "a and b were churned");
    }

    #[test]
    fn unsynced_tail_is_lost_and_torn_tail_dropped() {
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Never,
        )
        .unwrap();
        let a = d.graph().base().alphabet().get("a").unwrap();
        d.insert_edge(NodeId(0), a, NodeId(2)).unwrap();
        d.insert_edge(NodeId(0), a, NodeId(3)).unwrap();
        let mut storage = d.into_storage();
        // Nothing synced since the header: a drop-unsynced crash loses both.
        storage.crash_drop_unsynced();
        let (d2, report) =
            DurableGraph::open_with(storage, "snap", "wal", SyncPolicy::Never).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(edge_set(d2.graph()).len(), 2, "base edges only");

        // Torn write: half a record survives; recovery drops it and reports
        // the offset.
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Always,
        )
        .unwrap();
        d.insert_edge(NodeId(0), a, NodeId(2)).unwrap();
        let mut storage = d.into_storage();
        let wal_len = storage.written_len("wal");
        storage.truncate_to("wal", wal_len - 3);
        let (d2, report) =
            DurableGraph::open_with(storage, "snap", "wal", SyncPolicy::Always).unwrap();
        assert_eq!(report.replayed, 0);
        let tail = report.dropped_tail.expect("torn tail reported");
        assert_eq!(tail.offset, 21, "tail starts right after the header");
        assert_eq!(edge_set(d2.graph()).len(), 2);
        // The torn bytes were truncated away on disk.
        let mut storage = d2.into_storage();
        assert_eq!(storage.read("wal").unwrap().len(), 21);
    }

    #[test]
    fn mid_log_corruption_is_a_hard_error_with_offset() {
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Always,
        )
        .unwrap();
        let a = d.graph().base().alphabet().get("a").unwrap();
        d.insert_edge(NodeId(0), a, NodeId(2)).unwrap();
        d.insert_edge(NodeId(0), a, NodeId(3)).unwrap();
        let mut storage = d.into_storage();
        // Flip a payload bit of the FIRST mutation record (offset 21's
        // payload starts at 25) — not the tail, so this is durable data
        // gone bad.
        storage.flip_bit("wal", 26, 0);
        let err = match DurableGraph::open_with(storage, "snap", "wal", SyncPolicy::Always) {
            Err(e) => e,
            Ok(_) => panic!("mid-log corruption must be a hard error"),
        };
        assert_eq!(err.offset, Some(21));
        assert!(err.to_string().contains("byte offset 21"), "{err}");
        assert!(err.message.contains("checksum"), "{err}");
    }

    #[test]
    fn compaction_truncates_wal_and_survives_reopen() {
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Always,
        )
        .unwrap();
        let a = d.graph().base().alphabet().get("a").unwrap();
        d.insert_edge(NodeId(0), a, NodeId(2)).unwrap();
        d.insert_edge(NodeId(2), a, NodeId(3)).unwrap();
        d.delete_edge(NodeId(0), a, NodeId(1)).unwrap();
        let want = edge_set(d.graph());
        d.compact().unwrap();
        assert_eq!(d.records_since_checkpoint(), 0);
        assert!(d.graph().delta().is_empty());
        let mut storage = d.into_storage();
        assert_eq!(storage.read("wal").unwrap().len(), 21, "bare header");
        let (d2, report) =
            DurableGraph::open_with(storage, "snap", "wal", SyncPolicy::Always).unwrap();
        assert_eq!(report.replayed, 0);
        assert!(!report.stale_wal);
        assert_eq!(edge_set(d2.graph()), want);
    }

    #[test]
    fn stale_wal_from_interrupted_compaction_is_discarded() {
        // Simulate: snapshot advanced, WAL reset never landed. The old WAL
        // must be detected stale (its mutations live inside the new
        // snapshot) and discarded, not replayed on top.
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Always,
        )
        .unwrap();
        let a = d.graph().base().alphabet().get("a").unwrap();
        d.insert_edge(NodeId(0), a, NodeId(2)).unwrap();
        let want = edge_set(d.graph());
        let old_wal = d.storage_mut().read("wal").unwrap();
        d.compact().unwrap();
        let mut storage = d.into_storage();
        // Put the pre-compaction WAL back: exactly the interrupted state.
        storage.install("wal", &old_wal);
        let (d2, report) =
            DurableGraph::open_with(storage, "snap", "wal", SyncPolicy::Always).unwrap();
        assert!(report.stale_wal);
        assert_eq!(report.replayed, 0);
        assert_eq!(edge_set(d2.graph()), want);
    }

    #[test]
    fn group_commit_batch_is_one_sync() {
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Always,
        )
        .unwrap();
        let a = d.graph().base().alphabet().get("a").unwrap();
        let ops_before = d.storage_mut().ops();
        let batch = vec![
            EdgeMutation::Insert {
                u: NodeId(0),
                label: a,
                v: NodeId(2),
            },
            EdgeMutation::Insert {
                u: NodeId(0),
                label: a,
                v: NodeId(3),
            },
            EdgeMutation::Insert {
                u: NodeId(0),
                label: a,
                v: NodeId(1),
            }, // no-op: exists in base
            EdgeMutation::Delete {
                u: NodeId(1),
                label: a,
                v: NodeId(2),
            },
        ];
        let changed = d.apply_batch(&batch).unwrap();
        assert_eq!(changed, 3);
        // One append + one sync for the whole batch.
        assert_eq!(d.storage_mut().ops() - ops_before, 2);
        let storage = d.into_storage();
        let (_, report) =
            DurableGraph::open_with(storage, "snap", "wal", SyncPolicy::Always).unwrap();
        assert_eq!(report.replayed, 3);
    }

    #[test]
    fn out_of_range_ids_error_instead_of_panicking() {
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            "snap",
            "wal",
            small_base(),
            SyncPolicy::Always,
        )
        .unwrap();
        let a = d.graph().base().alphabet().get("a").unwrap();
        assert!(d.insert_edge(NodeId(99), a, NodeId(0)).is_err());
        assert!(d.delete_edge(NodeId(0), Symbol(42), NodeId(1)).is_err());
    }

    #[test]
    fn sync_policy_parses() {
        assert_eq!(SyncPolicy::parse("always").unwrap(), SyncPolicy::Always);
        assert_eq!(SyncPolicy::parse("never").unwrap(), SyncPolicy::Never);
        assert_eq!(
            SyncPolicy::parse("every:64").unwrap(),
            SyncPolicy::EveryN(64)
        );
        assert!(SyncPolicy::parse("every:0").is_err());
        assert!(SyncPolicy::parse("sometimes").is_err());
    }
}
