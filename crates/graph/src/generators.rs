//! Deterministic graph generators for tests, examples and benchmarks.
//!
//! All generators are seeded and reproducible. They produce the graph
//! families used throughout the experiment suite: labelled paths and cycles
//! (the paper's running examples are built on these), grids (road-network
//! style), cliques (hardness instances), and labelled Erdős–Rényi random
//! graphs (data-complexity scaling).

use crate::db::{GraphBuilder, GraphDb, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A directed path `v0 -l0-> v1 -l1-> …` with labels cycling through `labels`.
pub fn labelled_path(n: usize, labels: &[&str]) -> GraphDb {
    assert!(!labels.is_empty());
    let mut b = GraphBuilder::new();
    for i in 0..n.saturating_sub(1) {
        b.edge(
            &format!("v{i}"),
            labels[i % labels.len()],
            &format!("v{}", i + 1),
        );
    }
    if n == 1 {
        b.node("v0");
    }
    b.finish()
}

/// A directed cycle of `n` nodes with labels cycling through `labels`.
pub fn labelled_cycle(n: usize, labels: &[&str]) -> GraphDb {
    assert!(n >= 1 && !labels.is_empty());
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.edge(
            &format!("v{i}"),
            labels[i % labels.len()],
            &format!("v{}", (i + 1) % n),
        );
    }
    b.finish()
}

/// An `rows × cols` grid with `right`-labelled horizontal edges and
/// `down`-labelled vertical edges (road-network style).
pub fn grid(rows: usize, cols: usize, right: &str, down: &str) -> GraphDb {
    let mut b = GraphBuilder::new();
    let name = |r: usize, c: usize| format!("g{r}_{c}");
    for r in 0..rows {
        for c in 0..cols {
            b.node(&name(r, c));
            if c + 1 < cols {
                b.edge(&name(r, c), right, &name(r, c + 1));
            }
            if r + 1 < rows {
                b.edge(&name(r, c), down, &name(r + 1, c));
            }
        }
    }
    b.finish()
}

/// A bidirectional clique on `n` nodes: `u -label-> v` for all `u ≠ v`.
pub fn clique(n: usize, label: &str) -> GraphDb {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.node(&format!("v{i}"));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.edge(&format!("v{i}"), label, &format!("v{j}"));
            }
        }
    }
    b.finish()
}

/// A labelled Erdős–Rényi-style random graph: `n` nodes, `m` edges drawn
/// uniformly (with replacement, then dedup) with uniformly random labels.
pub fn random_graph(n: usize, m: usize, labels: &[&str], seed: u64) -> GraphDb {
    assert!(n >= 1 && !labels.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.node(&format!("v{i}"));
    }
    for _ in 0..m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        let l = labels[rng.gen_range(0..labels.len())];
        b.edge(&format!("v{u}"), l, &format!("v{v}"));
    }
    b.finish()
}

/// A **label-rich** random graph in the shape of practical RPQ workloads
/// (Wikidata-style): `n` nodes, `m` edges, `num_labels` distinct labels
/// (`l0`, `l1`, …) whose frequencies follow a Zipf law with the given
/// `exponent` — a few very frequent predicates and a long tail of rare
/// ones. Endpoints are uniform; the label of each edge is drawn from the
/// Zipf distribution by inverse-CDF lookup on integer cumulative weights,
/// so the stream is exactly reproducible per seed.
///
/// This is the graph family that makes a dense `label × node` index
/// layout quadratically wasteful: most `(label, node)` slots are empty.
pub fn zipf_label_graph(
    n: usize,
    m: usize,
    num_labels: usize,
    exponent: f64,
    seed: u64,
) -> GraphDb {
    assert!(n >= 1 && num_labels >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let nodes: Vec<_> = (0..n).map(|i| b.node(&format!("v{i}"))).collect();
    let labels: Vec<_> = (0..num_labels).map(|l| b.label(&format!("l{l}"))).collect();
    // Integer cumulative Zipf weights: label l gets weight ∝ 1/(l+1)^s,
    // scaled so one u64 draw plus a partition-point lookup samples it.
    let mut cum: Vec<u64> = Vec::with_capacity(num_labels);
    let mut total = 0u64;
    for l in 0..num_labels {
        let w = (1e9 / ((l + 1) as f64).powf(exponent)).ceil() as u64;
        total += w.max(1);
        cum.push(total);
    }
    for _ in 0..m {
        let u = nodes[rng.gen_range(0..n)];
        let v = nodes[rng.gen_range(0..n)];
        let t = rng.gen_range(0..total);
        let l = cum.partition_point(|&c| c <= t);
        b.edge_ids(u, labels[l], v);
    }
    b.finish()
}

/// An **anonymous** labelled random graph for node-count scaling: `n`
/// nameless nodes (pure dense ids — zero name storage, see
/// [`GraphBuilder::anonymous`]), `m` uniform edges over `num_labels`
/// uniform labels `l0, l1, …`.
///
/// This is the `|V| = 10⁶`-and-up workload generator: at that scale
/// `v{i}`-style names cost tens of MB and millions of interner probes
/// while carrying no information the id doesn't, so the builder skips the
/// name path entirely — construction is one RNG stream straight into
/// `edge_ids`.
pub fn anonymous_random_graph(n: usize, m: usize, num_labels: usize, seed: u64) -> GraphDb {
    assert!(n >= 1 && num_labels >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::anonymous(n);
    let labels: Vec<_> = (0..num_labels).map(|l| b.label(&format!("l{l}"))).collect();
    for _ in 0..m {
        let u = NodeId(rng.gen_range(0..n) as u32);
        let v = NodeId(rng.gen_range(0..n) as u32);
        b.edge_ids(u, labels[rng.gen_range(0..num_labels)], v);
    }
    b.finish()
}

/// A two-level "social network": `communities` clusters of `size` members
/// with dense intra-cluster `knows` edges (probability `p_in`) and sparse
/// inter-cluster `follows` bridges (probability `p_out`).
pub fn social_network(
    communities: usize,
    size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> GraphDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    let name = |c: usize, i: usize| format!("p{c}_{i}");
    for c in 0..communities {
        for i in 0..size {
            b.node(&name(c, i));
        }
    }
    for c in 0..communities {
        for i in 0..size {
            for j in 0..size {
                if i != j && rng.gen_bool(p_in) {
                    b.edge(&name(c, i), "knows", &name(c, j));
                }
            }
        }
    }
    for c1 in 0..communities {
        for c2 in 0..communities {
            if c1 == c2 {
                continue;
            }
            for i in 0..size {
                for j in 0..size {
                    if rng.gen_bool(p_out) {
                        b.edge(&name(c1, i), "follows", &name(c2, j));
                    }
                }
            }
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rpq;
    use crpq_automata::{parse_regex, Nfa};

    #[test]
    fn path_shape() {
        let g = labelled_path(5, &["a", "b"]);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        // Labels alternate a b a b.
        let labels: Vec<&str> = g.edges().map(|(_, s, _)| g.alphabet().resolve(s)).collect();
        assert_eq!(labels, vec!["a", "b", "a", "b"]);
        let single = labelled_path(1, &["a"]);
        assert_eq!(single.num_nodes(), 1);
        assert_eq!(single.num_edges(), 0);
    }

    #[test]
    fn cycle_shape() {
        let g = labelled_cycle(4, &["a"]);
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        // Every node has out-degree 1 and in-degree 1.
        for v in g.nodes() {
            assert_eq!(g.out_edges(v).len(), 1);
            assert_eq!(g.in_edges(v).len(), 1);
        }
    }

    #[test]
    fn grid_shape_and_reachability() {
        let mut g = grid(3, 4, "r", "d");
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4); // rights + downs
        let r = parse_regex("(r+d)(r+d)*", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&r);
        let (start, end) = (
            g.node_by_name("g0_0").unwrap(),
            g.node_by_name("g2_3").unwrap(),
        );
        assert!(rpq::rpq_exists(&g, &nfa, start, end));
        assert!(
            !rpq::rpq_exists(&g, &nfa, end, start),
            "grid edges are one-way"
        );
    }

    #[test]
    fn clique_is_complete() {
        let g = clique(4, "e");
        assert_eq!(g.num_edges(), 12);
        for u in g.nodes() {
            for v in g.nodes() {
                if u != v {
                    let e = g.alphabet().get("e").unwrap();
                    assert!(g.has_edge(u, e, v));
                }
            }
        }
    }

    #[test]
    fn random_graph_is_deterministic() {
        let g1 = random_graph(20, 60, &["a", "b"], 42);
        let g2 = random_graph(20, 60, &["a", "b"], 42);
        assert_eq!(g1.num_edges(), g2.num_edges());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
        let g3 = random_graph(20, 60, &["a", "b"], 43);
        assert_ne!(
            g1.edges().collect::<Vec<_>>(),
            g3.edges().collect::<Vec<_>>(),
            "different seed, different graph (w.h.p.)"
        );
    }

    #[test]
    fn zipf_label_graph_is_deterministic_and_skewed() {
        let g1 = zipf_label_graph(200, 800, 40, 1.0, 9);
        let g2 = zipf_label_graph(200, 800, 40, 1.0, 9);
        assert_eq!(
            g1.edges().collect::<Vec<_>>(),
            g2.edges().collect::<Vec<_>>()
        );
        assert_eq!(g1.num_nodes(), 200);
        assert_eq!(g1.alphabet().len(), 40);
        // Zipf skew: the most frequent label must dominate the rarest by a
        // wide margin (weight ratio 40:1 before sampling noise).
        let mut counts = vec![0usize; 40];
        for (_, s, _) in g1.edges() {
            counts[s.index()] += 1;
        }
        assert!(
            counts[0] > 10 * counts[39].max(1),
            "no Zipf skew: {counts:?}"
        );
        // Frequencies are monotone-ish: head ≫ tail in aggregate.
        let head: usize = counts[..4].iter().sum();
        let tail: usize = counts[20..].iter().sum();
        assert!(head > tail, "head {head} tail {tail}");
    }

    #[test]
    fn social_network_has_both_relations() {
        let g = social_network(3, 5, 0.8, 0.05, 7);
        assert_eq!(g.num_nodes(), 15);
        assert!(g.alphabet().get("knows").is_some());
        assert!(g.alphabet().get("follows").is_some());
        assert!(g.num_edges() > 0);
    }
}
