//! Regular path query (RPQ) matching primitives.
//!
//! Three path notions from the paper (§1–2):
//!
//! * **arbitrary paths** — standard semantics; decided by BFS over the
//!   product of the graph with the NFA, `O(|V|·|Q| + |E|·|Q|²)` per source:
//!   this is the NL-style algorithm behind the polynomial data complexity of
//!   standard CRPQ evaluation;
//! * **simple paths** (no repeated node) and **simple cycles** — the
//!   building blocks of both injective semantics; NP-complete in data
//!   complexity even for fixed small languages [Mendelzon & Wood 1995],
//!   implemented as backtracking DFS over `(node, NFA state-set)` with a
//!   visited set;
//! * **trails** (no repeated edge) — the edge-injective variant discussed in
//!   the paper's outlook (§7), provided as an extension.
//!
//! All searches take a `blocked` set: blocked nodes may not occur as
//! *internal* nodes of the path (endpoints are exempt). This is exactly the
//! hook the query-injective evaluator needs to keep paths of different atoms
//! internally disjoint.

use crate::db::{GraphDb, NodeId};
use crpq_automata::{Nfa, StateId};
use crpq_util::{BitSet, FxHashSet, Symbol};
use std::collections::VecDeque;
use std::ops::ControlFlow;

/// Reusable scratch buffers for the product-automaton BFS.
///
/// A single reachability sweep needs a `|V| × |Q|` visited set and a work
/// queue; materialising a full RPQ relation runs one sweep per source node.
/// Allocating (and zeroing) those buffers per call dominates small-sweep
/// cost, so `ReachScratch` keeps them alive across calls and resets the
/// visited set in O(1) with an epoch counter: a product state is *visited*
/// iff its stamp equals the current epoch, and bumping the epoch invalidates
/// every stamp at once.
#[derive(Clone, Debug, Default)]
pub struct ReachScratch {
    stamps: Vec<u32>,
    epoch: u32,
    queue: VecDeque<(NodeId, StateId)>,
}

impl ReachScratch {
    /// A fresh, empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares for a sweep over `size` product states: grows the stamp
    /// array if needed and invalidates all previous stamps.
    fn begin(&mut self, size: usize) {
        if self.stamps.len() < size {
            self.stamps.resize(size, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stamps from 2³² sweeps ago could alias. Hard reset.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    /// Marks `state` visited; returns `true` if it was not visited yet.
    #[inline]
    fn visit(&mut self, state: usize) -> bool {
        let fresh = self.stamps[state] != self.epoch;
        self.stamps[state] = self.epoch;
        fresh
    }
}

/// Nodes reachable from `src` by a path whose label is in `L(nfa)`.
pub fn rpq_reach(g: &GraphDb, nfa: &Nfa, src: NodeId) -> BitSet {
    let mut result = g.node_set();
    rpq_reach_with(g, nfa, src, &mut ReachScratch::new(), &mut result);
    result
}

/// [`rpq_reach`] with caller-provided buffers: reachable nodes are inserted
/// into `result` (which is cleared first), and `scratch` is reused across
/// calls without reallocation.
///
/// The BFS iterates NFA transitions first and graph edges second: for each
/// frontier state `(v, q)` and each transition `q -a-> q'`, the `a`-targets
/// of `v` come from the label-partitioned CSR as one contiguous slice
/// ([`GraphDb::successors_slice`]), so nodes with large mixed-label edge
/// lists are never scanned label-by-label.
pub fn rpq_reach_with(
    g: &GraphDb,
    nfa: &Nfa,
    src: NodeId,
    scratch: &mut ReachScratch,
    result: &mut BitSet,
) {
    let ns = nfa.num_states();
    result.clear();
    scratch.begin(g.num_nodes() * ns);
    for q in nfa.initials().iter() {
        if scratch.visit(src.index() * ns + q) {
            scratch.queue.push_back((src, q as StateId));
        }
        if nfa.is_final(q as StateId) {
            result.insert(src.index());
        }
    }
    while let Some((v, q)) = scratch.queue.pop_front() {
        for &(sym, q2) in nfa.transitions_from(q) {
            for &to in g.successors_slice(v, sym) {
                if scratch.visit(to.index() * ns + q2 as usize) {
                    if nfa.is_final(q2) {
                        result.insert(to.index());
                    }
                    scratch.queue.push_back((to, q2));
                }
            }
        }
    }
}

/// Backward reachability without materialising a reversed graph: the nodes
/// `u` such that some `u → dst` path has its label in `L(nfa)`, where
/// `nfa_rev` recognises the *mirror* language ([`Nfa::reverse`]).
///
/// Equivalent to `rpq_reach(&g.reversed(), nfa_rev, dst)` but walks the
/// reverse label-partitioned CSR the graph already carries
/// ([`GraphDb::predecessors_slice`]), so callers needing both directions
/// (e.g. bidirectional candidate pruning) avoid a full graph clone.
pub fn rpq_reach_back(g: &GraphDb, nfa_rev: &Nfa, dst: NodeId) -> BitSet {
    let mut result = g.node_set();
    rpq_reach_back_with(g, nfa_rev, dst, &mut ReachScratch::new(), &mut result);
    result
}

/// [`rpq_reach_back`] with caller-provided buffers (see [`rpq_reach_with`]).
pub fn rpq_reach_back_with(
    g: &GraphDb,
    nfa_rev: &Nfa,
    dst: NodeId,
    scratch: &mut ReachScratch,
    result: &mut BitSet,
) {
    let ns = nfa_rev.num_states();
    result.clear();
    scratch.begin(g.num_nodes() * ns);
    for q in nfa_rev.initials().iter() {
        if scratch.visit(dst.index() * ns + q) {
            scratch.queue.push_back((dst, q as StateId));
        }
        if nfa_rev.is_final(q as StateId) {
            result.insert(dst.index());
        }
    }
    while let Some((v, q)) = scratch.queue.pop_front() {
        for &(sym, q2) in nfa_rev.transitions_from(q) {
            for &from in g.predecessors_slice(v, sym) {
                if scratch.visit(from.index() * ns + q2 as usize) {
                    if nfa_rev.is_final(q2) {
                        result.insert(from.index());
                    }
                    scratch.queue.push_back((from, q2));
                }
            }
        }
    }
}

/// A fully materialised binary relation over the nodes of a graph — the
/// result set of an RPQ atom under standard semantics, indexed both ways:
/// `forward(u)` is the bitset of `v` with `(u, v)` in the relation, and
/// `backward(v)` the bitset of `u`. Both directions are what the join-based
/// CRPQ evaluator intersects during semi-join pruning and candidate
/// generation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    fwd: Vec<BitSet>,
    rev: Vec<BitSet>,
    len: usize,
}

impl Relation {
    /// The empty relation over `n` nodes.
    pub fn empty(n: usize) -> Self {
        Relation {
            fwd: vec![BitSet::new(n); n],
            rev: vec![BitSet::new(n); n],
            len: 0,
        }
    }

    /// Number of nodes the relation ranges over.
    pub fn num_nodes(&self) -> usize {
        self.fwd.len()
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test for `(u, v)` — O(1).
    #[inline]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.fwd[u.index()].contains(v.index())
    }

    /// All `v` with `(u, v)` in the relation.
    #[inline]
    pub fn forward(&self, u: NodeId) -> &BitSet {
        &self.fwd[u.index()]
    }

    /// All `u` with `(u, v)` in the relation.
    #[inline]
    pub fn backward(&self, v: NodeId) -> &BitSet {
        &self.rev[v.index()]
    }

    /// The set of sources (`u` with at least one pair).
    pub fn source_set(&self) -> BitSet {
        let mut out = BitSet::new(self.num_nodes());
        for (u, row) in self.fwd.iter().enumerate() {
            if !row.is_empty() {
                out.insert(u);
            }
        }
        out
    }

    /// The set of targets (`v` with at least one pair).
    pub fn target_set(&self) -> BitSet {
        let mut out = BitSet::new(self.num_nodes());
        for (v, col) in self.rev.iter().enumerate() {
            if !col.is_empty() {
                out.insert(v);
            }
        }
        out
    }

    /// Iterates all pairs in `(source, target)` order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.fwd.iter().enumerate().flat_map(|(u, row)| {
            row.iter()
                .map(move |v| (NodeId(u as u32), NodeId(v as u32)))
        })
    }
}

/// Materialises the full RPQ relation `{(u, v) : some u→v path has its
/// label in L(nfa)}` by a product BFS from every source in `sources`,
/// reusing `scratch` across sweeps (no per-source reallocation beyond the
/// output rows themselves).
pub fn rpq_reach_all(
    g: &GraphDb,
    nfa: &Nfa,
    sources: impl IntoIterator<Item = NodeId>,
    scratch: &mut ReachScratch,
) -> Relation {
    let n = g.num_nodes();
    let mut rel = Relation::empty(n);
    for src in sources {
        let row = &mut rel.fwd[src.index()];
        rpq_reach_with(g, nfa, src, scratch, row);
        rel.len += row.len();
    }
    // Transpose to fill the backward index.
    for u in 0..n {
        // Split-borrow dance: move the row out to iterate while writing rev.
        let row = std::mem::replace(&mut rel.fwd[u], BitSet::new(0));
        for v in row.iter() {
            rel.rev[v].insert(u);
        }
        rel.fwd[u] = row;
    }
    rel
}

/// [`rpq_reach_all`] from every node of the graph: the atom's complete
/// standard-semantics relation.
pub fn rpq_relation(g: &GraphDb, nfa: &Nfa, scratch: &mut ReachScratch) -> Relation {
    rpq_reach_all(g, nfa, g.nodes(), scratch)
}

/// Whether some (arbitrary) path from `src` to `dst` has its label in
/// `L(nfa)` — standard-semantics RPQ matching.
pub fn rpq_exists(g: &GraphDb, nfa: &Nfa, src: NodeId, dst: NodeId) -> bool {
    rpq_reach(g, nfa, src).contains(dst.index())
}

/// A **shortest** (arbitrary, possibly node-repeating) path from `src` to
/// `dst` whose label is in `L(nfa)`, as its node sequence, or `None` when no
/// such path exists. The empty path `[src]` is returned when `src == dst`
/// and `ε ∈ L(nfa)`.
///
/// BFS over the product of the graph with the NFA, with parent pointers —
/// the constructive counterpart of [`rpq_exists`] used for standard-semantics
/// witness extraction.
pub fn shortest_path(g: &GraphDb, nfa: &Nfa, src: NodeId, dst: NodeId) -> Option<Vec<NodeId>> {
    if src == dst && nfa.accepts_epsilon() {
        return Some(vec![src]);
    }
    let ns = nfa.num_states();
    let flat = |v: NodeId, q: u32| v.index() * ns + q as usize;
    let mut parent: Vec<Option<(NodeId, u32)>> = vec![None; g.num_nodes() * ns];
    let mut visited = BitSet::new(g.num_nodes() * ns);
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    for q in nfa.initials().iter() {
        if visited.insert(flat(src, q as u32)) {
            queue.push_back((src, q as u32));
        }
    }
    while let Some((v, q)) = queue.pop_front() {
        for &(sym, q2) in nfa.transitions_from(q) {
            for &to in g.successors_slice(v, sym) {
                if visited.insert(flat(to, q2)) {
                    parent[flat(to, q2)] = Some((v, q));
                    if to == dst && nfa.is_final(q2) {
                        // Reconstruct the node sequence.
                        let mut path = vec![to];
                        let mut cur = (to, q2);
                        while let Some(prev) = parent[flat(cur.0, cur.1)] {
                            path.push(prev.0);
                            cur = prev;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back((to, q2));
                }
            }
        }
    }
    None
}

/// All pairs `(u, v)` related by the RPQ under standard semantics.
pub fn rpq_pairs(g: &GraphDb, nfa: &Nfa) -> Vec<(NodeId, NodeId)> {
    rpq_relation(g, nfa, &mut ReachScratch::new())
        .iter()
        .collect()
}

/// Whether a **simple path** from `src` to `dst` (all nodes pairwise
/// distinct) has its label in `L(nfa)`, with no internal node in `blocked`.
///
/// When `src == dst` the only simple path is the empty one, so the answer is
/// `ε ∈ L(nfa)`.
pub fn simple_path_exists(
    g: &GraphDb,
    nfa: &Nfa,
    src: NodeId,
    dst: NodeId,
    blocked: &BitSet,
) -> bool {
    let mut found = false;
    for_each_simple_path(g, nfa, src, dst, blocked, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Enumerates simple paths from `src` to `dst` with label in `L(nfa)` whose
/// internal nodes avoid `blocked`, invoking `visit` with the node sequence
/// (including both endpoints; the empty path yields `[src]`).
///
/// The same node sequence may be visited more than once if parallel edges
/// with different labels both complete an accepting run. Returns `true` if
/// enumeration ran to completion (no early break).
pub fn for_each_simple_path<F>(
    g: &GraphDb,
    nfa: &Nfa,
    src: NodeId,
    dst: NodeId,
    blocked: &BitSet,
    mut visit: F,
) -> bool
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    if src == dst {
        // The empty path is the only simple path from a node to itself.
        if nfa.accepts_epsilon() {
            return visit(&[src]).is_continue();
        }
        return true;
    }
    let useful = nfa.useful_states();
    let mut initial = nfa.initials().clone();
    initial.intersect_with(&useful);
    if initial.is_empty() {
        return true;
    }
    let mut visited = g.node_set();
    visited.insert(src.index());
    let mut path = vec![src];
    dfs_simple(
        g,
        nfa,
        dst,
        blocked,
        &useful,
        &mut visited,
        &mut path,
        initial,
        &mut visit,
    )
    .is_continue()
}

#[allow(clippy::too_many_arguments)]
fn dfs_simple<F>(
    g: &GraphDb,
    nfa: &Nfa,
    dst: NodeId,
    blocked: &BitSet,
    useful: &BitSet,
    visited: &mut BitSet,
    path: &mut Vec<NodeId>,
    states: BitSet,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let here = *path.last().unwrap();
    for &(sym, to) in g.out_edges(here) {
        if to == dst {
            let image = nfa.delta_set(&states, sym);
            if image.intersects(nfa.finals()) {
                path.push(to);
                let flow = visit(path);
                path.pop();
                flow?;
            }
            continue;
        }
        if visited.contains(to.index()) || blocked.contains(to.index()) {
            continue;
        }
        let mut image = nfa.delta_set(&states, sym);
        image.intersect_with(useful);
        if image.is_empty() {
            continue;
        }
        visited.insert(to.index());
        path.push(to);
        let flow = dfs_simple(g, nfa, dst, blocked, useful, visited, path, image, visit);
        path.pop();
        visited.remove(to.index());
        flow?;
    }
    ControlFlow::Continue(())
}

/// Whether a **simple cycle** at `at` (internal nodes pairwise distinct and
/// different from `at`) has its label in `L(nfa)`, with no internal node in
/// `blocked`. The empty cycle counts iff `ε ∈ L(nfa)`.
pub fn simple_cycle_exists(g: &GraphDb, nfa: &Nfa, at: NodeId, blocked: &BitSet) -> bool {
    let mut found = false;
    for_each_simple_cycle(g, nfa, at, blocked, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Enumerates simple cycles at `at` with label in `L(nfa)`, visiting the node
/// sequence `[at, …, at]` (the empty cycle yields `[at]`).
/// Returns `true` if enumeration completed.
pub fn for_each_simple_cycle<F>(
    g: &GraphDb,
    nfa: &Nfa,
    at: NodeId,
    blocked: &BitSet,
    mut visit: F,
) -> bool
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    if nfa.accepts_epsilon() && visit(&[at]).is_break() {
        return false;
    }
    let useful = nfa.useful_states();
    let mut initial = nfa.initials().clone();
    initial.intersect_with(&useful);
    if initial.is_empty() {
        return true;
    }
    let mut visited = g.node_set();
    visited.insert(at.index());
    let mut path = vec![at];
    dfs_cycle(
        g,
        nfa,
        at,
        blocked,
        &useful,
        &mut visited,
        &mut path,
        initial,
        &mut visit,
    )
    .is_continue()
}

#[allow(clippy::too_many_arguments)]
fn dfs_cycle<F>(
    g: &GraphDb,
    nfa: &Nfa,
    at: NodeId,
    blocked: &BitSet,
    useful: &BitSet,
    visited: &mut BitSet,
    path: &mut Vec<NodeId>,
    states: BitSet,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let here = *path.last().unwrap();
    for &(sym, to) in g.out_edges(here) {
        if to == at {
            let image = nfa.delta_set(&states, sym);
            if image.intersects(nfa.finals()) {
                path.push(to);
                let flow = visit(path);
                path.pop();
                flow?;
            }
            continue;
        }
        if visited.contains(to.index()) || blocked.contains(to.index()) {
            continue;
        }
        let mut image = nfa.delta_set(&states, sym);
        image.intersect_with(useful);
        if image.is_empty() {
            continue;
        }
        visited.insert(to.index());
        path.push(to);
        let flow = dfs_cycle(g, nfa, at, blocked, useful, visited, path, image, visit);
        path.pop();
        visited.remove(to.index());
        flow?;
    }
    ControlFlow::Continue(())
}

/// A labelled edge occurrence, the unit of trail (edge-injective) search.
pub type Edge = (NodeId, Symbol, NodeId);

/// Whether a **trail** (no repeated edge) from `src` to `dst` has its label
/// in `L(nfa)`. Edge-injective analogue of [`simple_path_exists`]
/// (paper §7 outlook).
pub fn trail_exists(g: &GraphDb, nfa: &Nfa, src: NodeId, dst: NodeId) -> bool {
    let mut found = false;
    for_each_trail(g, nfa, src, dst, &FxHashSet::default(), |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Enumerates trails from `src` to `dst` with label in `L(nfa)`, avoiding
/// the edges in `blocked`. `visit` receives the edge sequence (the empty
/// trail — when `src == dst` and `ε ∈ L` — yields `[]`). A trail from a
/// node to itself with `src == dst` is a *closed trail*. Returns `true`
/// if enumeration ran to completion.
///
/// The same edge sequence is visited at most once; unlike simple paths,
/// trails may revisit nodes, so the search space is bounded by `|E|!` in
/// the worst case — callers should bound `g` accordingly.
pub fn for_each_trail<F>(
    g: &GraphDb,
    nfa: &Nfa,
    src: NodeId,
    dst: NodeId,
    blocked: &FxHashSet<Edge>,
    mut visit: F,
) -> bool
where
    F: FnMut(&[Edge]) -> ControlFlow<()>,
{
    if src == dst && nfa.accepts_epsilon() && visit(&[]).is_break() {
        return false;
    }
    let useful = nfa.useful_states();
    let mut initial = nfa.initials().clone();
    initial.intersect_with(&useful);
    if initial.is_empty() {
        return true;
    }
    let mut used: FxHashSet<Edge> = FxHashSet::default();
    let mut path: Vec<Edge> = Vec::new();
    dfs_trail(
        g, nfa, src, dst, &useful, blocked, &mut used, &mut path, initial, &mut visit,
    )
    .is_continue()
}

#[allow(clippy::too_many_arguments)]
fn dfs_trail<F>(
    g: &GraphDb,
    nfa: &Nfa,
    here: NodeId,
    dst: NodeId,
    useful: &BitSet,
    blocked: &FxHashSet<Edge>,
    used: &mut FxHashSet<Edge>,
    path: &mut Vec<Edge>,
    states: BitSet,
    visit: &mut F,
) -> ControlFlow<()>
where
    F: FnMut(&[Edge]) -> ControlFlow<()>,
{
    for &(sym, to) in g.out_edges(here) {
        let edge = (here, sym, to);
        if used.contains(&edge) || blocked.contains(&edge) {
            continue;
        }
        let mut image = nfa.delta_set(&states, sym);
        image.intersect_with(useful);
        if image.is_empty() {
            continue;
        }
        if to == dst && image.intersects(nfa.finals()) {
            path.push(edge);
            let flow = visit(path);
            path.pop();
            flow?;
        }
        used.insert(edge);
        path.push(edge);
        let flow = dfs_trail(g, nfa, to, dst, useful, blocked, used, path, image, visit);
        path.pop();
        used.remove(&edge);
        flow?;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::GraphBuilder;
    use crpq_automata::parse_regex;

    /// Builds the graph and an NFA over its alphabet.
    fn setup(edges: &[(&str, &str, &str)], expr: &str) -> (GraphDb, Nfa) {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        let mut g = b.finish();
        let regex = parse_regex(expr, g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&regex);
        (g, nfa)
    }

    fn n(g: &GraphDb, name: &str) -> NodeId {
        g.node_by_name(name).unwrap()
    }

    #[test]
    fn standard_rpq_on_chain() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "w")], "a a*");
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "w")));
        assert!(!rpq_exists(&g, &nfa, n(&g, "w"), n(&g, "u")));
        assert!(
            !rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "u")),
            "a+ needs 1+ edges"
        );
    }

    #[test]
    fn standard_rpq_epsilon() {
        let (g, nfa) = setup(&[("u", "a", "v")], "a*");
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "u")), "ε path");
        let pairs = rpq_pairs(&g, &nfa);
        assert_eq!(pairs.len(), 3); // (u,u), (u,v), (v,v)
    }

    #[test]
    fn standard_rpq_uses_non_simple_paths() {
        // u -a-> m -b-> u (cycle), m -b-> v requires repeating m for abab…
        // Language (a b)(a b): u→m→u→?: needs path of label abab from u to v:
        // u a m b u a m b v? v edge: u -a-> m, m -b-> u, m -b-> v won't need repeat…
        // Make it explicit: only walk u a m b u a m b v exists for (ab)^2 if
        // m -b-> v and we must go around once.
        let (g, nfa) = setup(
            &[("u", "a", "m"), ("m", "b", "u"), ("m", "b", "v")],
            "(a b)(a b)",
        );
        // abab from u to v: u a m b u a m b v — repeats u and m.
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        // No simple path with that label:
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
    }

    #[test]
    fn simple_path_basic() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "b", "w")], "a b");
        assert!(simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "w"),
            &g.node_set()
        ));
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
    }

    #[test]
    fn simple_path_respects_blocked() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "a", "w"),
                ("u", "a", "x"),
                ("x", "a", "w"),
            ],
            "a a",
        );
        let mut blocked = g.node_set();
        assert!(simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "w"),
            &blocked
        ));
        blocked.insert(n(&g, "v").index());
        assert!(
            simple_path_exists(&g, &nfa, n(&g, "u"), n(&g, "w"), &blocked),
            "x route"
        );
        blocked.insert(n(&g, "x").index());
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "w"),
            &blocked
        ));
    }

    #[test]
    fn simple_path_same_endpoints_needs_epsilon() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a");
        // Nonempty simple path u→u impossible (u would repeat).
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "u"),
            &g.node_set()
        ));
        let (g2, star) = setup(&[("u", "a", "v")], "a*");
        assert!(simple_path_exists(
            &g2,
            &star,
            n(&g2, "u"),
            n(&g2, "u"),
            &g2.node_set()
        ));
    }

    #[test]
    fn simple_cycle_detection() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a");
        assert!(simple_cycle_exists(&g, &nfa, n(&g, "u"), &g.node_set()));
        // Blocking the only intermediate kills the cycle.
        let mut blocked = g.node_set();
        blocked.insert(n(&g, "v").index());
        assert!(!simple_cycle_exists(&g, &nfa, n(&g, "u"), &blocked));
    }

    #[test]
    fn simple_cycle_self_loop_and_epsilon() {
        let (g, nfa) = setup(&[("u", "a", "u")], "a");
        assert!(simple_cycle_exists(&g, &nfa, n(&g, "u"), &g.node_set()));
        let (g2, star) = setup(&[("u", "a", "v")], "b*");
        // ε-cycle counts:
        assert!(simple_cycle_exists(&g2, &star, n(&g2, "u"), &g2.node_set()));
        let (g3, plus) = setup(&[("u", "a", "v")], "b b*");
        assert!(!simple_cycle_exists(
            &g3,
            &plus,
            n(&g3, "u"),
            &g3.node_set()
        ));
    }

    #[test]
    fn cycle_does_not_reuse_internal_node() {
        // u -a-> v -a-> u and v -a-> w -a-> v: cycle of length 4 through v twice
        // is not simple; aaaa should not be found, but aa should.
        let (g, four) = setup(
            &[
                ("u", "a", "v"),
                ("v", "a", "u"),
                ("v", "a", "w"),
                ("w", "a", "v"),
            ],
            "a a a a",
        );
        assert!(!simple_cycle_exists(&g, &four, n(&g, "u"), &g.node_set()));
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        let two = Nfa::from_regex(&parse_regex("a a", &mut it).unwrap());
        assert!(simple_cycle_exists(&g, &two, n(&g, "u"), &g.node_set()));
    }

    #[test]
    fn path_enumeration_collects_sequences() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "a", "w"),
                ("u", "a", "x"),
                ("x", "a", "w"),
            ],
            "a a",
        );
        let mut paths = Vec::new();
        for_each_simple_path(&g, &nfa, n(&g, "u"), n(&g, "w"), &g.node_set(), |p| {
            paths.push(p.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 3);
            assert_eq!(p[0], n(&g, "u"));
            assert_eq!(p[2], n(&g, "w"));
        }
    }

    #[test]
    fn trails_allow_repeated_nodes_not_edges() {
        // Figure-of-eight at m: u a m, m b m', m' c m, m d v — trail abcd
        // revisits m but no edge.
        let (g, nfa) = setup(
            &[
                ("u", "a", "m"),
                ("m", "b", "m2"),
                ("m2", "c", "m"),
                ("m", "d", "v"),
            ],
            "a b c d",
        );
        assert!(trail_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
        // aa over a single a-edge would repeat the edge:
        let (g2, aa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a a");
        assert!(!trail_exists(&g2, &aa, n(&g2, "u"), n(&g2, "v")));
    }

    #[test]
    fn empty_language_matches_nothing() {
        let (g, nfa) = setup(&[("u", "a", "v")], "∅");
        assert!(!rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
        assert!(!trail_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
    }

    #[test]
    fn shortest_path_on_chain_is_shortest() {
        // Two routes u→w: direct (a) and via v (a a); `a a* ` shortest is 1.
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "w"), ("u", "a", "w")], "a a*");
        let p = shortest_path(&g, &nfa, n(&g, "u"), n(&g, "w")).unwrap();
        assert_eq!(p, vec![n(&g, "u"), n(&g, "w")]);
    }

    #[test]
    fn shortest_path_respects_language() {
        // Language forces exactly two a's, so the direct edge is not usable.
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "w"), ("u", "a", "w")], "a a");
        let p = shortest_path(&g, &nfa, n(&g, "u"), n(&g, "w")).unwrap();
        assert_eq!(p, vec![n(&g, "u"), n(&g, "v"), n(&g, "w")]);
        assert!(shortest_path(&g, &nfa, n(&g, "w"), n(&g, "u")).is_none());
    }

    #[test]
    fn shortest_path_epsilon_and_cycles() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a*");
        // ε: the empty path.
        assert_eq!(
            shortest_path(&g, &nfa, n(&g, "u"), n(&g, "u")).unwrap(),
            vec![n(&g, "u")]
        );
        // Non-ε cycle: a a back to u.
        let (g2, plus) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a* a");
        let p = shortest_path(&g2, &plus, n(&g2, "u"), n(&g2, "u")).unwrap();
        assert_eq!(p, vec![n(&g2, "u"), n(&g2, "v"), n(&g2, "u")]);
    }

    #[test]
    fn relation_matches_per_source_reach() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "b", "w"),
                ("w", "a", "u"),
                ("v", "a", "v"),
            ],
            "(a+b)(a+b)*",
        );
        let mut scratch = ReachScratch::new();
        let rel = rpq_relation(&g, &nfa, &mut scratch);
        for src in g.nodes() {
            let direct = rpq_reach(&g, &nfa, src);
            for dst in g.nodes() {
                assert_eq!(
                    rel.contains(src, dst),
                    direct.contains(dst.index()),
                    "{src:?}→{dst:?}"
                );
                assert_eq!(
                    rel.contains(src, dst),
                    rel.backward(dst).contains(src.index())
                );
            }
        }
        assert_eq!(rel.len(), rel.iter().count());
    }

    #[test]
    fn scratch_reuse_is_clean_across_automata() {
        // Reusing one scratch across different NFAs / sweeps must not leak
        // visited state between calls.
        let (g, ab) = setup(&[("u", "a", "v"), ("v", "b", "w")], "a b");
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        it.intern("b");
        let just_a = Nfa::from_regex(&crpq_automata::parse_regex("a", &mut it).unwrap());
        let mut scratch = ReachScratch::new();
        let mut out = g.node_set();
        for _ in 0..3 {
            rpq_reach_with(&g, &ab, n(&g, "u"), &mut scratch, &mut out);
            assert_eq!(out.iter().collect::<Vec<_>>(), vec![n(&g, "w").index()]);
            rpq_reach_with(&g, &just_a, n(&g, "u"), &mut scratch, &mut out);
            assert_eq!(out.iter().collect::<Vec<_>>(), vec![n(&g, "v").index()]);
        }
    }

    #[test]
    fn backward_reach_matches_reversed_graph() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "b", "w"),
                ("w", "a", "u"),
                ("v", "a", "v"),
            ],
            "a (a+b)*",
        );
        let g_rev = g.reversed();
        let nfa_rev = nfa.reverse();
        for dst in g.nodes() {
            assert_eq!(
                rpq_reach_back(&g, &nfa_rev, dst),
                rpq_reach(&g_rev, &nfa_rev, dst),
                "backward reach mismatch at {dst:?}"
            );
        }
    }

    #[test]
    fn relation_source_and_target_sets() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("w", "a", "v")], "a");
        let rel = rpq_relation(&g, &nfa, &mut ReachScratch::new());
        let (u, v, w) = (n(&g, "u"), n(&g, "v"), n(&g, "w"));
        assert_eq!(
            rel.source_set().iter().collect::<Vec<_>>(),
            vec![u.index(), w.index()]
        );
        assert_eq!(rel.target_set().iter().collect::<Vec<_>>(), vec![v.index()]);
        assert_eq!(rel.len(), 2);
        assert!(!rel.is_empty());
    }

    #[test]
    fn shortest_path_walks_may_repeat_nodes() {
        // (a b)(a b)(a b) on a 2-cycle: the walk revisits nodes — allowed
        // under standard semantics.
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "b", "u")], "a b a b a b");
        let p = shortest_path(&g, &nfa, n(&g, "u"), n(&g, "u")).unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p[0], n(&g, "u"));
        assert_eq!(p[6], n(&g, "u"));
    }
}
