//! Regular path query (RPQ) matching primitives.
//!
//! Three path notions from the paper (§1–2):
//!
//! * **arbitrary paths** — standard semantics; decided by BFS over the
//!   product of the graph with the NFA, `O(|V|·|Q| + |E|·|Q|²)` per source:
//!   this is the NL-style algorithm behind the polynomial data complexity of
//!   standard CRPQ evaluation;
//! * **simple paths** (no repeated node) and **simple cycles** — the
//!   building blocks of both injective semantics; NP-complete in data
//!   complexity even for fixed small languages [Mendelzon & Wood 1995],
//!   implemented as backtracking DFS over `(node, NFA state-set)` with a
//!   visited set;
//! * **trails** (no repeated edge) — the edge-injective variant discussed in
//!   the paper's outlook (§7), provided as an extension.
//!
//! All searches take a `blocked` set: blocked nodes may not occur as
//! *internal* nodes of the path (endpoints are exempt). This is exactly the
//! hook the query-injective evaluator needs to keep paths of different atoms
//! internally disjoint.
//!
//! # Graphs are read through [`GraphView`](crate::view::GraphView)
//!
//! Every sweep and materialiser here is generic over
//! `G: `[`GraphView`](crate::view::GraphView) rather than taking a concrete
//! `&GraphDb`: the only operations used are the trait's per-label
//! successor/predecessor iterators (strictly ascending node ids), degrees,
//! and the node-major edge iterators — see the contract in
//! [`crate::view`]. Monomorphised at [`GraphDb`](crate::db::GraphDb) the
//! iterators are `Copied<slice::Iter>` over the CSR slices, i.e. exactly
//! the pre-generalisation loops; monomorphised at
//! [`DeltaGraph`](crate::delta::DeltaGraph) the same algorithms read the
//! base+overlay merge, which is how mutated graphs are queried without a
//! rebuild. Nothing here mutates a graph or caches across view values:
//! each call sees one consistent snapshot for its whole run.
//!
//! # The O(touched) memory contract at `|V| = 10⁷`
//!
//! Everything on the standard-semantics materialisation path is sized by
//! what a sweep or relation actually **touches**, never by `|V|` alone:
//!
//! * [`ReachScratch`] visited sets are density-adaptive — a sparse
//!   epoch-stamped map until a sweep has visited `universe / 8` states,
//!   the classic dense stamp array after (allocated at most once, shrunk
//!   back by [`ReachScratch::shrink_to`]). A low-output sweep over a
//!   `10⁷ · |Q|` product costs bytes proportional to its visit count, per
//!   worker thread.
//! * A [`Relation`]'s per-node row index is **lazy**: sparse relations
//!   keep a sorted `(touched id, row kind)` table over the touched-id
//!   remap and answer [`Relation::forward`] / [`Relation::backward`] by
//!   binary search; an untouched node costs nothing. The direct `O(|V|)`
//!   row-kind table is only built past the same `k·32 ≥ |V|` parity point
//!   that governs dense rows, so [`Relation::empty`] is O(1) — no
//!   allocation at any |V| — and [`Relation::heap_bytes`] reports the
//!   actual lazy layout.
//! * Row payloads live in **sharded** span storage: each shard holds at
//!   most `u32::MAX` adjacency slots, so a `4·10⁷`-edge closure packs
//!   without overflowing the u32 flat offsets that index within a shard.
//! * [`Relation::finish_reverse`] assembles the backward index in
//!   `O(E_rel + touched)`: the forward-row installers record touched
//!   source/target ids, and the degree, layout and fill passes run over
//!   the compact touched-id remap instead of scanning `0..|V|` three times
//!   ([`Relation::assembly_ops`] is the pinned observable).
//! * All materialiser entry points ([`rpq_reach_all`],
//!   [`rpq_reach_all_parallel`], [`rpq_relation_auto`], the blocked
//!   closure) share those mechanisms, so no executor path regresses to
//!   per-relation `O(|V|)` scans; [`rpq_relation_auto_with_stats`] reports
//!   the per-materialisation [`MaterialiseStats`] the scale benchmarks
//!   persist.
//!
//! Node-name storage (the third `O(|V|)` wall at this scale) is handled in
//! [`crate::db`]: arena-interned names or the fully name-free `Anonymous`
//! mode for generated workloads.

use crate::db::NodeId;
use crate::view::GraphView;
use crpq_automata::{Nfa, StateId};
use crpq_util::{BitSet, FxHashMap, FxHashSet, Symbol};
use std::collections::VecDeque;
use std::ops::ControlFlow;

/// A sweep upgrades from the sparse visited map to the dense stamp array
/// once it has visited more than `universe / SPARSE_VISIT_FACTOR` states:
/// a map entry costs ~8–16 bytes against the stamp's 4, so past this point
/// the dense array is both smaller *and* faster, and once allocated it is
/// reused (epoch reset is O(1)) by every later sweep of at least… any size
/// it covers.
const SPARSE_VISIT_FACTOR: usize = 8;

/// Default stamp-array retention budget of [`ReachScratch::shrink_to`]
/// callers (the relation catalog applies it after every materialisation):
/// up to 2²⁰ stamps (4 MB per array) stay allocated for reuse; anything a
/// one-off huger graph forced beyond that is released instead of pinning
/// worker memory for the rest of the process.
pub const SCRATCH_RETAIN_STATES: usize = 1 << 20;

/// Reusable scratch buffers for the product-automaton BFS.
///
/// A single reachability sweep needs a `|V| × |Q|` visited set and a work
/// queue; materialising a full RPQ relation runs one sweep per source node.
/// Allocating (and zeroing) those buffers per call dominates small-sweep
/// cost, so `ReachScratch` keeps them alive across calls and resets the
/// visited set in O(1) with an epoch counter: a product state is *visited*
/// iff its stamp equals the current epoch, and bumping the epoch invalidates
/// every stamp at once.
///
/// # Density-adaptive visited set — the O(touched) sweep contract
///
/// The visited set is **density-adaptive**, like [`NodeSet`] and relation
/// rows: a sweep starts on a sparse epoch-stamped hash map (`state →
/// epoch`) and only migrates to the dense `|V|·|Q|` stamp array once it
/// has visited more than a [`1/8`](SPARSE_VISIT_FACTOR) fraction of the
/// product. A low-output sweep on a `10⁶ · |Q|` product therefore costs
/// memory proportional to the states it actually touches — it never pays
/// the multi-MB stamp allocation, which in the pre-adaptive layout was
/// charged *per worker thread* of the parallel materialiser. The dense
/// array is allocated at most once per scratch (first overflow) and
/// afterwards serves any sweep it covers at the old O(1)-reset cost;
/// [`Self::shrink_to`] releases it when a one-off huge graph would
/// otherwise pin the high-water mark forever.
///
/// Epoch wraparound (every 2³² sweeps) invalidates, not zeroes: the dense
/// arrays are re-trusted lazily, clearing only the prefix the next sweep
/// actually reads (`trusted_*` tracks the clean prefix) instead of the
/// full high-water capacity.
#[derive(Clone, Debug, Default)]
pub struct ReachScratch {
    stamps: Vec<u32>,
    /// Per-graph-node stamps for O(1) "already in the output?" checks
    /// during collecting sweeps ([`rpq_reach_collect`]).
    node_stamps: Vec<u32>,
    /// Prefix of `stamps` / `node_stamps` holding no pre-wrap garbage
    /// (entries are 0 or carry post-wrap epochs). Reset to 0 at wrap,
    /// re-extended lazily to exactly the prefix a sweep reads.
    trusted_states: usize,
    trusted_nodes: usize,
    /// Sparse visited maps (`id → epoch`) for sweeps below the dense
    /// threshold. Entries persist across sweeps (stale epochs read as
    /// unvisited) and are purged once they dominate the live ones, so a
    /// long run of small sweeps keeps the maps at O(per-sweep visits) —
    /// the maps are dropped entirely on migration and at wrap.
    sparse_states: FxHashMap<u32, u32>,
    sparse_nodes: FxHashMap<u32, u32>,
    /// States/nodes visited by the **current** sweep (the densification
    /// trigger — stale map entries must not count toward it, or a long
    /// run of tiny sweeps would eventually migrate to dense arrays it
    /// never needed).
    live_states: usize,
    live_nodes: usize,
    /// Universe sizes of the current sweep (set by `begin`).
    state_universe: usize,
    node_universe: usize,
    /// Whether the current sweep reads the dense arrays.
    dense_states: bool,
    dense_nodes: bool,
    epoch: u32,
    queue: VecDeque<(NodeId, StateId)>,
}

impl ReachScratch {
    /// A fresh, empty scratch pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares for a sweep over `size` product states (and up to `nodes`
    /// graph nodes): invalidates all previous stamps and picks the visited
    /// representation (dense if the stamp arrays already cover the sweep —
    /// their reset is O(1) — sparse otherwise).
    fn begin(&mut self, size: usize, nodes: usize) {
        self.state_universe = size;
        self.node_universe = nodes;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stamps from 2³² sweeps ago could alias the fresh
            // epoch. Invalidate the dense arrays lazily (only the prefix
            // the next sweeps read is cleared, in `retrust_*`) and drop
            // the sparse entries outright.
            self.trusted_states = 0;
            self.trusted_nodes = 0;
            self.sparse_states.clear();
            self.sparse_nodes.clear();
            self.epoch = 1;
        }
        self.dense_states = self.stamps.len() >= size;
        if self.dense_states {
            self.retrust_states(size);
        } else {
            assert!(
                size <= u32::MAX as usize,
                "product exceeds u32 sweep state ids — shard the graph"
            );
        }
        self.dense_nodes = self.node_stamps.len() >= nodes;
        if self.dense_nodes {
            self.retrust_nodes(nodes);
        }
        self.live_states = 0;
        self.live_nodes = 0;
        self.queue.clear();
    }

    /// Zeroes the (post-wrap) untrusted gap of `stamps` up to `upto`.
    fn retrust_states(&mut self, upto: usize) {
        if self.trusted_states < upto {
            self.stamps[self.trusted_states..upto].fill(0);
            self.trusted_states = upto;
        }
    }

    /// Zeroes the (post-wrap) untrusted gap of `node_stamps` up to `upto`.
    fn retrust_nodes(&mut self, upto: usize) {
        if self.trusted_nodes < upto {
            self.node_stamps[self.trusted_nodes..upto].fill(0);
            self.trusted_nodes = upto;
        }
    }

    /// Marks `state` visited; returns `true` if it was not visited yet.
    #[inline]
    fn visit(&mut self, state: usize) -> bool {
        if self.dense_states {
            let fresh = self.stamps[state] != self.epoch;
            self.stamps[state] = self.epoch;
            return fresh;
        }
        match self.sparse_states.insert(state as u32, self.epoch) {
            Some(e) if e == self.epoch => false,
            _ => {
                self.live_states += 1;
                if self.live_states * SPARSE_VISIT_FACTOR >= self.state_universe {
                    self.densify_states();
                } else if self.sparse_states.len() > 4 * self.live_states + 1024 {
                    // Mostly stale entries from earlier sweeps: purge them
                    // (amortised against the inserts that built them) so
                    // the map tracks per-sweep visits, not their union.
                    let epoch = self.epoch;
                    self.sparse_states.retain(|_, e| *e == epoch);
                }
                true
            }
        }
    }

    /// Marks graph node `v` emitted; returns `true` on first emission.
    #[inline]
    fn visit_node(&mut self, v: usize) -> bool {
        if self.dense_nodes {
            let fresh = self.node_stamps[v] != self.epoch;
            self.node_stamps[v] = self.epoch;
            return fresh;
        }
        match self.sparse_nodes.insert(v as u32, self.epoch) {
            Some(e) if e == self.epoch => false,
            _ => {
                self.live_nodes += 1;
                if self.live_nodes * SPARSE_VISIT_FACTOR >= self.node_universe {
                    self.densify_nodes();
                } else if self.sparse_nodes.len() > 4 * self.live_nodes + 1024 {
                    let epoch = self.epoch;
                    self.sparse_nodes.retain(|_, e| *e == epoch);
                }
                true
            }
        }
    }

    /// Migrates the current sweep's visited states into the dense stamp
    /// array (growing it to the sweep's universe) and drops the map. Runs
    /// at most once per universe size; later sweeps go dense from `begin`.
    #[cold]
    fn densify_states(&mut self) {
        let size = self.state_universe;
        if self.stamps.len() < size {
            self.stamps.resize(size, 0);
            // The freshly appended entries are zero; only a post-wrap gap
            // below the old length can be untrusted.
        }
        self.retrust_states(size);
        let epoch = self.epoch;
        for (&s, &e) in &self.sparse_states {
            // Stale entries (older epochs, possibly from larger universes)
            // are dead weight — migrate only this sweep's visits.
            if e == epoch {
                self.stamps[s as usize] = epoch;
            }
        }
        self.sparse_states = FxHashMap::default();
        self.dense_states = true;
    }

    /// Node-stamp counterpart of [`Self::densify_states`].
    #[cold]
    fn densify_nodes(&mut self) {
        let size = self.node_universe;
        if self.node_stamps.len() < size {
            self.node_stamps.resize(size, 0);
        }
        self.retrust_nodes(size);
        let epoch = self.epoch;
        for (&v, &e) in &self.sparse_nodes {
            if e == epoch {
                self.node_stamps[v as usize] = epoch;
            }
        }
        self.sparse_nodes = FxHashMap::default();
        self.dense_nodes = true;
    }

    /// Approximate heap bytes currently held (stamp arrays, sparse visited
    /// maps, work queue) — the per-worker term the scale benchmarks record
    /// as `scratch_bytes`.
    pub fn heap_bytes(&self) -> usize {
        let map = |m: &FxHashMap<u32, u32>| m.capacity() * (std::mem::size_of::<(u32, u32)>() + 1);
        4 * (self.stamps.capacity() + self.node_stamps.capacity())
            + map(&self.sparse_states)
            + map(&self.sparse_nodes)
            + self.queue.capacity() * std::mem::size_of::<(NodeId, StateId)>()
    }

    /// Releases memory beyond `max_states` entries per buffer (stamp
    /// arrays, sparse visited maps, work queue): the retention policy
    /// that keeps a one-off huge graph from pinning worker memory
    /// forever. Buffers **within** budget are left untouched — this is
    /// called after every catalog materialisation, and trimming a warm
    /// in-budget buffer would just re-pay its growth on the next atom.
    /// The scratch stays fully usable either way; an over-budget sweep
    /// simply re-grows (or stays on the sparse path, if it touches
    /// little). [`SCRATCH_RETAIN_STATES`] is the workspace default budget.
    pub fn shrink_to(&mut self, max_states: usize) {
        if self.stamps.len() > max_states {
            self.stamps.truncate(max_states);
            self.stamps.shrink_to_fit();
            self.trusted_states = self.trusted_states.min(max_states);
        }
        if self.node_stamps.len() > max_states {
            self.node_stamps.truncate(max_states);
            self.node_stamps.shrink_to_fit();
            self.trusted_nodes = self.trusted_nodes.min(max_states);
        }
        if self.sparse_states.capacity() > max_states {
            self.sparse_states = FxHashMap::default();
        }
        if self.sparse_nodes.capacity() > max_states {
            self.sparse_nodes = FxHashMap::default();
        }
        if self.queue.capacity() > max_states {
            self.queue = VecDeque::new();
        }
    }

    /// Test-only: forces the epoch counter, so wraparound (2³² sweeps)
    /// can be exercised without running 2³² sweeps.
    #[cfg(test)]
    pub(crate) fn set_epoch_for_test(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// Nodes reachable from `src` by a path whose label is in `L(nfa)`.
pub fn rpq_reach<G: GraphView>(g: &G, nfa: &Nfa, src: NodeId) -> BitSet {
    let mut result = g.node_set();
    rpq_reach_with(g, nfa, src, &mut ReachScratch::new(), &mut result);
    result
}

/// [`rpq_reach`] with caller-provided buffers: reachable nodes are inserted
/// into `result` (which is cleared first), and `scratch` is reused across
/// calls without reallocation.
///
/// The BFS iterates NFA transitions first and graph edges second: for each
/// frontier state `(v, q)` and each transition `q -a-> q'`, the `a`-targets
/// of `v` come from the label-partitioned CSR as one contiguous slice
/// ([`GraphDb::successors_slice`]), so nodes with large mixed-label edge
/// lists are never scanned label-by-label.
pub fn rpq_reach_with<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    src: NodeId,
    scratch: &mut ReachScratch,
    result: &mut BitSet,
) {
    let ns = nfa.num_states();
    result.clear();
    scratch.begin(g.num_nodes() * ns, 0);
    for q in nfa.initials().iter() {
        if scratch.visit(src.index() * ns + q) {
            scratch.queue.push_back((src, q as StateId));
        }
        if nfa.is_final(q as StateId) {
            result.insert(src.index());
        }
    }
    while let Some((v, q)) = scratch.queue.pop_front() {
        for &(sym, q2) in nfa.transitions_from(q) {
            for to in g.successors(v, sym) {
                if scratch.visit(to.index() * ns + q2 as usize) {
                    if nfa.is_final(q2) {
                        result.insert(to.index());
                    }
                    scratch.queue.push_back((to, q2));
                }
            }
        }
    }
}

/// [`rpq_reach_with`] variant for bulk materialisation: reached nodes are
/// collected (sorted, deduplicated) into `out` instead of a bitset, using
/// per-node stamps for the dedup — so a sweep whose output is small never
/// touches `O(|V|/64)` words of clear/scan. Returns the number of
/// graph-edge scans the sweep performed, which the adaptive materialiser
/// ([`rpq_relation_auto`]) uses as its observed per-source cost.
pub fn rpq_reach_collect<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    src: NodeId,
    scratch: &mut ReachScratch,
    out: &mut Vec<u32>,
) -> usize {
    let ns = nfa.num_states();
    out.clear();
    scratch.begin(g.num_nodes() * ns, g.num_nodes());
    let mut edge_scans = 0;
    for q in nfa.initials().iter() {
        if scratch.visit(src.index() * ns + q) {
            scratch.queue.push_back((src, q as StateId));
        }
        if nfa.is_final(q as StateId) && scratch.visit_node(src.index()) {
            out.push(src.0);
        }
    }
    while let Some((v, q)) = scratch.queue.pop_front() {
        for &(sym, q2) in nfa.transitions_from(q) {
            edge_scans += g.out_degree(v, sym);
            for to in g.successors(v, sym) {
                if scratch.visit(to.index() * ns + q2 as usize) {
                    if nfa.is_final(q2) && scratch.visit_node(to.index()) {
                        out.push(to.0);
                    }
                    scratch.queue.push_back((to, q2));
                }
            }
        }
    }
    out.sort_unstable();
    edge_scans
}

/// Backward reachability without materialising a reversed graph: the nodes
/// `u` such that some `u → dst` path has its label in `L(nfa)`, where
/// `nfa_rev` recognises the *mirror* language ([`Nfa::reverse`]).
///
/// Equivalent to `rpq_reach(&g.reversed(), nfa_rev, dst)` but walks the
/// reverse label-partitioned CSR the graph already carries
/// ([`GraphDb::predecessors_slice`]), so callers needing both directions
/// (e.g. bidirectional candidate pruning) avoid a full graph clone.
pub fn rpq_reach_back<G: GraphView>(g: &G, nfa_rev: &Nfa, dst: NodeId) -> BitSet {
    let mut result = g.node_set();
    rpq_reach_back_with(g, nfa_rev, dst, &mut ReachScratch::new(), &mut result);
    result
}

/// [`rpq_reach_back`] with caller-provided buffers (see [`rpq_reach_with`]).
pub fn rpq_reach_back_with<G: GraphView>(
    g: &G,
    nfa_rev: &Nfa,
    dst: NodeId,
    scratch: &mut ReachScratch,
    result: &mut BitSet,
) {
    let ns = nfa_rev.num_states();
    result.clear();
    scratch.begin(g.num_nodes() * ns, 0);
    for q in nfa_rev.initials().iter() {
        if scratch.visit(dst.index() * ns + q) {
            scratch.queue.push_back((dst, q as StateId));
        }
        if nfa_rev.is_final(q as StateId) {
            result.insert(dst.index());
        }
    }
    while let Some((v, q)) = scratch.queue.pop_front() {
        for &(sym, q2) in nfa_rev.transitions_from(q) {
            for from in g.predecessors(v, sym) {
                if scratch.visit(from.index() * ns + q2 as usize) {
                    if nfa_rev.is_final(q2) {
                        result.insert(from.index());
                    }
                    scratch.queue.push_back((from, q2));
                }
            }
        }
    }
}

/// Borrowed view of one row of a materialised [`Relation`]: the successor
/// (or predecessor) set of a node, stored **adaptively** — a contiguous
/// sorted-`u32` slice of the relation's flat CSR buffer while the row is
/// sparse, a dense bitset once it crosses the density threshold. A dense
/// row costs `n` bits, a sparse one `32·k` bits, so the switch point is
/// `k·32 ≥ n`; on label-sparse graphs most rows stay far below it, which
/// is what keeps full relation materialisation affordable past
/// `|V| = 10⁴` (dense rows alone are `O(|V|²/64)` words per relation, and
/// per-row heap allocations would dominate sparse materialisation).
#[derive(Clone, Copy, Debug)]
pub enum RelationRow<'a> {
    /// Sorted node ids (strictly ascending), borrowed from the flat store.
    Sparse(&'a [u32]),
    /// Bitset over all `n` nodes.
    Dense(&'a BitSet),
}

impl<'a> RelationRow<'a> {
    /// Number of ids in the row.
    pub fn len(&self) -> usize {
        match self {
            RelationRow::Sparse(ids) => ids.len(),
            RelationRow::Dense(b) => b.len(),
        }
    }

    /// Whether the row is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            RelationRow::Sparse(ids) => ids.is_empty(),
            RelationRow::Dense(b) => b.is_empty(),
        }
    }

    /// Whether the row uses the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, RelationRow::Dense(_))
    }

    /// Membership test — O(1) dense, O(log k) sparse.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        match self {
            RelationRow::Sparse(ids) => ids.binary_search(&(v as u32)).is_ok(),
            RelationRow::Dense(b) => b.contains(v),
        }
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> RelationRowIter<'a> {
        match self {
            RelationRow::Sparse(ids) => RelationRowIter::Sparse(ids.iter()),
            RelationRow::Dense(b) => RelationRowIter::Dense(b.iter()),
        }
    }

    /// `acc ∩= self`, without allocating.
    pub fn intersect_into(&self, acc: &mut BitSet) {
        match self {
            RelationRow::Sparse(ids) => acc.intersect_with_sorted(ids),
            RelationRow::Dense(b) => acc.intersect_with(b),
        }
    }

    /// Whether the row shares an id with `other`.
    pub fn intersects(&self, other: &BitSet) -> bool {
        match self {
            RelationRow::Sparse(ids) => ids.iter().any(|&v| other.contains(v as usize)),
            RelationRow::Dense(b) => b.intersects(other),
        }
    }

    /// The smallest id `≥ from`, if any — the sorted-view seek primitive
    /// of the leapfrog intersection in the worst-case-optimal join
    /// (`crpq-core`'s `wcoj` module). `O(log k)` on sparse rows (binary
    /// search), `O(words to the hit)` on dense rows (word scan).
    #[inline]
    pub fn first_at_or_after(&self, from: usize) -> Option<usize> {
        match self {
            RelationRow::Sparse(ids) => {
                let i = ids.partition_point(|&v| (v as usize) < from);
                ids.get(i).map(|&v| v as usize)
            }
            RelationRow::Dense(b) => b.first_at_or_after(from),
        }
    }
}

/// Iterator over the ids of a [`RelationRow`].
pub enum RelationRowIter<'a> {
    /// Sparse side.
    Sparse(std::slice::Iter<'a, u32>),
    /// Dense side.
    Dense(crpq_util::bitset::BitSetIter<'a>),
}

impl Iterator for RelationRowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            RelationRowIter::Sparse(it) => it.next().map(|&v| v as usize),
            RelationRowIter::Dense(it) => it.next(),
        }
    }
}

/// Whether a row with `k` of `n` possible ids should be stored dense
/// (`32·k ≥ n`, the memory parity point between a `u32` id list and an
/// `n`-bit bitset).
#[inline]
fn dense_row(k: usize, n: usize) -> bool {
    k * 32 >= n
}

/// An **owned**, density-adaptive set of node ids over a fixed universe
/// `0..n`: a sorted `u32` list while sparse, a dense [`BitSet`] once
/// `k·32 ≥ n` (the same memory-parity point as [`RelationRow`], see
/// [`dense_row`] — a `u32` id costs 32 bits, a bitset slot one).
///
/// This is the semi-join **domain** representation of the join engine: a
/// per-variable candidate set starts at `V`, is cut down by atom
/// source/target sets and relation rows, and is then cloned and
/// intersected per backtracking step. With dense `|V|`-bit sets every one
/// of those steps costs `O(|V|/64)` regardless of how few candidates
/// survive; adaptively sparse sets make domain storage and per-step work
/// `O(candidates)`, which is what keeps the join affordable at
/// `|V| = 10⁵` where domains are almost always tiny after pruning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeSet {
    /// Sorted node ids (strictly ascending) over universe `0..universe`.
    Sparse { ids: Vec<u32>, universe: usize },
    /// Bitset over the whole universe.
    Dense(BitSet),
}

impl NodeSet {
    /// The full set `0..n` (dense).
    pub fn full(n: usize) -> Self {
        NodeSet::Dense(BitSet::full(n))
    }

    /// The empty set over universe `0..n`.
    pub fn empty(n: usize) -> Self {
        NodeSet::Sparse {
            ids: Vec::new(),
            universe: n,
        }
    }

    /// Builds from a sorted, deduplicated id list, choosing the cheaper
    /// representation.
    pub fn from_sorted_ids(ids: Vec<u32>, n: usize) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let mut s = NodeSet::Sparse { ids, universe: n };
        s.normalize();
        s
    }

    /// One past the largest storable id.
    pub fn universe(&self) -> usize {
        match self {
            NodeSet::Sparse { universe, .. } => *universe,
            NodeSet::Dense(b) => b.capacity(),
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        match self {
            NodeSet::Sparse { ids, .. } => ids.len(),
            NodeSet::Dense(b) => b.len(),
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        match self {
            NodeSet::Sparse { ids, .. } => ids.is_empty(),
            NodeSet::Dense(b) => b.is_empty(),
        }
    }

    /// Whether the set currently uses the dense representation.
    pub fn is_dense(&self) -> bool {
        matches!(self, NodeSet::Dense(_))
    }

    /// Membership test — O(log k) sparse, O(1) dense.
    pub fn contains(&self, v: usize) -> bool {
        match self {
            NodeSet::Sparse { ids, .. } => ids.binary_search(&(v as u32)).is_ok(),
            NodeSet::Dense(b) => b.contains(v),
        }
    }

    /// Removes `v` if present; returns whether it was. Sparse removal is
    /// `O(k)` — callers remove a handful of μ-images, not whole domains.
    pub fn remove(&mut self, v: usize) -> bool {
        match self {
            NodeSet::Sparse { ids, .. } => match ids.binary_search(&(v as u32)) {
                Ok(p) => {
                    ids.remove(p);
                    true
                }
                Err(_) => false,
            },
            NodeSet::Dense(b) => b.remove(v),
        }
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        match self {
            NodeSet::Sparse { ids, .. } => NodeSetIter::Sparse(ids.iter()),
            NodeSet::Dense(b) => NodeSetIter::Dense(b.iter()),
        }
    }

    /// `self ∩= other` for a dense bitset operand (e.g. a cached relation
    /// source/target set), then re-picks the representation.
    pub fn intersect_with_bitset(&mut self, other: &BitSet) {
        match self {
            NodeSet::Sparse { ids, .. } => ids.retain(|&v| other.contains(v as usize)),
            NodeSet::Dense(b) => b.intersect_with(other),
        }
        self.normalize();
    }

    /// `self ∩= sorted` for a sorted id-list operand, then re-picks the
    /// representation.
    pub fn intersect_with_sorted(&mut self, sorted: &[u32]) {
        match self {
            NodeSet::Sparse { ids, .. } => {
                let mut j = 0;
                ids.retain(|&v| {
                    while j < sorted.len() && sorted[j] < v {
                        j += 1;
                    }
                    j < sorted.len() && sorted[j] == v
                });
            }
            NodeSet::Dense(b) => b.intersect_with_sorted(sorted),
        }
        self.normalize();
    }

    /// `self ∩= other` for another [`NodeSet`] operand (e.g. a cached
    /// relation source/target set, density-adaptive since the lazy
    /// relation layout), dispatching on the operand's representation.
    pub fn intersect_with_set(&mut self, other: &NodeSet) {
        match other {
            NodeSet::Sparse { ids, .. } => self.intersect_with_sorted(ids),
            NodeSet::Dense(b) => self.intersect_with_bitset(b),
        }
    }

    /// `self ∩= row` for a borrowed relation row, then re-picks the
    /// representation — the candidate-generation step of the join.
    pub fn intersect_with_row(&mut self, row: &RelationRow<'_>) {
        if let (NodeSet::Sparse { .. }, RelationRow::Sparse(row_ids)) = (&*self, row) {
            // Same sorted-id merge as a plain sorted-slice operand.
            let row_ids = *row_ids;
            self.intersect_with_sorted(row_ids);
            return;
        }
        match (&mut *self, row) {
            (NodeSet::Sparse { ids, .. }, RelationRow::Dense(b)) => {
                ids.retain(|&v| b.contains(v as usize));
            }
            (NodeSet::Dense(bits), row) => row.intersect_into(bits),
            (NodeSet::Sparse { .. }, RelationRow::Sparse(_)) => unreachable!("handled above"),
        }
        self.normalize();
    }

    /// The smallest id `≥ from`, if any — the same sorted-view seek as
    /// [`RelationRow::first_at_or_after`], so a pruned domain can join the
    /// leapfrog intersection alongside relation rows.
    #[inline]
    pub fn first_at_or_after(&self, from: usize) -> Option<usize> {
        match self {
            NodeSet::Sparse { ids, .. } => {
                let i = ids.partition_point(|&v| (v as usize) < from);
                ids.get(i).map(|&v| v as usize)
            }
            NodeSet::Dense(b) => b.first_at_or_after(from),
        }
    }

    /// Whether the set shares an id with `row` — the semi-join fixpoint
    /// test. `O(min(k_self, k_row))`-ish on sparse pairs, no allocation.
    pub fn intersects_row(&self, row: &RelationRow<'_>) -> bool {
        match (self, row) {
            (NodeSet::Sparse { ids, .. }, RelationRow::Sparse(row_ids)) => {
                // Walk the smaller list, binary-search the larger.
                let (probe, table): (&[u32], &[u32]) = if ids.len() <= row_ids.len() {
                    (ids, row_ids)
                } else {
                    (row_ids, ids)
                };
                probe.iter().any(|v| table.binary_search(v).is_ok())
            }
            (NodeSet::Sparse { ids, .. }, RelationRow::Dense(b)) => {
                ids.iter().any(|&v| b.contains(v as usize))
            }
            (NodeSet::Dense(bits), row) => row.intersects(bits),
        }
    }

    /// Re-picks the representation at the `k·32 ≥ n` parity point.
    fn normalize(&mut self) {
        match self {
            NodeSet::Sparse { ids, universe } => {
                if dense_row(ids.len(), *universe) {
                    let mut b = BitSet::new(*universe);
                    for &v in ids.iter() {
                        b.insert(v as usize);
                    }
                    *self = NodeSet::Dense(b);
                }
            }
            NodeSet::Dense(b) => {
                let (k, n) = (b.len(), b.capacity());
                if !dense_row(k, n) {
                    let ids = b.iter().map(|v| v as u32).collect();
                    *self = NodeSet::Sparse { ids, universe: n };
                }
            }
        }
    }
}

/// Iterator over the ids of a [`NodeSet`].
pub enum NodeSetIter<'a> {
    /// Sparse side.
    Sparse(std::slice::Iter<'a, u32>),
    /// Dense side.
    Dense(crpq_util::bitset::BitSetIter<'a>),
}

impl Iterator for NodeSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            NodeSetIter::Sparse(it) => it.next().map(|&v| v as usize),
            NodeSetIter::Dense(it) => it.next(),
        }
    }
}

/// Maximum ids per sparse-row shard of a [`RowStore`]: the `u32` offset
/// space of one [`RowKind::Sparse`] span. Rows never cross a shard
/// boundary, so a relation whose flat id buffer outgrows one shard
/// (2³² ids ≈ 16 GiB) simply opens the next one — the old single-buffer
/// layout panicked here and demanded manual sharding.
const SHARD_CAP: usize = u32::MAX as usize;

/// One direction of a [`Relation`]: adaptive rows for the **touched**
/// nodes only, backed by a 2-level sharded CSR id buffer (sparse rows)
/// plus a bitset pool (dense rows).
///
/// The row table is itself density-adaptive ([`RowIndex`]): a sorted
/// `(node id, row kind)` pair list while few rows are touched — so an
/// empty store is O(1) and a k-row store O(k), never O(|V|) — promoted to
/// a direct per-node table past the usual `k·32 ≥ |V|` parity point,
/// where the relation is Ω(|V|) regardless and O(1) row lookup beats the
/// binary search.
#[derive(Clone, Debug)]
struct RowStore {
    /// Number of nodes the store ranges over (`row(i)` is defined for
    /// `i < n`, untouched rows read as empty).
    n: usize,
    index: RowIndex,
    /// Sharded flat id buffer of the sparse rows: each shard holds at
    /// most `shard_cap` ids and no row crosses a shard boundary, so a
    /// `(shard, start, end)` triple of `u32`s addresses any row at any
    /// total size.
    shards: Vec<Vec<u32>>,
    dense: Vec<BitSet>,
    /// Per-shard id capacity — [`SHARD_CAP`] in production, settable
    /// small in tests so the multi-shard paths are exercised without
    /// 16 GiB allocations.
    shard_cap: usize,
}

/// The row table of a [`RowStore`] — lazy (touched rows only) or direct.
#[derive(Clone, Debug)]
enum RowIndex {
    /// `(ids[i], kinds[i])` pair list of the touched rows, in install
    /// order until [`RowStore::seal`] sorts it by node id.
    Lazy { ids: Vec<u32>, kinds: Vec<RowKind> },
    /// Direct per-node table; untouched entries hold the empty row kind.
    Direct(Vec<RowKind>),
}

#[derive(Clone, Copy, Debug)]
enum RowKind {
    Sparse { shard: u32, start: u32, end: u32 },
    Dense { idx: u32 },
}

const EMPTY_ROW: RowKind = RowKind::Sparse {
    shard: 0,
    start: 0,
    end: 0,
};

impl RowStore {
    /// An empty store over `n` nodes — **O(1)**: no per-node table is
    /// allocated until enough rows are installed to justify one.
    fn empty(n: usize) -> Self {
        Self::with_shard_cap(n, SHARD_CAP)
    }

    fn with_shard_cap(n: usize, shard_cap: usize) -> Self {
        RowStore {
            n,
            index: RowIndex::Lazy {
                ids: Vec::new(),
                kinds: Vec::new(),
            },
            shards: Vec::new(),
            dense: Vec::new(),
            shard_cap,
        }
    }

    #[inline]
    fn resolve(&self, kind: RowKind) -> RelationRow<'_> {
        match kind {
            RowKind::Sparse { start, end, .. } if start == end => RelationRow::Sparse(&[]),
            RowKind::Sparse { shard, start, end } => {
                RelationRow::Sparse(&self.shards[shard as usize][start as usize..end as usize])
            }
            RowKind::Dense { idx } => RelationRow::Dense(&self.dense[idx as usize]),
        }
    }

    /// The row of node `i` — O(1) on a direct index, O(log touched) on a
    /// lazy one (binary search; only valid once the index is sorted, i.e.
    /// after [`Self::seal`]).
    #[inline]
    fn row(&self, i: usize) -> RelationRow<'_> {
        let kind = match &self.index {
            RowIndex::Lazy { ids, kinds } => match ids.binary_search(&(i as u32)) {
                Ok(p) => kinds[p],
                Err(_) => return RelationRow::Sparse(&[]),
            },
            RowIndex::Direct(table) => table[i],
        };
        self.resolve(kind)
    }

    /// Iterates the touched rows as `(node id, row)` in ascending node
    /// order — O(touched) on a lazy (sealed) index; on a direct one the
    /// O(n) scan is within a 32× factor of touched by the promotion
    /// parity. The assembly passes of [`Relation::finish_reverse`] run on
    /// this instead of `0..n`.
    fn touched_rows(&self) -> impl Iterator<Item = (u32, RelationRow<'_>)> + '_ {
        let lazy = match &self.index {
            RowIndex::Lazy { ids, kinds } => Some(
                ids.iter()
                    .zip(kinds)
                    .map(move |(&id, &kind)| (id, self.resolve(kind))),
            ),
            RowIndex::Direct(_) => None,
        };
        let direct = match &self.index {
            RowIndex::Direct(table) => Some(
                table
                    .iter()
                    .enumerate()
                    .filter(
                        |(_, k)| !matches!(k, RowKind::Sparse { start, end, .. } if start == end),
                    )
                    .map(move |(i, &kind)| (i as u32, self.resolve(kind))),
            ),
            RowIndex::Lazy { .. } => None,
        };
        lazy.into_iter()
            .flatten()
            .chain(direct.into_iter().flatten())
    }

    /// Reserves the `[start, end)` span of the next sparse row of `deg`
    /// ids, opening a fresh shard when the current one cannot hold it —
    /// rows never cross a shard boundary, so `u32` offsets address any
    /// total buffer size.
    fn reserve_span(&mut self, deg: usize) -> RowKind {
        assert!(
            deg <= self.shard_cap,
            "a single relation row of {deg} ids exceeds the shard capacity {}",
            self.shard_cap
        );
        if self
            .shards
            .last()
            .is_none_or(|s| s.len() + deg > self.shard_cap)
        {
            self.shards.push(Vec::new());
        }
        let shard = self.shards.len() - 1;
        let start = self.shards[shard].len();
        RowKind::Sparse {
            shard: shard as u32,
            start: start as u32,
            end: (start + deg) as u32,
        }
    }

    /// Appends a sparse row for node `i` (ids strictly ascending,
    /// non-empty).
    fn push_sparse(&mut self, i: usize, ids: &[u32]) {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be sorted");
        let kind = self.reserve_span(ids.len());
        self.shards.last_mut().unwrap().extend_from_slice(ids); // invariant: shards is never empty
        self.push_kind(i, kind);
    }

    /// Installs a dense row for node `i`.
    fn push_dense(&mut self, i: usize, bits: BitSet) {
        let kind = RowKind::Dense {
            idx: self.dense.len() as u32,
        };
        self.dense.push(bits);
        self.push_kind(i, kind);
    }

    fn push_kind(&mut self, i: usize, kind: RowKind) {
        match &mut self.index {
            RowIndex::Lazy { ids, kinds } => {
                ids.push(i as u32);
                kinds.push(kind);
            }
            RowIndex::Direct(table) => table[i] = kind,
        }
    }

    /// Finalises the index for reads: sorts the lazy pair list by node id
    /// (installers run in arbitrary order — parallel workers, sampled
    /// probes) and promotes it to a direct table past the `k·32 ≥ n`
    /// parity point. Returns the sorted touched ids (the relation's
    /// source/target set, for free). Idempotent on a direct index.
    fn seal(&mut self) -> Vec<u32> {
        match &mut self.index {
            RowIndex::Lazy { ids, kinds } => {
                if !ids.windows(2).all(|w| w[0] < w[1]) {
                    let mut pairs: Vec<(u32, RowKind)> =
                        ids.iter().copied().zip(kinds.iter().copied()).collect();
                    pairs.sort_unstable_by_key(|&(id, _)| id);
                    debug_assert!(
                        pairs.windows(2).all(|w| w[0].0 < w[1].0),
                        "row installed twice"
                    );
                    *ids = pairs.iter().map(|&(id, _)| id).collect();
                    *kinds = pairs.into_iter().map(|(_, kind)| kind).collect();
                }
                if dense_row(ids.len(), self.n) {
                    let mut table = vec![EMPTY_ROW; self.n];
                    for (&id, &kind) in ids.iter().zip(kinds.iter()) {
                        table[id as usize] = kind;
                    }
                    let ids = std::mem::take(ids);
                    self.index = RowIndex::Direct(table);
                    ids
                } else {
                    ids.clone()
                }
            }
            RowIndex::Direct(_) => self.touched_rows().map(|(id, _)| id).collect(),
        }
    }

    /// Heap bytes of the index, shards and dense pool — O(touched) by
    /// construction on lazy stores (no phantom per-node table).
    fn heap_bytes(&self) -> usize {
        let index = match &self.index {
            RowIndex::Lazy { ids, kinds } => {
                ids.len() * 4 + kinds.len() * std::mem::size_of::<RowKind>()
            }
            RowIndex::Direct(table) => table.len() * std::mem::size_of::<RowKind>(),
        };
        index
            + self.shards.iter().map(|s| s.len() * 4).sum::<usize>()
            + self.dense.iter().map(BitSet::heap_bytes).sum::<usize>()
    }
}

/// A fully materialised binary relation over the nodes of a graph — the
/// result set of an RPQ atom under standard semantics, indexed both ways:
/// `forward(u)` is the row of `v` with `(u, v)` in the relation, and
/// `backward(v)` the row of `u`. Both directions are what the join-based
/// CRPQ evaluator intersects during semi-join pruning and candidate
/// generation. Rows are density-adaptive and CSR-backed
/// ([`RelationRow`]), and the source / target sets are maintained
/// incrementally during materialisation, so [`Relation::source_set`] /
/// [`Relation::target_set`] are O(1) lookups of cached bitsets rather
/// than full scans.
#[derive(Clone, Debug)]
pub struct Relation {
    fwd: RowStore,
    rev: RowStore,
    len: usize,
    /// Cached source/target sets, finalised by [`Self::finish_reverse`]
    /// from the touched-id lists (density-adaptive — O(touched) while
    /// sparse, never a phantom `|V|`-bit allocation for a tiny relation).
    sources: NodeSet,
    targets: NodeSet,
    /// Install-time target deduplication behind [`Self::touch_target`] —
    /// hash-set sparse, promoted to a bitset past the `k·32 ≥ |V|` parity
    /// point (where the relation is Ω(|V|) anyway). Drained by
    /// `finish_reverse`. Touched *sources* need no twin: the forward
    /// row index records them as it fills.
    target_touch: TouchSet,
    /// Distinct targets, in first-touch order (deduplicated against
    /// `target_touch` on insert). Also drained by `finish_reverse`.
    touched_targets: Vec<u32>,
    /// Loop iterations of the last `finish_reverse` — the observable the
    /// O(E_rel + touched) assembly contract is pinned by (regression
    /// tests assert it stays ≪ |V| on sparse relations over huge graphs).
    assembly_ops: usize,
}

/// Install-time membership set sized by what it holds: a hash set while
/// sparse, a dense bitset once `k·32 ≥ n` (at which point the `n/8`-byte
/// allocation is no larger than the hash set it replaces).
#[derive(Clone, Debug)]
enum TouchSet {
    Sparse(FxHashSet<u32>),
    Dense(BitSet),
}

impl TouchSet {
    fn new() -> Self {
        TouchSet::Sparse(FxHashSet::default())
    }

    /// Inserts `v`; returns `true` if newly inserted. `n` is the universe
    /// size (the dense-promotion parity point).
    #[inline]
    fn insert(&mut self, v: usize, n: usize) -> bool {
        match self {
            TouchSet::Sparse(set) => {
                let newly = set.insert(v as u32);
                if newly && dense_row(set.len(), n) {
                    let mut bits = BitSet::new(n);
                    for &id in set.iter() {
                        bits.insert(id as usize);
                    }
                    *self = TouchSet::Dense(bits);
                }
                newly
            }
            TouchSet::Dense(bits) => bits.insert(v),
        }
    }
}

/// Equality is **semantic** — same pair set, regardless of row
/// representation (sparse vs. dense) or installation order — so relations
/// from different materialisers compare equal exactly when they denote
/// the same RPQ result.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        if self.num_nodes() != other.num_nodes() || self.len != other.len {
            return false;
        }
        // Compare the non-empty forward rows in ascending source order —
        // O(touched), so equality checks on sparse relations over huge
        // graphs never scan `0..n`. (Empty rows are filtered because the
        // PR-1 baseline layout stores explicit empty dense rows.)
        let mut a = self.fwd.touched_rows().filter(|(_, r)| !r.is_empty());
        let mut b = other.fwd.touched_rows().filter(|(_, r)| !r.is_empty());
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some((ua, ra)), Some((ub, rb))) => {
                    if ua != ub || !ra.iter().eq(rb.iter()) {
                        return false;
                    }
                }
                _ => return false,
            }
        }
    }
}

impl Eq for Relation {}

impl Relation {
    /// The empty relation over `n` nodes — **O(1)**: row tables, flat
    /// buffers and the source/target sets all materialise lazily over the
    /// touched ids, so creating (and discarding) a relation on a 10⁷-node
    /// graph costs nothing until rows are installed.
    pub fn empty(n: usize) -> Self {
        Relation {
            fwd: RowStore::empty(n),
            rev: RowStore::empty(n),
            len: 0,
            sources: NodeSet::empty(n),
            targets: NodeSet::empty(n),
            target_touch: TouchSet::new(),
            touched_targets: Vec::new(),
            assembly_ops: 0,
        }
    }

    /// Number of nodes the relation ranges over.
    pub fn num_nodes(&self) -> usize {
        self.fwd.n
    }

    /// Number of pairs in the relation.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test for `(u, v)`.
    #[inline]
    pub fn contains(&self, u: NodeId, v: NodeId) -> bool {
        self.fwd.row(u.index()).contains(v.index())
    }

    /// All `v` with `(u, v)` in the relation.
    #[inline]
    pub fn forward(&self, u: NodeId) -> RelationRow<'_> {
        self.fwd.row(u.index())
    }

    /// All `u` with `(u, v)` in the relation.
    #[inline]
    pub fn backward(&self, v: NodeId) -> RelationRow<'_> {
        self.rev.row(v.index())
    }

    /// The cached set of sources (`u` with at least one pair) — O(1),
    /// density-adaptive (finalised by `finish_reverse`).
    pub fn source_set(&self) -> &NodeSet {
        &self.sources
    }

    /// The cached set of targets (`v` with at least one pair) — O(1),
    /// density-adaptive (finalised by `finish_reverse`).
    pub fn target_set(&self) -> &NodeSet {
        &self.targets
    }

    /// Fraction of forward rows stored dense (bench observability).
    pub fn dense_row_fraction(&self) -> f64 {
        if self.fwd.n == 0 {
            return 0.0;
        }
        let dense = self.fwd.dense.len();
        dense as f64 / self.fwd.n as f64
    }

    /// Iterates all pairs in `(source, target)` order — O(touched + len),
    /// never a `0..|V|` scan.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.fwd
            .touched_rows()
            .flat_map(move |(u, row)| row.iter().map(move |v| (NodeId(u), NodeId(v as u32))))
    }

    /// Folds `v` into the touched-target list (deduplicated) — the
    /// bookkeeping every forward-row installer shares so `finish_reverse`
    /// needs no `0..n` scan.
    #[inline]
    fn touch_target(&mut self, v: usize) {
        if self.target_touch.insert(v, self.fwd.n) {
            self.touched_targets.push(v as u32);
        }
    }

    /// Installs the forward row of `src` directly from backing words (bit
    /// `i` of word `w` = node `w·64 + i`), as produced by the closure
    /// materialiser's flat reachability matrix.
    fn set_forward_row_words(&mut self, src: NodeId, words: &[u64], buf: &mut Vec<u32>) {
        let n = self.num_nodes();
        let k: usize = words.iter().map(|w| w.count_ones() as usize).sum();
        self.len += k;
        if k == 0 {
            return;
        }
        if dense_row(k, n) {
            for (wi, &w) in words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    self.touch_target(wi * 64 + w.trailing_zeros() as usize);
                    w &= w - 1;
                }
            }
            self.fwd
                .push_dense(src.index(), BitSet::from_words(words.to_vec(), n));
        } else {
            // One bit-extraction walk serves both the sparse row and the
            // touched-target bookkeeping.
            buf.clear();
            for (wi, &w) in words.iter().enumerate() {
                let mut w = w;
                while w != 0 {
                    buf.push((wi * 64) as u32 + w.trailing_zeros());
                    w &= w - 1;
                }
            }
            for &v in buf.iter() {
                self.touch_target(v as usize);
            }
            self.fwd.push_sparse(src.index(), buf);
        }
    }

    /// Installs the forward row of `src` from an owned sorted id list (the
    /// hand-off format of the parallel materialiser's worker threads).
    fn set_forward_row_ids(&mut self, src: NodeId, ids: &[u32]) {
        let n = self.num_nodes();
        let k = ids.len();
        self.len += k;
        if k == 0 {
            return;
        }
        for &v in ids {
            self.touch_target(v as usize);
        }
        if dense_row(k, n) {
            let mut bits = BitSet::new(n);
            for &v in ids {
                bits.insert(v as usize);
            }
            self.fwd.push_dense(src.index(), bits);
        } else {
            self.fwd.push_sparse(src.index(), ids);
        }
    }

    /// Installs the forward row of `src` from an already-dense bitset (the
    /// hand-off format of the blocked closure's per-source accumulators).
    fn set_forward_row_bits(&mut self, src: NodeId, bits: BitSet) {
        let k = bits.len();
        self.len += k;
        if k == 0 {
            return;
        }
        for v in bits.iter() {
            self.touch_target(v);
        }
        self.fwd.push_dense(src.index(), bits);
    }

    /// Approximate heap bytes held by the relation's row stores and cached
    /// node sets — the peak-RSS proxy the scale benchmarks record. With
    /// the lazy layout this is **truthful O(touched)** accounting: an
    /// empty relation reports 0 bytes and a sparse one only what its
    /// touched rows, ids and node sets actually allocated — no phantom
    /// `O(|V|)` term for untouched rows.
    pub fn heap_bytes(&self) -> usize {
        let set = |s: &NodeSet| match s {
            NodeSet::Sparse { ids, .. } => ids.len() * 4,
            NodeSet::Dense(b) => b.heap_bytes(),
        };
        self.fwd.heap_bytes() + self.rev.heap_bytes() + set(&self.sources) + set(&self.targets)
    }

    /// Loop iterations of the last backward-index assembly
    /// ([`Self::finish_reverse`]): `O(E_rel + touched sources + touched
    /// targets)` by construction, with **no** term scaling in `|V|`. The
    /// scale regression tests pin this on a 10⁶-node graph whose relation
    /// touches ~10² nodes.
    pub fn assembly_ops(&self) -> usize {
        self.assembly_ops
    }

    /// Builds the backward index from the installed forward rows, in
    /// `O(E_rel + touched)`: the forward row index recorded the touched
    /// sources and the installers the touched targets, so the degree
    /// pass, the column layout pass and the fill pass all run over the
    /// touched sets — never `0..n`. The `deg` / `cursor` arrays and the
    /// backward row index itself are sized over a compact touched-target
    /// remap (direct-indexed only when the relation is dense enough to be
    /// Ω(|V|) anyway), so a relation touching k of 10⁷ nodes assembles
    /// its backward index in O(k·d̄), not O(10⁷). Also finalises the
    /// cached source/target [`NodeSet`]s from the touched ids.
    fn finish_reverse(&mut self) {
        let n = self.num_nodes();
        let mut ops = 0usize;
        // Install order is arbitrary (parallel workers, sampled probes);
        // sealing sorts the forward index — ascending source order is
        // what keeps every backward column sorted below.
        let src_ids = self.fwd.seal();
        let mut tgt = std::mem::take(&mut self.touched_targets);
        tgt.sort_unstable();
        let t = tgt.len();

        // Compact remap target id → index into `tgt`. Past the usual
        // k·32 ≥ n parity point a direct-indexed table is cheaper than
        // per-edge binary searches (and the relation is Ω(|V|) there
        // regardless); below it the remap costs O(t) memory and
        // O(log t) per edge.
        let direct: Option<Vec<u32>> = if dense_row(t, n) {
            let mut m = vec![0u32; n];
            for (i, &v) in tgt.iter().enumerate() {
                m[v as usize] = i as u32;
            }
            Some(m)
        } else {
            None
        };
        let remap = |v: usize| -> usize {
            match &direct {
                Some(m) => m[v] as usize,
                None => tgt
                    .binary_search(&(v as u32))
                    .expect("target missing from touched set"), // invariant: the BFS inserted every reached target
            }
        };

        // Degree pass over the touched sources' rows only.
        let mut deg = vec![0u32; t];
        for (_, row) in self.fwd.touched_rows() {
            for v in row.iter() {
                deg[remap(v)] += 1;
                ops += 1;
            }
        }

        // Column layout: representation choice + cursor per touched
        // target. Backward kinds are built compactly alongside `tgt`;
        // untouched targets never get an entry.
        let mut rev = RowStore::with_shard_cap(n, self.rev.shard_cap);
        let mut rev_kinds: Vec<RowKind> = Vec::with_capacity(t);
        let mut cursor = vec![0u32; t];
        for (i, _) in tgt.iter().enumerate() {
            ops += 1;
            let d = deg[i] as usize;
            debug_assert!(d > 0, "touched target with zero degree");
            if dense_row(d, n) {
                let kind = RowKind::Dense {
                    idx: rev.dense.len() as u32,
                };
                rev.dense.push(BitSet::new(n));
                rev_kinds.push(kind);
            } else {
                let kind = rev.reserve_span(d);
                let RowKind::Sparse { shard, start, .. } = kind else {
                    unreachable!()
                };
                let shard = shard as usize;
                let new_len = start as usize + d;
                if rev.shards[shard].len() < new_len {
                    rev.shards[shard].resize(new_len, 0);
                }
                cursor[i] = start;
                rev_kinds.push(kind);
            }
        }

        // Fill pass, ascending source order keeps every column sorted.
        for (u, row) in self.fwd.touched_rows() {
            for v in row.iter() {
                ops += 1;
                let i = remap(v);
                match rev_kinds[i] {
                    RowKind::Sparse { shard, .. } => {
                        rev.shards[shard as usize][cursor[i] as usize] = u;
                        cursor[i] += 1;
                    }
                    RowKind::Dense { idx } => {
                        rev.dense[idx as usize].insert(u as usize);
                    }
                }
            }
        }

        // Install the backward index over the touched-target remap —
        // direct past the parity point (mirroring `RowStore::seal`), a
        // sorted pair list below it.
        rev.index = if dense_row(t, n) {
            let mut table = vec![EMPTY_ROW; n];
            for (&v, &kind) in tgt.iter().zip(rev_kinds.iter()) {
                table[v as usize] = kind;
            }
            RowIndex::Direct(table)
        } else {
            RowIndex::Lazy {
                ids: tgt.clone(),
                kinds: rev_kinds,
            }
        };
        self.rev = rev;
        self.assembly_ops = ops;
        // Finalise the cached node sets and release the assembly
        // scaffolding so a long-lived catalog relation doesn't carry it.
        self.sources = NodeSet::from_sorted_ids(src_ids, n);
        self.targets = NodeSet::from_sorted_ids(tgt, n);
        self.target_touch = TouchSet::new();
    }
}

/// Materialises the full RPQ relation `{(u, v) : some u→v path has its
/// label in L(nfa)}` by a product BFS from every source in `sources`,
/// reusing `scratch` across sweeps (no per-source reallocation beyond the
/// output rows themselves).
pub fn rpq_reach_all<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    sources: impl IntoIterator<Item = NodeId>,
    scratch: &mut ReachScratch,
) -> Relation {
    let n = g.num_nodes();
    let mut rel = Relation::empty(n);
    let mut buf: Vec<u32> = Vec::new();
    for src in sources {
        rpq_reach_collect(g, nfa, src, scratch, &mut buf);
        rel.set_forward_row_ids(src, &buf);
    }
    rel.finish_reverse();
    rel
}

/// [`rpq_reach_all`] partitioned across `threads` std scoped threads, each
/// with its own [`ReachScratch`]: per-source product BFS is embarrassingly
/// parallel, so the sources are split into contiguous chunks and the
/// backward index is assembled once at the end. `threads = 0` means one
/// thread per available CPU (capped at 16); `threads ≤ 1` degenerates to
/// the sequential [`rpq_reach_all`].
pub fn rpq_reach_all_parallel<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    sources: &[NodeId],
    threads: usize,
) -> Relation {
    // Resolve the knob exactly once at the public entry point; everything
    // below takes the resolved count (`parallel_rows` must not re-apply
    // `effective_threads`, or a `0` knob would be re-interpreted and the
    // error fallback re-decided per layer).
    let threads = effective_threads(threads).min(sources.len().max(1));
    if threads <= 1 {
        return rpq_reach_all(g, nfa, sources.iter().copied(), &mut ReachScratch::new());
    }
    let mut rel = Relation::empty(g.num_nodes());
    let (rows, _scratch_bytes) = parallel_rows(g, nfa, sources, threads);
    for (src, ids) in rows {
        rel.set_forward_row_ids(src, &ids);
    }
    rel.finish_reverse();
    rel
}

/// Observability record of one relation materialisation — what the scale
/// benchmarks persist next to wall clock and relation bytes so scratch
/// regressions (a sweep path silently re-growing dense stamp arrays per
/// worker) show up in the baselines.
#[derive(Clone, Copy, Debug, Default)]
pub struct MaterialiseStats {
    /// Peak heap bytes of the per-sweep scratch (stamp arrays, sparse
    /// visited maps, queues), summed across the calling thread and every
    /// worker that contributed to the materialisation.
    pub scratch_bytes: usize,
    /// Backward-assembly loop iterations ([`Relation::assembly_ops`]).
    pub assembly_ops: usize,
}

/// One materialised forward row: `(source, sorted target ids)` — the
/// hand-off format of the parallel materialiser's worker threads.
type SourceRow = (NodeId, Vec<u32>);

/// Runs the per-source sweeps for `sources` across scoped worker threads
/// (one [`ReachScratch`] each) and returns the rows in source order, plus
/// the summed final scratch heap bytes across the workers.
///
/// `threads` must be an **already-resolved** worker count (`≥ 1`, from
/// [`effective_threads`] at the public entry point) — this helper only
/// clamps it to the source count and never re-interprets the `0` knob.
fn parallel_rows<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    sources: &[NodeId],
    threads: usize,
) -> (Vec<SourceRow>, usize) {
    debug_assert!(threads >= 1, "threads must be resolved by the caller");
    let threads = threads.min(sources.len().max(1));
    let chunk = sources.len().div_ceil(threads);
    let chunks: Vec<&[NodeId]> = sources.chunks(chunk.max(1)).collect();
    let per_chunk: Vec<(Vec<SourceRow>, usize)> = crpq_util::sync::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let mut scratch = ReachScratch::new();
                    let mut buf: Vec<u32> = Vec::new();
                    let rows = chunk
                        .iter()
                        .map(|&src| {
                            rpq_reach_collect(g, nfa, src, &mut scratch, &mut buf);
                            (src, buf.clone())
                        })
                        .collect();
                    (rows, scratch.heap_bytes())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect() // invariant: worker panics propagate to the caller by design
    });
    let scratch_bytes = per_chunk.iter().map(|(_, b)| b).sum();
    (
        per_chunk.into_iter().flat_map(|(rows, _)| rows).collect(),
        scratch_bytes,
    )
}

/// Resolves a thread-count knob into a concrete worker count (`≥ 1`):
/// `0` = one per available CPU, capped at 16; any other value is taken
/// verbatim.
///
/// When `available_parallelism` itself errors (it can on exotic platforms,
/// restricted sandboxes, or when cgroup limits are unreadable) the `0` knob
/// falls back to **4 workers** — a deliberate middle ground: parallel
/// enough to matter on typical hardware, small enough not to oversubscribe
/// a container that hid its CPU count. Callers resolve the knob **once** at
/// the public entry point and pass the resolved count down; internal
/// helpers (e.g. `parallel_rows`) never re-apply this function, so the
/// fallback decision is made in exactly one place.
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        crpq_util::sync::thread::available_parallelism().map_or(4, |n| n.get().min(16))
    } else {
        threads
    }
}

/// [`rpq_reach_all`] from every node of the graph: the atom's complete
/// standard-semantics relation.
pub fn rpq_relation<G: GraphView>(g: &G, nfa: &Nfa, scratch: &mut ReachScratch) -> Relation {
    let sources = (0..g.num_nodes()).map(|v| NodeId(v as u32));
    rpq_reach_all(g, nfa, sources, scratch)
}

/// [`rpq_relation`] with the per-source sweeps partitioned across scoped
/// threads ([`rpq_reach_all_parallel`]).
pub fn rpq_relation_parallel<G: GraphView>(g: &G, nfa: &Nfa, threads: usize) -> Relation {
    let sources: Vec<NodeId> = (0..g.num_nodes()).map(|v| NodeId(v as u32)).collect();
    rpq_reach_all_parallel(g, nfa, &sources, threads)
}

/// Per-block budget for the blocked closure's reach matrix: 2³⁰ bits
/// (128 MiB). This used to be a *hard cap* past which the closure refused
/// to run; it is now only the working-set ceiling of one column block
/// ([`rpq_relation_closure_blocked`]).
pub const CLOSURE_BLOCK_BUDGET_BITS: usize = 1 << 30;

/// Whether the closure materialiser's worst-case reach matrix — one
/// `|V|`-bit row per product-graph SCC, `O(|V|²·|Q|)` bits — fits in a
/// **single** column block of the default budget
/// ([`CLOSURE_BLOCK_BUDGET_BITS`]). Kept for observability and tests:
/// [`rpq_relation_closure`] no longer gates on it — past this point it
/// processes the SCC condensation in column blocks instead of being
/// unusable, so dense products degrade gracefully rather than falling
/// back to quadratic per-source sweeps.
pub fn closure_fits<G: GraphView>(g: &G, nfa: &Nfa) -> bool {
    let n = g.num_nodes() as u128;
    let pn = n * nfa.num_states() as u128;
    pn > 0 && pn * n <= CLOSURE_BLOCK_BUDGET_BITS as u128
}

/// **Cost-adaptive** full-relation materialiser: starts with per-source
/// sweeps, observes their cost on a sample of sources, and switches to the
/// condensation bitset closure when the product graph is dense enough that
/// per-source exploration would be quadratically wasteful.
///
/// Per-source total cost scales with `Σ_v (edges scanned from v's product
/// cone)` — on sparse relations that is near the output size and beats
/// everything, but on dense ones (e.g. `a*` over one big SCC) every source
/// re-scans the whole product, `O(|V|·|E_Π|)`. The closure pays
/// `O(|E_Π|)` traversal + `O(|E_Π|·|V|/64)` word-ORs once, regardless.
/// The sample's observed edge scans project the per-source total; when the
/// projection exceeds a small multiple of the closure's traversal bound,
/// the sampled rows are discarded and the (column-blocked, so
/// memory-bounded at any scale) closure runs instead. `threads > 1`
/// additionally partitions the remaining per-source sweeps across scoped
/// threads.
pub fn rpq_relation_auto<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    scratch: &mut ReachScratch,
    threads: usize,
) -> Relation {
    rpq_relation_auto_with_stats(g, nfa, scratch, threads).0
}

/// [`rpq_relation_auto`] that additionally reports [`MaterialiseStats`]
/// (peak sweep-scratch bytes across workers, backward-assembly ops) — the
/// instrumented entry point of the relation catalog.
pub fn rpq_relation_auto_with_stats<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    scratch: &mut ReachScratch,
    threads: usize,
) -> (Relation, MaterialiseStats) {
    let mut stats = MaterialiseStats::default();
    let n = g.num_nodes();
    const SAMPLE: usize = 64;
    let sample = SAMPLE.min(n);
    // Resolve the thread knob once up front (see `effective_threads`);
    // `parallel_rows` below receives the resolved count.
    let threads = effective_threads(threads);
    let mut rel = Relation::empty(n);
    let mut buf: Vec<u32> = Vec::new();
    // Spread the sample evenly across the whole id range — graphs often
    // correlate structure with id order (generators emit hubs first,
    // loaders cluster by source), and a prefix sample would project that
    // bias onto the whole graph. `i·n/sample` covers the full range for
    // every n (a fixed stride would degenerate to a prefix for n just
    // above the sample size). The division is guarded and the indices
    // deduplicated, so a tiny or empty graph can neither divide by zero
    // when projecting the cost nor probe (and double-install) the same
    // source twice; the projection divides by the number of sources
    // actually probed, not the requested sample size.
    let mut sampled: Vec<usize> = (0..sample).map(|i| i * n / sample.max(1)).collect();
    sampled.dedup();
    let mut sampled_scans = 0usize;
    for &v in &sampled {
        sampled_scans += rpq_reach_collect(g, nfa, NodeId(v as u32), scratch, &mut buf);
        rel.set_forward_row_ids(NodeId(v as u32), &buf);
    }
    if !sampled.is_empty() && sampled.len() < n {
        let projected = sampled_scans.saturating_mul(n) / sampled.len();
        let closure_bound = (n + g.num_edges()) * nfa.num_states();
        if projected > 4 * closure_bound {
            // The blocked closure degrades gracefully on any product size
            // (column blocks bound its matrix), so no memory gate here.
            let rel = rpq_relation_closure(g, nfa);
            stats.scratch_bytes = scratch.heap_bytes();
            stats.assembly_ops = rel.assembly_ops();
            return (rel, stats);
        }
    }
    // Remaining sources: everything not in the (sorted) sample.
    let mut next_sampled = sampled.iter().copied().peekable();
    let rest: Vec<NodeId> = (0..n)
        .filter(|&v| {
            if next_sampled.peek() == Some(&v) {
                next_sampled.next();
                false
            } else {
                true
            }
        })
        .map(|v| NodeId(v as u32))
        .collect();
    if threads > 1 && rest.len() > SAMPLE {
        let (chunk_rows, worker_scratch_bytes) = parallel_rows(g, nfa, &rest, threads);
        stats.scratch_bytes += worker_scratch_bytes;
        for (src, ids) in chunk_rows {
            rel.set_forward_row_ids(src, &ids);
        }
    } else {
        for src in rest {
            rpq_reach_collect(g, nfa, src, scratch, &mut buf);
            rel.set_forward_row_ids(src, &buf);
        }
    }
    rel.finish_reverse();
    stats.scratch_bytes += scratch.heap_bytes();
    stats.assembly_ops = rel.assembly_ops();
    (rel, stats)
}

/// Materialises the full RPQ relation by **bitset closure over the
/// product-graph condensation** instead of one BFS per source, with the
/// reach matrix capped per column block ([`CLOSURE_BLOCK_BUDGET_BITS`]).
/// See [`rpq_relation_closure_blocked`] for the mechanics.
pub fn rpq_relation_closure<G: GraphView>(g: &G, nfa: &Nfa) -> Relation {
    rpq_relation_closure_blocked(g, nfa, CLOSURE_BLOCK_BUDGET_BITS)
}

/// The **column-blocked** closure materialiser.
///
/// The product graph `G × A` has a node `(v, q)` per graph node and
/// automaton state and an edge `(v, q) → (w, q′)` per graph edge
/// `v -a-> w` with `q -a-> q′`. `row(v)` is exactly the set of graph nodes
/// `w` such that some `(v, q₀)` with `q₀` initial reaches a `(w, q_f)`
/// with `q_f` final.
///
/// **Phase 1** runs Tarjan's algorithm once over the product graph, which
/// emits SCCs in reverse topological order. Instead of accumulating reach
/// rows on the spot, each SCC either *shares* the row of its single
/// distinct successor (a pass-through: no final-state members of its own —
/// on sparse products most SCCs are such), or *claims* a row and records a
/// **recipe**: the distinct successor rows to OR together plus the graph
/// nodes of its final-state members. Successor rows are always claimed
/// before the rows referencing them, so ascending row order is a valid
/// evaluation schedule.
///
/// **Phase 2** replays the recipes over **column blocks**: the `|V|`
/// target-node columns are split into blocks sized so the live reach
/// matrix (`rows × block` bits) stays under `block_budget_bits`, and each
/// block's row slices are ORed up in one pass — `O(|E_c| · |V| / 64)` word
/// operations across all blocks, where `|E_c|` is the condensation edge
/// count. When everything fits one block this is exactly the old
/// un-blocked materialiser (rows install straight from the matrix);
/// otherwise per-source accumulators assemble rows across blocks,
/// upgrading from sorted ids to dense bits at the usual `k·32 ≥ n` parity
/// point, so accumulation memory tracks the final relation's instead of
/// the worst-case `SCCs × |V|` bits. Dense products therefore degrade
/// gracefully instead of hitting a hard cap and falling back to
/// `O(|V| · |E_Π|)` per-source sweeps.
pub fn rpq_relation_closure_blocked<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    block_budget_bits: usize,
) -> Relation {
    let n = g.num_nodes();
    let ns = nfa.num_states();
    let pn = n * ns;
    let mut rel = Relation::empty(n);
    if pn == 0 {
        return rel;
    }
    assert!(
        pn <= u32::MAX as usize,
        "product graph exceeds u32 node ids — shard the graph"
    );

    // Product-graph CSR, laid out as product node `v·ns + q`.
    let mut off = vec![0usize; pn + 1];
    for v in 0..n {
        for q in 0..ns {
            let mut deg = 0;
            for &(sym, _) in nfa.transitions_from(q as StateId) {
                deg += g.out_degree(NodeId(v as u32), sym);
            }
            off[v * ns + q + 1] = deg;
        }
    }
    for i in 0..pn {
        off[i + 1] += off[i];
    }
    let mut adj = vec![0u32; off[pn]];
    let mut cursor = off.clone();
    for v in 0..n {
        for q in 0..ns {
            let p = v * ns + q;
            for &(sym, q2) in nfa.transitions_from(q as StateId) {
                for w in g.successors(NodeId(v as u32), sym) {
                    adj[cursor[p]] = (w.index() * ns) as u32 + q2;
                    cursor[p] += 1;
                }
            }
        }
    }

    // Phase 1 — iterative Tarjan. `scc_row[id]` is the SCC's row id —
    // shared with its single successor when the SCC contributes nothing of
    // its own. Claimed rows record their recipe in flat CSR form
    // (`row_succs` / `row_bases`). A product node is *on the Tarjan stack*
    // iff it has an index but no SCC yet, so no separate on-stack set is
    // needed.
    const UNSET: u32 = u32::MAX;
    let mut zero_row: Option<u32> = None;
    let mut scc_row: Vec<u32> = Vec::new();
    let mut row_succ_off: Vec<u32> = vec![0];
    let mut row_succs: Vec<u32> = Vec::new();
    let mut row_base_off: Vec<u32> = vec![0];
    let mut row_bases: Vec<u32> = Vec::new();
    let mut index = vec![UNSET; pn];
    let mut lowlink = vec![0u32; pn];
    let mut scc_id = vec![UNSET; pn];
    let mut stack: Vec<u32> = Vec::new();
    let mut call: Vec<(u32, usize)> = Vec::new();
    let mut next_index = 0u32;
    let mut members: Vec<u32> = Vec::new();
    let mut succ_rows: Vec<u32> = Vec::new();

    for start in 0..pn as u32 {
        if index[start as usize] != UNSET {
            continue;
        }
        index[start as usize] = next_index;
        lowlink[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        call.push((start, off[start as usize]));
        'dfs: while let Some(&mut (v, ref mut ei_slot)) = call.last_mut() {
            let v = v as usize;
            // Drain v's edges with locally cached cursor and lowlink.
            let mut ei = *ei_slot;
            let end = off[v + 1];
            let mut low = lowlink[v];
            while ei < end {
                let w = adj[ei] as usize;
                ei += 1;
                if index[w] == UNSET {
                    // Recurse into w.
                    *ei_slot = ei;
                    lowlink[v] = low;
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    call.push((w as u32, off[w]));
                    continue 'dfs;
                }
                if scc_id[w] == UNSET && index[w] < low {
                    low = index[w]; // w is on the stack: lowlink update
                }
            }
            lowlink[v] = low;
            call.pop();
            if let Some(&mut (p, _)) = call.last_mut() {
                let p = p as usize;
                lowlink[p] = lowlink[p].min(low);
            }
            if low != index[v] {
                continue;
            }
            // `v` roots an SCC: pop it, gather its distinct successor rows
            // and base points, then either share the single successor row
            // or claim a fresh one with the merge recipe.
            let id = scc_row.len() as u32;
            members.clear();
            loop {
                let w = stack.pop().unwrap(); // invariant: the loop guard keeps the stack non-empty
                scc_id[w as usize] = id;
                members.push(w);
                if w as usize == v {
                    break;
                }
            }
            succ_rows.clear();
            let mut has_base = false;
            for &m in &members {
                let m = m as usize;
                has_base |= nfa.is_final((m % ns) as StateId);
                for e in off[m]..off[m + 1] {
                    let tid = scc_id[adj[e] as usize];
                    debug_assert_ne!(tid, UNSET, "successor SCC must be popped first");
                    if tid != id {
                        let row = scc_row[tid as usize];
                        if !succ_rows.contains(&row) {
                            succ_rows.push(row);
                        }
                    }
                }
            }
            let row = if !has_base && succ_rows.len() == 1 {
                succ_rows[0]
            } else if !has_base && succ_rows.is_empty() {
                match zero_row {
                    Some(r) => r,
                    None => {
                        // Claim one shared empty-recipe row for "reaches
                        // nothing".
                        let r = (row_succ_off.len() - 1) as u32;
                        row_succ_off.push(row_succs.len() as u32);
                        row_base_off.push(row_bases.len() as u32);
                        zero_row = Some(r);
                        r
                    }
                }
            } else {
                let r = (row_succ_off.len() - 1) as u32;
                row_succs.extend_from_slice(&succ_rows);
                row_succ_off.push(row_succs.len() as u32);
                for &m in &members {
                    let m = m as usize;
                    if nfa.is_final((m % ns) as StateId) {
                        row_bases.push((m / ns) as u32);
                    }
                }
                row_base_off.push(row_bases.len() as u32);
                r
            };
            scc_row.push(row);
        }
    }

    // Phase 2 — replay the recipes per column block.
    let rows = row_succ_off.len() - 1;
    let words_total = n.div_ceil(64);
    let budget_words = (block_budget_bits / 64).max(1);
    let block_words = (budget_words / rows.max(1)).clamp(1, words_total.max(1));
    let single_block = block_words >= words_total;
    let initials: Vec<usize> = nfa.initials().iter().collect();

    /// Per-source row accumulator for the multi-block path.
    enum Accum {
        Ids(Vec<u32>),
        Bits(BitSet),
    }
    let mut acc: Vec<Accum> = if single_block {
        Vec::new()
    } else {
        (0..n).map(|_| Accum::Ids(Vec::new())).collect()
    };
    let mut matrix = vec![0u64; rows * block_words];
    // Sized whenever the single-initial fast path does not apply — that
    // includes zero initial states (empty language), where the all-zero
    // buffer is exactly the right row.
    let mut union_buf = vec![0u64; if initials.len() == 1 { 0 } else { block_words }];
    let mut idbuf: Vec<u32> = Vec::new();
    let mut wlo = 0usize;
    while wlo < words_total {
        let bw = block_words.min(words_total - wlo);
        let (col_lo, col_hi) = (wlo * 64, ((wlo + bw) * 64).min(n));
        matrix[..rows * bw].iter_mut().for_each(|w| *w = 0);
        for r in 0..rows {
            let (head, tail) = matrix.split_at_mut(r * bw);
            let dst = &mut tail[..bw];
            for &s in &row_succs[row_succ_off[r] as usize..row_succ_off[r + 1] as usize] {
                let src = &head[s as usize * bw..(s as usize + 1) * bw];
                for (d, &w) in dst.iter_mut().zip(src) {
                    *d |= w;
                }
            }
            for &b in &row_bases[row_base_off[r] as usize..row_base_off[r + 1] as usize] {
                let b = b as usize;
                if (col_lo..col_hi).contains(&b) {
                    let bit = b - col_lo;
                    dst[bit / 64] |= 1u64 << (bit % 64);
                }
            }
        }
        for v in 0..n {
            let words: &[u64] = if let [q0] = initials[..] {
                let r = scc_row[scc_id[v * ns + q0] as usize] as usize;
                &matrix[r * bw..(r + 1) * bw]
            } else {
                union_buf[..bw].iter_mut().for_each(|w| *w = 0);
                for &q0 in &initials {
                    let r = scc_row[scc_id[v * ns + q0] as usize] as usize;
                    for (d, &w) in union_buf[..bw]
                        .iter_mut()
                        .zip(&matrix[r * bw..(r + 1) * bw])
                    {
                        *d |= w;
                    }
                }
                &union_buf[..bw]
            };
            if single_block {
                rel.set_forward_row_words(NodeId(v as u32), words, &mut idbuf);
                continue;
            }
            let add: usize = words.iter().map(|w| w.count_ones() as usize).sum();
            if add == 0 {
                continue;
            }
            let a = &mut acc[v];
            if let Accum::Ids(ids) = a {
                if dense_row(ids.len() + add, n) {
                    let mut bits = BitSet::new(n);
                    for &id in ids.iter() {
                        bits.insert(id as usize);
                    }
                    *a = Accum::Bits(bits);
                }
            }
            match a {
                Accum::Ids(ids) => {
                    for (wi, &w) in words.iter().enumerate() {
                        let mut w = w;
                        while w != 0 {
                            ids.push(((wlo + wi) * 64) as u32 + w.trailing_zeros());
                            w &= w - 1;
                        }
                    }
                }
                Accum::Bits(bits) => bits.or_words_at(wlo, words),
            }
        }
        wlo += bw;
    }
    if !single_block {
        for (v, a) in acc.into_iter().enumerate() {
            match a {
                Accum::Ids(ids) => rel.set_forward_row_ids(NodeId(v as u32), &ids),
                Accum::Bits(bits) => rel.set_forward_row_bits(NodeId(v as u32), bits),
            }
        }
    }
    rel.finish_reverse();
    rel
}

/// Faithful reproduction of the **pre-planner (PR 1) materialisation**:
/// one BFS per source writing unconditionally dense `|V|`-bit rows
/// (allocated and zeroed up front, both directions), then an `O(|V|²/64)`
/// transpose. Kept solely as the measurement baseline for `BENCH_eval`'s
/// catalog-vs-per-variant comparison — production callers use
/// [`rpq_relation_closure`] / [`rpq_relation`] / [`rpq_relation_parallel`].
pub fn rpq_relation_pr1_dense<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    scratch: &mut ReachScratch,
) -> Relation {
    let n = g.num_nodes();
    let mut fwd = vec![BitSet::new(n); n];
    let mut rev = vec![BitSet::new(n); n];
    let mut len = 0;
    let mut sources = BitSet::new(n);
    let mut targets = BitSet::new(n);
    for src in (0..n).map(|v| NodeId(v as u32)) {
        let row = &mut fwd[src.index()];
        rpq_reach_with(g, nfa, src, scratch, row);
        len += row.len();
    }
    for (u, row) in fwd.iter().enumerate() {
        for v in row.iter() {
            rev[v].insert(u);
            targets.insert(v);
        }
        if !row.is_empty() {
            sources.insert(u);
        }
    }
    let into_store = |rows: Vec<BitSet>| {
        let mut store = RowStore::empty(n);
        for (i, bits) in rows.into_iter().enumerate() {
            store.push_dense(i, bits);
        }
        store.seal();
        store
    };
    let as_node_set =
        |bits: BitSet| NodeSet::from_sorted_ids(bits.iter().map(|v| v as u32).collect(), n);
    Relation {
        fwd: into_store(fwd),
        rev: into_store(rev),
        len,
        sources: as_node_set(sources),
        targets: as_node_set(targets),
        target_touch: TouchSet::new(),
        touched_targets: Vec::new(),
        assembly_ops: 0,
    }
}

/// Whether some (arbitrary) path from `src` to `dst` has its label in
/// `L(nfa)` — standard-semantics RPQ matching.
pub fn rpq_exists<G: GraphView>(g: &G, nfa: &Nfa, src: NodeId, dst: NodeId) -> bool {
    rpq_reach(g, nfa, src).contains(dst.index())
}

/// A **shortest** (arbitrary, possibly node-repeating) path from `src` to
/// `dst` whose label is in `L(nfa)`, as its node sequence, or `None` when no
/// such path exists. The empty path `[src]` is returned when `src == dst`
/// and `ε ∈ L(nfa)`.
///
/// BFS over the product of the graph with the NFA, with parent pointers —
/// the constructive counterpart of [`rpq_exists`] used for standard-semantics
/// witness extraction.
pub fn shortest_path<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    src: NodeId,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    if src == dst && nfa.accepts_epsilon() {
        return Some(vec![src]);
    }
    let ns = nfa.num_states();
    let flat = |v: NodeId, q: u32| v.index() * ns + q as usize;
    let mut parent: Vec<Option<(NodeId, u32)>> = vec![None; g.num_nodes() * ns];
    let mut visited = BitSet::new(g.num_nodes() * ns);
    let mut queue: VecDeque<(NodeId, u32)> = VecDeque::new();
    for q in nfa.initials().iter() {
        if visited.insert(flat(src, q as u32)) {
            queue.push_back((src, q as u32));
        }
    }
    while let Some((v, q)) = queue.pop_front() {
        for &(sym, q2) in nfa.transitions_from(q) {
            for to in g.successors(v, sym) {
                if visited.insert(flat(to, q2)) {
                    parent[flat(to, q2)] = Some((v, q));
                    if to == dst && nfa.is_final(q2) {
                        // Reconstruct the node sequence.
                        let mut path = vec![to];
                        let mut cur = (to, q2);
                        while let Some(prev) = parent[flat(cur.0, cur.1)] {
                            path.push(prev.0);
                            cur = prev;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back((to, q2));
                }
            }
        }
    }
    None
}

/// All pairs `(u, v)` related by the RPQ under standard semantics.
pub fn rpq_pairs<G: GraphView>(g: &G, nfa: &Nfa) -> Vec<(NodeId, NodeId)> {
    rpq_relation(g, nfa, &mut ReachScratch::new())
        .iter()
        .collect()
}

/// Whether a **simple path** from `src` to `dst` (all nodes pairwise
/// distinct) has its label in `L(nfa)`, with no internal node in `blocked`.
///
/// When `src == dst` the only simple path is the empty one, so the answer is
/// `ε ∈ L(nfa)`.
pub fn simple_path_exists<G: GraphView>(
    g: &G,
    nfa: &Nfa,
    src: NodeId,
    dst: NodeId,
    blocked: &BitSet,
) -> bool {
    let mut found = false;
    for_each_simple_path(g, nfa, src, dst, blocked, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Enumerates simple paths from `src` to `dst` with label in `L(nfa)` whose
/// internal nodes avoid `blocked`, invoking `visit` with the node sequence
/// (including both endpoints; the empty path yields `[src]`).
///
/// The same node sequence may be visited more than once if parallel edges
/// with different labels both complete an accepting run. Returns `true` if
/// enumeration ran to completion (no early break).
pub fn for_each_simple_path<G, F>(
    g: &G,
    nfa: &Nfa,
    src: NodeId,
    dst: NodeId,
    blocked: &BitSet,
    mut visit: F,
) -> bool
where
    G: GraphView,
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    if src == dst {
        // The empty path is the only simple path from a node to itself.
        if nfa.accepts_epsilon() {
            return visit(&[src]).is_continue();
        }
        return true;
    }
    let useful = nfa.useful_states();
    let mut initial = nfa.initials().clone();
    initial.intersect_with(&useful);
    if initial.is_empty() {
        return true;
    }
    let mut visited = g.node_set();
    visited.insert(src.index());
    let mut path = vec![src];
    dfs_simple(
        g,
        nfa,
        dst,
        blocked,
        &useful,
        &mut visited,
        &mut path,
        initial,
        &mut visit,
    )
    .is_continue()
}

fn dfs_simple<G, F>(
    g: &G,
    nfa: &Nfa,
    dst: NodeId,
    blocked: &BitSet,
    useful: &BitSet,
    visited: &mut BitSet,
    path: &mut Vec<NodeId>,
    states: BitSet,
    visit: &mut F,
) -> ControlFlow<()>
where
    G: GraphView,
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let here = *path.last().unwrap(); // invariant: path starts seeded with the source
    for (sym, to) in g.out_edges_iter(here) {
        if to == dst {
            let image = nfa.delta_set(&states, sym);
            if image.intersects(nfa.finals()) {
                path.push(to);
                let flow = visit(path);
                path.pop();
                flow?;
            }
            continue;
        }
        if visited.contains(to.index()) || blocked.contains(to.index()) {
            continue;
        }
        let mut image = nfa.delta_set(&states, sym);
        image.intersect_with(useful);
        if image.is_empty() {
            continue;
        }
        visited.insert(to.index());
        path.push(to);
        let flow = dfs_simple(g, nfa, dst, blocked, useful, visited, path, image, visit);
        path.pop();
        visited.remove(to.index());
        flow?;
    }
    ControlFlow::Continue(())
}

/// Whether a **simple cycle** at `at` (internal nodes pairwise distinct and
/// different from `at`) has its label in `L(nfa)`, with no internal node in
/// `blocked`. The empty cycle counts iff `ε ∈ L(nfa)`.
pub fn simple_cycle_exists<G: GraphView>(g: &G, nfa: &Nfa, at: NodeId, blocked: &BitSet) -> bool {
    let mut found = false;
    for_each_simple_cycle(g, nfa, at, blocked, |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Enumerates simple cycles at `at` with label in `L(nfa)`, visiting the node
/// sequence `[at, …, at]` (the empty cycle yields `[at]`).
/// Returns `true` if enumeration completed.
pub fn for_each_simple_cycle<G, F>(
    g: &G,
    nfa: &Nfa,
    at: NodeId,
    blocked: &BitSet,
    mut visit: F,
) -> bool
where
    G: GraphView,
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    if nfa.accepts_epsilon() && visit(&[at]).is_break() {
        return false;
    }
    let useful = nfa.useful_states();
    let mut initial = nfa.initials().clone();
    initial.intersect_with(&useful);
    if initial.is_empty() {
        return true;
    }
    let mut visited = g.node_set();
    visited.insert(at.index());
    let mut path = vec![at];
    dfs_cycle(
        g,
        nfa,
        at,
        blocked,
        &useful,
        &mut visited,
        &mut path,
        initial,
        &mut visit,
    )
    .is_continue()
}

fn dfs_cycle<G, F>(
    g: &G,
    nfa: &Nfa,
    at: NodeId,
    blocked: &BitSet,
    useful: &BitSet,
    visited: &mut BitSet,
    path: &mut Vec<NodeId>,
    states: BitSet,
    visit: &mut F,
) -> ControlFlow<()>
where
    G: GraphView,
    F: FnMut(&[NodeId]) -> ControlFlow<()>,
{
    let here = *path.last().unwrap(); // invariant: path starts seeded with the source
    for (sym, to) in g.out_edges_iter(here) {
        if to == at {
            let image = nfa.delta_set(&states, sym);
            if image.intersects(nfa.finals()) {
                path.push(to);
                let flow = visit(path);
                path.pop();
                flow?;
            }
            continue;
        }
        if visited.contains(to.index()) || blocked.contains(to.index()) {
            continue;
        }
        let mut image = nfa.delta_set(&states, sym);
        image.intersect_with(useful);
        if image.is_empty() {
            continue;
        }
        visited.insert(to.index());
        path.push(to);
        let flow = dfs_cycle(g, nfa, at, blocked, useful, visited, path, image, visit);
        path.pop();
        visited.remove(to.index());
        flow?;
    }
    ControlFlow::Continue(())
}

/// A labelled edge occurrence, the unit of trail (edge-injective) search.
pub type Edge = (NodeId, Symbol, NodeId);

/// Whether a **trail** (no repeated edge) from `src` to `dst` has its label
/// in `L(nfa)`. Edge-injective analogue of [`simple_path_exists`]
/// (paper §7 outlook).
pub fn trail_exists<G: GraphView>(g: &G, nfa: &Nfa, src: NodeId, dst: NodeId) -> bool {
    let mut found = false;
    for_each_trail(g, nfa, src, dst, &FxHashSet::default(), |_| {
        found = true;
        ControlFlow::Break(())
    });
    found
}

/// Enumerates trails from `src` to `dst` with label in `L(nfa)`, avoiding
/// the edges in `blocked`. `visit` receives the edge sequence (the empty
/// trail — when `src == dst` and `ε ∈ L` — yields `[]`). A trail from a
/// node to itself with `src == dst` is a *closed trail*. Returns `true`
/// if enumeration ran to completion.
///
/// The same edge sequence is visited at most once; unlike simple paths,
/// trails may revisit nodes, so the search space is bounded by `|E|!` in
/// the worst case — callers should bound `g` accordingly.
pub fn for_each_trail<G, F>(
    g: &G,
    nfa: &Nfa,
    src: NodeId,
    dst: NodeId,
    blocked: &FxHashSet<Edge>,
    mut visit: F,
) -> bool
where
    G: GraphView,
    F: FnMut(&[Edge]) -> ControlFlow<()>,
{
    if src == dst && nfa.accepts_epsilon() && visit(&[]).is_break() {
        return false;
    }
    let useful = nfa.useful_states();
    let mut initial = nfa.initials().clone();
    initial.intersect_with(&useful);
    if initial.is_empty() {
        return true;
    }
    let mut used: FxHashSet<Edge> = FxHashSet::default();
    let mut path: Vec<Edge> = Vec::new();
    dfs_trail(
        g, nfa, src, dst, &useful, blocked, &mut used, &mut path, initial, &mut visit,
    )
    .is_continue()
}

fn dfs_trail<G, F>(
    g: &G,
    nfa: &Nfa,
    here: NodeId,
    dst: NodeId,
    useful: &BitSet,
    blocked: &FxHashSet<Edge>,
    used: &mut FxHashSet<Edge>,
    path: &mut Vec<Edge>,
    states: BitSet,
    visit: &mut F,
) -> ControlFlow<()>
where
    G: GraphView,
    F: FnMut(&[Edge]) -> ControlFlow<()>,
{
    for (sym, to) in g.out_edges_iter(here) {
        let edge = (here, sym, to);
        if used.contains(&edge) || blocked.contains(&edge) {
            continue;
        }
        let mut image = nfa.delta_set(&states, sym);
        image.intersect_with(useful);
        if image.is_empty() {
            continue;
        }
        if to == dst && image.intersects(nfa.finals()) {
            path.push(edge);
            let flow = visit(path);
            path.pop();
            flow?;
        }
        used.insert(edge);
        path.push(edge);
        let flow = dfs_trail(g, nfa, to, dst, useful, blocked, used, path, image, visit);
        path.pop();
        used.remove(&edge);
        flow?;
    }
    ControlFlow::Continue(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{GraphBuilder, GraphDb};
    use crpq_automata::parse_regex;

    /// Builds the graph and an NFA over its alphabet.
    fn setup(edges: &[(&str, &str, &str)], expr: &str) -> (GraphDb, Nfa) {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        let mut g = b.finish();
        let regex = parse_regex(expr, g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&regex);
        (g, nfa)
    }

    fn n(g: &GraphDb, name: &str) -> NodeId {
        g.node_by_name(name).unwrap()
    }

    #[test]
    fn standard_rpq_on_chain() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "w")], "a a*");
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "w")));
        assert!(!rpq_exists(&g, &nfa, n(&g, "w"), n(&g, "u")));
        assert!(
            !rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "u")),
            "a+ needs 1+ edges"
        );
    }

    #[test]
    fn standard_rpq_epsilon() {
        let (g, nfa) = setup(&[("u", "a", "v")], "a*");
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "u")), "ε path");
        let pairs = rpq_pairs(&g, &nfa);
        assert_eq!(pairs.len(), 3); // (u,u), (u,v), (v,v)
    }

    #[test]
    fn standard_rpq_uses_non_simple_paths() {
        // u -a-> m -b-> u (cycle), m -b-> v requires repeating m for abab…
        // Language (a b)(a b): u→m→u→?: needs path of label abab from u to v:
        // u a m b u a m b v? v edge: u -a-> m, m -b-> u, m -b-> v won't need repeat…
        // Make it explicit: only walk u a m b u a m b v exists for (ab)^2 if
        // m -b-> v and we must go around once.
        let (g, nfa) = setup(
            &[("u", "a", "m"), ("m", "b", "u"), ("m", "b", "v")],
            "(a b)(a b)",
        );
        // abab from u to v: u a m b u a m b v — repeats u and m.
        assert!(rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        // No simple path with that label:
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
    }

    #[test]
    fn simple_path_basic() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "b", "w")], "a b");
        assert!(simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "w"),
            &g.node_set()
        ));
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
    }

    #[test]
    fn simple_path_respects_blocked() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "a", "w"),
                ("u", "a", "x"),
                ("x", "a", "w"),
            ],
            "a a",
        );
        let mut blocked = g.node_set();
        assert!(simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "w"),
            &blocked
        ));
        blocked.insert(n(&g, "v").index());
        assert!(
            simple_path_exists(&g, &nfa, n(&g, "u"), n(&g, "w"), &blocked),
            "x route"
        );
        blocked.insert(n(&g, "x").index());
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "w"),
            &blocked
        ));
    }

    #[test]
    fn simple_path_same_endpoints_needs_epsilon() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a");
        // Nonempty simple path u→u impossible (u would repeat).
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "u"),
            &g.node_set()
        ));
        let (g2, star) = setup(&[("u", "a", "v")], "a*");
        assert!(simple_path_exists(
            &g2,
            &star,
            n(&g2, "u"),
            n(&g2, "u"),
            &g2.node_set()
        ));
    }

    #[test]
    fn simple_cycle_detection() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a");
        assert!(simple_cycle_exists(&g, &nfa, n(&g, "u"), &g.node_set()));
        // Blocking the only intermediate kills the cycle.
        let mut blocked = g.node_set();
        blocked.insert(n(&g, "v").index());
        assert!(!simple_cycle_exists(&g, &nfa, n(&g, "u"), &blocked));
    }

    #[test]
    fn simple_cycle_self_loop_and_epsilon() {
        let (g, nfa) = setup(&[("u", "a", "u")], "a");
        assert!(simple_cycle_exists(&g, &nfa, n(&g, "u"), &g.node_set()));
        let (g2, star) = setup(&[("u", "a", "v")], "b*");
        // ε-cycle counts:
        assert!(simple_cycle_exists(&g2, &star, n(&g2, "u"), &g2.node_set()));
        let (g3, plus) = setup(&[("u", "a", "v")], "b b*");
        assert!(!simple_cycle_exists(
            &g3,
            &plus,
            n(&g3, "u"),
            &g3.node_set()
        ));
    }

    #[test]
    fn cycle_does_not_reuse_internal_node() {
        // u -a-> v -a-> u and v -a-> w -a-> v: cycle of length 4 through v twice
        // is not simple; aaaa should not be found, but aa should.
        let (g, four) = setup(
            &[
                ("u", "a", "v"),
                ("v", "a", "u"),
                ("v", "a", "w"),
                ("w", "a", "v"),
            ],
            "a a a a",
        );
        assert!(!simple_cycle_exists(&g, &four, n(&g, "u"), &g.node_set()));
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        let two = Nfa::from_regex(&parse_regex("a a", &mut it).unwrap());
        assert!(simple_cycle_exists(&g, &two, n(&g, "u"), &g.node_set()));
    }

    #[test]
    fn path_enumeration_collects_sequences() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "a", "w"),
                ("u", "a", "x"),
                ("x", "a", "w"),
            ],
            "a a",
        );
        let mut paths = Vec::new();
        for_each_simple_path(&g, &nfa, n(&g, "u"), n(&g, "w"), &g.node_set(), |p| {
            paths.push(p.to_vec());
            ControlFlow::Continue(())
        });
        assert_eq!(paths.len(), 2);
        for p in &paths {
            assert_eq!(p.len(), 3);
            assert_eq!(p[0], n(&g, "u"));
            assert_eq!(p[2], n(&g, "w"));
        }
    }

    #[test]
    fn trails_allow_repeated_nodes_not_edges() {
        // Figure-of-eight at m: u a m, m b m', m' c m, m d v — trail abcd
        // revisits m but no edge.
        let (g, nfa) = setup(
            &[
                ("u", "a", "m"),
                ("m", "b", "m2"),
                ("m2", "c", "m"),
                ("m", "d", "v"),
            ],
            "a b c d",
        );
        assert!(trail_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
        // aa over a single a-edge would repeat the edge:
        let (g2, aa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a a");
        assert!(!trail_exists(&g2, &aa, n(&g2, "u"), n(&g2, "v")));
    }

    #[test]
    fn empty_language_matches_nothing() {
        let (g, nfa) = setup(&[("u", "a", "v")], "∅");
        assert!(!rpq_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
        assert!(!simple_path_exists(
            &g,
            &nfa,
            n(&g, "u"),
            n(&g, "v"),
            &g.node_set()
        ));
        assert!(!trail_exists(&g, &nfa, n(&g, "u"), n(&g, "v")));
    }

    #[test]
    fn shortest_path_on_chain_is_shortest() {
        // Two routes u→w: direct (a) and via v (a a); `a a* ` shortest is 1.
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "w"), ("u", "a", "w")], "a a*");
        let p = shortest_path(&g, &nfa, n(&g, "u"), n(&g, "w")).unwrap();
        assert_eq!(p, vec![n(&g, "u"), n(&g, "w")]);
    }

    #[test]
    fn shortest_path_respects_language() {
        // Language forces exactly two a's, so the direct edge is not usable.
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "w"), ("u", "a", "w")], "a a");
        let p = shortest_path(&g, &nfa, n(&g, "u"), n(&g, "w")).unwrap();
        assert_eq!(p, vec![n(&g, "u"), n(&g, "v"), n(&g, "w")]);
        assert!(shortest_path(&g, &nfa, n(&g, "w"), n(&g, "u")).is_none());
    }

    #[test]
    fn shortest_path_epsilon_and_cycles() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a*");
        // ε: the empty path.
        assert_eq!(
            shortest_path(&g, &nfa, n(&g, "u"), n(&g, "u")).unwrap(),
            vec![n(&g, "u")]
        );
        // Non-ε cycle: a a back to u.
        let (g2, plus) = setup(&[("u", "a", "v"), ("v", "a", "u")], "a a* a");
        let p = shortest_path(&g2, &plus, n(&g2, "u"), n(&g2, "u")).unwrap();
        assert_eq!(p, vec![n(&g2, "u"), n(&g2, "v"), n(&g2, "u")]);
    }

    #[test]
    fn relation_matches_per_source_reach() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "b", "w"),
                ("w", "a", "u"),
                ("v", "a", "v"),
            ],
            "(a+b)(a+b)*",
        );
        let mut scratch = ReachScratch::new();
        let rel = rpq_relation(&g, &nfa, &mut scratch);
        for src in g.nodes() {
            let direct = rpq_reach(&g, &nfa, src);
            for dst in g.nodes() {
                assert_eq!(
                    rel.contains(src, dst),
                    direct.contains(dst.index()),
                    "{src:?}→{dst:?}"
                );
                assert_eq!(
                    rel.contains(src, dst),
                    rel.backward(dst).contains(src.index())
                );
            }
        }
        assert_eq!(rel.len(), rel.iter().count());
    }

    #[test]
    fn scratch_reuse_is_clean_across_automata() {
        // Reusing one scratch across different NFAs / sweeps must not leak
        // visited state between calls.
        let (g, ab) = setup(&[("u", "a", "v"), ("v", "b", "w")], "a b");
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        it.intern("b");
        let just_a = Nfa::from_regex(&crpq_automata::parse_regex("a", &mut it).unwrap());
        let mut scratch = ReachScratch::new();
        let mut out = g.node_set();
        for _ in 0..3 {
            rpq_reach_with(&g, &ab, n(&g, "u"), &mut scratch, &mut out);
            assert_eq!(out.iter().collect::<Vec<_>>(), vec![n(&g, "w").index()]);
            rpq_reach_with(&g, &just_a, n(&g, "u"), &mut scratch, &mut out);
            assert_eq!(out.iter().collect::<Vec<_>>(), vec![n(&g, "v").index()]);
        }
    }

    #[test]
    fn backward_reach_matches_reversed_graph() {
        let (g, nfa) = setup(
            &[
                ("u", "a", "v"),
                ("v", "b", "w"),
                ("w", "a", "u"),
                ("v", "a", "v"),
            ],
            "a (a+b)*",
        );
        let g_rev = g.reversed();
        let nfa_rev = nfa.reverse();
        for dst in g.nodes() {
            assert_eq!(
                rpq_reach_back(&g, &nfa_rev, dst),
                rpq_reach(&g_rev, &nfa_rev, dst),
                "backward reach mismatch at {dst:?}"
            );
        }
    }

    #[test]
    fn relation_source_and_target_sets() {
        let (g, nfa) = setup(&[("u", "a", "v"), ("w", "a", "v")], "a");
        let rel = rpq_relation(&g, &nfa, &mut ReachScratch::new());
        let (u, v, w) = (n(&g, "u"), n(&g, "v"), n(&g, "w"));
        assert_eq!(
            rel.source_set().iter().collect::<Vec<_>>(),
            vec![u.index(), w.index()]
        );
        assert_eq!(rel.target_set().iter().collect::<Vec<_>>(), vec![v.index()]);
        assert_eq!(rel.len(), 2);
        assert!(!rel.is_empty());
    }

    #[test]
    fn adaptive_rows_switch_representation() {
        // 40-node a-path: every forward row of the single-step relation has
        // ≤ 1 entry, far below the n/32 density threshold → sparse.
        let mut g = crate::generators::labelled_path(40, &["a"]);
        let regex = crpq_automata::parse_regex("a", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&regex);
        let rel = rpq_relation(&g, &nfa, &mut ReachScratch::new());
        assert!(rel.forward(NodeId(0)).iter().eq([1usize]));
        assert!(!rel.forward(NodeId(0)).is_dense());
        assert!((rel.dense_row_fraction() - 0.0).abs() < 1e-9);
        // a* on the same path: row of node 0 holds all 40 nodes → dense.
        let star = crpq_automata::parse_regex("a*", g.alphabet_mut()).unwrap();
        let rel = rpq_relation(&g, &Nfa::from_regex(&star), &mut ReachScratch::new());
        assert!(rel.forward(NodeId(0)).is_dense());
        assert_eq!(rel.forward(NodeId(0)).len(), 40);
        assert!(rel.contains(NodeId(0), NodeId(39)));
        assert!(!rel.contains(NodeId(39), NodeId(0)));
    }

    #[test]
    fn parallel_relation_matches_sequential() {
        let mut g = crate::generators::random_graph(37, 120, &["a", "b"], 5);
        let regex = crpq_automata::parse_regex("a (a+b)*", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&regex);
        let seq = rpq_relation(&g, &nfa, &mut ReachScratch::new());
        for threads in [1, 3, 8] {
            let par = rpq_relation_parallel(&g, &nfa, threads);
            assert_eq!(seq, par, "threads = {threads}");
        }
        assert_eq!(
            seq.source_set(),
            rpq_relation_parallel(&g, &nfa, 0).source_set()
        );
    }

    #[test]
    fn closure_relation_matches_per_source() {
        for (seed, expr) in [
            (3u64, "a (a+b)*"),
            (9, "(a b)*"),
            (11, "b* a"),
            (17, "(a+b)(a+b)"),
            (23, "∅"),
            (29, "a*"),
        ] {
            let mut g = crate::generators::random_graph(23, 70, &["a", "b"], seed);
            let regex = crpq_automata::parse_regex(expr, g.alphabet_mut()).unwrap();
            let nfa = Nfa::from_regex(&regex);
            assert!(closure_fits(&g, &nfa));
            let closure = rpq_relation_closure(&g, &nfa);
            let per_source = rpq_relation(&g, &nfa, &mut ReachScratch::new());
            assert_eq!(closure, per_source, "seed {seed} expr {expr}");
            // Equality is semantic, so the all-dense PR-1 layout and the
            // adaptive layouts compare directly.
            let pr1 = rpq_relation_pr1_dense(&g, &nfa, &mut ReachScratch::new());
            assert_eq!(pr1, per_source, "seed {seed} expr {expr}");
            assert_eq!(pr1.source_set(), per_source.source_set());
            let auto = rpq_relation_auto(&g, &nfa, &mut ReachScratch::new(), 1);
            assert_eq!(auto, per_source, "seed {seed} expr {expr}");
        }
    }

    #[test]
    fn reverse_assembly_is_touched_bounded_on_million_node_graph() {
        // The O(E_rel + touched) contract of `finish_reverse`: a relation
        // over a 10⁶-node graph that touches ~10² nodes must assemble its
        // backward index in ~10² operations — no pass may scan 0..|V|.
        let n = 1_000_000;
        let mut b = crate::db::GraphBuilder::anonymous(n);
        let a = b.label("a");
        // A 128-node `a`-chain buried in the big id space (offset so the
        // touched ids are nowhere near a prefix), plus a far-away edge.
        let base = 700_000u32;
        for i in 0..128u32 {
            b.edge_ids(NodeId(base + i), a, NodeId(base + i + 1));
        }
        b.edge_ids(NodeId(12), a, NodeId(999_999));
        let g = b.finish();
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        let nfa = Nfa::from_regex(&crpq_automata::parse_regex("a a*", &mut it).unwrap());

        // Sweep only the touched region (plus untouched sources, which
        // must cost nothing): ~200 sources of 10⁶ nodes.
        let sources: Vec<NodeId> = (0..64)
            .map(NodeId)
            .chain((base..base + 129).map(NodeId))
            .collect();
        let mut scratch = ReachScratch::new();
        let rel = rpq_reach_all(&g, &nfa, sources.iter().copied(), &mut scratch);
        // Chain closure: (129·128)/2 pairs + the stray edge.
        assert_eq!(rel.len(), 129 * 128 / 2 + 1);
        let ops = rel.assembly_ops();
        assert!(
            ops <= 4 * (rel.len() + 2 * 129),
            "assembly ops {ops} not O(E_rel + touched) for E_rel = {}",
            rel.len()
        );
        assert!(
            ops < 100_000,
            "assembly ops {ops} scale with |V|, not touched"
        );
        // The sweeps never visited more than the chain: the scratch must
        // have stayed on its sparse path instead of allocating a
        // |V|·|Q|-stamp dense array per worker.
        assert!(
            scratch.heap_bytes() < 1_000_000,
            "scratch grew O(|V|): {} bytes",
            scratch.heap_bytes()
        );
        // Backward rows are correct and sorted despite the compact remap.
        assert_eq!(
            rel.backward(NodeId(999_999)).iter().collect::<Vec<_>>(),
            vec![12]
        );
        let mid = rel.backward(NodeId(base + 64));
        assert_eq!(mid.len(), 64, "64 chain predecessors reach the midpoint");
        let ids: Vec<usize> = mid.iter().collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "column not sorted");
    }

    #[test]
    fn empty_and_lazy_rows_are_touched_bounded_at_ten_million_nodes() {
        // The PR-6 contract at 10⁷ nodes: `Relation::empty` allocates
        // nothing (no O(|V|) row table), and a relation touching ~10²
        // nodes materialises its row index lazily over the touched-id
        // remap — heap bytes and assembly ops stay O(touched), three
        // orders of magnitude below |V|.
        let n = 10_000_000;
        let empty = Relation::empty(n);
        assert_eq!(empty.len(), 0);
        assert_eq!(
            empty.heap_bytes(),
            0,
            "empty relation over 10⁷ nodes must not allocate row tables"
        );

        let mut b = crate::db::GraphBuilder::anonymous(n);
        let a = b.label("a");
        let base = 9_000_000u32;
        for i in 0..128u32 {
            b.edge_ids(NodeId(base + i), a, NodeId(base + i + 1));
        }
        b.edge_ids(NodeId(12), a, NodeId(n as u32 - 1));
        let g = b.finish();
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        let nfa = Nfa::from_regex(&crpq_automata::parse_regex("a a*", &mut it).unwrap());
        let sources: Vec<NodeId> = (0..64)
            .map(NodeId)
            .chain((base..base + 129).map(NodeId))
            .collect();
        let mut scratch = ReachScratch::new();
        let rel = rpq_reach_all(&g, &nfa, sources.iter().copied(), &mut scratch);
        assert_eq!(rel.len(), 129 * 128 / 2 + 1);
        let ops = rel.assembly_ops();
        assert!(
            ops <= 4 * (rel.len() + 2 * 129),
            "assembly ops {ops} not O(E_rel + touched) for E_rel = {}",
            rel.len()
        );
        assert!(ops < 100_000, "assembly ops {ops} scale with |V|");
        // The whole relation — both directions, row index included —
        // stays within a couple hundred KB: a single O(|V|) `RowKind`
        // table alone would be 10⁷ entries.
        assert!(
            rel.heap_bytes() < 1_000_000,
            "relation heap {} B scales with |V|, not touched",
            rel.heap_bytes()
        );
        assert!(
            scratch.heap_bytes() < 1_000_000,
            "scratch grew O(|V|): {} bytes",
            scratch.heap_bytes()
        );
        // Lazy binary-search row lookup agrees with the data, touched and
        // untouched alike.
        assert_eq!(
            rel.backward(NodeId(n as u32 - 1))
                .iter()
                .collect::<Vec<_>>(),
            vec![12]
        );
        assert_eq!(rel.forward(NodeId(500_000)).len(), 0);
        assert_eq!(rel.forward(NodeId(base)).len(), 128);
    }

    #[test]
    fn many_small_sweeps_never_densify_the_scratch() {
        // 2·10⁴ sweeps over a 10⁶·|Q| product, each touching ~3 states:
        // the *union* of visits is far past the densify threshold but no
        // single sweep is. Stale map entries must be purged, not counted —
        // otherwise a long materialisation run would migrate every worker
        // to a multi-MB stamp array it never needed.
        let n = 1_000_000;
        let mut b = crate::db::GraphBuilder::anonymous(n);
        let a = b.label("a");
        for i in 0..20_000u32 {
            b.edge_ids(NodeId(i * 37), a, NodeId(i * 37 + 1));
        }
        let g = b.finish();
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        let nfa = Nfa::from_regex(&crpq_automata::parse_regex("a a*", &mut it).unwrap());
        let mut scratch = ReachScratch::new();
        let mut out = Vec::new();
        for i in 0..20_000u32 {
            rpq_reach_collect(&g, &nfa, NodeId(i * 37), &mut scratch, &mut out);
            assert_eq!(out, vec![i * 37 + 1], "sweep {i}");
        }
        assert!(
            scratch.heap_bytes() < 256 * 1024,
            "scratch accumulated {} bytes over tiny sweeps",
            scratch.heap_bytes()
        );
    }

    #[test]
    fn adaptive_scratch_matches_dense_across_densities() {
        // The sparse→dense visited migration must be invisible in results:
        // run sweeps whose visit counts straddle the 1/8 threshold and
        // compare against a scratch pre-forced onto the dense path.
        for (seed, expr) in [(3u64, "a (a+b)*"), (9, "(a b)*"), (29, "a*")] {
            let mut g = crate::generators::random_graph(500, 2000, &["a", "b"], seed);
            let regex = crpq_automata::parse_regex(expr, g.alphabet_mut()).unwrap();
            let nfa = Nfa::from_regex(&regex);
            let mut fresh = ReachScratch::new(); // starts sparse
            let mut out = Vec::new();
            let mut expected = Vec::new();
            for src in g.nodes() {
                rpq_reach_collect(&g, &nfa, src, &mut fresh, &mut out);
                // A brand-new scratch per sweep can also migrate, but at a
                // different point in its lifetime; both must agree.
                rpq_reach_collect(&g, &nfa, src, &mut ReachScratch::new(), &mut expected);
                assert_eq!(out, expected, "seed {seed} expr {expr} src {src:?}");
            }
        }
    }

    #[test]
    fn scratch_shrink_to_releases_and_stays_usable() {
        let mut g = crate::generators::labelled_cycle(2048, &["a"]);
        let star = crpq_automata::parse_regex("a*", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&star);
        let mut scratch = ReachScratch::new();
        let mut out = Vec::new();
        rpq_reach_collect(&g, &nfa, NodeId(0), &mut scratch, &mut out);
        assert_eq!(out.len(), 2048);
        let grown = scratch.heap_bytes();
        assert!(grown >= 2048 * 4, "cycle sweep should have gone dense");
        scratch.shrink_to(64);
        assert!(
            scratch.heap_bytes() < grown / 4,
            "shrink_to kept {} of {} bytes",
            scratch.heap_bytes(),
            grown
        );
        // Still correct after shrinking (re-grows or stays sparse).
        rpq_reach_collect(&g, &nfa, NodeId(5), &mut scratch, &mut out);
        assert_eq!(out.len(), 2048);
        let small = crate::generators::labelled_path(10, &["a"]);
        rpq_reach_collect(&small, &nfa, NodeId(0), &mut scratch, &mut out);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn scratch_epoch_wrap_partial_clear_is_safe_across_sizes() {
        // The wrap reset clears only the prefix the next sweep reads; a
        // *larger* sweep afterwards (same post-wrap era) must extend the
        // cleared prefix, not trust stale stamps beyond it.
        let mut small = crate::generators::labelled_cycle(64, &["a"]);
        let star_small = crpq_automata::parse_regex("a*", small.alphabet_mut()).unwrap();
        let nfa_small = Nfa::from_regex(&star_small);
        let mut big = crate::generators::labelled_cycle(1024, &["a"]);
        let star_big = crpq_automata::parse_regex("a*", big.alphabet_mut()).unwrap();
        let nfa_big = Nfa::from_regex(&star_big);
        let mut scratch = ReachScratch::new();
        let mut out = Vec::new();
        // Grow dense stamps to the big size with real (pre-wrap) epochs.
        rpq_reach_collect(&big, &nfa_big, NodeId(0), &mut scratch, &mut out);
        assert_eq!(out.len(), 1024);
        // Wrap: the next `begin` resets to epoch 1 having cleared only the
        // small sweep's prefix.
        scratch.set_epoch_for_test(u32::MAX);
        rpq_reach_collect(&small, &nfa_small, NodeId(0), &mut scratch, &mut out);
        assert_eq!(out.len(), 64, "post-wrap small sweep");
        // The big sweep now reads beyond the cleared prefix — stale
        // stamps from the pre-wrap era must not read as visited.
        rpq_reach_collect(&big, &nfa_big, NodeId(0), &mut scratch, &mut out);
        assert_eq!(
            out.len(),
            1024,
            "post-wrap big sweep truncated by stale stamps"
        );
    }

    #[test]
    fn scratch_epoch_wraparound_has_no_stale_visits() {
        // After 2³² sweeps the epoch counter wraps; `begin` must hard-reset
        // the stamp arrays so stamps from 2³² sweeps ago cannot alias the
        // fresh epoch as "already visited" (which would silently truncate
        // sweeps). Force the wrap with the test-only setter.
        let mut g = crate::generators::random_graph(31, 90, &["a", "b"], 13);
        let regex = crpq_automata::parse_regex("a (a+b)*", g.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&regex);
        let mut scratch = ReachScratch::new();
        let mut out = Vec::new();
        let mut expected = Vec::new();
        for src in g.nodes() {
            // Populate stamps at a normal epoch, then force the counter to
            // the wrap point: the next `begin` wraps to 0 and must reset.
            rpq_reach_collect(&g, &nfa, src, &mut scratch, &mut out);
            rpq_reach_collect(&g, &nfa, src, &mut ReachScratch::new(), &mut expected);
            assert_eq!(out, expected, "pre-wrap sweep from {src:?}");
            scratch.set_epoch_for_test(u32::MAX);
            rpq_reach_collect(&g, &nfa, src, &mut scratch, &mut out);
            assert_eq!(out, expected, "post-wrap sweep from {src:?}");
            // One more normal sweep on the reset scratch.
            rpq_reach_collect(&g, &nfa, src, &mut scratch, &mut out);
            assert_eq!(out, expected, "sweep after reset from {src:?}");
        }
    }

    #[test]
    fn blocked_closure_matches_per_source_at_any_block_size() {
        // Budgets small enough to force many column blocks (down to one
        // word per row) must not change the result.
        for (seed, expr) in [(3u64, "a (a+b)*"), (9, "(a b)*"), (29, "a*"), (23, "∅")] {
            let mut g = crate::generators::random_graph(150, 400, &["a", "b"], seed);
            let regex = crpq_automata::parse_regex(expr, g.alphabet_mut()).unwrap();
            let nfa = Nfa::from_regex(&regex);
            let per_source = rpq_relation(&g, &nfa, &mut ReachScratch::new());
            for budget_bits in [64, 4096, 1 << 20, usize::MAX] {
                let blocked = rpq_relation_closure_blocked(&g, &nfa, budget_bits);
                assert_eq!(
                    blocked, per_source,
                    "seed {seed} expr {expr} budget {budget_bits}"
                );
            }
        }
    }

    #[test]
    fn sparse_dense_switch_boundary() {
        // The ROADMAP documents the switch as "k·32 ≥ |V|": a sparse row of
        // k u32 ids costs 32·k bits against the dense row's |V| bits, so
        // the parity point k = |V|/32 must go dense and k = |V|/32 − 1 must
        // stay sparse. Pin the representation on both sides of the
        // boundary, for both row-install paths.
        let n = 640; // n/32 = 20
        for (k, expect_dense) in [(19usize, false), (20, true), (21, true)] {
            let ids: Vec<u32> = (0..k as u32).collect();
            let mut rel = Relation::empty(n);
            rel.set_forward_row_ids(NodeId(0), &ids);
            rel.finish_reverse();
            assert_eq!(
                rel.forward(NodeId(0)).is_dense(),
                expect_dense,
                "ids path, k = {k}"
            );
            let mut words = vec![0u64; n.div_ceil(64)];
            for &v in &ids {
                words[v as usize / 64] |= 1 << (v % 64);
            }
            let mut rel = Relation::empty(n);
            let mut buf = Vec::new();
            rel.set_forward_row_words(NodeId(0), &words, &mut buf);
            rel.finish_reverse();
            assert_eq!(
                rel.forward(NodeId(0)).is_dense(),
                expect_dense,
                "words path, k = {k}"
            );
        }
        // The NodeSet domain representation switches at the same point.
        for (k, expect_dense) in [(19usize, false), (20, true)] {
            let s = NodeSet::from_sorted_ids((0..k as u32).collect(), n);
            assert_eq!(s.is_dense(), expect_dense, "NodeSet k = {k}");
        }
    }

    #[test]
    fn auto_materialiser_handles_tiny_and_empty_graphs() {
        // The cost probe must not divide by zero or double-install sampled
        // rows on graphs smaller than the sample size.
        let empty = crate::db::GraphBuilder::new().finish();
        let mut it = crpq_util::Interner::new();
        it.intern("a");
        let nfa = Nfa::from_regex(&crpq_automata::parse_regex("a*", &mut it).unwrap());
        let rel = rpq_relation_auto(&empty, &nfa, &mut ReachScratch::new(), 1);
        assert!(rel.is_empty());
        for n in [1usize, 2, 3, 65] {
            let mut g = crate::generators::labelled_cycle(n, &["a"]);
            let star = crpq_automata::parse_regex("a*", g.alphabet_mut()).unwrap();
            let nfa = Nfa::from_regex(&star);
            let auto = rpq_relation_auto(&g, &nfa, &mut ReachScratch::new(), 1);
            let reference = rpq_relation(&g, &nfa, &mut ReachScratch::new());
            assert_eq!(auto, reference, "n = {n}");
            assert_eq!(auto.len(), n * n, "cycle closure is complete, n = {n}");
        }
    }

    #[test]
    fn node_set_operations() {
        let n = 256;
        let mut s = NodeSet::full(n);
        assert!(s.is_dense() && s.len() == n);
        let keep: BitSet = [3usize, 70, 200].iter().copied().collect::<BitSet>();
        let mut keep_sized = BitSet::new(n);
        for v in keep.iter() {
            keep_sized.insert(v);
        }
        s.intersect_with_bitset(&keep_sized);
        assert!(!s.is_dense(), "3 of 256 ids must go sparse");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70, 200]);
        assert!(s.contains(70) && !s.contains(71));

        // Sparse ∩ sparse row.
        let row_ids = [70u32, 199, 200];
        let mut t = s.clone();
        t.intersect_with_row(&RelationRow::Sparse(&row_ids));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![70, 200]);
        assert!(s.intersects_row(&RelationRow::Sparse(&row_ids)));
        assert!(!s.intersects_row(&RelationRow::Sparse(&[4u32, 71])));

        // Sparse ∩ dense row, and dense ∩ sparse row.
        let mut dense_bits = BitSet::new(n);
        (0..n).step_by(2).for_each(|v| {
            dense_bits.insert(v);
        });
        let mut t = s.clone();
        t.intersect_with_row(&RelationRow::Dense(&dense_bits));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![70, 200]);
        let mut d = NodeSet::Dense(dense_bits.clone());
        d.intersect_with_row(&RelationRow::Sparse(&row_ids));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![70, 200]);
        assert!(!d.is_dense(), "intersection result re-picks representation");

        // Removal and sorted intersection.
        assert!(d.remove(70) && !d.remove(70));
        assert_eq!(d.len(), 1);
        let mut u = NodeSet::from_sorted_ids(vec![1, 5, 9, 200], n);
        u.intersect_with_sorted(&[5, 200, 201]);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![5, 200]);
        assert_eq!(NodeSet::empty(n).len(), 0);
    }

    #[test]
    fn row_intersection_helpers() {
        let ids = [1u32, 5, 70];
        let sparse = RelationRow::Sparse(&ids);
        assert!(!sparse.is_dense());
        let mut acc = BitSet::full(4096);
        sparse.intersect_into(&mut acc);
        assert_eq!(acc.iter().collect::<Vec<_>>(), vec![1, 5, 70]);
        let mut probe = BitSet::new(4096);
        probe.insert(5);
        assert!(sparse.intersects(&probe));
        probe.remove(5);
        probe.insert(6);
        assert!(!sparse.intersects(&probe));
        assert!(sparse.contains(70) && !sparse.contains(71));

        let evens: BitSet = {
            let mut b = BitSet::new(256);
            (0..200usize).step_by(2).for_each(|v| {
                b.insert(v);
            });
            b
        };
        let dense = RelationRow::Dense(&evens);
        assert!(dense.is_dense());
        assert_eq!(dense.len(), 100);
        let mut acc = BitSet::new(256);
        (0..256usize).filter(|v| v % 3 == 0).for_each(|v| {
            acc.insert(v);
        });
        dense.intersect_into(&mut acc);
        assert!(!acc.is_empty());
        assert!(acc.iter().all(|v| v % 6 == 0 && v < 200));
    }

    #[test]
    fn relation_row_install_paths_agree() {
        // The two row-install paths (raw words, owned ids) must produce
        // identical relations.
        let mut buf = Vec::new();
        let mut words = vec![0u64; 2];
        for v in [3usize, 40, 64, 77] {
            words[v / 64] |= 1 << (v % 64);
        }
        let mut via_words = Relation::empty(100);
        via_words.set_forward_row_words(NodeId(2), &words, &mut buf);
        via_words.finish_reverse();

        let mut via_ids = Relation::empty(100);
        via_ids.set_forward_row_ids(NodeId(2), &[3, 40, 64, 77]);
        via_ids.finish_reverse();

        assert_eq!(via_words, via_ids);
        assert_eq!(via_words.len(), 4);
        assert!(via_words.contains(NodeId(2), NodeId(64)));
        assert_eq!(
            via_words.backward(NodeId(40)).iter().collect::<Vec<_>>(),
            [2]
        );
        assert_eq!(via_words.source_set().iter().collect::<Vec<_>>(), [2]);
        assert_eq!(
            via_words.target_set().iter().collect::<Vec<_>>(),
            [3, 40, 64, 77]
        );
    }

    #[test]
    fn sparse_rows_shard_past_the_offset_space() {
        // The 2-level sharded CSR behind `RowKind::Sparse`: a flat id
        // buffer crossing one shard's offset space opens the next shard
        // instead of panicking (the pre-shard layout refused relations
        // past 2³² ids with a "shard the relation" panic). Exercised with
        // a tiny test capacity so no 16 GiB allocation is needed —
        // production uses the full u32 offset space per shard.
        let n = 64usize;
        let mut store = RowStore::with_shard_cap(n, 7);
        // Rows of 3, 3, 3 ids: the third cannot fit shard 0 (3+3+3 > 7)
        // and must start shard 1 — rows never cross a shard boundary.
        for (i, base) in [(0usize, 0u32), (1, 8), (2, 16), (3, 24)] {
            store.push_sparse(i, &[base, base + 1, base + 2]);
        }
        assert_eq!(store.shards.len(), 2, "third row opens a second shard");
        assert!(store.shards.iter().all(|s| s.len() <= 7));
        store.seal();
        for (i, base) in [(0usize, 0u32), (1, 8), (2, 16), (3, 24)] {
            assert_eq!(
                store.row(i).iter().collect::<Vec<_>>(),
                vec![base as usize, base as usize + 1, base as usize + 2],
                "row {i} readable across the shard boundary"
            );
        }
        assert!(store.row(5).is_empty(), "untouched row reads empty");

        // A single row larger than the shard capacity cannot be split —
        // it must fail loudly instead of corrupting offsets.
        let err = std::panic::catch_unwind(|| {
            let mut s = RowStore::with_shard_cap(64, 4);
            s.push_sparse(0, &[1, 2, 3, 4, 5]);
        })
        .expect_err("oversized row must panic");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic message is a String");
        assert!(
            msg.contains("shard capacity"),
            "panic must name the shard capacity, got: {msg}"
        );

        // End-to-end: a Relation whose stores run at a tiny shard cap
        // still assembles a correct (sorted) backward index across
        // shards. Universe 640 keeps 3- and 6-id rows below the dense
        // parity point, so the sparse (sharded) path is what runs.
        let big = 640usize;
        let mut rel = Relation::empty(big);
        rel.fwd = RowStore::with_shard_cap(big, 7);
        rel.rev = RowStore::with_shard_cap(big, 7);
        for src in 0..6u32 {
            rel.set_forward_row_ids(NodeId(src), &[10, 20, 30]);
        }
        rel.finish_reverse();
        assert!(rel.fwd.shards.len() > 1, "forward rows sharded");
        assert!(rel.rev.shards.len() > 1, "backward rows sharded");
        for v in [10u32, 20, 30] {
            assert_eq!(
                rel.backward(NodeId(v)).iter().collect::<Vec<_>>(),
                vec![0, 1, 2, 3, 4, 5],
                "backward column of {v} sorted across shards"
            );
        }
    }

    #[test]
    fn sorted_view_seek_agrees_across_representations() {
        // RelationRow/NodeSet `first_at_or_after` (the WCOJ leapfrog seek)
        // must agree between sparse and dense representations.
        let ids: Vec<u32> = vec![1, 5, 64, 200];
        let universe = 256;
        let sparse_row = RelationRow::Sparse(&ids);
        let bits = BitSet::from_words(
            {
                let mut w = vec![0u64; universe / 64];
                for v in &ids {
                    w[*v as usize / 64] |= 1 << (*v % 64);
                }
                w
            },
            universe,
        );
        let dense_row = RelationRow::Dense(&bits);
        let sparse_set = NodeSet::from_sorted_ids(ids.clone(), universe);
        let dense_set = NodeSet::Dense(bits.clone());
        for from in 0..universe + 2 {
            let expect = ids.iter().map(|&v| v as usize).find(|&v| v >= from);
            assert_eq!(
                sparse_row.first_at_or_after(from),
                expect,
                "sparse row @{from}"
            );
            assert_eq!(
                dense_row.first_at_or_after(from),
                expect,
                "dense row @{from}"
            );
            assert_eq!(
                sparse_set.first_at_or_after(from),
                expect,
                "sparse set @{from}"
            );
            assert_eq!(
                dense_set.first_at_or_after(from),
                expect,
                "dense set @{from}"
            );
        }
    }

    #[test]
    fn shortest_path_walks_may_repeat_nodes() {
        // (a b)(a b)(a b) on a 2-cycle: the walk revisits nodes — allowed
        // under standard semantics.
        let (g, nfa) = setup(&[("u", "a", "v"), ("v", "b", "u")], "a b a b a b");
        let p = shortest_path(&g, &nfa, n(&g, "u"), n(&g, "u")).unwrap();
        assert_eq!(p.len(), 7);
        assert_eq!(p[0], n(&g, "u"));
        assert_eq!(p[6], n(&g, "u"));
    }
}
