//! Two-way navigation (the `C2RPQ` direction of the paper's outlook, §7).
//!
//! A 2RPQ atom may traverse edges backwards (`a⁻`). The standard reduction
//! to plain RPQs materialises the inverse relation: for every edge
//! `u -a-> v` add `v -a⁻-> u`. Queries over `Σ ∪ Σ⁻` then run unchanged on
//! the augmented graph — under *all* semantics, since the augmentation
//! preserves nodes (simple paths/trails translate 1:1; note that under
//! trail semantics an edge and its inverse count as distinct edges, the
//! usual convention for directed trails).

use crate::db::GraphDb;
use crpq_util::{FxHashMap, Symbol};

/// Suffix used for inverse label names (`knows` → `knows⁻`).
pub const INVERSE_SUFFIX: &str = "⁻";

/// Returns the two-way augmentation of `g` and the label map
/// `a ↦ a⁻` for all original labels.
pub fn augment_with_inverses(g: &GraphDb) -> (GraphDb, FxHashMap<Symbol, Symbol>) {
    let mut b = g.clone().into_builder();
    let mut inverse: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    let originals: Vec<(Symbol, String)> = g
        .alphabet()
        .iter()
        .filter(|(_, name)| !name.ends_with(INVERSE_SUFFIX))
        .map(|(s, n)| (s, n.to_owned()))
        .collect();
    for (sym, name) in &originals {
        let inv = b.label(&format!("{name}{INVERSE_SUFFIX}"));
        inverse.insert(*sym, inv);
    }
    for (u, s, v) in g.edges() {
        if let Some(&inv) = inverse.get(&s) {
            b.edge_ids(v, inv, u);
        }
    }
    (b.finish(), inverse)
}

/// Looks up the inverse symbol of `label` by name in an augmented graph.
pub fn inverse_of(g: &GraphDb, label: &str) -> Option<Symbol> {
    g.alphabet().get(&format!("{label}{INVERSE_SUFFIX}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::GraphBuilder;
    use crate::rpq;
    use crpq_automata::{parse_regex, Nfa};

    fn chain() -> GraphDb {
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("v", "b", "w");
        b.finish()
    }

    #[test]
    fn augmentation_adds_exactly_the_inverses() {
        let g = chain();
        let (g2, map) = augment_with_inverses(&g);
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(map.len(), 2);
        let a = g.alphabet().get("a").unwrap();
        let a_inv = map[&a];
        let (u, v) = (g2.node_by_name("u").unwrap(), g2.node_by_name("v").unwrap());
        assert!(g2.has_edge(v, a_inv, u));
        assert!(!g2.has_edge(u, a_inv, v));
        assert_eq!(inverse_of(&g2, "a"), Some(a_inv));
    }

    #[test]
    fn two_way_reachability() {
        // w can reach u only with inverse steps: b⁻ a⁻.
        let g = chain();
        let (mut g2, _) = augment_with_inverses(&g);
        let regex = parse_regex("b⁻ a⁻", g2.alphabet_mut()).unwrap();
        let nfa = Nfa::from_regex(&regex);
        let (u, w) = (g2.node_by_name("u").unwrap(), g2.node_by_name("w").unwrap());
        assert!(rpq::rpq_exists(&g2, &nfa, w, u));
        assert!(rpq::simple_path_exists(&g2, &nfa, w, u, &g2.node_set()));
        // Without inverses, no path back.
        let mut g1 = chain();
        let fwd_only = parse_regex("(a+b)(a+b)*", g1.alphabet_mut()).unwrap();
        let nfa1 = Nfa::from_regex(&fwd_only);
        let (u1, w1) = (g1.node_by_name("u").unwrap(), g1.node_by_name("w").unwrap());
        assert!(!rpq::rpq_exists(&g1, &nfa1, w1, u1));
    }

    #[test]
    fn double_augmentation_is_idempotent_on_labels() {
        let g = chain();
        let (g2, _) = augment_with_inverses(&g);
        let (g3, map3) = augment_with_inverses(&g2);
        // Only the two original labels have inverses; re-adding their
        // (already present) inverse edges deduplicates to a no-op.
        assert_eq!(map3.len(), 2);
        assert_eq!(g3.num_edges(), g2.num_edges());
    }
}
