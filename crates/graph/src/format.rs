//! Graph serialisation: a line-oriented text format and a compact binary
//! snapshot format.
//!
//! Text format (one edge per line, `#` comments, blank lines ignored):
//!
//! ```text
//! # nodes are created on first mention
//! u a v
//! v b w
//! node isolated    # declares a node without edges
//! ```
//!
//! The text format is whitespace-delimited, so a node or label name
//! containing whitespace (or a `#`, which opens a comment) **cannot** be
//! represented: the writer rejects such names with a [`FormatError`]
//! instead of silently emitting a line that parses back as a different
//! graph. Anonymous graphs ([`crate::db::NodeNames::Anonymous`]) are
//! written with synthetic `n{id}` names — text output is for human eyes,
//! so it always carries printable names.
//!
//! The binary format is a length-prefixed encoding built on [`bytes`],
//! suitable for snapshotting generated benchmark graphs. Names are
//! length-prefixed (any string is fine), and **version 2** adds a
//! names-mode byte so anonymous graphs snapshot without materialising a
//! name table at all — a `|V| = 10⁶` generated graph round-trips through
//! ~12 bytes per edge, zero per node. Version-1 snapshots still decode.
//!
//! Both writers stream: the text writer appends through any
//! [`fmt::Write`] sink ([`write_graph_text`]; [`to_graph_text`] is the
//! one-`String` convenience wrapper with a pre-sized buffer), and the
//! binary writer reserves its exact size up front instead of growing
//! through repeated doubling.

use crate::db::{GraphBuilder, GraphDb, NodeId, NodeNames};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Error from graph parsing/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// Description of the failure.
    pub message: String,
    /// Line number (1-based) for text input, 0 for binary.
    pub line: usize,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph format error (line {}): {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for FormatError {}

/// Parses the text format described in the module docs.
///
/// ```
/// use crpq_graph::format::{parse_graph_text, to_graph_text};
///
/// let g = parse_graph_text("u knows v\nv knows w\nnode loner").unwrap();
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 2);
/// let back = parse_graph_text(&to_graph_text(&g).unwrap()).unwrap();
/// assert_eq!(back.num_edges(), 2);
/// ```
pub fn parse_graph_text(input: &str) -> Result<GraphDb, FormatError> {
    let mut b = GraphBuilder::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["node", name] => {
                b.node(name);
            }
            [u, l, v] => {
                b.edge(u, l, v);
            }
            _ => {
                return Err(FormatError {
                    message: format!("expected `src label dst` or `node name`, got `{line}`"),
                    line: idx + 1,
                })
            }
        }
    }
    Ok(b.finish())
}

/// Checks that `name` survives a whitespace-delimited text round-trip:
/// non-empty, no whitespace (a space would split one token into two, a
/// newline into two lines), no `#` (opens a comment mid-line).
fn check_text_name(name: &str, what: &str) -> Result<(), FormatError> {
    if name.is_empty() {
        return Err(FormatError {
            message: format!("{what} name is empty — not representable in the text format"),
            line: 0,
        });
    }
    if name.contains(|c: char| c.is_whitespace() || c == '#') {
        return Err(FormatError {
            message: format!(
                "{what} name {name:?} contains whitespace or `#` — it would not survive a \
                 text round-trip; use the binary snapshot format"
            ),
            line: 0,
        });
    }
    Ok(())
}

/// The synthetic text name of node `v` on an anonymous graph.
fn synthetic_name(v: NodeId) -> String {
    format!("n{}", v.0)
}

/// Streams a graph in the text format (stable order) into any
/// [`fmt::Write`] sink — a `String`, or an adapter over a file — without
/// assembling the whole rendering in memory first.
///
/// Fails (before writing any edge) if a node or label name cannot be
/// represented in the whitespace-delimited format ([`check_text_name`]).
/// Anonymous graphs are written with synthetic `n{id}` names; parsing the
/// text back yields a *named* graph carrying those names.
pub fn write_graph_text<W: fmt::Write>(g: &GraphDb, out: &mut W) -> Result<(), FormatError> {
    // Validate every name once up front, so a rejected graph never leaves
    // a half-written rendering behind.
    if g.is_named() {
        for v in g.nodes() {
            check_text_name(g.node_name(v), "node")?;
        }
    }
    for (_, label) in g.alphabet().iter() {
        check_text_name(label, "label")?;
    }
    let io = |_| FormatError {
        message: "write error while rendering graph text".into(),
        line: 0,
    };
    let name = |v: NodeId| -> std::borrow::Cow<'_, str> {
        match g.try_node_name(v) {
            Some(n) => n.into(),
            None => synthetic_name(v).into(),
        }
    };
    for v in g.nodes() {
        if g.out_edges(v).is_empty() && g.in_edges(v).is_empty() {
            writeln!(out, "node {}", name(v)).map_err(io)?;
        }
    }
    for (u, s, v) in g.edges() {
        writeln!(out, "{} {} {}", name(u), g.alphabet().resolve(s), name(v)).map_err(io)?;
    }
    Ok(())
}

/// Renders a graph in the text format (stable order) into one `String`,
/// pre-sized from the edge count. See [`write_graph_text`] for the
/// streaming variant and the name restrictions.
pub fn to_graph_text(g: &GraphDb) -> Result<String, FormatError> {
    // ~3 names of ~8 bytes per edge line: close enough to skip most of
    // the doubling regrowth without measuring exactly.
    let mut out = String::with_capacity(32 * g.num_edges() + 16 * g.num_nodes().min(1024));
    write_graph_text(g, &mut out)?;
    Ok(out)
}

const MAGIC: &[u8; 4] = b"CRPQ";
/// Version written by [`to_binary`]: v2 = v1 plus a names-mode byte
/// before the node section (1 = named, 0 = anonymous), and since the
/// checksum revision a trailing CRC32 over the payload (everything between
/// the version byte and the checksum itself). [`from_binary`] decodes v1,
/// checksummed v2 and pre-checksum v2 (no trailing bytes) alike.
const VERSION: u8 = 2;
const NAMES_ANONYMOUS: u8 = 0;
const NAMES_NAMED: u8 = 1;

/// The CRC-32/ISO-HDLC (IEEE 802.3, reflected 0xEDB88320) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data` — the integrity check of binary snapshots and
/// (via `crate::wal`) of write-ahead-log records. A flipped bit anywhere
/// in the payload changes the checksum, so a snapshot corrupted at rest
/// or in transit fails loudly at load instead of decoding into a
/// structurally different graph.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Whether `data` starts with the binary snapshot magic (`CRPQ`) — the
/// sniff front ends use to pick a decoder for an on-disk graph.
pub fn is_binary(data: &[u8]) -> bool {
    data.starts_with(MAGIC)
}

/// Decodes a graph in **either** on-disk format: the binary snapshot when
/// the magic matches ([`is_binary`]), the line-oriented text format
/// otherwise. Raw bytes that are neither (non-UTF-8 without the magic —
/// e.g. a truncated or foreign binary file) fail with a descriptive
/// [`FormatError`] instead of a UTF-8 panic.
pub fn parse_graph_auto(data: Vec<u8>) -> Result<GraphDb, FormatError> {
    if is_binary(&data) {
        from_binary(Bytes::from(data))
    } else {
        let text = String::from_utf8(data).map_err(|_| FormatError {
            message: "neither the CRPQ binary snapshot (bad magic) nor UTF-8 text".into(),
            line: 0,
        })?;
        parse_graph_text(&text)
    }
}

/// Encodes a graph into the binary snapshot format (version 2). Anonymous
/// graphs write no name table at all: just the node count. The buffer is
/// reserved at its exact final size up front, so encoding a multi-million
/// edge snapshot performs one allocation, not a doubling cascade.
pub fn to_binary(g: &GraphDb) -> Bytes {
    let name_section: usize = match g.names() {
        NodeNames::Named(_) => g.nodes().map(|v| 4 + g.node_name(v).len()).sum(),
        NodeNames::Anonymous => 0,
    };
    let label_section: usize = g.alphabet().iter().map(|(_, n)| 4 + n.len()).sum();
    let total =
        MAGIC.len() + 1 + 4 + label_section + 1 + 4 + name_section + 8 + 12 * g.num_edges() + 4;
    let mut buf = BytesMut::with_capacity(total);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    // labels
    buf.put_u32_le(g.alphabet().len() as u32);
    for (_, name) in g.alphabet().iter() {
        put_str(&mut buf, name);
    }
    // nodes
    match g.names() {
        NodeNames::Named(_) => {
            buf.put_u8(NAMES_NAMED);
            buf.put_u32_le(g.num_nodes() as u32);
            for v in g.nodes() {
                put_str(&mut buf, g.node_name(v));
            }
        }
        NodeNames::Anonymous => {
            buf.put_u8(NAMES_ANONYMOUS);
            buf.put_u32_le(g.num_nodes() as u32);
        }
    }
    // edges
    buf.put_u64_le(g.num_edges() as u64);
    for (u, s, v) in g.edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(s.0);
        buf.put_u32_le(v.0);
    }
    // Trailing CRC32 over the payload (label/node/edge sections; the magic
    // and version byte are validated structurally before the checksum is
    // ever consulted).
    let checksum = crc32(&buf[MAGIC.len() + 1..]);
    buf.put_u32_le(checksum);
    debug_assert_eq!(buf.len(), total, "binary size pre-computation drifted");
    buf.freeze()
}

/// Decodes a binary snapshot (version 1 or 2; see [`VERSION`]).
///
/// Decode errors name the absolute byte offset of the failure, so a
/// corrupted or truncated snapshot can be located with a hex dump.
pub fn from_binary(mut data: Bytes) -> Result<GraphDb, FormatError> {
    let total = data.remaining();
    let err = |m: String, off: usize| FormatError {
        message: format!("{m} at byte offset {off}"),
        line: 0,
    };
    if data.remaining() < 5 || &data.copy_to_bytes(4)[..] != MAGIC {
        return Err(err("bad magic".into(), 0));
    }
    let version = data.get_u8();
    if version != 1 && version != 2 {
        return Err(err(format!("unsupported version {version}"), 4));
    }
    // Cheap refcounted clone of the unparsed payload: after the structural
    // decode we know how many bytes the sections consumed, and can verify
    // the trailing checksum (when present) against exactly those bytes.
    let payload = data.clone();
    let num_labels = checked_u32(&mut data, total, "label count")?;
    let mut labels = crpq_util::Interner::new();
    let mut label_syms = Vec::with_capacity(num_labels as usize);
    for _ in 0..num_labels {
        let name = get_str(&mut data, total)?;
        label_syms.push(labels.intern(&name));
    }
    // v1 node sections are always named; v2 carries an explicit mode byte.
    let named = if version == 1 {
        true
    } else {
        if data.remaining() < 1 {
            return Err(err("truncated names mode".into(), total - data.remaining()));
        }
        match data.get_u8() {
            NAMES_NAMED => true,
            NAMES_ANONYMOUS => false,
            _ => {
                return Err(err(
                    "bad names mode byte".into(),
                    total - data.remaining() - 1,
                ))
            }
        }
    };
    let num_nodes = checked_u32(&mut data, total, "node count")? as usize;
    let mut b = if named {
        let mut b = GraphBuilder::with_alphabet(labels);
        for _ in 0..num_nodes {
            let name = get_str(&mut data, total)?;
            b.node(&name);
        }
        if b.num_nodes() != num_nodes {
            return Err(err(
                "duplicate node name in snapshot".into(),
                total - data.remaining(),
            ));
        }
        b
    } else {
        GraphBuilder::anonymous_with_alphabet(num_nodes, labels)
    };
    if data.remaining() < 8 {
        return Err(err("truncated edge count".into(), total - data.remaining()));
    }
    let num_edges = data.get_u64_le();
    for _ in 0..num_edges {
        let u = checked_u32(&mut data, total, "edge src")? as usize;
        let l = checked_u32(&mut data, total, "edge label")? as usize;
        let v = checked_u32(&mut data, total, "edge dst")? as usize;
        // Offset of this 12-byte edge record (all three ids consumed).
        let record_off = total - data.remaining() - 12;
        if u >= num_nodes || v >= num_nodes {
            return Err(err("edge endpoint out of range".into(), record_off));
        }
        let &l = label_syms
            .get(l)
            .ok_or_else(|| err("edge label out of range".into(), record_off))?;
        b.edge_ids(NodeId(u as u32), l, NodeId(v as u32));
    }
    // Integrity check. v1 and pre-checksum v2 snapshots end exactly at the
    // edge section; checksummed v2 carries 4 trailing CRC32 bytes over the
    // payload. Anything else is corruption.
    match (version, data.remaining()) {
        (_, 0) => {}
        (2, 4) => {
            let consumed = payload.len() - data.remaining();
            let expected = data.get_u32_le();
            let actual = crc32(&payload[..consumed]);
            if actual != expected {
                return Err(FormatError {
                    message: format!(
                        "checksum mismatch: snapshot payload hashes to {actual:#010x} but the \
                         trailer at byte offset {} says {expected:#010x} — the file is corrupted",
                        total - 4
                    ),
                    line: 0,
                });
            }
        }
        (_, n) => {
            return Err(err(
                format!("{n} unexpected trailing bytes after the edge section"),
                total - data.remaining(),
            ))
        }
    }
    Ok(b.finish())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut Bytes, total: usize) -> Result<String, FormatError> {
    let len = checked_u32(data, total, "string length")? as usize;
    if data.remaining() < len {
        return Err(FormatError {
            message: format!(
                "truncated string at byte offset {}",
                total - data.remaining()
            ),
            line: 0,
        });
    }
    let off = total - data.remaining();
    String::from_utf8(data.copy_to_bytes(len).to_vec()).map_err(|_| FormatError {
        message: format!("invalid utf-8 at byte offset {off}"),
        line: 0,
    })
}

fn checked_u32(data: &mut Bytes, total: usize, what: &str) -> Result<u32, FormatError> {
    if data.remaining() < 4 {
        return Err(FormatError {
            message: format!(
                "truncated {what} at byte offset {}",
                total - data.remaining()
            ),
            line: 0,
        });
    }
    Ok(data.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a small sample
u a v
v b w   # chain
node lonely

w c u
";

    #[test]
    fn parse_text() {
        let g = parse_graph_text(SAMPLE).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.node_by_name("lonely").is_some());
    }

    #[test]
    fn text_roundtrip() {
        let g = parse_graph_text(SAMPLE).unwrap();
        let text = to_graph_text(&g).unwrap();
        let g2 = parse_graph_text(&text).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        let e1: Vec<_> = g
            .edges()
            .map(|(u, s, v)| {
                (
                    g.node_name(u).to_owned(),
                    g.alphabet().resolve(s).to_owned(),
                    g.node_name(v).to_owned(),
                )
            })
            .collect();
        let e2: Vec<_> = g2
            .edges()
            .map(|(u, s, v)| {
                (
                    g2.node_name(u).to_owned(),
                    g2.alphabet().resolve(s).to_owned(),
                    g2.node_name(v).to_owned(),
                )
            })
            .collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_graph_text("u a").is_err());
        assert!(parse_graph_text("u a v extra").is_err());
        let err = parse_graph_text("ok a b\nbroken").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn auto_detects_both_formats() {
        let g = parse_graph_text(SAMPLE).unwrap();
        // Binary bytes and text bytes both decode through the sniffer.
        let via_bin = parse_graph_auto(to_binary(&g).to_vec()).unwrap();
        assert_eq!(via_bin.num_edges(), g.num_edges());
        let via_text = parse_graph_auto(SAMPLE.as_bytes().to_vec()).unwrap();
        assert_eq!(via_text.num_edges(), g.num_edges());
        // Corrupted binary (magic intact, payload truncated) and raw
        // non-UTF-8 garbage both surface errors, never panics.
        let mut truncated = to_binary(&g).to_vec();
        truncated.truncate(9);
        assert!(parse_graph_auto(truncated).is_err());
        let err = parse_graph_auto(vec![0xff, 0xfe, 0x00, 0x01]).unwrap_err();
        assert!(err.message.contains("neither"), "{err}");
    }

    #[test]
    fn binary_roundtrip() {
        let g = parse_graph_text(SAMPLE).unwrap();
        let bytes = to_binary(&g);
        let g2 = from_binary(bytes).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, s, v) in g.edges() {
            let u2 = g2.node_by_name(g.node_name(u)).unwrap();
            let v2 = g2.node_by_name(g.node_name(v)).unwrap();
            let s2 = g2.alphabet().get(g.alphabet().resolve(s)).unwrap();
            assert!(g2.has_edge(u2, s2, v2));
        }
    }

    #[test]
    fn text_writer_rejects_unrepresentable_names() {
        // A node name with an interior space would parse back as two
        // tokens; `#` would truncate the line into a comment; an empty
        // name would vanish. All three must fail loudly, not corrupt.
        for bad in ["two words", "tab\there", "line\nbreak", "hash#tag", ""] {
            let mut b = crate::db::GraphBuilder::new();
            let v = b.node(bad);
            let u = b.node("ok");
            let l = b.label("a");
            b.edge_ids(u, l, v);
            let g = b.finish();
            let err = to_graph_text(&g).expect_err(&format!("name {bad:?} must be rejected"));
            assert!(err.message.contains("name"), "{err}");
            // The binary format is length-prefixed: the same graph
            // round-trips losslessly there.
            let g2 = from_binary(to_binary(&g)).unwrap();
            assert_eq!(g2.num_edges(), 1);
            assert!(g2.node_by_name(bad).is_some());
        }
        // Labels are validated too.
        let mut b = crate::db::GraphBuilder::new();
        b.edge("u", "bad label", "v");
        assert!(to_graph_text(&b.finish()).is_err());
        // Unicode names without whitespace are fine.
        let mut b = crate::db::GraphBuilder::new();
        b.edge("Gödel", "π", "Σ");
        let text = to_graph_text(&b.finish()).unwrap();
        let back = parse_graph_text(&text).unwrap();
        assert!(back.node_by_name("Gödel").is_some());
    }

    #[test]
    fn streaming_writer_matches_string_writer() {
        let g = parse_graph_text(SAMPLE).unwrap();
        let mut streamed = String::new();
        write_graph_text(&g, &mut streamed).unwrap();
        assert_eq!(streamed, to_graph_text(&g).unwrap());
    }

    #[test]
    fn anonymous_text_roundtrip_uses_synthetic_names() {
        let mut b = crate::db::GraphBuilder::anonymous(4);
        let a = b.label("a");
        b.edge_ids(NodeId(0), a, NodeId(2));
        b.edge_ids(NodeId(2), a, NodeId(1));
        let g = b.finish();
        let text = to_graph_text(&g).unwrap();
        assert!(text.contains("n0 a n2"), "{text}");
        assert!(text.contains("node n3"), "isolated node declared: {text}");
        // Text parsing names the nodes; the edge structure survives.
        let back = parse_graph_text(&text).unwrap();
        assert_eq!(back.num_nodes(), 4);
        assert_eq!(back.num_edges(), 2);
        let (n0, n2) = (
            back.node_by_name("n0").unwrap(),
            back.node_by_name("n2").unwrap(),
        );
        assert!(back.has_edge(n0, back.alphabet().get("a").unwrap(), n2));
    }

    #[test]
    fn anonymous_binary_roundtrip_is_lossless() {
        let mut b = crate::db::GraphBuilder::anonymous(5);
        let a = b.label("a");
        let l2 = b.label("l2");
        b.edge_ids(NodeId(0), a, NodeId(4));
        b.edge_ids(NodeId(4), l2, NodeId(3));
        let g = b.finish();
        let bytes = to_binary(&g);
        // Name section is empty: 5 nodes cost 0 bytes beyond the count
        // (and the CRC32 trailer is a flat 4 bytes).
        assert!(
            bytes.len() < 64,
            "snapshot unexpectedly large: {}",
            bytes.len()
        );
        let g2 = from_binary(bytes.clone()).unwrap();
        assert!(!g2.is_named(), "anonymity survives the snapshot");
        assert_eq!(g2.num_nodes(), 5);
        assert_eq!(g2.num_edges(), 2);
        for (u, s, v) in g.edges() {
            assert!(g2.has_edge(u, s, v));
        }
        // And through the sniffing front end too.
        assert!(is_binary(&bytes));
        let g3 = parse_graph_auto(bytes.to_vec()).unwrap();
        assert!(!g3.is_named());
    }

    #[test]
    fn binary_v1_snapshots_still_decode() {
        // Hand-assemble a version-1 snapshot (no names-mode byte):
        // 1 label "a", 2 nodes "u"/"w", 1 edge u -a-> w.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(1);
        buf.put_u32_le(1);
        put_str(&mut buf, "a");
        buf.put_u32_le(2);
        put_str(&mut buf, "u");
        put_str(&mut buf, "w");
        buf.put_u64_le(1);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u32_le(1);
        let g = from_binary(buf.freeze()).unwrap();
        assert!(g.is_named());
        assert_eq!(g.num_nodes(), 2);
        let (u, w) = (g.node_by_name("u").unwrap(), g.node_by_name("w").unwrap());
        assert!(g.has_edge(u, g.alphabet().get("a").unwrap(), w));
    }

    #[test]
    fn checksum_catches_payload_corruption() {
        let g = parse_graph_text(SAMPLE).unwrap();
        let clean = to_binary(&g);
        // Sanity: the clean snapshot decodes (checksum verifies).
        from_binary(clean.clone()).unwrap();
        // Flip one bit in an edge id (deep in the payload, past every
        // length prefix, so the structural decode still succeeds and only
        // the checksum can catch it).
        let mut corrupt = clean.to_vec();
        // Low byte of the last edge's dst id: flipping bit 0 maps a valid
        // node id to another valid one, so the structural decode succeeds
        // and only the checksum can catch the corruption.
        let idx = corrupt.len() - 8;
        corrupt[idx] ^= 0x01;
        let err = from_binary(Bytes::from(corrupt)).unwrap_err();
        assert!(err.message.contains("checksum mismatch"), "{err}");
        // A corrupted checksum trailer is caught too.
        let mut bad_trailer = clean.to_vec();
        let last = bad_trailer.len() - 1;
        bad_trailer[last] ^= 0xFF;
        assert!(from_binary(Bytes::from(bad_trailer))
            .unwrap_err()
            .message
            .contains("checksum mismatch"));
    }

    #[test]
    fn binary_v2_without_checksum_still_decodes() {
        // Pre-checksum v2 snapshots end exactly at the edge section. A
        // current writer's output with the 4 trailer bytes stripped is
        // byte-identical to one, so it must decode cleanly.
        let g = parse_graph_text(SAMPLE).unwrap();
        let mut legacy = to_binary(&g).to_vec();
        legacy.truncate(legacy.len() - 4);
        let g2 = from_binary(Bytes::from(legacy)).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        // But a partially-truncated trailer is corruption, not legacy.
        let mut ragged = to_binary(&g).to_vec();
        ragged.truncate(ragged.len() - 2);
        assert!(from_binary(Bytes::from(ragged))
            .unwrap_err()
            .message
            .contains("trailing bytes"));
    }

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE CRC-32 check value (every implementation's smoke vector).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(Bytes::from_static(b"nope")).is_err());
        assert!(from_binary(Bytes::from_static(b"CRPQ\x02")).is_err());
        let g = parse_graph_text("u a v").unwrap();
        let mut bytes = to_binary(&g).to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(from_binary(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn binary_errors_name_the_byte_offset() {
        let g = parse_graph_text(SAMPLE).unwrap();
        let clean = to_binary(&g).to_vec();
        // Truncation mid-payload: the error names where the bytes ran out.
        let mut truncated = clean.clone();
        truncated.truncate(clean.len() / 2);
        let err = from_binary(Bytes::from(truncated)).unwrap_err();
        assert!(err.message.contains("byte offset"), "{err}");
        // Checksum corruption: the error names the trailer offset.
        let mut corrupt = clean.clone();
        let idx = corrupt.len() - 8;
        corrupt[idx] ^= 0x01;
        let err = from_binary(Bytes::from(corrupt)).unwrap_err();
        assert!(
            err.message
                .contains(&format!("byte offset {}", clean.len() - 4)),
            "{err}"
        );
    }
}
