//! Graph serialisation: a line-oriented text format and a compact binary
//! snapshot format.
//!
//! Text format (one edge per line, `#` comments, blank lines ignored):
//!
//! ```text
//! # nodes are created on first mention
//! u a v
//! v b w
//! node isolated    # declares a node without edges
//! ```
//!
//! The binary format is a length-prefixed encoding built on [`bytes`],
//! suitable for snapshotting generated benchmark graphs.

use crate::db::{GraphBuilder, GraphDb};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Error from graph parsing/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormatError {
    /// Description of the failure.
    pub message: String,
    /// Line number (1-based) for text input, 0 for binary.
    pub line: usize,
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph format error (line {}): {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for FormatError {}

/// Parses the text format described in the module docs.
///
/// ```
/// use crpq_graph::format::{parse_graph_text, to_graph_text};
///
/// let g = parse_graph_text("u knows v\nv knows w\nnode loner").unwrap();
/// assert_eq!(g.num_nodes(), 4);
/// assert_eq!(g.num_edges(), 2);
/// let back = parse_graph_text(&to_graph_text(&g)).unwrap();
/// assert_eq!(back.num_edges(), 2);
/// ```
pub fn parse_graph_text(input: &str) -> Result<GraphDb, FormatError> {
    let mut b = GraphBuilder::new();
    for (idx, raw) in input.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            ["node", name] => {
                b.node(name);
            }
            [u, l, v] => {
                b.edge(u, l, v);
            }
            _ => {
                return Err(FormatError {
                    message: format!("expected `src label dst` or `node name`, got `{line}`"),
                    line: idx + 1,
                })
            }
        }
    }
    Ok(b.finish())
}

/// Renders a graph in the text format (stable order).
pub fn to_graph_text(g: &GraphDb) -> String {
    let mut out = String::new();
    let mut isolated: Vec<&str> = Vec::new();
    for v in g.nodes() {
        if g.out_edges(v).is_empty() && g.in_edges(v).is_empty() {
            isolated.push(g.node_name(v));
        }
    }
    for name in isolated {
        out.push_str("node ");
        out.push_str(name);
        out.push('\n');
    }
    for (u, s, v) in g.edges() {
        out.push_str(g.node_name(u));
        out.push(' ');
        out.push_str(g.alphabet().resolve(s));
        out.push(' ');
        out.push_str(g.node_name(v));
        out.push('\n');
    }
    out
}

const MAGIC: &[u8; 4] = b"CRPQ";
const VERSION: u8 = 1;

/// Whether `data` starts with the binary snapshot magic (`CRPQ`) — the
/// sniff front ends use to pick a decoder for an on-disk graph.
pub fn is_binary(data: &[u8]) -> bool {
    data.starts_with(MAGIC)
}

/// Decodes a graph in **either** on-disk format: the binary snapshot when
/// the magic matches ([`is_binary`]), the line-oriented text format
/// otherwise. Raw bytes that are neither (non-UTF-8 without the magic —
/// e.g. a truncated or foreign binary file) fail with a descriptive
/// [`FormatError`] instead of a UTF-8 panic.
pub fn parse_graph_auto(data: Vec<u8>) -> Result<GraphDb, FormatError> {
    if is_binary(&data) {
        from_binary(Bytes::from(data))
    } else {
        let text = String::from_utf8(data).map_err(|_| FormatError {
            message: "neither the CRPQ binary snapshot (bad magic) nor UTF-8 text".into(),
            line: 0,
        })?;
        parse_graph_text(&text)
    }
}

/// Encodes a graph into the binary snapshot format.
pub fn to_binary(g: &GraphDb) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    // labels
    buf.put_u32_le(g.alphabet().len() as u32);
    for (_, name) in g.alphabet().iter() {
        put_str(&mut buf, name);
    }
    // nodes
    buf.put_u32_le(g.num_nodes() as u32);
    for v in g.nodes() {
        put_str(&mut buf, g.node_name(v));
    }
    // edges
    buf.put_u64_le(g.num_edges() as u64);
    for (u, s, v) in g.edges() {
        buf.put_u32_le(u.0);
        buf.put_u32_le(s.0);
        buf.put_u32_le(v.0);
    }
    buf.freeze()
}

/// Decodes a binary snapshot.
pub fn from_binary(mut data: Bytes) -> Result<GraphDb, FormatError> {
    let err = |m: &str| FormatError {
        message: m.to_owned(),
        line: 0,
    };
    if data.remaining() < 5 || &data.copy_to_bytes(4)[..] != MAGIC {
        return Err(err("bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(err("unsupported version"));
    }
    let mut b = GraphBuilder::new();
    let num_labels = checked_u32(&mut data, "label count")?;
    let mut labels = Vec::with_capacity(num_labels as usize);
    for _ in 0..num_labels {
        let name = get_str(&mut data)?;
        labels.push(b.label(&name));
    }
    let num_nodes = checked_u32(&mut data, "node count")?;
    let mut nodes = Vec::with_capacity(num_nodes as usize);
    for _ in 0..num_nodes {
        let name = get_str(&mut data)?;
        nodes.push(b.node(&name));
    }
    if data.remaining() < 8 {
        return Err(err("truncated edge count"));
    }
    let num_edges = data.get_u64_le();
    for _ in 0..num_edges {
        let u = checked_u32(&mut data, "edge src")? as usize;
        let l = checked_u32(&mut data, "edge label")? as usize;
        let v = checked_u32(&mut data, "edge dst")? as usize;
        let (&u, &l, &v) = (
            nodes.get(u).ok_or_else(|| err("edge src out of range"))?,
            labels
                .get(l)
                .ok_or_else(|| err("edge label out of range"))?,
            nodes.get(v).ok_or_else(|| err("edge dst out of range"))?,
        );
        b.edge_ids(u, l, v);
    }
    Ok(b.finish())
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(data: &mut Bytes) -> Result<String, FormatError> {
    let len = checked_u32(data, "string length")? as usize;
    if data.remaining() < len {
        return Err(FormatError {
            message: "truncated string".into(),
            line: 0,
        });
    }
    String::from_utf8(data.copy_to_bytes(len).to_vec()).map_err(|_| FormatError {
        message: "invalid utf-8".into(),
        line: 0,
    })
}

fn checked_u32(data: &mut Bytes, what: &str) -> Result<u32, FormatError> {
    if data.remaining() < 4 {
        return Err(FormatError {
            message: format!("truncated {what}"),
            line: 0,
        });
    }
    Ok(data.get_u32_le())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a small sample
u a v
v b w   # chain
node lonely

w c u
";

    #[test]
    fn parse_text() {
        let g = parse_graph_text(SAMPLE).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(g.node_by_name("lonely").is_some());
    }

    #[test]
    fn text_roundtrip() {
        let g = parse_graph_text(SAMPLE).unwrap();
        let text = to_graph_text(&g);
        let g2 = parse_graph_text(&text).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        let e1: Vec<_> = g
            .edges()
            .map(|(u, s, v)| {
                (
                    g.node_name(u).to_owned(),
                    g.alphabet().resolve(s).to_owned(),
                    g.node_name(v).to_owned(),
                )
            })
            .collect();
        let e2: Vec<_> = g2
            .edges()
            .map(|(u, s, v)| {
                (
                    g2.node_name(u).to_owned(),
                    g2.alphabet().resolve(s).to_owned(),
                    g2.node_name(v).to_owned(),
                )
            })
            .collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_graph_text("u a").is_err());
        assert!(parse_graph_text("u a v extra").is_err());
        let err = parse_graph_text("ok a b\nbroken").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn auto_detects_both_formats() {
        let g = parse_graph_text(SAMPLE).unwrap();
        // Binary bytes and text bytes both decode through the sniffer.
        let via_bin = parse_graph_auto(to_binary(&g).to_vec()).unwrap();
        assert_eq!(via_bin.num_edges(), g.num_edges());
        let via_text = parse_graph_auto(SAMPLE.as_bytes().to_vec()).unwrap();
        assert_eq!(via_text.num_edges(), g.num_edges());
        // Corrupted binary (magic intact, payload truncated) and raw
        // non-UTF-8 garbage both surface errors, never panics.
        let mut truncated = to_binary(&g).to_vec();
        truncated.truncate(9);
        assert!(parse_graph_auto(truncated).is_err());
        let err = parse_graph_auto(vec![0xff, 0xfe, 0x00, 0x01]).unwrap_err();
        assert!(err.message.contains("neither"), "{err}");
    }

    #[test]
    fn binary_roundtrip() {
        let g = parse_graph_text(SAMPLE).unwrap();
        let bytes = to_binary(&g);
        let g2 = from_binary(bytes).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, s, v) in g.edges() {
            let u2 = g2.node_by_name(g.node_name(u)).unwrap();
            let v2 = g2.node_by_name(g.node_name(v)).unwrap();
            let s2 = g2.alphabet().get(g.alphabet().resolve(s)).unwrap();
            assert!(g2.has_edge(u2, s2, v2));
        }
    }

    #[test]
    fn binary_rejects_garbage() {
        assert!(from_binary(Bytes::from_static(b"nope")).is_err());
        assert!(from_binary(Bytes::from_static(b"CRPQ\x02")).is_err());
        let g = parse_graph_text("u a v").unwrap();
        let mut bytes = to_binary(&g).to_vec();
        bytes.truncate(bytes.len() - 3);
        assert!(from_binary(Bytes::from(bytes)).is_err());
    }
}
