//! Label-partitioned compressed-sparse-row adjacency.
//!
//! The evaluation hot loop asks one question over and over: *given a node
//! `v` and an edge label `a`, which nodes does an `a`-edge reach from `v`?*
//! With the builder's `Vec<Vec<(Symbol, NodeId)>>` representation this is a
//! scan (or binary search) of `v`'s whole edge list per NFA transition.
//!
//! A [`LabelCsr`] answers it from a **per-label sparse CSR**: each label
//! owns a sorted index of only the nodes that actually carry an edge with
//! that label, plus offsets into one flat target array:
//!
//! ```text
//! label_offsets: [ 0, |V_a|, |V_a|+|V_b|, … ]        (one entry per label, plus one)
//! nodes:         [ ─ label a: sorted V_a ─ ┃ ─ label b: sorted V_b ─ ┃ … ]
//! slot_offsets:  [ 0, 3, 5, …, |E| ]                  (one entry per (label, node) slot, plus one)
//! targets:       [ ── a-edges of V_a[0] ──┃─ of V_a[1] ─┃ … ┃─ b-edges of V_b[0] ─┃ … ]
//! ```
//!
//! `neighbors(v, a)` binary-searches `v` inside `a`'s node index (O(log
//! |V_a|), on dense labels a handful of cache lines) and returns one
//! contiguous, sorted slice of `targets`. Iteration over the slice is a
//! linear walk of adjacent memory, which is what the product-automaton BFS
//! in [`crate::rpq`] spends most of its time doing.
//!
//! The payoff over the earlier dense `label × node` offset table is the
//! memory shape: offsets cost `O(|labels| + Σ_l |V_l|)` instead of
//! `O(|labels| · |V|)`, so a Wikidata-style graph with `|V| = 10⁵` nodes
//! and ~10³ labels keeps its index proportional to the edges that exist
//! (a few MB) rather than the `label × node` cross product (hundreds of
//! MB per direction).
//!
//! [`GraphDb`](crate::GraphDb) keeps two of these (forward and reverse),
//! built once in `GraphBuilder::finish`; the structure is immutable
//! afterwards, matching the append-only life cycle of the store.

use crate::db::NodeId;
use crpq_util::Symbol;
use serde::{Deserialize, Serialize};

/// Immutable label-partitioned CSR index over the edges of a graph.
///
/// Stores one direction (forward *or* reverse); `GraphDb` owns one of each.
///
/// # Invariants
///
/// * At most `u32::MAX` edges per direction — all offsets are `u32`;
///   [`LabelCsr::build`] asserts this, so the limit fails loudly instead
///   of silently wrapping the counting-sort accumulators.
/// * `nodes` is sorted strictly ascending within each label group, and
///   every listed `(label, node)` slot has at least one target — absent
///   slots cost nothing, which is what makes the layout
///   `O(|E| + Σ_l |V_l|)`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelCsr {
    num_nodes: usize,
    num_labels: usize,
    /// `nodes[label_offsets[l] .. label_offsets[l+1]]` is the sorted index
    /// of nodes with at least one `l`-edge. Length `num_labels + 1`.
    label_offsets: Vec<u32>,
    /// Per-label sorted node indexes, concatenated. Length `Σ_l |V_l|`.
    nodes: Vec<u32>,
    /// `targets[slot_offsets[i] .. slot_offsets[i+1]]` is the target slice
    /// of the `i`-th `(label, node)` slot (`i` indexes `nodes`). Length
    /// `nodes.len() + 1`.
    slot_offsets: Vec<u32>,
    /// Neighbour ids, grouped by `(label, source)` slot, sorted within a
    /// group.
    targets: Vec<NodeId>,
}

impl LabelCsr {
    /// Builds the index from edges given as `(source, label, target)`
    /// triples. Edges must already be deduplicated; they need not be sorted.
    ///
    /// Panics if `edges.len()` exceeds `u32::MAX` (the offset arrays are
    /// `u32`; see the struct invariants).
    pub fn build(num_nodes: usize, num_labels: usize, edges: &[(NodeId, Symbol, NodeId)]) -> Self {
        assert!(
            edges.len() <= u32::MAX as usize,
            "LabelCsr edge count exceeds u32 offsets — shard the graph"
        );
        // Counting sort by label: one pass to size, one prefix sum, one
        // pass to place `(source, target)` pairs into their label group.
        let mut label_edge_off = vec![0u32; num_labels + 1];
        for &(_, l, _) in edges {
            label_edge_off[l.index() + 1] += 1;
        }
        for i in 1..label_edge_off.len() {
            label_edge_off[i] += label_edge_off[i - 1];
        }
        let mut cursor: Vec<u32> = label_edge_off[..num_labels].to_vec();
        let mut by_label: Vec<(u32, u32)> = vec![(0, 0); edges.len()];
        for &(u, l, v) in edges {
            by_label[cursor[l.index()] as usize] = (u.0, v.0);
            cursor[l.index()] += 1;
        }

        // Per label: sort the group by (source, target), then emit one
        // slot per distinct source. Slots are appended in (label, source)
        // order, so each slot's end offset is the next slot's start and
        // one shared `slot_offsets` array (plus a final terminator)
        // suffices.
        let mut label_offsets = Vec::with_capacity(num_labels + 1);
        label_offsets.push(0u32);
        let mut nodes: Vec<u32> = Vec::new();
        let mut slot_offsets: Vec<u32> = Vec::new();
        let mut targets = Vec::with_capacity(edges.len());
        for l in 0..num_labels {
            let (lo, hi) = (label_edge_off[l] as usize, label_edge_off[l + 1] as usize);
            let group = &mut by_label[lo..hi];
            group.sort_unstable();
            let mut prev: Option<u32> = None;
            for &(src, tgt) in group.iter() {
                if prev != Some(src) {
                    nodes.push(src);
                    slot_offsets.push(targets.len() as u32);
                    prev = Some(src);
                }
                targets.push(NodeId(tgt));
            }
            label_offsets.push(nodes.len() as u32);
        }
        slot_offsets.push(targets.len() as u32);
        LabelCsr {
            num_nodes,
            num_labels,
            label_offsets,
            nodes,
            slot_offsets,
            targets,
        }
    }

    /// Number of nodes this index covers.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of labels this index covers. Symbols interned after the graph
    /// was finished (queries may mention labels the graph never uses) simply
    /// have empty neighbour slices.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Total number of indexed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// `Σ_l |V_l|`: the number of `(label, node)` slots that actually hold
    /// edges — the data-dependent term of the index's memory footprint.
    #[inline]
    pub fn touched_slots(&self) -> usize {
        self.nodes.len()
    }

    /// Heap bytes of the offset/index arrays (everything except the target
    /// ids): `O(|labels| + Σ_l |V_l|)` by construction. This is the term
    /// the dense `label × node` layout paid `O(|labels| · |V|)` for; the
    /// scale benchmarks assert on it.
    pub fn offset_bytes(&self) -> usize {
        (self.label_offsets.len() + self.nodes.len() + self.slot_offsets.len())
            * std::mem::size_of::<u32>()
    }

    /// Total heap bytes of the index (offsets plus target ids).
    pub fn heap_bytes(&self) -> usize {
        self.offset_bytes() + self.targets.len() * std::mem::size_of::<NodeId>()
    }

    /// The `label`-neighbours of `v` as a sorted contiguous slice —
    /// O(log |V_label|) for the slot lookup, O(1) after that.
    ///
    /// Labels outside the indexed alphabet (and nodes without edges for
    /// the label) yield the empty slice, so query symbols unknown to the
    /// graph are handled without a special case.
    #[inline]
    pub fn neighbors(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        if label.index() >= self.num_labels {
            return &[];
        }
        let (lo, hi) = (
            self.label_offsets[label.index()] as usize,
            self.label_offsets[label.index() + 1] as usize,
        );
        match self.nodes[lo..hi].binary_search(&v.0) {
            Ok(p) => {
                let slot = lo + p;
                let (s, e) = (
                    self.slot_offsets[slot] as usize,
                    self.slot_offsets[slot + 1] as usize,
                );
                &self.targets[s..e]
            }
            Err(_) => &[],
        }
    }

    /// Number of `label`-neighbours of `v` — same cost as [`Self::neighbors`].
    #[inline]
    pub fn degree(&self, v: NodeId, label: Symbol) -> usize {
        self.neighbors(v, label).len()
    }

    /// Whether `v` has `w` as a `label`-neighbour (binary search).
    #[inline]
    pub fn has_edge(&self, v: NodeId, label: Symbol, w: NodeId) -> bool {
        self.neighbors(v, label).binary_search(&w).is_ok()
    }

    /// Iterates all `(source, label, target)` triples in label-major order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        (0..self.num_labels).flat_map(move |l| {
            let label = Symbol(l as u32);
            let (lo, hi) = (
                self.label_offsets[l] as usize,
                self.label_offsets[l + 1] as usize,
            );
            (lo..hi).flat_map(move |slot| {
                let v = NodeId(self.nodes[slot]);
                let (s, e) = (
                    self.slot_offsets[slot] as usize,
                    self.slot_offsets[slot + 1] as usize,
                );
                self.targets[s..e].iter().map(move |&w| (v, label, w))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: u32, l: u32, v: u32) -> (NodeId, Symbol, NodeId) {
        (NodeId(u), Symbol(l), NodeId(v))
    }

    #[test]
    fn neighbors_are_label_partitioned_and_sorted() {
        // Deliberately unsorted input.
        let edges = vec![e(0, 1, 2), e(0, 0, 3), e(0, 0, 1), e(1, 0, 0), e(0, 1, 0)];
        let csr = LabelCsr::build(4, 2, &edges);
        assert_eq!(csr.neighbors(NodeId(0), Symbol(0)), &[NodeId(1), NodeId(3)]);
        assert_eq!(csr.neighbors(NodeId(0), Symbol(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(csr.neighbors(NodeId(1), Symbol(0)), &[NodeId(0)]);
        assert_eq!(csr.neighbors(NodeId(1), Symbol(1)), &[] as &[NodeId]);
        assert_eq!(csr.num_edges(), 5);
    }

    #[test]
    fn out_of_alphabet_labels_are_empty() {
        let csr = LabelCsr::build(2, 1, &[e(0, 0, 1)]);
        assert_eq!(csr.neighbors(NodeId(0), Symbol(7)), &[] as &[NodeId]);
        assert_eq!(csr.degree(NodeId(0), Symbol(7)), 0);
        assert!(!csr.has_edge(NodeId(0), Symbol(7), NodeId(1)));
    }

    #[test]
    fn has_edge_and_degree() {
        let csr = LabelCsr::build(3, 2, &[e(0, 0, 1), e(0, 0, 2), e(2, 1, 0)]);
        assert!(csr.has_edge(NodeId(0), Symbol(0), NodeId(2)));
        assert!(!csr.has_edge(NodeId(0), Symbol(1), NodeId(2)));
        assert_eq!(csr.degree(NodeId(0), Symbol(0)), 2);
        assert_eq!(csr.degree(NodeId(2), Symbol(1)), 1);
    }

    #[test]
    fn edge_iteration_roundtrip() {
        let mut edges = vec![e(1, 1, 0), e(0, 0, 1), e(2, 0, 2)];
        let csr = LabelCsr::build(3, 2, &edges);
        let mut out: Vec<_> = csr.iter_edges().collect();
        edges.sort_by_key(|&(u, l, v)| (l, u, v));
        out.sort_by_key(|&(u, l, v)| (l, u, v));
        assert_eq!(edges, out);
    }

    #[test]
    fn empty_graph() {
        let csr = LabelCsr::build(0, 0, &[]);
        assert_eq!(csr.num_edges(), 0);
        let csr = LabelCsr::build(3, 0, &[]);
        assert_eq!(csr.neighbors(NodeId(1), Symbol(0)), &[] as &[NodeId]);
    }

    #[test]
    fn offsets_scale_with_touched_slots_not_label_node_product() {
        // 100 nodes, 50 labels, but only 3 (label, node) slots carry
        // edges: the offset arrays must be O(|labels| + slots), nowhere
        // near the 100 × 50 dense cross product.
        let csr = LabelCsr::build(100, 50, &[e(0, 0, 1), e(0, 49, 2), e(99, 7, 0)]);
        assert_eq!(csr.touched_slots(), 3);
        let dense_bytes = 4 * (50 * 100 + 1);
        assert!(
            csr.offset_bytes() < dense_bytes / 10,
            "offsets {} not sparse vs dense {}",
            csr.offset_bytes(),
            dense_bytes
        );
        assert_eq!(csr.neighbors(NodeId(99), Symbol(7)), &[NodeId(0)]);
        assert_eq!(csr.neighbors(NodeId(0), Symbol(49)), &[NodeId(2)]);
        assert_eq!(csr.neighbors(NodeId(1), Symbol(0)), &[] as &[NodeId]);
    }

    /// Oracle check against a naive scan, with every node/label density mix
    /// the sparse layout has to get right (absent slots, singleton slots,
    /// full rows).
    #[test]
    fn matches_naive_adjacency_on_random_shapes() {
        let mut state = 0x853c49e6748fea9bu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        let (n, labels) = (23u32, 9u32);
        let mut edges: Vec<(NodeId, Symbol, NodeId)> = (0..160)
            .map(|_| e(next() % n, next() % labels, next() % n))
            .collect();
        edges.sort_unstable_by_key(|&(u, l, v)| (u.0, l.0, v.0));
        edges.dedup();
        let csr = LabelCsr::build(n as usize, labels as usize, &edges);
        assert_eq!(csr.num_edges(), edges.len());
        for v in 0..n {
            for l in 0..labels {
                let mut expect: Vec<NodeId> = edges
                    .iter()
                    .filter(|&&(u, s, _)| u.0 == v && s.0 == l)
                    .map(|&(_, _, w)| w)
                    .collect();
                expect.sort_unstable();
                assert_eq!(
                    csr.neighbors(NodeId(v), Symbol(l)),
                    &expect[..],
                    "node {v} label {l}"
                );
            }
        }
    }
}
