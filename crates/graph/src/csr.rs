//! Label-partitioned compressed-sparse-row adjacency.
//!
//! The evaluation hot loop asks one question over and over: *given a node
//! `v` and an edge label `a`, which nodes does an `a`-edge reach from `v`?*
//! With the builder's `Vec<Vec<(Symbol, NodeId)>>` representation this is a
//! scan (or binary search) of `v`'s whole edge list per NFA transition. A
//! [`LabelCsr`] instead stores, for every `(label, node)` pair, a
//! **contiguous slice** of neighbour ids inside one flat array:
//!
//! ```text
//! targets: [ ── label a, node 0 ──┃─ label a, node 1 ─┃ … ┃─ label b, node 0 ─┃ … ]
//! offsets: [ 0, 3, 5, …, |E| ]      (one entry per label × node, plus one)
//! ```
//!
//! `neighbors(v, a)` is then two loads and a bounds check — O(1) plus the
//! slice itself — and iteration over the slice is a linear walk of
//! adjacent memory, which is what the product-automaton BFS in
//! [`crate::rpq`] spends most of its time doing. The layout is label-major
//! so that a single-label query (the common case: one NFA transition
//! symbol) touches one dense region of the array per node.
//!
//! [`GraphDb`](crate::GraphDb) keeps two of these (forward and reverse),
//! built once in `GraphBuilder::finish`; the structure is immutable
//! afterwards, matching the append-only life cycle of the store.

use crate::db::NodeId;
use crpq_util::Symbol;
use serde::{Deserialize, Serialize};

/// Immutable label-partitioned CSR index over the edges of a graph.
///
/// Stores one direction (forward *or* reverse); `GraphDb` owns one of each.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelCsr {
    num_nodes: usize,
    num_labels: usize,
    /// `offsets[l * num_nodes + v] .. offsets[l * num_nodes + v + 1]` is the
    /// range of `targets` holding the `l`-neighbours of `v`. Length
    /// `num_labels * num_nodes + 1`.
    offsets: Vec<u32>,
    /// Neighbour ids, grouped by `(label, source)`, sorted within a group.
    targets: Vec<NodeId>,
}

impl LabelCsr {
    /// Builds the index from edges given as `(source, label, target)`
    /// triples. Edges must already be deduplicated; they need not be sorted.
    pub fn build(num_nodes: usize, num_labels: usize, edges: &[(NodeId, Symbol, NodeId)]) -> Self {
        let slots = num_labels * num_nodes;
        let slot = |l: Symbol, v: NodeId| l.index() * num_nodes + v.index();
        // Counting sort over (label, source) slots: one pass to size, one
        // prefix sum, one pass to place.
        let mut offsets = vec![0u32; slots + 1];
        for &(u, l, _) in edges {
            offsets[slot(l, u) + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..slots].to_vec();
        let mut targets = vec![NodeId(0); edges.len()];
        for &(u, l, v) in edges {
            let s = slot(l, u);
            targets[cursor[s] as usize] = v;
            cursor[s] += 1;
        }
        // Sort each per-slot group so neighbour slices are ordered (useful
        // for binary search and deterministic iteration).
        for s in 0..slots {
            let (lo, hi) = (offsets[s] as usize, offsets[s + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        LabelCsr {
            num_nodes,
            num_labels,
            offsets,
            targets,
        }
    }

    /// Number of nodes this index covers.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of labels this index covers. Symbols interned after the graph
    /// was finished (queries may mention labels the graph never uses) simply
    /// have empty neighbour slices.
    #[inline]
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Total number of indexed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The `label`-neighbours of `v` as a sorted contiguous slice — O(1).
    ///
    /// Labels outside the indexed alphabet yield the empty slice, so query
    /// symbols unknown to the graph are handled without a special case.
    #[inline]
    pub fn neighbors(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        if label.index() >= self.num_labels {
            return &[];
        }
        let s = label.index() * self.num_nodes + v.index();
        let (lo, hi) = (self.offsets[s] as usize, self.offsets[s + 1] as usize);
        &self.targets[lo..hi]
    }

    /// Number of `label`-neighbours of `v` — O(1).
    #[inline]
    pub fn degree(&self, v: NodeId, label: Symbol) -> usize {
        self.neighbors(v, label).len()
    }

    /// Whether `v` has `w` as a `label`-neighbour (binary search).
    #[inline]
    pub fn has_edge(&self, v: NodeId, label: Symbol, w: NodeId) -> bool {
        self.neighbors(v, label).binary_search(&w).is_ok()
    }

    /// Iterates all `(source, label, target)` triples in label-major order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        (0..self.num_labels).flat_map(move |l| {
            let label = Symbol(l as u32);
            (0..self.num_nodes).flat_map(move |v| {
                let v = NodeId(v as u32);
                self.neighbors(v, label).iter().map(move |&w| (v, label, w))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(u: u32, l: u32, v: u32) -> (NodeId, Symbol, NodeId) {
        (NodeId(u), Symbol(l), NodeId(v))
    }

    #[test]
    fn neighbors_are_label_partitioned_and_sorted() {
        // Deliberately unsorted input.
        let edges = vec![e(0, 1, 2), e(0, 0, 3), e(0, 0, 1), e(1, 0, 0), e(0, 1, 0)];
        let csr = LabelCsr::build(4, 2, &edges);
        assert_eq!(csr.neighbors(NodeId(0), Symbol(0)), &[NodeId(1), NodeId(3)]);
        assert_eq!(csr.neighbors(NodeId(0), Symbol(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(csr.neighbors(NodeId(1), Symbol(0)), &[NodeId(0)]);
        assert_eq!(csr.neighbors(NodeId(1), Symbol(1)), &[] as &[NodeId]);
        assert_eq!(csr.num_edges(), 5);
    }

    #[test]
    fn out_of_alphabet_labels_are_empty() {
        let csr = LabelCsr::build(2, 1, &[e(0, 0, 1)]);
        assert_eq!(csr.neighbors(NodeId(0), Symbol(7)), &[] as &[NodeId]);
        assert_eq!(csr.degree(NodeId(0), Symbol(7)), 0);
        assert!(!csr.has_edge(NodeId(0), Symbol(7), NodeId(1)));
    }

    #[test]
    fn has_edge_and_degree() {
        let csr = LabelCsr::build(3, 2, &[e(0, 0, 1), e(0, 0, 2), e(2, 1, 0)]);
        assert!(csr.has_edge(NodeId(0), Symbol(0), NodeId(2)));
        assert!(!csr.has_edge(NodeId(0), Symbol(1), NodeId(2)));
        assert_eq!(csr.degree(NodeId(0), Symbol(0)), 2);
        assert_eq!(csr.degree(NodeId(2), Symbol(1)), 1);
    }

    #[test]
    fn edge_iteration_roundtrip() {
        let mut edges = vec![e(1, 1, 0), e(0, 0, 1), e(2, 0, 2)];
        let csr = LabelCsr::build(3, 2, &edges);
        let mut out: Vec<_> = csr.iter_edges().collect();
        edges.sort_by_key(|&(u, l, v)| (l, u, v));
        out.sort_by_key(|&(u, l, v)| (l, u, v));
        assert_eq!(edges, out);
    }

    #[test]
    fn empty_graph() {
        let csr = LabelCsr::build(0, 0, &[]);
        assert_eq!(csr.num_edges(), 0);
        let csr = LabelCsr::build(3, 0, &[]);
        assert_eq!(csr.neighbors(NodeId(1), Symbol(0)), &[] as &[NodeId]);
    }
}
