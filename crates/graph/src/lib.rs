//! # crpq-graph
//!
//! The edge-labelled graph database substrate: a compact adjacency-indexed
//! store ([`GraphDb`]), deterministic generators for synthetic workloads,
//! text/binary serialisation, and the three flavours of RPQ path search the
//! paper's semantics need:
//!
//! * **arbitrary paths** (standard semantics) — product-automaton BFS,
//!   polynomial data complexity ([`rpq::rpq_exists`]);
//! * **simple paths / simple cycles** (atom-injective semantics) —
//!   backtracking DFS, NP-complete in data complexity
//!   ([`rpq::simple_path_exists`], [`rpq::simple_cycle_exists`]);
//! * **trails** (edge-injective; §7 outlook of the paper) —
//!   [`rpq::trail_exists`].

pub mod csr;
pub mod db;
pub mod delta;
pub mod format;
pub mod generators;
pub mod rpq;
pub mod two_way;
pub mod view;
pub mod wal;

pub use csr::LabelCsr;
pub use db::{GraphBuilder, GraphDb, NodeId, NodeNames};
pub use delta::{DeltaGraph, GraphDelta};
pub use view::GraphView;
pub use wal::{DurableGraph, EdgeMutation, RecoveryReport, SyncPolicy, WalError};
