//! Mutable graphs as **base snapshot + sorted delta overlay**.
//!
//! A [`DeltaGraph`] wraps a frozen [`GraphDb`] and a [`GraphDelta`] — four
//! per-node sorted overlays (inserted / tombstoned edges, in each
//! direction). Reads go through [`GraphView`]: each per-label or node-major
//! query merges the base CSR slice with the matching overlay sub-range in a
//! single two-pointer walk, so a read costs `O(base slice + overlay
//! sub-range)` and a node untouched by the delta reads at exactly base
//! speed.
//!
//! # Overlay invariants
//!
//! The mutation API maintains two invariants that keep the merge trivial:
//!
//! 1. **adds ∩ base = ∅** — an insert of an edge already in the base is a
//!    no-op (unless it revives a tombstone, which just removes the
//!    tombstone). The merge iterator therefore never sees equal heads.
//! 2. **dels ⊆ base** — tombstones only ever name base edges (deleting an
//!    overlay insert removes it from `adds` directly). Since both the base
//!    slice and the tombstone sub-range are ascending, tombstones are
//!    consumed in lockstep with the base heads they cancel.
//!
//! Together these make every degree an exact `base − dels + adds` count and
//! keep [`DeltaGraph::num_edges`] maintainable in O(1) per mutation.
//!
//! # Compaction
//!
//! The overlay is a read-amplification tax: every query pays a sub-range
//! binary search per touched node. Past a configurable mutation budget
//! ([`DeltaGraph::should_compact`]) the owner calls
//! [`DeltaGraph::compact`] to rebuild a frozen [`GraphDb`] (full CSR
//! build, `O(V + E)`) and start a fresh, empty delta on top of it.
//!
//! Cache interplay: the relation catalog in `crpq-core` keys invalidation
//! by **label footprint** — after mutating label `ℓ`, only cached
//! relations whose NFA alphabet mentions `ℓ` need eviction. The mutation
//! methods here return enough information (`true` = graph changed) for
//! the caller to drive that invalidation.

use crate::db::{GraphBuilder, GraphDb, NodeId, NodeNames};
use crate::view::GraphView;
use crpq_util::{FxHashMap, Interner, Symbol};

/// Sorted edge-overlay of a [`DeltaGraph`]: inserted and tombstoned edges,
/// indexed per node in both directions. Each `Vec` is kept sorted by
/// `(label, node)`, so the per-label sub-range is found by two
/// `partition_point` probes and merges against the base CSR slice without
/// any further comparisons on label.
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// `adds_out[u]` = inserted `(label, target)` pairs, sorted.
    adds_out: FxHashMap<u32, Vec<(Symbol, NodeId)>>,
    /// `dels_out[u]` = tombstoned base `(label, target)` pairs, sorted.
    dels_out: FxHashMap<u32, Vec<(Symbol, NodeId)>>,
    /// Reverse orientation of `adds_out`: `adds_in[v]` = `(label, source)`.
    adds_in: FxHashMap<u32, Vec<(Symbol, NodeId)>>,
    /// Reverse orientation of `dels_out`.
    dels_in: FxHashMap<u32, Vec<(Symbol, NodeId)>>,
    /// Live inserted edges (adds minus later deletes of those adds).
    inserted: usize,
    /// Live tombstones over base edges.
    deleted: usize,
}

const EMPTY_OVERLAY: &[(Symbol, NodeId)] = &[];

impl GraphDelta {
    fn out_adds(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        self.adds_out.get(&v.0).map_or(EMPTY_OVERLAY, |l| l)
    }

    fn out_dels(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        self.dels_out.get(&v.0).map_or(EMPTY_OVERLAY, |l| l)
    }

    fn in_adds(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        self.adds_in.get(&v.0).map_or(EMPTY_OVERLAY, |l| l)
    }

    fn in_dels(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        self.dels_in.get(&v.0).map_or(EMPTY_OVERLAY, |l| l)
    }

    /// Live inserted edges in the overlay.
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// Live tombstones over base edges.
    pub fn deleted(&self) -> usize {
        self.deleted
    }

    /// Overlay size — the compaction pressure metric.
    pub fn len(&self) -> usize {
        self.inserted + self.deleted
    }

    /// Whether the overlay is empty (reads are pure base reads).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The per-label sub-range of a sorted `(label, node)` overlay list.
fn label_range(list: &[(Symbol, NodeId)], label: Symbol) -> &[(Symbol, NodeId)] {
    let lo = list.partition_point(|&(l, _)| l < label);
    let hi = lo + list[lo..].partition_point(|&(l, _)| l <= label);
    &list[lo..hi]
}

/// Insert `entry` into a sorted overlay list; `false` if already present.
fn sorted_insert(list: &mut Vec<(Symbol, NodeId)>, entry: (Symbol, NodeId)) -> bool {
    match list.binary_search(&entry) {
        Ok(_) => false,
        Err(pos) => {
            list.insert(pos, entry);
            true
        }
    }
}

/// Remove `entry` from a sorted overlay list; `false` if absent.
fn sorted_remove(list: &mut Vec<(Symbol, NodeId)>, entry: (Symbol, NodeId)) -> bool {
    match list.binary_search(&entry) {
        Ok(pos) => {
            list.remove(pos);
            true
        }
        Err(_) => false,
    }
}

fn overlay_contains(list: &[(Symbol, NodeId)], entry: (Symbol, NodeId)) -> bool {
    list.binary_search(&entry).is_ok()
}

/// Default mutation budget before [`DeltaGraph::should_compact`] reports
/// true: large enough that churny workloads amortise the `O(V + E)`
/// rebuild, small enough that the overlay's per-read merge tax stays a
/// small fraction of base slice length on 10⁵-node graphs.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 1 << 14;

/// A frozen [`GraphDb`] base plus a mutable sorted overlay, readable
/// through [`GraphView`]. See the [module docs](self) for the overlay
/// invariants and compaction policy.
#[derive(Clone, Debug)]
pub struct DeltaGraph {
    base: GraphDb,
    delta: GraphDelta,
    /// Nodes appended past `base.num_nodes()` by [`Self::add_node`].
    added_nodes: usize,
    /// Maintained incrementally: `base.num_edges() − deleted + inserted`.
    num_edges: usize,
    compact_threshold: usize,
}

impl DeltaGraph {
    /// Wrap a frozen snapshot with an empty overlay and the
    /// [default](DEFAULT_COMPACT_THRESHOLD) compaction budget.
    pub fn new(base: GraphDb) -> Self {
        Self::with_compact_threshold(base, DEFAULT_COMPACT_THRESHOLD)
    }

    /// [`Self::new`] with an explicit compaction budget (mutations applied
    /// before [`Self::should_compact`] reports true).
    pub fn with_compact_threshold(base: GraphDb, compact_threshold: usize) -> Self {
        let num_edges = base.num_edges();
        DeltaGraph {
            base,
            delta: GraphDelta::default(),
            added_nodes: 0,
            num_edges,
            compact_threshold,
        }
    }

    /// The frozen base snapshot under the overlay.
    pub fn base(&self) -> &GraphDb {
        &self.base
    }

    /// The current overlay.
    pub fn delta(&self) -> &GraphDelta {
        &self.delta
    }

    /// Intern an edge label (existing labels keep their id; labels new to
    /// the base alphabet get fresh ids whose base CSR slices are empty —
    /// their edges live purely in the overlay until compaction).
    pub fn label(&mut self, name: &str) -> Symbol {
        self.base.alphabet_mut().intern(name)
    }

    /// Append a fresh node (dense id `num_nodes()` before the call).
    /// Overlay-added nodes are anonymous; compaction assigns `_d{id}`
    /// names on named bases.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.num_nodes() as u32);
        self.added_nodes += 1;
        id
    }

    /// Insert the edge `u --label--> v`. Returns `true` iff the graph
    /// changed (`false` when the edge already exists). Inserting an edge
    /// tombstoned by an earlier delete revives the base edge by removing
    /// the tombstone, preserving the *adds ∩ base = ∅* invariant.
    ///
    /// # Panics
    /// If `u` or `v` is out of range.
    pub fn insert_edge(&mut self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        let n = self.num_nodes();
        assert!(
            u.index() < n && v.index() < n,
            "insert_edge({u:?}, {v:?}) out of range for {n} nodes"
        );
        // Revive a tombstoned base edge: drop the tombstone.
        if let Some(dels) = self.delta.dels_out.get_mut(&u.0) {
            if sorted_remove(dels, (label, v)) {
                let dels_in = self.delta.dels_in.get_mut(&v.0).expect("tombstone pair"); // invariant: adds/dels maps are kept pairwise consistent
                let removed = sorted_remove(dels_in, (label, u));
                debug_assert!(removed, "tombstone missing reverse orientation");
                self.delta.deleted -= 1;
                self.num_edges += 1;
                return true;
            }
        }
        if self.base.has_edge(u, label, v) || overlay_contains(self.delta.out_adds(u), (label, v)) {
            return false;
        }
        sorted_insert(self.delta.adds_out.entry(u.0).or_default(), (label, v));
        sorted_insert(self.delta.adds_in.entry(v.0).or_default(), (label, u));
        self.delta.inserted += 1;
        self.num_edges += 1;
        true
    }

    /// Delete the edge `u --label--> v`. Returns `true` iff the graph
    /// changed (`false` when no such edge exists). Deleting an overlay
    /// insert removes it from `adds`; deleting a base edge records a
    /// tombstone (the *dels ⊆ base* invariant).
    pub fn delete_edge(&mut self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        if let Some(adds) = self.delta.adds_out.get_mut(&u.0) {
            if sorted_remove(adds, (label, v)) {
                let adds_in = self.delta.adds_in.get_mut(&v.0).expect("insert pair"); // invariant: adds/dels maps are kept pairwise consistent
                let removed = sorted_remove(adds_in, (label, u));
                debug_assert!(removed, "insert missing reverse orientation");
                self.delta.inserted -= 1;
                self.num_edges -= 1;
                return true;
            }
        }
        if !self.base.has_edge(u, label, v) || overlay_contains(self.delta.out_dels(u), (label, v))
        {
            return false;
        }
        sorted_insert(self.delta.dels_out.entry(u.0).or_default(), (label, v));
        sorted_insert(self.delta.dels_in.entry(v.0).or_default(), (label, u));
        self.delta.deleted += 1;
        self.num_edges -= 1;
        true
    }

    /// Whether the overlay has outgrown its mutation budget and the owner
    /// should [`compact`](Self::compact).
    pub fn should_compact(&self) -> bool {
        self.delta.len() + self.added_nodes >= self.compact_threshold
    }

    /// The configured mutation budget.
    pub fn compact_threshold(&self) -> usize {
        self.compact_threshold
    }

    /// Reconfigure the mutation budget (takes effect on the next
    /// [`Self::should_compact`] check).
    pub fn set_compact_threshold(&mut self, compact_threshold: usize) {
        self.compact_threshold = compact_threshold;
    }

    /// Rebuild a frozen [`GraphDb`] equivalent to this view (full
    /// counting-sort CSR build, `O(V + E)`); the overlay is consumed.
    /// Overlay-added nodes on a named base are assigned fresh `_d{id}`
    /// names (salted on the off-chance the base already used one).
    pub fn compact(self) -> GraphDb {
        let n_total = self.num_nodes();
        let base_n = self.base.num_nodes();
        let alphabet: Interner = self.base.alphabet().clone();
        let mut b = match self.base.names() {
            NodeNames::Anonymous => GraphBuilder::anonymous_with_alphabet(n_total, alphabet),
            NodeNames::Named(_) => {
                let mut b = GraphBuilder::with_alphabet(alphabet);
                for i in 0..base_n {
                    b.node(self.base.node_name(NodeId(i as u32)));
                }
                for i in base_n..n_total {
                    let mut salt = 0usize;
                    loop {
                        let name = if salt == 0 {
                            format!("_d{i}")
                        } else {
                            format!("_d{i}_{salt}")
                        };
                        let before = b.num_nodes();
                        let id = b.node(&name);
                        if b.num_nodes() > before {
                            debug_assert_eq!(id.index(), i);
                            break;
                        }
                        salt += 1;
                    }
                }
                b
            }
        };
        for v in 0..n_total {
            let v = NodeId(v as u32);
            for (l, t) in self.out_edges_iter(v) {
                b.edge_ids(v, l, t);
            }
        }
        let compacted = b.finish();
        debug_assert_eq!(compacted.num_edges(), self.num_edges);
        compacted
    }

    /// In-place [`compact`](Self::compact): folds the overlay into a fresh
    /// frozen base and leaves `self` holding it with an empty delta, the
    /// configured threshold preserved. Spares callers the
    /// `mem::replace` dance the by-value `compact` forces on `&mut`
    /// holders.
    pub fn compact_in_place(&mut self) {
        if self.delta.is_empty() && self.added_nodes == 0 {
            return;
        }
        let threshold = self.compact_threshold;
        let placeholder =
            DeltaGraph::with_compact_threshold(GraphBuilder::anonymous(0).finish(), threshold);
        let owned = std::mem::replace(self, placeholder);
        *self = DeltaGraph::with_compact_threshold(owned.compact(), threshold);
    }
}

/// Merged per-label neighbour iterator: base CSR slice minus tombstones,
/// interleaved with overlay inserts, in ascending node-id order. The
/// overlay invariants guarantee no equal heads (adds ∩ base = ∅) and that
/// tombstones cancel base heads in lockstep (dels ⊆ base, both sorted).
pub struct DeltaNeighbors<'a> {
    base: &'a [NodeId],
    adds: &'a [(Symbol, NodeId)],
    dels: &'a [(Symbol, NodeId)],
}

impl<'a> Iterator for DeltaNeighbors<'a> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if let Some(&bv) = self.base.first() {
                if let Some(&(_, dv)) = self.dels.first() {
                    if dv == bv {
                        self.base = &self.base[1..];
                        self.dels = &self.dels[1..];
                        continue;
                    }
                }
                match self.adds.first() {
                    Some(&(_, av)) if av < bv => {
                        self.adds = &self.adds[1..];
                        return Some(av);
                    }
                    _ => {
                        self.base = &self.base[1..];
                        return Some(bv);
                    }
                }
            }
            let &(_, av) = self.adds.first()?;
            self.adds = &self.adds[1..];
            return Some(av);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() + self.adds.len() - self.dels.len();
        (n, Some(n))
    }
}

/// Merged node-major edge iterator over `(label, node)` pairs, ordered by
/// `(label, node)`; same merge discipline as [`DeltaNeighbors`].
pub struct DeltaEdges<'a> {
    base: &'a [(Symbol, NodeId)],
    adds: &'a [(Symbol, NodeId)],
    dels: &'a [(Symbol, NodeId)],
}

impl<'a> Iterator for DeltaEdges<'a> {
    type Item = (Symbol, NodeId);

    fn next(&mut self) -> Option<(Symbol, NodeId)> {
        loop {
            if let Some(&b) = self.base.first() {
                if let Some(&d) = self.dels.first() {
                    if d == b {
                        self.base = &self.base[1..];
                        self.dels = &self.dels[1..];
                        continue;
                    }
                }
                match self.adds.first() {
                    Some(&a) if a < b => {
                        self.adds = &self.adds[1..];
                        return Some(a);
                    }
                    _ => {
                        self.base = &self.base[1..];
                        return Some(b);
                    }
                }
            }
            let &a = self.adds.first()?;
            self.adds = &self.adds[1..];
            return Some(a);
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() + self.adds.len() - self.dels.len();
        (n, Some(n))
    }
}

impl GraphView for DeltaGraph {
    type Neighbors<'a> = DeltaNeighbors<'a>;
    type NodeEdges<'a> = DeltaEdges<'a>;

    fn num_nodes(&self) -> usize {
        self.base.num_nodes() + self.added_nodes
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn alphabet(&self) -> &Interner {
        self.base.alphabet()
    }

    fn successors(&self, v: NodeId, label: Symbol) -> DeltaNeighbors<'_> {
        let base = if v.index() < self.base.num_nodes() {
            self.base.successors_slice(v, label)
        } else {
            &[]
        };
        DeltaNeighbors {
            base,
            adds: label_range(self.delta.out_adds(v), label),
            dels: label_range(self.delta.out_dels(v), label),
        }
    }

    fn predecessors(&self, v: NodeId, label: Symbol) -> DeltaNeighbors<'_> {
        let base = if v.index() < self.base.num_nodes() {
            self.base.predecessors_slice(v, label)
        } else {
            &[]
        };
        DeltaNeighbors {
            base,
            adds: label_range(self.delta.in_adds(v), label),
            dels: label_range(self.delta.in_dels(v), label),
        }
    }

    fn out_degree(&self, v: NodeId, label: Symbol) -> usize {
        let base = if v.index() < self.base.num_nodes() {
            self.base.successors_slice(v, label).len()
        } else {
            0
        };
        base + label_range(self.delta.out_adds(v), label).len()
            - label_range(self.delta.out_dels(v), label).len()
    }

    fn in_degree(&self, v: NodeId, label: Symbol) -> usize {
        let base = if v.index() < self.base.num_nodes() {
            self.base.predecessors_slice(v, label).len()
        } else {
            0
        };
        base + label_range(self.delta.in_adds(v), label).len()
            - label_range(self.delta.in_dels(v), label).len()
    }

    fn out_edges_iter(&self, v: NodeId) -> DeltaEdges<'_> {
        let base = if v.index() < self.base.num_nodes() {
            self.base.out_edges(v)
        } else {
            &[]
        };
        DeltaEdges {
            base,
            adds: self.delta.out_adds(v),
            dels: self.delta.out_dels(v),
        }
    }

    fn in_edges_iter(&self, v: NodeId) -> DeltaEdges<'_> {
        let base = if v.index() < self.base.num_nodes() {
            self.base.in_edges(v)
        } else {
            &[]
        };
        DeltaEdges {
            base,
            adds: self.delta.in_adds(v),
            dels: self.delta.in_dels(v),
        }
    }

    fn has_edge(&self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        if overlay_contains(self.delta.out_adds(u), (label, v)) {
            return true;
        }
        self.base.has_edge(u, label, v) && !overlay_contains(self.delta.out_dels(u), (label, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> GraphDb {
        let mut b = GraphBuilder::new();
        let a = b.label("a");
        let c = b.label("b");
        let (x, y, z) = (b.node("x"), b.node("y"), b.node("z"));
        b.edge_ids(x, a, y);
        b.edge_ids(x, a, z);
        b.edge_ids(y, c, z);
        b.edge_ids(z, a, x);
        b.finish()
    }

    fn succ(g: &DeltaGraph, v: NodeId, l: Symbol) -> Vec<u32> {
        g.successors(v, l).map(|n| n.0).collect()
    }

    fn pred(g: &DeltaGraph, v: NodeId, l: Symbol) -> Vec<u32> {
        g.predecessors(v, l).map(|n| n.0).collect()
    }

    #[test]
    fn empty_overlay_reads_like_base() {
        let b = base();
        let a = b.alphabet().get("a").unwrap();
        let expect: Vec<u32> = b.successors(NodeId(0), a).map(|n| n.0).collect();
        let g = DeltaGraph::new(b);
        assert_eq!(succ(&g, NodeId(0), a), expect);
        assert_eq!(g.num_edges, 4);
        assert_eq!(GraphView::num_nodes(&g), 3);
    }

    #[test]
    fn insert_merges_in_sorted_position() {
        let mut g = DeltaGraph::new(base());
        let a = g.label("a");
        // base a-successors of x (=0) are {1, 2}; add self-loop 0.
        assert!(g.insert_edge(NodeId(0), a, NodeId(0)));
        assert!(!g.insert_edge(NodeId(0), a, NodeId(0)), "duplicate insert");
        assert!(!g.insert_edge(NodeId(0), a, NodeId(1)), "already in base");
        assert_eq!(succ(&g, NodeId(0), a), vec![0, 1, 2]);
        assert_eq!(pred(&g, NodeId(0), a), vec![0, 2]);
        assert_eq!(g.out_degree(NodeId(0), a), 3);
        assert_eq!(GraphView::num_edges(&g), 5);
        assert!(g.has_edge(NodeId(0), a, NodeId(0)));
    }

    #[test]
    fn delete_tombstones_base_and_revives() {
        let mut g = DeltaGraph::new(base());
        let a = g.label("a");
        assert!(g.delete_edge(NodeId(0), a, NodeId(1)));
        assert!(!g.delete_edge(NodeId(0), a, NodeId(1)), "double delete");
        assert_eq!(succ(&g, NodeId(0), a), vec![2]);
        assert_eq!(pred(&g, NodeId(1), a), Vec::<u32>::new());
        assert!(!g.has_edge(NodeId(0), a, NodeId(1)));
        assert_eq!(GraphView::num_edges(&g), 3);
        assert_eq!(g.out_degree(NodeId(0), a), 1);
        // Revive: the tombstone disappears, adds stay empty.
        assert!(g.insert_edge(NodeId(0), a, NodeId(1)));
        assert!(g.delta().is_empty());
        assert_eq!(succ(&g, NodeId(0), a), vec![1, 2]);
        assert_eq!(GraphView::num_edges(&g), 4);
    }

    #[test]
    fn delete_overlay_insert_removes_it() {
        let mut g = DeltaGraph::new(base());
        let a = g.label("a");
        assert!(g.insert_edge(NodeId(1), a, NodeId(0)));
        assert!(g.delete_edge(NodeId(1), a, NodeId(0)));
        assert!(g.delta().is_empty());
        assert_eq!(GraphView::num_edges(&g), 4);
        assert!(!g.delete_edge(NodeId(1), a, NodeId(0)), "nothing left");
    }

    #[test]
    fn added_nodes_and_new_labels_work_through_the_view() {
        let mut g = DeltaGraph::new(base());
        let fresh = g.label("fresh"); // not in base CSR
        let w = g.add_node();
        assert_eq!(w, NodeId(3));
        assert_eq!(GraphView::num_nodes(&g), 4);
        assert!(g.insert_edge(NodeId(0), fresh, w));
        assert_eq!(succ(&g, NodeId(0), fresh), vec![3]);
        assert_eq!(pred(&g, w, fresh), vec![0]);
        assert_eq!(g.in_degree(w, fresh), 1);
        let out: Vec<_> = g.out_edges_iter(w).collect();
        assert!(out.is_empty());
        let inc: Vec<_> = g.in_edges_iter(w).collect();
        assert_eq!(inc, vec![(fresh, NodeId(0))]);
    }

    #[test]
    fn node_major_merge_is_label_sorted() {
        let mut g = DeltaGraph::new(base());
        let a = g.label("a");
        let c = g.label("b");
        g.delete_edge(NodeId(0), a, NodeId(2));
        g.insert_edge(NodeId(0), c, NodeId(0));
        let out: Vec<_> = g.out_edges_iter(NodeId(0)).collect();
        assert_eq!(out, vec![(a, NodeId(1)), (c, NodeId(0))]);
    }

    #[test]
    fn compact_roundtrips_named_base() {
        let mut g = DeltaGraph::new(base());
        let a = g.label("a");
        let fresh = g.label("fresh");
        let w = g.add_node();
        g.delete_edge(NodeId(0), a, NodeId(1));
        g.insert_edge(NodeId(1), a, NodeId(1));
        g.insert_edge(NodeId(2), fresh, w);
        let expect: Vec<Vec<(Symbol, NodeId)>> = (0..4)
            .map(|v| g.out_edges_iter(NodeId(v)).collect())
            .collect();
        let frozen = g.compact();
        assert_eq!(frozen.num_nodes(), 4);
        assert_eq!(frozen.num_edges(), 5);
        assert_eq!(frozen.node_name(NodeId(0)), "x");
        assert_eq!(frozen.node_name(NodeId(3)), "_d3");
        for v in 0..4 {
            assert_eq!(frozen.out_edges(NodeId(v)), expect[v as usize]);
        }
        // CSR agrees too, including the post-base label.
        assert_eq!(frozen.successors_slice(NodeId(2), fresh), &[NodeId(3)]);
        assert!(!frozen.successors_slice(NodeId(0), a).is_empty());
    }

    #[test]
    fn compact_roundtrips_anonymous_base() {
        let mut b = GraphBuilder::anonymous(3);
        let a = b.label("a");
        b.edge_ids(NodeId(0), a, NodeId(1));
        b.edge_ids(NodeId(1), a, NodeId(2));
        let mut g = DeltaGraph::new(b.finish());
        let w = g.add_node();
        g.insert_edge(NodeId(2), a, w);
        g.delete_edge(NodeId(0), a, NodeId(1));
        let frozen = g.compact();
        assert_eq!(frozen.num_nodes(), 4);
        assert_eq!(frozen.num_edges(), 2);
        assert!(!frozen.is_named());
        assert_eq!(frozen.successors_slice(NodeId(2), a), &[NodeId(3)]);
        assert!(frozen.successors_slice(NodeId(0), a).is_empty());
    }

    #[test]
    fn compact_name_salting_survives_collision() {
        // A base that already uses the `_d{id}` name an added node would get.
        let mut b = GraphBuilder::new();
        let a = b.label("a");
        let x = b.node("x");
        let d = b.node("_d2");
        b.edge_ids(x, a, d);
        let mut g = DeltaGraph::new(b.finish());
        let w = g.add_node(); // id 2 → wants name "_d2", taken
        g.insert_edge(NodeId(0), a, w);
        let frozen = g.compact();
        assert_eq!(frozen.num_nodes(), 3);
        assert_eq!(frozen.node_name(NodeId(2)), "_d2_1");
        assert_eq!(
            frozen.successors_slice(NodeId(0), a),
            &[NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn should_compact_follows_budget() {
        let mut g = DeltaGraph::with_compact_threshold(base(), 2);
        let a = g.label("a");
        assert!(!g.should_compact());
        g.insert_edge(NodeId(0), a, NodeId(0));
        assert!(!g.should_compact());
        let bl = g.label("b");
        g.delete_edge(NodeId(1), bl, NodeId(2));
        assert!(g.should_compact());
    }
}
