//! The graph database store.
//!
//! A graph database over a finite alphabet `A` is a finite edge-labelled
//! directed graph `G = (V, E)` with `E ⊆ V × A × V` (paper §2). Nodes are
//! dense `u32` ids; labels are interned [`Symbol`]s shared with the query
//! layer through the same [`Interner`].
//!
//! Internally the store keeps **two** immutable indexes per direction,
//! built once in [`GraphBuilder::finish`]:
//!
//! * a *node-major* flat adjacency array (`(label, target)` pairs of each
//!   node stored contiguously, sorted by label then target) serving
//!   [`GraphDb::out_edges`] / [`GraphDb::in_edges`] / [`GraphDb::edges`];
//! * a *label-major* [`LabelCsr`] serving [`GraphDb::successors`] /
//!   [`GraphDb::predecessors`]: the `a`-neighbours of `v` are one
//!   contiguous slice, found by a binary search in `a`'s sparse node
//!   index (O(log |V_a|)), with no scan of `v`'s other labels.
//!
//! The label-partitioned index is what the RPQ product searches in
//! [`crate::rpq`] run on; see `crates/graph/src/csr.rs` for the layout.

use crate::csr::LabelCsr;
use crpq_util::{BitSet, FxHashMap, Interner, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense node identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An immutable edge-labelled directed graph with node-major flat adjacency
/// and label-major CSR indexes in both directions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphDb {
    labels: Interner,
    node_names: Vec<String>,
    /// Name → id (the builder's index, retained for O(1) lookup).
    node_index: FxHashMap<String, NodeId>,
    num_edges: usize,
    /// `out_adj[out_offsets[v]..out_offsets[v+1]]` = sorted `(label, target)`
    /// pairs of `v`.
    out_offsets: Vec<u32>,
    out_adj: Vec<(Symbol, NodeId)>,
    /// `in_adj[in_offsets[v]..in_offsets[v+1]]` = sorted `(label, source)`
    /// pairs of `v`.
    in_offsets: Vec<u32>,
    in_adj: Vec<(Symbol, NodeId)>,
    /// Label-partitioned forward index: `fwd.neighbors(v, a)` = targets of
    /// `v`'s outgoing `a`-edges.
    fwd: LabelCsr,
    /// Label-partitioned reverse index: `rev.neighbors(v, a)` = sources of
    /// `v`'s incoming `a`-edges.
    rev: LabelCsr,
}

impl GraphDb {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of labelled edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The edge-label alphabet.
    pub fn alphabet(&self) -> &Interner {
        &self.labels
    }

    /// Mutable access to the alphabet (append-only; existing ids are stable).
    /// Useful to parse queries mentioning labels the graph does not use —
    /// the CSR indexes treat such labels as having no edges.
    pub fn alphabet_mut(&mut self) -> &mut Interner {
        &mut self.labels
    }

    /// All alphabet symbols in id order.
    pub fn symbols(&self) -> Vec<Symbol> {
        self.labels.iter().map(|(s, _)| s).collect()
    }

    /// The name of `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Looks up a node by name — O(1) via the retained builder index.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_index.get(name).copied()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Outgoing `(label, target)` pairs of `v`, sorted by label then target.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        let (lo, hi) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        &self.out_adj[lo as usize..hi as usize]
    }

    /// Incoming `(label, source)` pairs of `v`, sorted by label then source.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        let (lo, hi) = (self.in_offsets[v.index()], self.in_offsets[v.index() + 1]);
        &self.in_adj[lo as usize..hi as usize]
    }

    /// Targets of `v`'s outgoing `label`-edges as a sorted slice — one
    /// O(log |V_label|) slot lookup in the label-partitioned sparse CSR.
    #[inline]
    pub fn successors_slice(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        self.fwd.neighbors(v, label)
    }

    /// Sources of `v`'s incoming `label`-edges as a sorted slice — one
    /// O(log |V_label|) slot lookup in the label-partitioned sparse CSR.
    #[inline]
    pub fn predecessors_slice(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        self.rev.neighbors(v, label)
    }

    /// Targets of `v`'s outgoing `label`-edges.
    pub fn successors(&self, v: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        self.successors_slice(v, label).iter().copied()
    }

    /// Sources of `v`'s incoming `label`-edges.
    pub fn predecessors(&self, v: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        self.predecessors_slice(v, label).iter().copied()
    }

    /// The forward label-partitioned CSR index.
    pub fn forward_csr(&self) -> &LabelCsr {
        &self.fwd
    }

    /// The reverse label-partitioned CSR index.
    pub fn reverse_csr(&self) -> &LabelCsr {
        &self.rev
    }

    /// Approximate heap bytes of the adjacency indexes (node-major flat
    /// arrays plus both label-partitioned CSRs) — the peak-RSS proxy the
    /// scale benchmarks record. Excludes node names and the name index,
    /// which are workload metadata rather than query-path structures.
    pub fn index_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<u32>()
            + (self.out_adj.len() + self.in_adj.len()) * std::mem::size_of::<(Symbol, NodeId)>()
            + self.fwd.heap_bytes()
            + self.rev.heap_bytes()
    }

    /// Whether the edge `u -label-> v` exists (binary search in the CSR).
    pub fn has_edge(&self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        self.fwd.has_edge(u, label, v)
    }

    /// All edges as `(source, label, target)` triples, in source order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        self.nodes()
            .flat_map(|u| self.out_edges(u).iter().map(move |&(s, v)| (u, s, v)))
    }

    /// A fresh bitset sized for this graph's nodes.
    pub fn node_set(&self) -> BitSet {
        BitSet::new(self.num_nodes())
    }

    /// The reversed graph: every edge `u -l-> v` becomes `v -l-> u`.
    ///
    /// Combined with [`crpq_automata::Nfa::reverse`], this supports backward
    /// RPQ reachability (`{src : dst reachable from src}`) without a
    /// dedicated backward search. O(1) beyond cloning: the two index
    /// directions swap roles.
    pub fn reversed(&self) -> GraphDb {
        GraphDb {
            labels: self.labels.clone(),
            node_names: self.node_names.clone(),
            node_index: self.node_index.clone(),
            num_edges: self.num_edges,
            out_offsets: self.in_offsets.clone(),
            out_adj: self.in_adj.clone(),
            in_offsets: self.out_offsets.clone(),
            in_adj: self.out_adj.clone(),
            fwd: self.rev.clone(),
            rev: self.fwd.clone(),
        }
    }

    /// Converts back into a builder (e.g. to extend a generated graph).
    pub fn into_builder(self) -> GraphBuilder {
        let mut b = GraphBuilder::with_alphabet(self.labels.clone());
        for name in &self.node_names {
            b.node(name);
        }
        for (u, s, v) in self.edges() {
            b.edge_ids(u, s, v);
        }
        b
    }
}

/// Mutable builder for [`GraphDb`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: Interner,
    node_names: Vec<String>,
    node_index: FxHashMap<String, NodeId>,
    edges: Vec<(NodeId, Symbol, NodeId)>,
}

impl GraphBuilder {
    /// A builder with an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder reusing an existing alphabet (so symbol ids line up with
    /// already-parsed queries).
    pub fn with_alphabet(labels: Interner) -> Self {
        Self {
            labels,
            ..Self::default()
        }
    }

    /// The alphabet under construction.
    pub fn alphabet(&self) -> &Interner {
        &self.labels
    }

    /// Mutable alphabet access.
    pub fn alphabet_mut(&mut self) -> &mut Interner {
        &mut self.labels
    }

    /// Interns a label.
    pub fn label(&mut self, name: &str) -> Symbol {
        self.labels.intern(name)
    }

    /// Returns the node named `name`, creating it if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_owned());
        self.node_index.insert(name.to_owned(), id);
        id
    }

    /// Creates a fresh anonymous node.
    pub fn fresh_node(&mut self) -> NodeId {
        let name = format!("_n{}", self.node_names.len());
        self.node(&name)
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Adds the edge `u -label-> v` by names, creating nodes/labels as needed.
    pub fn edge(&mut self, u: &str, label: &str, v: &str) -> &mut Self {
        let (u, v) = (self.node(u), self.node(v));
        let l = self.labels.intern(label);
        self.edges.push((u, l, v));
        self
    }

    /// Adds the edge by pre-interned ids.
    pub fn edge_ids(&mut self, u: NodeId, label: Symbol, v: NodeId) -> &mut Self {
        debug_assert!(u.index() < self.node_names.len() && v.index() < self.node_names.len());
        self.edges.push((u, label, v));
        self
    }

    /// Finalises into an immutable, fully indexed [`GraphDb`].
    /// Duplicate edges are deduplicated.
    pub fn finish(mut self) -> GraphDb {
        let n = self.node_names.len();
        // Deduplicate in (source, label, target) order — this is also the
        // order the node-major flat arrays want.
        self.edges.sort_unstable_by_key(|&(u, l, v)| (u, l, v));
        self.edges.dedup();
        let num_edges = self.edges.len();

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 1..out_offsets.len() {
            out_offsets[i] += out_offsets[i - 1];
        }
        let out_adj: Vec<(Symbol, NodeId)> = self.edges.iter().map(|&(_, l, v)| (l, v)).collect();

        // Reverse flat adjacency: counting sort by target.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, _, v) in &self.edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 1..in_offsets.len() {
            in_offsets[i] += in_offsets[i - 1];
        }
        let mut cursor = in_offsets[..n].to_vec();
        let mut in_adj = vec![(Symbol(0), NodeId(0)); num_edges];
        for &(u, l, v) in &self.edges {
            in_adj[cursor[v.index()] as usize] = (l, u);
            cursor[v.index()] += 1;
        }
        for v in 0..n {
            let (lo, hi) = (in_offsets[v] as usize, in_offsets[v + 1] as usize);
            in_adj[lo..hi].sort_unstable();
        }

        let num_labels = self.labels.len();
        let fwd = LabelCsr::build(n, num_labels, &self.edges);
        let reversed: Vec<(NodeId, Symbol, NodeId)> =
            self.edges.iter().map(|&(u, l, v)| (v, l, u)).collect();
        let rev = LabelCsr::build(n, num_labels, &reversed);

        GraphDb {
            labels: self.labels,
            node_names: self.node_names,
            node_index: self.node_index,
            num_edges,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            fwd,
            rev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> GraphDb {
        // u -a-> v -b-> w, u -b-> x -a-> w
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("v", "b", "w");
        b.edge("u", "b", "x");
        b.edge("x", "a", "w");
        b.finish()
    }

    #[test]
    fn build_and_query_adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        let (u, v, w) = (
            g.node_by_name("u").unwrap(),
            g.node_by_name("v").unwrap(),
            g.node_by_name("w").unwrap(),
        );
        let a = g.alphabet().get("a").unwrap();
        let b = g.alphabet().get("b").unwrap();
        assert!(g.has_edge(u, a, v));
        assert!(!g.has_edge(u, a, w));
        assert_eq!(g.successors(u, a).collect::<Vec<_>>(), vec![v]);
        assert_eq!(g.predecessors(w, b).collect::<Vec<_>>(), vec![v]);
        assert_eq!(g.node_name(u), "u");
        assert_eq!(g.node_by_name("nope"), None);
    }

    #[test]
    fn duplicate_edges_are_dedup() {
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("u", "a", "v");
        let g = b.finish();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parallel_labels_coexist() {
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("u", "b", "v");
        let g = b.finish();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_edges(g.node_by_name("u").unwrap()).len(), 2);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let rebuilt = g.clone().into_builder().finish();
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        assert_eq!(rebuilt.num_nodes(), g.num_nodes());
        for (u, s, v) in g.edges() {
            assert!(rebuilt.has_edge(u, s, v));
        }
    }

    #[test]
    fn fresh_nodes_are_distinct() {
        let mut b = GraphBuilder::new();
        let n1 = b.fresh_node();
        let n2 = b.fresh_node();
        assert_ne!(n1, n2);
        let named = b.node("hello");
        assert_ne!(named, n1);
        assert_eq!(b.num_nodes(), 3);
    }

    #[test]
    fn flat_and_csr_indexes_agree() {
        let g = diamond();
        for v in g.nodes() {
            for (sym, _) in g.alphabet().iter() {
                let from_flat: Vec<NodeId> = g
                    .out_edges(v)
                    .iter()
                    .filter(|&&(s, _)| s == sym)
                    .map(|&(_, t)| t)
                    .collect();
                assert_eq!(g.successors_slice(v, sym), &from_flat[..]);
                let from_flat_in: Vec<NodeId> = g
                    .in_edges(v)
                    .iter()
                    .filter(|&&(s, _)| s == sym)
                    .map(|&(_, t)| t)
                    .collect();
                assert_eq!(g.predecessors_slice(v, sym), &from_flat_in[..]);
            }
        }
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        for (u, s, v) in g.edges() {
            assert!(r.has_edge(v, s, u));
        }
        let a = g.alphabet().get("a").unwrap();
        let (u, v) = (g.node_by_name("u").unwrap(), g.node_by_name("v").unwrap());
        assert_eq!(r.successors(v, a).collect::<Vec<_>>(), vec![u]);
    }

    #[test]
    fn labels_interned_after_finish_have_no_edges() {
        let mut g = diamond();
        let zz = g.alphabet_mut().intern("zz");
        let u = g.node_by_name("u").unwrap();
        assert_eq!(g.successors_slice(u, zz), &[] as &[NodeId]);
        assert_eq!(g.predecessors_slice(u, zz), &[] as &[NodeId]);
        assert!(!g.has_edge(u, zz, u));
    }
}
