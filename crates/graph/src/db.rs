//! The graph database store.
//!
//! A graph database over a finite alphabet `A` is a finite edge-labelled
//! directed graph `G = (V, E)` with `E ⊆ V × A × V` (paper §2). Nodes are
//! dense `u32` ids; labels are interned [`Symbol`]s shared with the query
//! layer through the same [`Interner`].
//!
//! Internally the store keeps **two** immutable indexes per direction,
//! built once in [`GraphBuilder::finish`]:
//!
//! * a *node-major* flat adjacency array (`(label, target)` pairs of each
//!   node stored contiguously, sorted by label then target) serving
//!   [`GraphDb::out_edges`] / [`GraphDb::in_edges`] / [`GraphDb::edges`];
//! * a *label-major* [`LabelCsr`] serving [`GraphDb::successors`] /
//!   [`GraphDb::predecessors`]: the `a`-neighbours of `v` are one
//!   contiguous slice, found by a binary search in `a`'s sparse node
//!   index (O(log |V_a|)), with no scan of `v`'s other labels.
//!
//! The label-partitioned index is what the RPQ product searches in
//! [`crate::rpq`] run on; see `crates/graph/src/csr.rs` for the layout.
//!
//! A frozen [`GraphDb`] is the canonical implementor of
//! [`GraphView`](crate::view::GraphView), the read-path trait every query
//! algorithm is generic over: its trait iterators are `Copied` slice
//! iterators over the two indexes above, so generic code monomorphised
//! here is the concrete slice code. Mutation never touches a built
//! [`GraphDb`] — dynamic workloads wrap it in a
//! [`DeltaGraph`](crate::delta::DeltaGraph) overlay and periodically
//! compact back to a frozen snapshot. The one mutable entry point,
//! [`GraphDb::alphabet_mut`], only *interns labels*; labels interned after
//! the CSR build read as empty (see the post-build guard on that method).
//!
//! # Node-name storage and the O(touched) memory contract
//!
//! Node names are workload metadata, not query-path structures, and at
//! `|V| = 10⁶`+ they are a first-order memory term of their own. The store
//! therefore keeps them in one of two [`NodeNames`] modes:
//!
//! * **Named** — a single [`NameArena`]: one shared byte buffer plus `u32`
//!   span offsets and a hash index keyed by span. Each name's bytes are
//!   stored exactly once (≈ `Σ len(name) + 8` bytes per node), against the
//!   ≥ 48 bytes/node of the former `Vec<String>` + `HashMap<String, _>`
//!   pair — no per-name heap allocation, no second copy in the index.
//! * **Anonymous** — no names at all ([`GraphBuilder::anonymous`]): nodes
//!   are pure dense ids. This is the mode for *generated* workloads
//!   (benchmarks, scale smoke graphs), where `v123`-style names carry no
//!   information the id doesn't; name storage is exactly 0 bytes.
//!
//! [`GraphDb::node_name`] panics on anonymous graphs (it cannot borrow a
//! name that does not exist); display paths use [`GraphDb::display_name`],
//! which falls back to the canonical `#id` rendering. The scale benchmarks
//! assert the arena contract through [`GraphDb::name_bytes`].

use crate::csr::LabelCsr;
use crpq_util::{BitSet, Interner, NameArena, Symbol};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Dense node identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Node-name storage mode: an arena of interned names, or none at all.
/// See the module docs for the memory contract.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum NodeNames {
    /// Every node has a name, stored once in a shared [`NameArena`];
    /// node id `i` is arena id `i` (the builder interns in id order).
    Named(NameArena),
    /// Nodes are pure dense ids — generated workloads at scale.
    Anonymous,
}

impl NodeNames {
    /// Heap bytes of the name storage (0 for anonymous graphs).
    pub fn heap_bytes(&self) -> usize {
        match self {
            NodeNames::Named(arena) => arena.heap_bytes(),
            NodeNames::Anonymous => 0,
        }
    }
}

/// An immutable edge-labelled directed graph with node-major flat adjacency
/// and label-major CSR indexes in both directions.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphDb {
    labels: Interner,
    num_nodes: usize,
    /// Arena-interned node names, or nothing (anonymous graphs).
    names: NodeNames,
    num_edges: usize,
    /// `out_adj[out_offsets[v]..out_offsets[v+1]]` = sorted `(label, target)`
    /// pairs of `v`.
    out_offsets: Vec<u32>,
    out_adj: Vec<(Symbol, NodeId)>,
    /// `in_adj[in_offsets[v]..in_offsets[v+1]]` = sorted `(label, source)`
    /// pairs of `v`.
    in_offsets: Vec<u32>,
    in_adj: Vec<(Symbol, NodeId)>,
    /// Label-partitioned forward index: `fwd.neighbors(v, a)` = targets of
    /// `v`'s outgoing `a`-edges.
    fwd: LabelCsr,
    /// Label-partitioned reverse index: `rev.neighbors(v, a)` = sources of
    /// `v`'s incoming `a`-edges.
    rev: LabelCsr,
}

impl GraphDb {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of labelled edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The edge-label alphabet.
    pub fn alphabet(&self) -> &Interner {
        &self.labels
    }

    /// Mutable access to the alphabet (append-only; existing ids are stable).
    /// Useful to parse queries mentioning labels the graph does not use —
    /// the CSR indexes treat such labels as having no edges.
    ///
    /// **Post-build guard**: a symbol interned here *after* the CSR was
    /// built has an id at or past the CSR's label count. Every adjacency
    /// accessor ([`Self::successors_slice`], [`Self::predecessors_slice`],
    /// [`Self::has_edge`] and the [`crate::view::GraphView`] surface)
    /// bounds-checks the label id and answers with an **empty slice /
    /// `false`**, never a panic or a stale row — the contract
    /// `labels_interned_after_finish_have_empty_slices` pins. This is also
    /// what [`crate::delta::DeltaGraph::label`] relies on: fresh labels
    /// live purely in the overlay until compaction.
    pub fn alphabet_mut(&mut self) -> &mut Interner {
        &mut self.labels
    }

    /// All alphabet symbols in id order.
    pub fn symbols(&self) -> Vec<Symbol> {
        self.labels.iter().map(|(s, _)| s).collect()
    }

    /// How node names are stored (arena vs. anonymous).
    pub fn names(&self) -> &NodeNames {
        &self.names
    }

    /// Whether this graph stores node names at all.
    pub fn is_named(&self) -> bool {
        matches!(self.names, NodeNames::Named(_))
    }

    /// The name of `node`. Panics on anonymous graphs — display paths that
    /// must handle both modes use [`Self::display_name`].
    pub fn node_name(&self, node: NodeId) -> &str {
        match &self.names {
            NodeNames::Named(arena) => arena.resolve(node.0),
            NodeNames::Anonymous => {
                panic!("node_name({node:?}) on an anonymous graph — use display_name")
            }
        }
    }

    /// The name of `node` if the graph is named.
    pub fn try_node_name(&self, node: NodeId) -> Option<&str> {
        match &self.names {
            NodeNames::Named(arena) => Some(arena.resolve(node.0)),
            NodeNames::Anonymous => None,
        }
    }

    /// A printable name for `node` in either mode: the stored name, or the
    /// canonical `#id` rendering for anonymous graphs.
    pub fn display_name(&self, node: NodeId) -> Cow<'_, str> {
        match self.try_node_name(node) {
            Some(name) => Cow::Borrowed(name),
            None => Cow::Owned(format!("#{}", node.0)),
        }
    }

    /// Looks up a node by name — O(1) via the arena's hash index. Always
    /// `None` on anonymous graphs.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        match &self.names {
            NodeNames::Named(arena) => arena.get(name).map(NodeId),
            NodeNames::Anonymous => None,
        }
    }

    /// Heap bytes of the node-name storage: the arena's single byte buffer
    /// plus offsets/index for named graphs, exactly 0 for anonymous ones.
    /// Together with [`Self::index_bytes`] this is the build-side memory
    /// term the scale benchmarks assert on.
    pub fn name_bytes(&self) -> usize {
        self.names.heap_bytes()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Outgoing `(label, target)` pairs of `v`, sorted by label then target.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        let (lo, hi) = (self.out_offsets[v.index()], self.out_offsets[v.index() + 1]);
        &self.out_adj[lo as usize..hi as usize]
    }

    /// Incoming `(label, source)` pairs of `v`, sorted by label then source.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        let (lo, hi) = (self.in_offsets[v.index()], self.in_offsets[v.index() + 1]);
        &self.in_adj[lo as usize..hi as usize]
    }

    /// Targets of `v`'s outgoing `label`-edges as a sorted slice — one
    /// O(log |V_label|) slot lookup in the label-partitioned sparse CSR.
    #[inline]
    pub fn successors_slice(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        self.fwd.neighbors(v, label)
    }

    /// Sources of `v`'s incoming `label`-edges as a sorted slice — one
    /// O(log |V_label|) slot lookup in the label-partitioned sparse CSR.
    #[inline]
    pub fn predecessors_slice(&self, v: NodeId, label: Symbol) -> &[NodeId] {
        self.rev.neighbors(v, label)
    }

    /// Targets of `v`'s outgoing `label`-edges.
    pub fn successors(&self, v: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        self.successors_slice(v, label).iter().copied()
    }

    /// Sources of `v`'s incoming `label`-edges.
    pub fn predecessors(&self, v: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        self.predecessors_slice(v, label).iter().copied()
    }

    /// The forward label-partitioned CSR index.
    pub fn forward_csr(&self) -> &LabelCsr {
        &self.fwd
    }

    /// The reverse label-partitioned CSR index.
    pub fn reverse_csr(&self) -> &LabelCsr {
        &self.rev
    }

    /// Approximate heap bytes of the adjacency indexes (node-major flat
    /// arrays plus both label-partitioned CSRs) — the peak-RSS proxy the
    /// scale benchmarks record. Excludes node names and the name index,
    /// which are workload metadata rather than query-path structures.
    pub fn index_bytes(&self) -> usize {
        (self.out_offsets.len() + self.in_offsets.len()) * std::mem::size_of::<u32>()
            + (self.out_adj.len() + self.in_adj.len()) * std::mem::size_of::<(Symbol, NodeId)>()
            + self.fwd.heap_bytes()
            + self.rev.heap_bytes()
    }

    /// Whether the edge `u -label-> v` exists (binary search in the CSR).
    pub fn has_edge(&self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        self.fwd.has_edge(u, label, v)
    }

    /// All edges as `(source, label, target)` triples, in source order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        self.nodes()
            .flat_map(|u| self.out_edges(u).iter().map(move |&(s, v)| (u, s, v)))
    }

    /// A fresh bitset sized for this graph's nodes.
    pub fn node_set(&self) -> BitSet {
        BitSet::new(self.num_nodes())
    }

    /// The reversed graph: every edge `u -l-> v` becomes `v -l-> u`.
    ///
    /// Combined with [`crpq_automata::Nfa::reverse`], this supports backward
    /// RPQ reachability (`{src : dst reachable from src}`) without a
    /// dedicated backward search. O(1) beyond cloning: the two index
    /// directions swap roles.
    pub fn reversed(&self) -> GraphDb {
        GraphDb {
            labels: self.labels.clone(),
            num_nodes: self.num_nodes,
            names: self.names.clone(),
            num_edges: self.num_edges,
            out_offsets: self.in_offsets.clone(),
            out_adj: self.in_adj.clone(),
            in_offsets: self.out_offsets.clone(),
            in_adj: self.out_adj.clone(),
            fwd: self.rev.clone(),
            rev: self.fwd.clone(),
        }
    }

    /// Converts back into a builder (e.g. to extend a generated graph).
    /// Node ids, names (or anonymity) and the alphabet carry over.
    pub fn into_builder(self) -> GraphBuilder {
        let edges: Vec<(NodeId, Symbol, NodeId)> = self.edges().collect();
        GraphBuilder {
            labels: self.labels,
            names: self.names,
            num_nodes: self.num_nodes,
            edges,
        }
    }
}

/// Mutable builder for [`GraphDb`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    labels: Interner,
    names: NodeNames,
    num_nodes: usize,
    edges: Vec<(NodeId, Symbol, NodeId)>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder {
            labels: Interner::new(),
            names: NodeNames::Named(NameArena::new()),
            num_nodes: 0,
            edges: Vec::new(),
        }
    }
}

impl GraphBuilder {
    /// A builder with an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder reusing an existing alphabet (so symbol ids line up with
    /// already-parsed queries).
    pub fn with_alphabet(labels: Interner) -> Self {
        Self {
            labels,
            ..Self::default()
        }
    }

    /// An **anonymous** builder pre-populated with `n` nameless nodes
    /// `0..n` — the mode for generated workloads at scale, where names
    /// would only duplicate the dense ids (and at `|V| = 10⁶` cost tens of
    /// MB plus millions of interner probes during construction). Edges are
    /// added by id ([`Self::edge_ids`]); the name-based [`Self::node`] /
    /// [`Self::edge`] APIs panic in this mode.
    pub fn anonymous(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "node ids are u32");
        GraphBuilder {
            names: NodeNames::Anonymous,
            num_nodes: n,
            ..Self::default()
        }
    }

    /// Like [`Self::anonymous`], reusing an existing alphabet.
    pub fn anonymous_with_alphabet(n: usize, labels: Interner) -> Self {
        GraphBuilder {
            labels,
            ..Self::anonymous(n)
        }
    }

    /// The alphabet under construction.
    pub fn alphabet(&self) -> &Interner {
        &self.labels
    }

    /// Mutable alphabet access.
    pub fn alphabet_mut(&mut self) -> &mut Interner {
        &mut self.labels
    }

    /// Interns a label.
    pub fn label(&mut self, name: &str) -> Symbol {
        self.labels.intern(name)
    }

    /// Returns the node named `name`, creating it if needed. Panics on an
    /// [`Self::anonymous`] builder (names would silently diverge from the
    /// id space); use [`Self::fresh_node`] / [`Self::edge_ids`] there.
    pub fn node(&mut self, name: &str) -> NodeId {
        match &mut self.names {
            NodeNames::Named(arena) => {
                let id = arena.intern(name);
                debug_assert!((id as usize) <= self.num_nodes, "arena/id drift");
                self.num_nodes = self.num_nodes.max(id as usize + 1);
                NodeId(id)
            }
            NodeNames::Anonymous => {
                panic!("named node `{name}` on an anonymous GraphBuilder")
            }
        }
    }

    /// Creates a fresh node: a nameless id on anonymous builders, a
    /// `_n{id}`-named node otherwise.
    pub fn fresh_node(&mut self) -> NodeId {
        match self.names {
            NodeNames::Named(_) => {
                let name = format!("_n{}", self.num_nodes);
                self.node(&name)
            }
            NodeNames::Anonymous => {
                assert!(self.num_nodes < u32::MAX as usize, "node ids are u32");
                self.num_nodes += 1;
                NodeId(self.num_nodes as u32 - 1)
            }
        }
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Adds the edge `u -label-> v` by names, creating nodes/labels as needed.
    pub fn edge(&mut self, u: &str, label: &str, v: &str) -> &mut Self {
        let (u, v) = (self.node(u), self.node(v));
        let l = self.labels.intern(label);
        self.edges.push((u, l, v));
        self
    }

    /// Adds the edge by pre-interned ids.
    pub fn edge_ids(&mut self, u: NodeId, label: Symbol, v: NodeId) -> &mut Self {
        debug_assert!(u.index() < self.num_nodes && v.index() < self.num_nodes);
        self.edges.push((u, label, v));
        self
    }

    /// Finalises into an immutable, fully indexed [`GraphDb`].
    /// Duplicate edges are deduplicated.
    pub fn finish(mut self) -> GraphDb {
        let n = self.num_nodes;
        // Deduplicate in (source, label, target) order — this is also the
        // order the node-major flat arrays want.
        self.edges.sort_unstable_by_key(|&(u, l, v)| (u, l, v));
        self.edges.dedup();
        let num_edges = self.edges.len();

        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u.index() + 1] += 1;
        }
        for i in 1..out_offsets.len() {
            out_offsets[i] += out_offsets[i - 1];
        }
        let out_adj: Vec<(Symbol, NodeId)> = self.edges.iter().map(|&(_, l, v)| (l, v)).collect();

        // Reverse flat adjacency: counting sort by target.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, _, v) in &self.edges {
            in_offsets[v.index() + 1] += 1;
        }
        for i in 1..in_offsets.len() {
            in_offsets[i] += in_offsets[i - 1];
        }
        let mut cursor = in_offsets[..n].to_vec();
        let mut in_adj = vec![(Symbol(0), NodeId(0)); num_edges];
        for &(u, l, v) in &self.edges {
            in_adj[cursor[v.index()] as usize] = (l, u);
            cursor[v.index()] += 1;
        }
        for v in 0..n {
            let (lo, hi) = (in_offsets[v] as usize, in_offsets[v + 1] as usize);
            in_adj[lo..hi].sort_unstable();
        }

        let num_labels = self.labels.len();
        let fwd = LabelCsr::build(n, num_labels, &self.edges);
        let reversed: Vec<(NodeId, Symbol, NodeId)> =
            self.edges.iter().map(|&(u, l, v)| (v, l, u)).collect();
        let rev = LabelCsr::build(n, num_labels, &reversed);

        GraphDb {
            labels: self.labels,
            num_nodes: n,
            names: self.names,
            num_edges,
            out_offsets,
            out_adj,
            in_offsets,
            in_adj,
            fwd,
            rev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> GraphDb {
        // u -a-> v -b-> w, u -b-> x -a-> w
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("v", "b", "w");
        b.edge("u", "b", "x");
        b.edge("x", "a", "w");
        b.finish()
    }

    #[test]
    fn build_and_query_adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        let (u, v, w) = (
            g.node_by_name("u").unwrap(),
            g.node_by_name("v").unwrap(),
            g.node_by_name("w").unwrap(),
        );
        let a = g.alphabet().get("a").unwrap();
        let b = g.alphabet().get("b").unwrap();
        assert!(g.has_edge(u, a, v));
        assert!(!g.has_edge(u, a, w));
        assert_eq!(g.successors(u, a).collect::<Vec<_>>(), vec![v]);
        assert_eq!(g.predecessors(w, b).collect::<Vec<_>>(), vec![v]);
        assert_eq!(g.node_name(u), "u");
        assert_eq!(g.node_by_name("nope"), None);
    }

    #[test]
    fn duplicate_edges_are_dedup() {
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("u", "a", "v");
        let g = b.finish();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parallel_labels_coexist() {
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("u", "b", "v");
        let g = b.finish();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_edges(g.node_by_name("u").unwrap()).len(), 2);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let rebuilt = g.clone().into_builder().finish();
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        assert_eq!(rebuilt.num_nodes(), g.num_nodes());
        for (u, s, v) in g.edges() {
            assert!(rebuilt.has_edge(u, s, v));
        }
    }

    #[test]
    fn fresh_nodes_are_distinct() {
        let mut b = GraphBuilder::new();
        let n1 = b.fresh_node();
        let n2 = b.fresh_node();
        assert_ne!(n1, n2);
        let named = b.node("hello");
        assert_ne!(named, n1);
        assert_eq!(b.num_nodes(), 3);
    }

    #[test]
    fn anonymous_graphs_have_ids_but_no_names() {
        let mut b = GraphBuilder::anonymous(4);
        let a = b.label("a");
        b.edge_ids(NodeId(0), a, NodeId(1));
        b.edge_ids(NodeId(1), a, NodeId(3));
        let extra = b.fresh_node();
        assert_eq!(extra, NodeId(4));
        let g = b.finish();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 2);
        assert!(!g.is_named());
        assert_eq!(g.name_bytes(), 0, "anonymous mode stores zero name bytes");
        assert_eq!(g.node_by_name("v0"), None);
        assert_eq!(g.try_node_name(NodeId(0)), None);
        assert_eq!(g.display_name(NodeId(3)), "#3");
        assert!(g.has_edge(NodeId(0), a, NodeId(1)));
        // Reversal and the builder round-trip preserve anonymity.
        let r = g.reversed();
        assert!(r.has_edge(NodeId(1), a, NodeId(0)) && !r.is_named());
        let back = g.clone().into_builder().finish();
        assert!(!back.is_named());
        assert_eq!(back.num_nodes(), 5);
        assert!(back.has_edge(NodeId(1), a, NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "anonymous GraphBuilder")]
    fn anonymous_builder_rejects_named_nodes() {
        GraphBuilder::anonymous(2).node("u");
    }

    #[test]
    fn named_graphs_store_names_in_one_arena() {
        let g = diamond();
        assert!(g.is_named());
        assert_eq!(g.display_name(g.node_by_name("u").unwrap()), "u");
        assert_eq!(g.try_node_name(g.node_by_name("v").unwrap()), Some("v"));
        // 4 single-byte names: the arena term is offsets + hash table +
        // 4 bytes of payload — far under a per-name String layout, and
        // strictly positive (the contract is "one arena", not "free").
        let bytes = g.name_bytes();
        assert!(bytes > 0 && bytes < 4 * 64, "arena bytes: {bytes}");
    }

    #[test]
    fn flat_and_csr_indexes_agree() {
        let g = diamond();
        for v in g.nodes() {
            for (sym, _) in g.alphabet().iter() {
                let from_flat: Vec<NodeId> = g
                    .out_edges(v)
                    .iter()
                    .filter(|&&(s, _)| s == sym)
                    .map(|&(_, t)| t)
                    .collect();
                assert_eq!(g.successors_slice(v, sym), &from_flat[..]);
                let from_flat_in: Vec<NodeId> = g
                    .in_edges(v)
                    .iter()
                    .filter(|&&(s, _)| s == sym)
                    .map(|&(_, t)| t)
                    .collect();
                assert_eq!(g.predecessors_slice(v, sym), &from_flat_in[..]);
            }
        }
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = diamond();
        let r = g.reversed();
        assert_eq!(r.num_edges(), g.num_edges());
        for (u, s, v) in g.edges() {
            assert!(r.has_edge(v, s, u));
        }
        let a = g.alphabet().get("a").unwrap();
        let (u, v) = (g.node_by_name("u").unwrap(), g.node_by_name("v").unwrap());
        assert_eq!(r.successors(v, a).collect::<Vec<_>>(), vec![u]);
    }

    #[test]
    fn labels_interned_after_finish_have_empty_slices() {
        use crate::view::GraphView;
        let mut g = diamond();
        let zz = g.alphabet_mut().intern("zz");
        assert!(
            zz.index() >= g.fwd.num_labels(),
            "post-build symbol must land past the CSR's label count"
        );
        for v in 0..g.num_nodes() {
            let v = NodeId(v as u32);
            // Inherent slice API: explicit empty slices, no panic.
            assert_eq!(g.successors_slice(v, zz), &[] as &[NodeId]);
            assert_eq!(g.predecessors_slice(v, zz), &[] as &[NodeId]);
            assert!(!g.has_edge(v, zz, v));
            // GraphView surface must agree: empty iterators, zero degrees.
            assert_eq!(GraphView::successors(&g, v, zz).count(), 0);
            assert_eq!(GraphView::predecessors(&g, v, zz).count(), 0);
            assert_eq!(GraphView::out_degree(&g, v, zz), 0);
            assert_eq!(GraphView::in_degree(&g, v, zz), 0);
            // Node-major enumeration never mentions the fresh label.
            assert!(GraphView::out_edges_iter(&g, v).all(|(s, _)| s != zz));
        }
    }
}
