//! The graph database store.
//!
//! A graph database over a finite alphabet `A` is a finite edge-labelled
//! directed graph `G = (V, E)` with `E ⊆ V × A × V` (paper §2). Nodes are
//! dense `u32` ids; labels are interned [`Symbol`]s shared with the query
//! layer through the same [`Interner`].

use crpq_util::{BitSet, Interner, Symbol};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense node identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An immutable edge-labelled directed graph with forward and backward
/// adjacency indexes (both sorted for binary search).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphDb {
    labels: Interner,
    node_names: Vec<String>,
    /// `out[v]` = sorted `(label, target)` pairs.
    out: Vec<Vec<(Symbol, NodeId)>>,
    /// `inc[v]` = sorted `(label, source)` pairs.
    inc: Vec<Vec<(Symbol, NodeId)>>,
    num_edges: usize,
}

impl GraphDb {
    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of labelled edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The edge-label alphabet.
    pub fn alphabet(&self) -> &Interner {
        &self.labels
    }

    /// Mutable access to the alphabet (append-only; existing ids are stable).
    /// Useful to parse queries mentioning labels the graph does not use.
    pub fn alphabet_mut(&mut self) -> &mut Interner {
        &mut self.labels
    }

    /// All alphabet symbols in id order.
    pub fn symbols(&self) -> Vec<Symbol> {
        self.labels.iter().map(|(s, _)| s).collect()
    }

    /// The name of `node`.
    pub fn node_name(&self, node: NodeId) -> &str {
        &self.node_names[node.index()]
    }

    /// Looks up a node by name (linear scan; intended for tests/examples).
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names.iter().position(|n| n == name).map(|i| NodeId(i as u32))
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes() as u32).map(NodeId)
    }

    /// Outgoing `(label, target)` pairs of `v`, sorted by label then target.
    #[inline]
    pub fn out_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        &self.out[v.index()]
    }

    /// Incoming `(label, source)` pairs of `v`, sorted by label then source.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        &self.inc[v.index()]
    }

    /// Targets of `v`'s outgoing `label`-edges.
    pub fn successors(&self, v: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        let row = &self.out[v.index()];
        let start = row.partition_point(|&(s, _)| s < label);
        row[start..].iter().take_while(move |&&(s, _)| s == label).map(|&(_, t)| t)
    }

    /// Sources of `v`'s incoming `label`-edges.
    pub fn predecessors(&self, v: NodeId, label: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        let row = &self.inc[v.index()];
        let start = row.partition_point(|&(s, _)| s < label);
        row[start..].iter().take_while(move |&&(s, _)| s == label).map(|&(_, t)| t)
    }

    /// Whether the edge `u -label-> v` exists.
    pub fn has_edge(&self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        self.out[u.index()].binary_search(&(label, v)).is_ok()
    }

    /// All edges as `(source, label, target)` triples, in source order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, row)| row.iter().map(move |&(s, v)| (NodeId(u as u32), s, v)))
    }

    /// A fresh bitset sized for this graph's nodes.
    pub fn node_set(&self) -> BitSet {
        BitSet::new(self.num_nodes())
    }

    /// The reversed graph: every edge `u -l-> v` becomes `v -l-> u`.
    ///
    /// Combined with [`crpq_automata::Nfa::reverse`], this supports backward
    /// RPQ reachability (`{src : dst reachable from src}`) without a
    /// dedicated backward search.
    pub fn reversed(&self) -> GraphDb {
        GraphDb {
            labels: self.labels.clone(),
            node_names: self.node_names.clone(),
            out: self.inc.clone(),
            inc: self.out.clone(),
            num_edges: self.num_edges,
        }
    }

    /// Converts back into a builder (e.g. to extend a generated graph).
    pub fn into_builder(self) -> GraphBuilder {
        let mut b = GraphBuilder::with_alphabet(self.labels.clone());
        for name in &self.node_names {
            b.node(name);
        }
        for (u, s, v) in self.edges() {
            b.edge_ids(u, s, v);
        }
        b
    }
}

/// Mutable builder for [`GraphDb`].
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    labels: Interner,
    node_names: Vec<String>,
    node_index: crpq_util::FxHashMap<String, NodeId>,
    edges: Vec<(NodeId, Symbol, NodeId)>,
}

impl GraphBuilder {
    /// A builder with an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder reusing an existing alphabet (so symbol ids line up with
    /// already-parsed queries).
    pub fn with_alphabet(labels: Interner) -> Self {
        Self { labels, ..Self::default() }
    }

    /// The alphabet under construction.
    pub fn alphabet(&self) -> &Interner {
        &self.labels
    }

    /// Mutable alphabet access.
    pub fn alphabet_mut(&mut self) -> &mut Interner {
        &mut self.labels
    }

    /// Interns a label.
    pub fn label(&mut self, name: &str) -> Symbol {
        self.labels.intern(name)
    }

    /// Returns the node named `name`, creating it if needed.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_index.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(name.to_owned());
        self.node_index.insert(name.to_owned(), id);
        id
    }

    /// Creates a fresh anonymous node.
    pub fn fresh_node(&mut self) -> NodeId {
        let name = format!("_n{}", self.node_names.len());
        self.node(&name)
    }

    /// Number of nodes so far.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Adds the edge `u -label-> v` by names, creating nodes/labels as needed.
    pub fn edge(&mut self, u: &str, label: &str, v: &str) -> &mut Self {
        let (u, v) = (self.node(u), self.node(v));
        let l = self.labels.intern(label);
        self.edges.push((u, l, v));
        self
    }

    /// Adds the edge by pre-interned ids.
    pub fn edge_ids(&mut self, u: NodeId, label: Symbol, v: NodeId) -> &mut Self {
        debug_assert!(u.index() < self.node_names.len() && v.index() < self.node_names.len());
        self.edges.push((u, label, v));
        self
    }

    /// Finalises into an immutable, index-sorted [`GraphDb`].
    /// Duplicate edges are deduplicated.
    pub fn finish(self) -> GraphDb {
        let n = self.node_names.len();
        let mut out: Vec<Vec<(Symbol, NodeId)>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<(Symbol, NodeId)>> = vec![Vec::new(); n];
        for &(u, l, v) in &self.edges {
            out[u.index()].push((l, v));
            inc[v.index()].push((l, u));
        }
        let mut num_edges = 0;
        for row in &mut out {
            row.sort_unstable();
            row.dedup();
            num_edges += row.len();
        }
        for row in &mut inc {
            row.sort_unstable();
            row.dedup();
        }
        GraphDb { labels: self.labels, node_names: self.node_names, out, inc, num_edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> GraphDb {
        // u -a-> v -b-> w, u -b-> x -a-> w
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("v", "b", "w");
        b.edge("u", "b", "x");
        b.edge("x", "a", "w");
        b.finish()
    }

    #[test]
    fn build_and_query_adjacency() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        let (u, v, w) = (
            g.node_by_name("u").unwrap(),
            g.node_by_name("v").unwrap(),
            g.node_by_name("w").unwrap(),
        );
        let a = g.alphabet().get("a").unwrap();
        let b = g.alphabet().get("b").unwrap();
        assert!(g.has_edge(u, a, v));
        assert!(!g.has_edge(u, a, w));
        assert_eq!(g.successors(u, a).collect::<Vec<_>>(), vec![v]);
        assert_eq!(g.predecessors(w, b).collect::<Vec<_>>(), vec![v]);
        assert_eq!(g.node_name(u), "u");
    }

    #[test]
    fn duplicate_edges_are_dedup() {
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("u", "a", "v");
        let g = b.finish();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn parallel_labels_coexist() {
        let mut b = GraphBuilder::new();
        b.edge("u", "a", "v");
        b.edge("u", "b", "v");
        let g = b.finish();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.out_edges(g.node_by_name("u").unwrap()).len(), 2);
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let rebuilt = g.clone().into_builder().finish();
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        assert_eq!(rebuilt.num_nodes(), g.num_nodes());
        for (u, s, v) in g.edges() {
            assert!(rebuilt.has_edge(u, s, v));
        }
    }

    #[test]
    fn fresh_nodes_are_distinct() {
        let mut b = GraphBuilder::new();
        let n1 = b.fresh_node();
        let n2 = b.fresh_node();
        assert_ne!(n1, n2);
        let named = b.node("hello");
        assert_ne!(named, n1);
        assert_eq!(b.num_nodes(), 3);
    }
}
