//! The read-path abstraction over frozen and mutated graphs.
//!
//! Every algorithm in this workspace — the RPQ sweeps, the relation
//! materialisers, the WCOJ and work-stealing executors — reads a graph
//! through exactly the operations collected here as [`GraphView`]:
//! per-label successor/predecessor enumeration, node-major edge
//! enumeration, degrees, membership, and the alphabet.
//!
//! Two implementors exist:
//!
//! * [`GraphDb`] — the frozen base snapshot. Its associated iterator types
//!   are `Copied<slice::Iter>` over the CSR slices, so a function generic
//!   over `G: GraphView` monomorphised at `GraphDb` compiles to **exactly**
//!   the same loops as the old concrete `&GraphDb` code (a copied-slice
//!   iterator is the canonical zero-cost iterator); the static-path perf
//!   gates in CI are unaffected by the generalisation.
//! * [`DeltaGraph`](crate::delta::DeltaGraph) — a base snapshot plus a
//!   sorted overlay of inserted/deleted edges. Its iterators merge the
//!   base CSR slice with the overlay sub-range at read time; see
//!   [`crate::delta`] for the overlay invariants that make the merge a
//!   straight two-pointer walk.
//!
//! # Contract
//!
//! For a fixed view value (no interleaved mutation), the trait must behave
//! like an immutable edge-labelled graph:
//!
//! * [`successors`](GraphView::successors)`(v, a)` yields the `a`-targets
//!   of `v` in **strictly ascending** node-id order, without duplicates;
//!   [`predecessors`](GraphView::predecessors) likewise for sources.
//! * [`out_edges_iter`](GraphView::out_edges_iter)`(v)` yields `v`'s
//!   `(label, target)` pairs sorted by `(label, target)`;
//!   [`in_edges_iter`](GraphView::in_edges_iter) the `(label, source)`
//!   pairs. Both agree with the per-label iterators.
//! * [`out_degree`](GraphView::out_degree) / [`in_degree`](GraphView::in_degree)
//!   equal the respective iterator lengths, and
//!   [`num_edges`](GraphView::num_edges) is the total over all `(v, a)`.
//! * A label outside the view's alphabet, or one interned **after** the
//!   underlying CSR was built, has no edges: the iterators are empty and
//!   degrees zero (never a panic). This is what lets queries mention
//!   labels the data does not use.
//! * Node ids are dense in `0..num_nodes()`; iterating edges of an
//!   out-of-range id is a logic error but must not be UB (implementations
//!   may panic or return empty).
//!
//! Mutation is *not* part of the trait — it lives on
//! [`DeltaGraph`](crate::delta::DeltaGraph) directly. An evaluation holds
//! `&G` for its whole run, so Rust's borrow rules already guarantee the
//! snapshot-consistent reads Figueira's per-snapshot semantics need.

use crate::db::{GraphDb, NodeId};
use crpq_util::{BitSet, Interner, Symbol};

/// Read-only view of an edge-labelled graph: the complete set of
/// operations the query engine needs. See the [module docs](self) for the
/// behavioural contract and the zero-cost monomorphisation argument.
///
/// `Sync` is a supertrait because the parallel materialiser and the
/// work-stealing executor share `&G` across scoped worker threads.
pub trait GraphView: Sync {
    /// Per-label neighbour iterator ([`successors`](Self::successors) /
    /// [`predecessors`](Self::predecessors)); strictly ascending node ids.
    type Neighbors<'a>: Iterator<Item = NodeId> + 'a
    where
        Self: 'a;

    /// Node-major edge iterator ([`out_edges_iter`](Self::out_edges_iter) /
    /// [`in_edges_iter`](Self::in_edges_iter)); `(label, node)` pairs in
    /// ascending `(label, node)` order.
    type NodeEdges<'a>: Iterator<Item = (Symbol, NodeId)> + 'a
    where
        Self: 'a;

    /// Number of nodes (ids are dense in `0..num_nodes()`).
    fn num_nodes(&self) -> usize;

    /// Total number of labelled edges.
    fn num_edges(&self) -> usize;

    /// The edge-label alphabet.
    fn alphabet(&self) -> &Interner;

    /// Targets of `v`'s outgoing `label`-edges, ascending.
    fn successors(&self, v: NodeId, label: Symbol) -> Self::Neighbors<'_>;

    /// Sources of `v`'s incoming `label`-edges, ascending.
    fn predecessors(&self, v: NodeId, label: Symbol) -> Self::Neighbors<'_>;

    /// Number of outgoing `label`-edges of `v`.
    fn out_degree(&self, v: NodeId, label: Symbol) -> usize;

    /// Number of incoming `label`-edges of `v`.
    fn in_degree(&self, v: NodeId, label: Symbol) -> usize;

    /// All `(label, target)` pairs of `v`, sorted by `(label, target)`.
    fn out_edges_iter(&self, v: NodeId) -> Self::NodeEdges<'_>;

    /// All `(label, source)` pairs of `v`, sorted by `(label, source)`.
    fn in_edges_iter(&self, v: NodeId) -> Self::NodeEdges<'_>;

    /// Whether the edge `u --label--> v` exists.
    fn has_edge(&self, u: NodeId, label: Symbol, v: NodeId) -> bool;

    /// An empty bitset sized for this view's node universe.
    fn node_set(&self) -> BitSet {
        BitSet::new(self.num_nodes())
    }
}

impl GraphView for GraphDb {
    type Neighbors<'a> = std::iter::Copied<std::slice::Iter<'a, NodeId>>;
    type NodeEdges<'a> = std::iter::Copied<std::slice::Iter<'a, (Symbol, NodeId)>>;

    #[inline]
    fn num_nodes(&self) -> usize {
        GraphDb::num_nodes(self)
    }

    #[inline]
    fn num_edges(&self) -> usize {
        GraphDb::num_edges(self)
    }

    #[inline]
    fn alphabet(&self) -> &Interner {
        GraphDb::alphabet(self)
    }

    #[inline]
    fn successors(&self, v: NodeId, label: Symbol) -> Self::Neighbors<'_> {
        self.successors_slice(v, label).iter().copied()
    }

    #[inline]
    fn predecessors(&self, v: NodeId, label: Symbol) -> Self::Neighbors<'_> {
        self.predecessors_slice(v, label).iter().copied()
    }

    #[inline]
    fn out_degree(&self, v: NodeId, label: Symbol) -> usize {
        self.successors_slice(v, label).len()
    }

    #[inline]
    fn in_degree(&self, v: NodeId, label: Symbol) -> usize {
        self.predecessors_slice(v, label).len()
    }

    #[inline]
    fn out_edges_iter(&self, v: NodeId) -> Self::NodeEdges<'_> {
        self.out_edges(v).iter().copied()
    }

    #[inline]
    fn in_edges_iter(&self, v: NodeId) -> Self::NodeEdges<'_> {
        self.in_edges(v).iter().copied()
    }

    #[inline]
    fn has_edge(&self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        GraphDb::has_edge(self, u, label, v)
    }

    #[inline]
    fn node_set(&self) -> BitSet {
        GraphDb::node_set(self)
    }
}

/// Delegating impl so `Arc`-shared graphs (the streaming producer, tests
/// exercising `eval_stream`) are views themselves — deref coercion does not
/// apply through generic bounds, so the wrapper needs its own impl.
impl<G: GraphView + Send> GraphView for std::sync::Arc<G> {
    type Neighbors<'a>
        = G::Neighbors<'a>
    where
        Self: 'a;
    type NodeEdges<'a>
        = G::NodeEdges<'a>
    where
        Self: 'a;

    #[inline]
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    #[inline]
    fn num_edges(&self) -> usize {
        (**self).num_edges()
    }

    #[inline]
    fn alphabet(&self) -> &Interner {
        (**self).alphabet()
    }

    #[inline]
    fn successors(&self, v: NodeId, label: Symbol) -> Self::Neighbors<'_> {
        (**self).successors(v, label)
    }

    #[inline]
    fn predecessors(&self, v: NodeId, label: Symbol) -> Self::Neighbors<'_> {
        (**self).predecessors(v, label)
    }

    #[inline]
    fn out_degree(&self, v: NodeId, label: Symbol) -> usize {
        (**self).out_degree(v, label)
    }

    #[inline]
    fn in_degree(&self, v: NodeId, label: Symbol) -> usize {
        (**self).in_degree(v, label)
    }

    #[inline]
    fn out_edges_iter(&self, v: NodeId) -> Self::NodeEdges<'_> {
        (**self).out_edges_iter(v)
    }

    #[inline]
    fn in_edges_iter(&self, v: NodeId) -> Self::NodeEdges<'_> {
        (**self).in_edges_iter(v)
    }

    #[inline]
    fn has_edge(&self, u: NodeId, label: Symbol, v: NodeId) -> bool {
        (**self).has_edge(u, label, v)
    }

    #[inline]
    fn node_set(&self) -> BitSet {
        (**self).node_set()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::GraphBuilder;

    fn sample() -> GraphDb {
        let mut b = GraphBuilder::new();
        let a = b.label("a");
        let c = b.label("b");
        let (x, y, z) = (b.node("x"), b.node("y"), b.node("z"));
        b.edge_ids(x, a, y);
        b.edge_ids(x, a, z);
        b.edge_ids(y, c, z);
        b.finish()
    }

    /// Generic code sees exactly what the inherent slice API sees.
    fn collect_via_view<G: GraphView>(g: &G, v: NodeId, l: Symbol) -> Vec<NodeId> {
        g.successors(v, l).collect()
    }

    #[test]
    fn graphdb_view_matches_inherent_api() {
        let g = sample();
        let a = g.alphabet().get("a").unwrap();
        let b = g.alphabet().get("b").unwrap();
        let x = g.node_by_name("x").unwrap();
        let y = g.node_by_name("y").unwrap();
        let z = g.node_by_name("z").unwrap();

        assert_eq!(collect_via_view(&g, x, a), g.successors_slice(x, a));
        assert_eq!(GraphView::out_degree(&g, x, a), 2);
        assert_eq!(GraphView::in_degree(&g, z, a), 1);
        let out: Vec<_> = GraphView::out_edges_iter(&g, x).collect();
        assert_eq!(out, g.out_edges(x));
        let inc: Vec<_> = GraphView::in_edges_iter(&g, z).collect();
        assert_eq!(inc, g.in_edges(z));
        assert!(GraphView::has_edge(&g, y, b, z));
        assert!(!GraphView::has_edge(&g, y, a, z));
        assert_eq!(GraphView::node_set(&g).capacity(), 3);
    }
}
