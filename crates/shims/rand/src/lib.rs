//! Offline stand-in for `rand`, used because the build environment has no
//! access to crates.io. Implements the narrow API surface the workspace
//! relies on — `StdRng::seed_from_u64`, `gen_range` over (inclusive) integer
//! ranges, `gen_bool`, and `gen` — on top of the SplitMix64 +
//! xoshiro256\*\* generators (Blackman & Vigna), which are deterministic,
//! seed-reproducible and of high statistical quality.
//!
//! Streams differ from the real `rand::StdRng` (ChaCha12), but every
//! consumer in this workspace uses seeds only for reproducibility, never for
//! a specific expected stream.

pub mod rngs {
    /// Deterministic seedable RNG (xoshiro256** core, SplitMix64 seeding).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: [u64; 4],
    }
}

use rngs::StdRng;

/// Mirror of `rand::SeedableRng`, restricted to `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 to fill the 256-bit state, as recommended by the
        // xoshiro authors (avoids all-zero states for any seed).
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            state: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256**
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift rejection.
    fn bounded_u64(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling over the top bits: unbiased and branch-light.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Primitive types drawable uniformly from the full domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample(rng: &mut StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer types uniformly samplable from a range (mirror of
/// `rand::distributions::uniform::SampleUniform`). The `u64` round-trip
/// (sign-extending for signed types) lets one bounded sampler serve all of
/// them.
pub trait SampleUniform: Copy + PartialOrd {
    fn to_u64(self) -> u64;
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`] (mirror of `rand::SampleRange`).
///
/// The single blanket impl per range shape matters: it lets type inference
/// flow *backwards* from the use site (e.g. `slice[rng.gen_range(0..2)]`
/// infers `usize`), exactly like the real `rand` crate.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end.to_u64().wrapping_sub(self.start.to_u64());
        T::from_u64(self.start.to_u64().wrapping_add(rng.bounded_u64(span)))
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty inclusive range in gen_range");
        let span = end.to_u64().wrapping_sub(start.to_u64()).wrapping_add(1);
        if span == 0 {
            // Full 64-bit domain.
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(start.to_u64().wrapping_add(rng.bounded_u64(span)))
    }
}

/// Mirror of the `rand::Rng` extension trait for the methods in use.
pub trait Rng {
    /// Uniform value in `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
    /// Uniform value over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T;
}

impl Rng for StdRng {
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }

    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(va, (0..16).map(|_| c.gen::<u64>()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=2);
            assert!((1..=2).contains(&y));
            let z: u32 = rng.gen_range(0..5u32);
            assert!(z < 5);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0..10usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a bucket");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&heads),
            "p=0.5 badly skewed: {heads}"
        );
    }
}
