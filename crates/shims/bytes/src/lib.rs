//! Offline stand-in for `bytes`, used because the build environment has no
//! access to crates.io. Implements the cursor-style subset the graph binary
//! format uses: [`Bytes`] / [`BytesMut`] with the [`Buf`] / [`BufMut`]
//! method families (little-endian integer accessors, slice append,
//! `copy_to_bytes`, `freeze`). Backed by plain `Vec<u8>` — no shared-buffer
//! refcounting, which the workspace does not rely on.

use std::ops::Deref;

/// An immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a static slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Remaining (unread) bytes as a slice.
    fn rest(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    /// A new buffer holding the given sub-range of the unread bytes.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes {
            data: self.rest()[range].to_vec(),
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.rest()
    }
}

/// Read-cursor operations (mirror of `bytes::Buf`).
pub trait Buf {
    /// Number of unread bytes.
    fn remaining(&self) -> usize;
    /// Advances past and returns the next `len` bytes.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(len <= self.remaining(), "copy_to_bytes past end of buffer");
        let out = self.data[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Bytes { data: out, pos: 0 }
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "get_u8 past end of buffer");
        let b = self.data[self.pos];
        self.pos += 1;
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "get_u32_le past end of buffer");
        let mut buf = [0u8; 4];
        buf.copy_from_slice(&self.data[self.pos..self.pos + 4]);
        self.pos += 4;
        u32::from_le_bytes(buf)
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "get_u64_le past end of buffer");
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&self.data[self.pos..self.pos + 8]);
        self.pos += 8;
        u64::from_le_bytes(buf)
    }
}

/// A growable byte buffer (mirror of `bytes::BytesMut`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `capacity` bytes pre-reserved (mirror of
    /// `bytes::BytesMut::with_capacity`) — callers that know the encoded
    /// size up front avoid the doubling-regrowth cascade.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Append operations (mirror of `bytes::BufMut`).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_accessors() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"MAGX");
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 4 + 1 + 4 + 8);
        assert_eq!(&b.copy_to_bytes(4)[..], b"MAGX");
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn deref_tracks_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        b.get_u8();
        assert_eq!(&b[..], &[2, 3, 4]);
        assert_eq!(b.to_vec(), vec![2, 3, 4]);
    }
}
