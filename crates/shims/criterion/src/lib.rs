//! Offline stand-in for `criterion`, used because the build environment has
//! no access to crates.io. Provides the subset the workspace's bench targets
//! use — `Criterion`, benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! mean/min/max wall-clock measurement loop instead of criterion's
//! statistical machinery.
//!
//! `cargo test` (which runs `harness = false` bench targets with `--test`)
//! is honoured: in test mode every benchmark body runs exactly once, so the
//! benches double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` naming.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only naming.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    /// `None` while warming up / in test mode; populated per sample.
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `f`, recording one sample per configured measurement slot.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples.capacity().max(1) {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// Per-group measurement configuration.
#[derive(Clone, Copy, Debug)]
struct MeasurementConfig {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                a if !a.starts_with('-') => filter = Some(a.to_owned()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
            config: MeasurementConfig::default(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let config = MeasurementConfig::default();
        let name = id.into().id;
        self.run_one(&name, config, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, config: MeasurementConfig, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            // Smoke-run the body once.
            let mut b = Bencher {
                samples: Vec::with_capacity(0),
                iters_per_sample: 1,
            };
            f(&mut b);
            println!("test {name} ... ok");
            return;
        }
        // Warm-up: run until the warm-up budget elapses, counting
        // iterations to size the measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        {
            let mut b = Bencher {
                samples: Vec::with_capacity(0),
                iters_per_sample: 1,
            };
            while warm_start.elapsed() < config.warm_up_time {
                f(&mut b);
                warm_iters += 1;
                b.samples.clear();
            }
        }
        let per_iter = config.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let total_iters =
            (config.measurement_time.as_secs_f64() / per_iter.max(1e-9)).ceil() as u64;
        let iters_per_sample = (total_iters / config.sample_size as u64).max(1);
        let mut b = Bencher {
            samples: Vec::with_capacity(config.sample_size),
            iters_per_sample,
        };
        f(&mut b);
        let n = b.samples.len().max(1) as u32;
        let mean: Duration = b.samples.iter().sum::<Duration>() / n;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!("{name:<50} mean {mean:>12.2?}   min {min:>12.2?}   max {max:>12.2?}");
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: MeasurementConfig,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&name, self.config, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&name, self.config, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function invoking each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
