//! Offline stand-in for `proptest`, used because the build environment has
//! no access to crates.io. Supports the subset of the API the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_recursive`, [`strategy::Just`], integer-range strategies,
//! `prop::collection::vec`, the `prop_oneof!` / `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros and [`ProptestConfig`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible runs),
//! and failing cases are reported but **not shrunk**.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;
    use std::rc::Rc;

    /// Generation-only mirror of `proptest::strategy::Strategy`.
    pub trait Strategy {
        /// The type of values produced.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Type-erases the strategy (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                f: Rc::new(move |rng| self.generate(rng)),
            }
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            BoxedStrategy {
                f: Rc::new(move |rng| f(self.generate(rng))),
            }
        }

        /// Builds a recursive strategy: `self` is the leaf case, `recurse`
        /// wraps an inner strategy into the composite case, and `depth`
        /// bounds the nesting. (`_desired_size` / `_expected_branch` are
        /// accepted for signature compatibility and ignored.)
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
            S: Strategy<Value = Self::Value> + 'static,
        {
            let base = self.boxed();
            let mut cur = base.clone();
            for _ in 0..depth {
                let deeper = recurse(cur).boxed();
                let leaf = base.clone();
                // Recurse with probability 2/3 so generated values mix
                // shallow and deep shapes.
                cur = BoxedStrategy {
                    f: Rc::new(move |rng: &mut StdRng| {
                        if rng.gen_range(0..3u32) > 0 {
                            deeper.generate(rng)
                        } else {
                            leaf.generate(rng)
                        }
                    }),
                };
            }
            cur
        }
    }

    /// A type-erased, reference-counted strategy.
    pub struct BoxedStrategy<T> {
        f: Rc<dyn Fn(&mut StdRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                f: Rc::clone(&self.f),
            }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally weighted boxed alternatives
    /// (the expansion of `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);
}

/// Mirror of the `proptest::prop` facade module.
pub mod prop {
    /// Collection strategies (only `vec` is provided).
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::Rng;
        use std::ops::Range;

        /// Vectors of `element` values with length drawn from `len`.
        pub fn vec<S>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        /// Strategy produced by [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut rand::rngs::StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Test-runner plumbing used by the `proptest!` macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic RNG derived from the test's name, so every run of a
    /// given test explores the same cases.
    pub fn rng_for(test_name: &str) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }
}

/// Mirror of `proptest::test_runner::Config` (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left), stringify!($right), l, r, format!($($fmt)*)
        );
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` body runs
/// for `config.cases` generated inputs; `prop_assert*!` failures report the
/// case number (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $strategy;)*
            for case in 0..config.cases {
                let result: ::std::result::Result<(), String> = (|| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!("proptest case {case} of {} failed: {msg}", stringify!($name));
                }
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}
