//! No-op stand-in for `serde_derive`, used because the build environment has
//! no access to crates.io. The workspace only *derives* `Serialize` /
//! `Deserialize` for forward compatibility — nothing actually serialises —
//! so the derive macros here accept the same input (including `#[serde(...)]`
//! field attributes) and expand to marker impls of the empty traits defined
//! in the sibling `serde` shim.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Extracts `(type name, generics?)` from a `struct`/`enum` item token stream.
/// Returns the identifier following the first `struct` or `enum` keyword and
/// whether a `<...>` generics list follows it.
fn type_header(input: TokenStream) -> Option<(String, bool)> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    let generic = matches!(
                        tokens.peek(),
                        Some(TokenTree::Punct(p)) if p.as_char() == '<'
                    );
                    return Some((name.to_string(), generic));
                }
            }
        }
        // Skip attribute groups and doc comments before the keyword.
        let _ = matches!(tt, TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket);
    }
    None
}

fn marker_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    match type_header(input) {
        // Generic types would need bounds we cannot reconstruct without a
        // full parser; the workspace only derives on non-generic types, so
        // emit nothing for generics (the marker traits are never required).
        Some((name, false)) => format!("impl ::serde::{trait_name} for {name} {{}}")
            .parse()
            .unwrap(), // invariant: the generated impl text is valid Rust
        _ => TokenStream::new(),
    }
}

/// Stand-in for `#[derive(serde::Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Serialize")
}

/// Stand-in for `#[derive(serde::Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "Deserialize")
}
