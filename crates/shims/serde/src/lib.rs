//! Offline stand-in for `serde`, used because the build environment has no
//! access to crates.io. The workspace derives `Serialize` / `Deserialize`
//! only as forward-compatible decoration (no serialisation code runs), so
//! the traits here are empty markers and the re-exported derive macros
//! expand to empty marker impls.
//!
//! If real serialisation is ever needed, replace this shim with the genuine
//! `serde` crate by swapping the `[workspace.dependencies]` entry.

pub use serde_derive::{Deserialize, Serialize};

/// Empty marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Empty marker trait mirroring `serde::Deserialize` (lifetime elided: the
/// shim never deserialises, so the `'de` parameter is unnecessary).
pub trait Deserialize {}
