//! Shared low-level utilities for the `crpq` workspace.
//!
//! Everything here is dependency-free (apart from `serde` derives) and built
//! from scratch: a fast non-cryptographic hasher, a string interner, compact
//! bitsets, square boolean matrices (used by the containment profile
//! simulation) and constrained set-partition enumeration (used by
//! atom-injective expansions).

pub mod bitset;
pub mod hash;
pub mod interner;
pub mod matrix;
pub mod partition;
pub mod storage;
pub mod sync;
pub mod unionfind;

pub use bitset::BitSet;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interner::{Interner, NameArena, Symbol};
pub use matrix::BoolMatrix;
pub use partition::{partitions_with, Partition};
pub use storage::{FaultPlan, FaultyStorage, StdStorage, Storage};
pub use unionfind::UnionFind;
