//! Square boolean matrices.
//!
//! The Appendix-C profile simulation tracks, while reading an expansion word
//! left to right, several `Q × Q` relations over NFA states (run matrix,
//! split matrix, gap matrix, infix matrix). These are relational
//! compositions and unions of boolean matrices, implemented here with
//! bitset rows so composition is word-parallel.

use crate::bitset::BitSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense `n × n` boolean matrix with bitset rows.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BoolMatrix {
    n: usize,
    rows: Vec<BitSet>,
}

impl BoolMatrix {
    /// The all-zero `n × n` matrix.
    pub fn zero(n: usize) -> Self {
        Self {
            n,
            rows: vec![BitSet::new(n); n],
        }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n);
        for i in 0..n {
            m.set(i, i);
        }
        m
    }

    /// Dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Sets entry `(i, j)` to true.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize) {
        self.rows[i].insert(j);
    }

    /// Entry test.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.rows[i].contains(j)
    }

    /// Row `i` as a bitset of columns.
    #[inline]
    pub fn row(&self, i: usize) -> &BitSet {
        &self.rows[i]
    }

    /// Relational composition `self ∘ other`:
    /// `(i, k)` is set iff ∃j with `self[i][j]` and `other[j][k]`.
    pub fn compose(&self, other: &BoolMatrix) -> BoolMatrix {
        debug_assert_eq!(self.n, other.n);
        let mut out = BoolMatrix::zero(self.n);
        for i in 0..self.n {
            let out_row = &mut out.rows[i];
            for j in self.rows[i].iter() {
                out_row.union_with(&other.rows[j]);
            }
        }
        out
    }

    /// In-place union; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BoolMatrix) -> bool {
        debug_assert_eq!(self.n, other.n);
        let mut changed = false;
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            changed |= a.union_with(b);
        }
        changed
    }

    /// Whether any entry is set.
    pub fn any(&self) -> bool {
        self.rows.iter().any(|r| !r.is_empty())
    }

    /// Number of set entries.
    pub fn count(&self) -> usize {
        self.rows.iter().map(BitSet::len).sum()
    }

    /// Iterates over set entries `(i, j)` in row-major order.
    pub fn iter_set(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().map(move |j| (i, j)))
    }

    /// Reflexive-transitive closure (Warshall).
    pub fn transitive_closure(&self) -> BoolMatrix {
        let mut m = self.clone();
        m.union_with(&BoolMatrix::identity(self.n));
        for k in 0..self.n {
            for i in 0..self.n {
                if m.get(i, k) {
                    let row_k = m.rows[k].clone();
                    m.rows[i].union_with(&row_k);
                }
            }
        }
        m
    }
}

impl fmt::Debug for BoolMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BoolMatrix({}x{}) {{", self.n, self.n)?;
        for (i, j) in self.iter_set() {
            writeln!(f, "  ({i},{j})")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_matches_relations() {
        // R = {(0,1),(1,2)}, S = {(1,1),(2,0)}; R∘S = {(0,1),(1,0)}.
        let mut r = BoolMatrix::zero(3);
        r.set(0, 1);
        r.set(1, 2);
        let mut s = BoolMatrix::zero(3);
        s.set(1, 1);
        s.set(2, 0);
        let rs = r.compose(&s);
        assert!(rs.get(0, 1));
        assert!(rs.get(1, 0));
        assert_eq!(rs.count(), 2);
    }

    #[test]
    fn identity_is_neutral() {
        let mut r = BoolMatrix::zero(4);
        r.set(0, 3);
        r.set(2, 1);
        let id = BoolMatrix::identity(4);
        assert_eq!(r.compose(&id), r);
        assert_eq!(id.compose(&r), r);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BoolMatrix::zero(2);
        let mut b = BoolMatrix::zero(2);
        b.set(1, 0);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union is a no-op");
        assert!(a.any());
        assert_eq!(a.iter_set().collect::<Vec<_>>(), vec![(1, 0)]);
    }

    #[test]
    fn closure_of_chain() {
        // 0 -> 1 -> 2: closure must contain (0,2) and the diagonal.
        let mut m = BoolMatrix::zero(3);
        m.set(0, 1);
        m.set(1, 2);
        let c = m.transitive_closure();
        assert!(c.get(0, 2));
        assert!(c.get(0, 0) && c.get(1, 1) && c.get(2, 2));
        assert!(!c.get(2, 0));
    }
}
