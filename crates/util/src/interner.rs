//! String interning.
//!
//! Edge labels and query variables are referenced extremely often during
//! homomorphism search; interning them to dense `u32` ids lets the hot paths
//! operate on integers and index into flat arrays.

use crate::hash::{FxHashMap, FxHasher};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::Hasher;

/// A dense id for an interned string.
///
/// `Symbol`s are only meaningful relative to the [`Interner`] that produced
/// them. Ids are assigned consecutively from zero, so they double as indices
/// into per-symbol tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner mapping strings to dense [`Symbol`] ids.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow")); // invariant: u32 capacity overflow is fail-fast by design
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a previously interned string.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        if self.index.is_empty() && !self.names.is_empty() {
            // Deserialized interner: fall back to linear scan (rare path).
            return self
                .names
                .iter()
                .position(|n| n == name)
                .map(|i| Symbol(i as u32));
        }
        self.index.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols were interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }

    /// Rebuilds the lookup index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Symbol(i as u32)))
            .collect();
    }
}

/// An append-only **arena** interner for bulk string storage: all names
/// live in one contiguous byte buffer, addressed by `u32` span offsets,
/// with an open-addressing hash table (keyed by the span contents) for
/// O(1) amortised duplicate detection.
///
/// This is the node-name backend of `GraphDb`: at `|V| = 10⁶` the
/// [`Interner`]'s `Vec<String>` layout costs one heap allocation plus
/// ~24 bytes of `String` header *and* a second copy inside its
/// `HashMap<String, _>` index per name; the arena stores each name's bytes
/// exactly once and pays 4 bytes of span offset plus one `u32` table slot
/// on top. Ids are dense (`0, 1, 2, …` in insertion order) and **stable
/// across growth** — the backing buffer may reallocate, but ids and the
/// strings they resolve to never change.
///
/// Unlike [`Interner`] there is no `Symbol` wrapper: callers (the graph
/// store) already have their own dense id type.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NameArena {
    /// All names, concatenated.
    buf: Vec<u8>,
    /// `ends[i]` = one past the last byte of name `i` in `buf` (the start
    /// is `ends[i-1]`, or 0 for the first name).
    ends: Vec<u32>,
    /// Open-addressing hash table of name ids (power-of-two capacity,
    /// linear probing, `EMPTY` sentinel). Rebuilt on growth.
    #[serde(skip)]
    table: Vec<u32>,
}

/// Empty slot sentinel of the arena's hash table.
const EMPTY: u32 = u32::MAX;

impl NameArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether no names were interned.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    #[inline]
    fn span(&self, id: u32) -> (usize, usize) {
        let start = if id == 0 {
            0
        } else {
            self.ends[id as usize - 1] as usize
        };
        (start, self.ends[id as usize] as usize)
    }

    /// Resolves an id back to its string. Ids come from [`Self::intern`] /
    /// [`Self::get`]; out-of-range ids panic.
    #[inline]
    pub fn resolve(&self, id: u32) -> &str {
        let (start, end) = self.span(id);
        // Safety by construction: `intern` only ever appends whole `&str`
        // byte runs at span boundaries.
        // invariant: the arena only stores utf-8 spans
        std::str::from_utf8(&self.buf[start..end]).expect("arena spans are valid utf-8")
    }

    /// Hashes a name into a table slot seed. FxHash concentrates entropy
    /// in the **high** bits; the table indexes with `& mask` (low bits),
    /// so fold the halves together — indexing the raw hash directly makes
    /// sequential names (`v0`, `v1`, …) cluster into long probe chains
    /// (measured >100× slower on a 10⁵-name build).
    #[inline]
    fn hash_name(name: &str) -> u64 {
        let mut h = FxHasher::default();
        h.write(name.as_bytes());
        let h = h.finish();
        h ^ (h >> 32)
    }

    /// Looks up a previously interned name.
    pub fn get(&self, name: &str) -> Option<u32> {
        if self.table.is_empty() {
            if !self.ends.is_empty() {
                // Deserialized arena (the table is #[serde(skip)]): fall
                // back to a linear scan so lookups agree with the stored
                // spans — same contract as [`Interner::get`]. Callers on
                // a hot path should [`Self::rebuild_index`] first.
                return self.iter().find(|(_, n)| *n == name).map(|(id, _)| id);
            }
            return None;
        }
        let mask = self.table.len() - 1;
        let mut slot = Self::hash_name(name) as usize & mask;
        loop {
            match self.table[slot] {
                EMPTY => return None,
                id if self.resolve(id) == name => return Some(id),
                _ => slot = (slot + 1) & mask,
            }
        }
    }

    /// Interns `name`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> u32 {
        // ≤ 50% load keeps linear-probe chains short; the table is 4
        // bytes per slot, so the headroom costs ≤ 8 bytes per name.
        if self.len() * 2 >= self.table.len() {
            self.grow_table();
        }
        let mask = self.table.len() - 1;
        let mut slot = Self::hash_name(name) as usize & mask;
        loop {
            match self.table[slot] {
                EMPTY => break,
                id if self.resolve(id) == name => return id,
                _ => slot = (slot + 1) & mask,
            }
        }
        let id = u32::try_from(self.ends.len()).expect("name arena id overflow"); // invariant: u32 capacity overflow is fail-fast by design
        let end = self.buf.len() + name.len();
        assert!(
            u32::try_from(end).is_ok(),
            "name arena exceeds u32 byte offsets — shard the graph"
        );
        self.buf.extend_from_slice(name.as_bytes());
        self.ends.push(end as u32);
        self.table[slot] = id;
        id
    }

    /// Doubles (or seeds) the hash table and re-inserts every id. Sized
    /// from the **name count**, not the old table (which `rebuild_index`
    /// clears first): the rebuilt table must hold every existing id below
    /// the 50% load ceiling, or re-insertion into a full table would
    /// probe forever.
    fn grow_table(&mut self) {
        let cap = ((self.ends.len() + 1) * 2)
            .max(self.table.len() * 2)
            .max(16)
            .next_power_of_two();
        self.table = vec![EMPTY; cap];
        let mask = cap - 1;
        for id in 0..self.ends.len() as u32 {
            let mut slot = Self::hash_name(self.resolve(id)) as usize & mask;
            while self.table[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = id;
        }
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        (0..self.ends.len() as u32).map(|id| (id, self.resolve(id)))
    }

    /// Heap bytes held by the arena (byte buffer + span offsets + hash
    /// table) — the "names" term of the scale benchmarks' memory contract.
    pub fn heap_bytes(&self) -> usize {
        self.buf.capacity() + 4 * (self.ends.capacity() + self.table.capacity())
    }

    /// Drops over-allocated capacity (the arena stays usable).
    pub fn shrink_to_fit(&mut self) {
        self.buf.shrink_to_fit();
        self.ends.shrink_to_fit();
    }

    /// Rebuilds the lookup table (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.table.clear();
        self.grow_table();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        assert_ne!(a, b);
        assert_eq!(it.intern("a"), a);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut it = Interner::new();
        for name in ["knows", "likes", "follows"] {
            let s = it.intern(name);
            assert_eq!(it.resolve(s), name);
            assert_eq!(it.get(name), Some(s));
        }
        assert_eq!(it.get("absent"), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut it = Interner::new();
        for i in 0..100 {
            let s = it.intern(&format!("label{i}"));
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn iter_in_order() {
        let mut it = Interner::new();
        it.intern("x");
        it.intern("y");
        let pairs: Vec<_> = it.iter().map(|(s, n)| (s.0, n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }

    #[test]
    fn arena_duplicate_inserts_share_one_id() {
        let mut a = NameArena::new();
        let x = a.intern("x");
        let y = a.intern("y");
        assert_ne!(x, y);
        for _ in 0..3 {
            assert_eq!(a.intern("x"), x);
            assert_eq!(a.intern("y"), y);
        }
        assert_eq!(a.len(), 2);
        // Duplicate inserts add no bytes: the buffer holds each name once.
        assert_eq!(a.iter().map(|(_, n)| n.len()).sum::<usize>(), 2);
    }

    #[test]
    fn arena_unicode_names_roundtrip() {
        let mut a = NameArena::new();
        let names = ["Kurt Gödel", "Σ-protocol", "すもも", "n°42", "🚀", ""];
        let ids: Vec<u32> = names.iter().map(|n| a.intern(n)).collect();
        for (&id, &name) in ids.iter().zip(&names) {
            assert_eq!(a.resolve(id), name);
            assert_eq!(a.get(name), Some(id));
        }
        assert_eq!(a.get("Kurt Godel"), None);
        // Multi-byte names must not fuse with their neighbours.
        assert_eq!(a.len(), names.len());
    }

    #[test]
    fn arena_ids_stable_across_growth() {
        // Intern enough names to force several buffer reallocations and
        // hash-table rehashes; every id handed out earlier must still
        // resolve to the same string and look up to the same id.
        let mut a = NameArena::new();
        let first = a.intern("anchor");
        let mut ids = Vec::new();
        for i in 0..10_000 {
            ids.push(a.intern(&format!("node-{i}")));
        }
        assert_eq!(a.resolve(first), "anchor");
        assert_eq!(a.get("anchor"), Some(first));
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(a.resolve(id), format!("node-{i}"), "id {id} drifted");
        }
        assert_eq!(a.len(), 10_001);
        // Dense id assignment in insertion order.
        assert_eq!(ids[0], first + 1);
        assert_eq!(ids[9_999], first + 10_000);
    }

    #[test]
    fn arena_rebuild_index_restores_lookup() {
        let mut a = NameArena::new();
        a.intern("p");
        a.intern("q");
        // Simulate deserialisation: spans survive, the table does not —
        // lookups fall back to a linear scan until the index is rebuilt.
        a.table.clear();
        assert_eq!(a.get("p"), Some(0));
        assert_eq!(a.get("absent"), None);
        a.rebuild_index();
        assert_eq!(a.get("p"), Some(0));
        assert_eq!(a.get("q"), Some(1));
        assert_eq!(a.intern("p"), 0, "rebuilt table still dedups");
    }

    #[test]
    fn arena_rebuild_index_sizes_table_from_name_count() {
        // Regression: the rebuilt table must be sized from the arena's
        // name count, not the (cleared) old table — a 16-slot seed table
        // cannot hold 40 re-inserted ids, and a ≥50%-loaded table makes
        // absent-name probes spin forever.
        let mut a = NameArena::new();
        for i in 0..40 {
            a.intern(&format!("name-{i}"));
        }
        a.table.clear();
        a.rebuild_index();
        for i in 0..40 {
            assert_eq!(a.get(&format!("name-{i}")), Some(i));
        }
        assert_eq!(a.get("absent"), None, "absent lookup must terminate");
        assert_eq!(a.intern("name-7"), 7, "rebuilt table still dedups");
        assert_eq!(a.intern("fresh"), 40);
    }

    #[test]
    fn arena_heap_bytes_track_buffer_not_per_name_headers() {
        let mut a = NameArena::new();
        let mut raw = 0usize;
        for i in 0..1000 {
            let name = format!("v{i}");
            raw += name.len();
            a.intern(&name);
        }
        a.shrink_to_fit();
        // One shared buffer + 8 bytes of offsets/table per name, nowhere
        // near the ≥ 48 bytes/name of a Vec<String> + HashMap<String, _>.
        assert!(a.heap_bytes() < raw + 16 * 1000, "{}", a.heap_bytes());
    }
}
