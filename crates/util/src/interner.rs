//! String interning.
//!
//! Edge labels and query variables are referenced extremely often during
//! homomorphism search; interning them to dense `u32` ids lets the hot paths
//! operate on integers and index into flat arrays.

use crate::hash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense id for an interned string.
///
/// `Symbol`s are only meaningful relative to the [`Interner`] that produced
/// them. Ids are assigned consecutively from zero, so they double as indices
/// into per-symbol tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of this symbol.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only string interner mapping strings to dense [`Symbol`] ids.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Interner {
    names: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("interner overflow"));
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Looks up a previously interned string.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        if self.index.is_empty() && !self.names.is_empty() {
            // Deserialized interner: fall back to linear scan (rare path).
            return self
                .names
                .iter()
                .position(|n| n == name)
                .map(|i| Symbol(i as u32));
        }
        self.index.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols were interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(symbol, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_str()))
    }

    /// Rebuilds the lookup index (needed after deserialisation).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), Symbol(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut it = Interner::new();
        let a = it.intern("a");
        let b = it.intern("b");
        assert_ne!(a, b);
        assert_eq!(it.intern("a"), a);
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut it = Interner::new();
        for name in ["knows", "likes", "follows"] {
            let s = it.intern(name);
            assert_eq!(it.resolve(s), name);
            assert_eq!(it.get(name), Some(s));
        }
        assert_eq!(it.get("absent"), None);
    }

    #[test]
    fn ids_are_dense() {
        let mut it = Interner::new();
        for i in 0..100 {
            let s = it.intern(&format!("label{i}"));
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn iter_in_order() {
        let mut it = Interner::new();
        it.intern("x");
        it.intern("y");
        let pairs: Vec<_> = it.iter().map(|(s, n)| (s.0, n.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "x".to_owned()), (1, "y".to_owned())]);
    }
}
