//! Union-find (disjoint sets) with path compression and union by rank.
//!
//! Used to collapse equality atoms of CQs-with-equalities into canonical
//! variables (the paper's `Q ↦ Q≡` transformation and its canonical
//! renaming `Φ`).

/// A classic disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        let mut cur = x;
        while self.parent[cur] as usize != cur {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Representative without mutation (no compression).
    pub fn find_const(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Merges the sets of `a` and `b`; returns `false` if already merged.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb as u32,
            std::cmp::Ordering::Greater => self.parent[rb] = ra as u32,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra as u32;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Produces a dense renaming: element -> class index in `0..k`,
    /// numbering classes by first occurrence. Returns `(renaming, k)`.
    pub fn dense_classes(&mut self) -> (Vec<usize>, usize) {
        let n = self.len();
        let mut class_of_root = vec![usize::MAX; n];
        let mut renaming = vec![0usize; n];
        let mut k = 0;
        for (x, slot) in renaming.iter_mut().enumerate() {
            let r = self.find(x);
            if class_of_root[r] == usize::MAX {
                class_of_root[r] = k;
                k += 1;
            }
            *slot = class_of_root[r];
        }
        (renaming, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_find() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        uf.union(1, 3);
        assert!(uf.same(0, 2));
        assert!(!uf.same(4, 5));
    }

    #[test]
    fn dense_classes_number_by_first_occurrence() {
        let mut uf = UnionFind::new(5);
        uf.union(3, 1); // {1,3}
        uf.union(4, 2); // {2,4}
        let (ren, k) = uf.dense_classes();
        assert_eq!(k, 3);
        // classes by first occurrence: 0 -> 0, 1 -> 1, 2 -> 2, 3 -> 1, 4 -> 2
        assert_eq!(ren, vec![0, 1, 2, 1, 2]);
    }

    #[test]
    fn find_const_matches_find() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 3);
        let fc = uf.find_const(3);
        assert_eq!(fc, uf.find(3));
    }
}
