//! Enumeration of set partitions subject to *separation constraints*.
//!
//! Atom-injective expansions (`Exp_a-inj(Q)`, §4.1 of the paper) are obtained
//! from ordinary expansions by identifying variables that are **not**
//! φ-atom-related. Enumerating them is exactly enumerating the partitions of
//! the variable set in which certain pairs (the atom-related ones) may never
//! share a block.
//!
//! Partitions are enumerated canonically via restricted-growth strings:
//! element `i` either joins one of the blocks opened by elements `< i` or
//! opens the next fresh block, which guarantees each partition is produced
//! exactly once.

use std::ops::ControlFlow;

/// A partition of `0..n`, represented as a block assignment
/// (`assignment[i]` is the dense block index of element `i`) plus the block
/// contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// `assignment[i]` = block index of element `i`; block indices are dense
    /// and ordered by first occurrence.
    pub assignment: Vec<usize>,
    /// `blocks[b]` = elements of block `b` in increasing order.
    pub blocks: Vec<Vec<usize>>,
}

impl Partition {
    /// The discrete partition (all singletons).
    pub fn discrete(n: usize) -> Self {
        Self {
            assignment: (0..n).collect(),
            blocks: (0..n).map(|i| vec![i]).collect(),
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Whether elements `a` and `b` share a block.
    pub fn same_block(&self, a: usize, b: usize) -> bool {
        self.assignment[a] == self.assignment[b]
    }
}

/// Enumerates every partition of `0..n` in which no pair `(a, b)` with
/// `separated(a, b) == true` shares a block, invoking `visit` on each.
///
/// `visit` may stop the enumeration early by returning
/// [`ControlFlow::Break`]. Returns `true` if enumeration ran to completion,
/// `false` if it was stopped early.
///
/// The `separated` predicate is only consulted with `a < b`.
pub fn partitions_with<S, V>(n: usize, mut separated: S, mut visit: V) -> bool
where
    S: FnMut(usize, usize) -> bool,
    V: FnMut(&Partition) -> ControlFlow<()>,
{
    // Precompute the conflict sets so the inner loop is a scan.
    let mut conflicts: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, conflicts_b) in conflicts.iter_mut().enumerate() {
        for a in 0..b {
            if separated(a, b) {
                conflicts_b.push(a);
            }
        }
    }

    let mut assignment = vec![0usize; n];
    let mut blocks: Vec<Vec<usize>> = Vec::new();
    rec(0, n, &conflicts, &mut assignment, &mut blocks, &mut visit)
}

fn rec<V>(
    i: usize,
    n: usize,
    conflicts: &[Vec<usize>],
    assignment: &mut Vec<usize>,
    blocks: &mut Vec<Vec<usize>>,
    visit: &mut V,
) -> bool
where
    V: FnMut(&Partition) -> ControlFlow<()>,
{
    if i == n {
        let p = Partition {
            assignment: assignment.clone(),
            blocks: blocks.clone(),
        };
        return visit(&p).is_continue();
    }
    // Try joining each existing block (in order), then a fresh block.
    for b in 0..blocks.len() {
        let clash = blocks[b].iter().any(|&m| conflicts[i].contains(&m));
        if clash {
            continue;
        }
        assignment[i] = b;
        blocks[b].push(i);
        let cont = rec(i + 1, n, conflicts, assignment, blocks, visit);
        blocks[b].pop();
        if !cont {
            return false;
        }
    }
    assignment[i] = blocks.len();
    blocks.push(vec![i]);
    let cont = rec(i + 1, n, conflicts, assignment, blocks, visit);
    blocks.pop();
    cont
}

/// Counts the partitions satisfying the separation constraints
/// (Bell number when unconstrained).
pub fn count_partitions<S: FnMut(usize, usize) -> bool>(n: usize, separated: S) -> usize {
    let mut count = 0usize;
    partitions_with(n, separated, |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_numbers_unconstrained() {
        // B(0..=6) = 1, 1, 2, 5, 15, 52, 203
        let bell = [1usize, 1, 2, 5, 15, 52, 203];
        for (n, &expected) in bell.iter().enumerate() {
            assert_eq!(count_partitions(n, |_, _| false), expected, "B({n})");
        }
    }

    #[test]
    fn full_separation_yields_discrete_only() {
        let mut seen = Vec::new();
        partitions_with(
            4,
            |_, _| true,
            |p| {
                seen.push(p.clone());
                ControlFlow::Continue(())
            },
        );
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0], Partition::discrete(4));
    }

    #[test]
    fn pairwise_constraint_respected() {
        // Separate 0 and 1: partitions of {0,1,2} without {0,1} in one block.
        // All partitions: {012},{01|2},{02|1},{0|12},{0|1|2} -> forbidden: first two.
        let mut count = 0;
        partitions_with(
            3,
            |a, b| (a, b) == (0, 1),
            |p| {
                assert!(!p.same_block(0, 1));
                count += 1;
                ControlFlow::Continue(())
            },
        );
        assert_eq!(count, 3);
    }

    #[test]
    fn early_stop() {
        let mut count = 0;
        let completed = partitions_with(
            5,
            |_, _| false,
            |_| {
                count += 1;
                if count == 7 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert!(!completed);
        assert_eq!(count, 7);
    }

    #[test]
    fn no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        partitions_with(
            5,
            |_, _| false,
            |p| {
                assert!(
                    seen.insert(p.assignment.clone()),
                    "duplicate partition {:?}",
                    p.assignment
                );
                ControlFlow::Continue(())
            },
        );
        assert_eq!(seen.len(), 52);
    }

    #[test]
    fn blocks_consistent_with_assignment() {
        partitions_with(
            4,
            |a, b| a + b == 3,
            |p| {
                for (bidx, block) in p.blocks.iter().enumerate() {
                    for &m in block {
                        assert_eq!(p.assignment[m], bidx);
                    }
                }
                ControlFlow::Continue(())
            },
        );
    }
}
