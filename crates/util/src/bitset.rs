//! A compact growable bitset over `u64` words.
//!
//! Used for NFA state sets (subset construction), visited-node sets during
//! simple-path search, and the rows of [`crate::BoolMatrix`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-capacity set of small integers backed by a `Vec<u64>`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing all of `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(i);
        }
        s
    }

    /// Builds a set directly from backing words (bit `i` of word `w` is
    /// value `w·64 + i`), truncating or zero-extending to `capacity` and
    /// masking any tail bits beyond it.
    pub fn from_words(mut words: Vec<u64>, capacity: usize) -> Self {
        words.resize(capacity.div_ceil(64), 0);
        let tail = capacity % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        Self { words, capacity }
    }

    /// Capacity (one past the largest storable value).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `value`; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, value: usize) -> bool {
        debug_assert!(
            value < self.capacity,
            "bitset index {value} out of capacity {}",
            self.capacity
        );
        let (w, b) = (value / 64, value % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Removes `value`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, value: usize) -> bool {
        let (w, b) = (value / 64, value % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, value: usize) -> bool {
        if value >= self.capacity {
            return false;
        }
        let (w, b) = (value / 64, value % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place union; both sets must have the same capacity.
    /// Returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let before = *a;
            *a |= b;
            changed |= *a != before;
        }
        changed
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place intersection with a sorted slice of values, in
    /// `O(words + |sorted|)` without allocating: each word is masked with
    /// the bits of `sorted` that fall into its 64-value window.
    pub fn intersect_with_sorted(&mut self, sorted: &[u32]) {
        let mut i = 0;
        for (w, word) in self.words.iter_mut().enumerate() {
            if *word == 0 {
                // Still have to skip this window's entries.
                let end = ((w as u32) + 1) * 64;
                while i < sorted.len() && sorted[i] < end {
                    i += 1;
                }
                continue;
            }
            let end = ((w as u32) + 1) * 64;
            let mut mask = 0u64;
            while i < sorted.len() && sorted[i] < end {
                mask |= 1 << (sorted[i] % 64);
                i += 1;
            }
            *word &= mask;
        }
    }

    /// ORs `words` into the backing storage starting at word index
    /// `word_offset` (bit `i` of `words[w]` is value
    /// `(word_offset + w)·64 + i`), masking anything beyond the capacity.
    /// The column-blocked closure materialiser assembles rows block by
    /// block through this.
    pub fn or_words_at(&mut self, word_offset: usize, words: &[u64]) {
        for (w, &bits) in words.iter().enumerate() {
            let idx = word_offset + w;
            if idx >= self.words.len() {
                break;
            }
            self.words[idx] |= bits;
        }
        let tail = self.capacity % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Makes `self` an exact copy of `other`, reusing the existing word
    /// buffer (no allocation when capacities match — unlike the derived
    /// `clone`, which always allocates a fresh `Vec`).
    pub fn copy_from(&mut self, other: &BitSet) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
        self.capacity = other.capacity;
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether `self` and `other` share an element.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> BitSetIter<'_> {
        BitSetIter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Heap bytes of the backing word buffer — the building block of the
    /// O(touched) memory accounting in `crpq-graph`'s relation layer.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The smallest element `≥ from`, if any — the seek primitive of
    /// leapfrog-style sorted intersection. Masks the partial first word,
    /// then skips zero words, so a seek costs `O(words until the hit)`
    /// rather than restarting a full iteration.
    pub fn first_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.capacity {
            return None;
        }
        let mut wi = from / 64;
        let mut word = self.words[wi] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                return Some(wi * 64 + word.trailing_zeros() as usize);
            }
            wi += 1;
            word = *self.words.get(wi)?;
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a bitset sized to fit the maximum element (capacity `max+1`).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over the elements of a [`BitSet`].
pub struct BitSetIter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for BitSetIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64), "double insert reports false");
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 4);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 70].into_iter().collect();
        let b: BitSet = [2usize, 70].into_iter().collect();
        let mut a2 = a.clone();
        let mut b2 = BitSet::new(a.capacity());
        b2.union_with(&b_resized(&b, a.capacity()));
        a2.intersect_with(&b2);
        assert_eq!(a2.iter().collect::<Vec<_>>(), vec![2, 70]);

        let mut d = a.clone();
        d.difference_with(&b2);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);

        assert!(b2.is_subset(&a));
        assert!(a.intersects(&b2));
    }

    fn b_resized(b: &BitSet, cap: usize) -> BitSet {
        let mut out = BitSet::new(cap);
        for x in b.iter() {
            out.insert(x);
        }
        out
    }

    #[test]
    fn iteration_order() {
        let s: BitSet = [5usize, 1, 200, 64].into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 64, 200]);
        assert_eq!(s.first(), Some(1));
    }

    #[test]
    fn or_words_at_blocks_and_masks_tail() {
        let mut s = BitSet::new(130);
        s.or_words_at(0, &[0b101]);
        s.or_words_at(1, &[1u64 << 5]);
        s.or_words_at(2, &[u64::MAX]); // beyond-capacity bits must be masked
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 2, 69, 128, 129]);
        s.or_words_at(7, &[u64::MAX]); // out-of-range offset is a no-op
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn first_at_or_after_seeks() {
        let s: BitSet = [5usize, 1, 200, 64].into_iter().collect();
        assert_eq!(s.first_at_or_after(0), Some(1));
        assert_eq!(s.first_at_or_after(1), Some(1));
        assert_eq!(s.first_at_or_after(2), Some(5));
        assert_eq!(s.first_at_or_after(6), Some(64), "crosses a word boundary");
        assert_eq!(s.first_at_or_after(65), Some(200), "skips zero words");
        assert_eq!(s.first_at_or_after(200), Some(200));
        assert_eq!(s.first_at_or_after(201), None);
        assert_eq!(s.first_at_or_after(10_000), None, "past capacity");
        assert_eq!(BitSet::new(0).first_at_or_after(0), None);
    }

    #[test]
    fn full_and_clear() {
        let mut s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(BitSet::new(0).first(), None);
    }
}
