//! The workspace's synchronisation façade.
//!
//! Every crate that spawns threads or shares state across them imports
//! its primitives from here instead of `std::sync`/`std::thread`
//! (enforced by `cargo xtask lint`). In ordinary builds the module is a
//! zero-cost verbatim re-export of `std`. Compiled with
//! `RUSTFLAGS="--cfg crpq_model_check"`, it instead routes to the
//! shadow primitives of the in-repo concurrency model checker
//! (`crpq-check`), whose engine serializes execution and explores
//! thread interleavings deterministically — see that crate's docs.
//!
//! The two surfaces are kept method-for-method compatible, so the same
//! scheduler/stream/catalog source compiles against either; the
//! `facade_is_zero_cost_std` test pins the std build to *type identity*
//! (not just API compatibility).
//!
//! One deliberate narrowing: `thread::scope` passes the scope handle to
//! the closure **by value** in model builds (`std` passes `&Scope`).
//! Call sites written as `scope.spawn(..)` auto-ref and compile
//! identically against both.

#[cfg(not(crpq_model_check))]
pub use std::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};

#[cfg(not(crpq_model_check))]
pub mod atomic {
    //! Re-export of the `std::sync::atomic` subset the workspace uses.
    pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
}

#[cfg(not(crpq_model_check))]
pub mod mpsc {
    //! Re-export of the `std::sync::mpsc` subset the workspace uses.
    pub use std::sync::mpsc::{sync_channel, Receiver, RecvError, SendError, SyncSender};
}

#[cfg(not(crpq_model_check))]
pub mod thread {
    //! Re-export of the `std::thread` subset the workspace uses.
    pub use std::thread::{
        available_parallelism, panicking, scope, sleep, spawn, yield_now, JoinHandle, Result,
        Scope, ScopedJoinHandle,
    };
}

#[cfg(crpq_model_check)]
pub use crpq_check::sync::{Condvar, LockResult, Mutex, MutexGuard, PoisonError};

#[cfg(crpq_model_check)]
pub use crpq_check::sync::{atomic, mpsc};

#[cfg(crpq_model_check)]
pub use crpq_check::thread;

#[cfg(all(test, not(crpq_model_check)))]
mod tests {
    use std::any::TypeId;

    /// The std build of the façade must be the *same types* as `std`'s —
    /// zero cost by construction, not merely API-compatible.
    #[test]
    fn facade_is_zero_cost_std() {
        assert_eq!(
            TypeId::of::<super::Mutex<usize>>(),
            TypeId::of::<std::sync::Mutex<usize>>()
        );
        assert_eq!(
            TypeId::of::<super::Condvar>(),
            TypeId::of::<std::sync::Condvar>()
        );
        assert_eq!(
            TypeId::of::<super::atomic::AtomicBool>(),
            TypeId::of::<std::sync::atomic::AtomicBool>()
        );
        assert_eq!(
            TypeId::of::<super::atomic::AtomicUsize>(),
            TypeId::of::<std::sync::atomic::AtomicUsize>()
        );
        assert_eq!(
            TypeId::of::<super::mpsc::SyncSender<usize>>(),
            TypeId::of::<std::sync::mpsc::SyncSender<usize>>()
        );
        assert_eq!(
            TypeId::of::<super::mpsc::Receiver<usize>>(),
            TypeId::of::<std::sync::mpsc::Receiver<usize>>()
        );
        assert_eq!(
            TypeId::of::<super::thread::JoinHandle<usize>>(),
            TypeId::of::<std::thread::JoinHandle<usize>>()
        );
    }
}
