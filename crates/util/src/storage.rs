//! Storage façade: the only door to the filesystem for durable state.
//!
//! Library code that persists anything (snapshots, write-ahead logs) goes
//! through the [`Storage`] trait instead of `std::fs`, so the exact same
//! code path can run against [`StdStorage`] in production and against
//! [`FaultyStorage`] — a deterministic in-memory shadow that models
//! crashes at byte/record granularity, drops un-synced writes, flips
//! bits, and skips fsyncs/renames on demand — in the crash-matrix tests.
//! `cargo xtask lint` enforces the façade (no direct `std::fs` in library
//! code outside this module and the shims).
//!
//! The durability model `FaultyStorage` implements is the conventional
//! POSIX one:
//!
//! - `append`/`write` data is *volatile* until a `sync` on that path
//!   returns; a crash may retain any prefix of the un-synced suffix
//!   (torn write) or none of it.
//! - `sync` makes all bytes currently written to the path durable.
//! - `rename` is atomic (readers see the old file or the new file, never
//!   a mix) and, in this model, immediately durable.
//!
//! All fault schedules are seeded/explicit — no ambient entropy — in the
//! same spirit as the `crpq-check` model checker.

use std::collections::BTreeMap;
use std::io;

/// Minimal filesystem surface needed by the durability layer.
///
/// Paths are plain strings (the callers own their layout conventions).
/// Methods take `&mut self` so fault-injecting implementations can keep
/// per-call state without interior mutability.
pub trait Storage {
    /// Read the entire contents of `path`.
    fn read(&mut self, path: &str) -> io::Result<Vec<u8>>;
    /// Does `path` currently exist?
    fn exists(&mut self, path: &str) -> bool;
    /// Create-or-truncate `path` with `data` (not yet durable — see `sync`).
    fn write(&mut self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Append `data` to `path`, creating it if absent (not yet durable).
    fn append(&mut self, path: &str, data: &[u8]) -> io::Result<()>;
    /// Make all bytes written so far to `path` durable.
    fn sync(&mut self, path: &str) -> io::Result<()>;
    /// Atomically replace `to` with `from`.
    fn rename(&mut self, from: &str, to: &str) -> io::Result<()>;
    /// Truncate `path` to `len` bytes.
    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()>;
    /// Remove `path` (ok if absent).
    fn remove(&mut self, path: &str) -> io::Result<()>;
}

/// Real-filesystem implementation of [`Storage`].
///
/// Keeps an append handle open per path so a WAL append is one `write(2)`
/// rather than open+write+close; any non-append operation on a path drops
/// its cached handle first so the handle never aliases a renamed or
/// truncated file.
#[derive(Default)]
pub struct StdStorage {
    append_handles: BTreeMap<String, std::fs::File>,
}

impl StdStorage {
    pub fn new() -> Self {
        Self::default()
    }

    fn drop_handle(&mut self, path: &str) {
        self.append_handles.remove(path);
    }
}

impl Storage for StdStorage {
    fn read(&mut self, path: &str) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn exists(&mut self, path: &str) -> bool {
        std::path::Path::new(path).exists()
    }

    fn write(&mut self, path: &str, data: &[u8]) -> io::Result<()> {
        self.drop_handle(path);
        std::fs::write(path, data)
    }

    fn append(&mut self, path: &str, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        if !self.append_handles.contains_key(path) {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)?;
            self.append_handles.insert(path.to_string(), file);
        }
        let file = self
            .append_handles
            .get_mut(path)
            .expect("append handle just inserted"); // invariant: inserted above
        file.write_all(data)
    }

    fn sync(&mut self, path: &str) -> io::Result<()> {
        if let Some(file) = self.append_handles.get_mut(path) {
            return file.sync_data();
        }
        // No cached handle: open read-only just to fsync (e.g. after a
        // fresh `write` + `rename` sequence).
        match std::fs::File::open(path) {
            Ok(f) => f.sync_data(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        self.drop_handle(from);
        self.drop_handle(to);
        std::fs::rename(from, to)
    }

    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()> {
        self.drop_handle(path);
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(len)
    }

    fn remove(&mut self, path: &str) -> io::Result<()> {
        self.drop_handle(path);
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }
}

/// One in-memory file: full written image plus the durable watermark.
#[derive(Clone, Debug, Default)]
struct FaultFile {
    data: Vec<u8>,
    /// Bytes guaranteed to survive a crash (`data[..synced]`).
    synced: usize,
}

/// Deterministic fault plan for [`FaultyStorage`].
///
/// All fields default to "no fault". The `skip_*` knobs exist to *seed
/// durability mutants* — deliberately broken storage whose corruption the
/// crash-matrix harness must catch (see `tests/durability.rs`).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Inject a crash once this many mutating storage ops have completed.
    /// The op that trips the budget fails with [`INJECTED_CRASH`]; every
    /// later mutating op fails too until [`FaultyStorage::restart`].
    pub crash_after_ops: Option<u64>,
    /// Inject a crash once this many bytes have been appended across all
    /// paths. The append that trips the budget writes only the allowed
    /// prefix (a torn write) and fails.
    pub crash_after_append_bytes: Option<u64>,
    /// Durability mutant: report `sync` success without advancing the
    /// durable watermark (models a skipped/ignored fsync).
    pub skip_sync: bool,
    /// Durability mutant: silently skip renames whose destination equals
    /// this path (models a skipped atomic-replace rename).
    pub skip_renames_to: Option<String>,
}

/// Error message used for injected crashes; tests match on it to tell
/// planned faults from real bugs.
pub const INJECTED_CRASH: &str = "injected crash";

/// In-memory [`Storage`] with deterministic crash-fault injection.
///
/// The crash model: a "crash" stops the writing process. What survives is
/// decided by the harness — [`crash_drop_unsynced`](Self::crash_drop_unsynced)
/// keeps only durable bytes (every un-synced write vanishes), while
/// [`crash_keep_written`](Self::crash_keep_written) keeps everything
/// written so far (the friendliest legal outcome). Arbitrary prefixes in
/// between are modelled by the byte-granular crash budget plus explicit
/// [`truncate_to`](Self::truncate_to) / [`flip_bit`](Self::flip_bit)
/// harness edits.
#[derive(Clone, Debug, Default)]
pub struct FaultyStorage {
    files: BTreeMap<String, FaultFile>,
    plan: FaultPlan,
    ops: u64,
    appended_bytes: u64,
    crashed: bool,
}

impl FaultyStorage {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_plan(plan: FaultPlan) -> Self {
        Self {
            plan,
            ..Self::default()
        }
    }

    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Mutating storage ops completed so far (crash-point enumeration).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Has an injected crash fired?
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    fn injected(&self) -> io::Error {
        io::Error::other(INJECTED_CRASH)
    }

    /// Gate + count one mutating op. Returns an error if the process is
    /// already down or this op trips the crash budget.
    fn mutating_op(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(self.injected());
        }
        if let Some(budget) = self.plan.crash_after_ops {
            if self.ops >= budget {
                self.crashed = true;
                return Err(self.injected());
            }
        }
        self.ops += 1;
        Ok(())
    }

    fn file_mut(&mut self, path: &str) -> &mut FaultFile {
        self.files.entry(path.to_string()).or_default()
    }

    // ---- harness surface (not part of the Storage trait) ----

    /// Simulate a crash where every un-synced byte is lost, then restart:
    /// each file is truncated to its durable watermark and the storage
    /// accepts ops again (fresh process, same disk).
    pub fn crash_drop_unsynced(&mut self) {
        for file in self.files.values_mut() {
            file.data.truncate(file.synced);
        }
        self.restart();
    }

    /// Simulate a crash where everything written made it to disk (the
    /// most favourable legal outcome), then restart.
    pub fn crash_keep_written(&mut self) {
        for file in self.files.values_mut() {
            file.synced = file.data.len();
        }
        self.restart();
    }

    /// Clear the crashed flag and the crash budgets: the modelled process
    /// has restarted against whatever the disk now holds.
    pub fn restart(&mut self) {
        self.crashed = false;
        self.plan.crash_after_ops = None;
        self.plan.crash_after_append_bytes = None;
        self.ops = 0;
        self.appended_bytes = 0;
        for file in self.files.values_mut() {
            file.synced = file.data.len();
        }
    }

    /// Harness edit: install `data` as the full durable contents of `path`.
    pub fn install(&mut self, path: &str, data: &[u8]) {
        let file = self.file_mut(path);
        file.data = data.to_vec();
        file.synced = data.len();
    }

    /// Harness edit: truncate `path` to `len` bytes (simulated torn tail).
    pub fn truncate_to(&mut self, path: &str, len: usize) {
        let file = self.file_mut(path);
        file.data.truncate(len);
        file.synced = file.synced.min(len);
    }

    /// Harness edit: flip bit `bit` (0..8) of byte `byte` of `path`.
    /// No-op when the byte is out of range.
    pub fn flip_bit(&mut self, path: &str, byte: usize, bit: u32) {
        let file = self.file_mut(path);
        if let Some(b) = file.data.get_mut(byte) {
            *b ^= 1u8 << (bit % 8);
        }
    }

    /// Full written image of `path` (including un-synced bytes).
    pub fn contents(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|f| f.data.as_slice())
    }

    /// Durable watermark of `path`.
    pub fn synced_len(&self, path: &str) -> usize {
        self.files.get(path).map_or(0, |f| f.synced)
    }

    /// Written length of `path` (including un-synced bytes).
    pub fn written_len(&self, path: &str) -> usize {
        self.files.get(path).map_or(0, |f| f.data.len())
    }
}

impl Storage for FaultyStorage {
    fn read(&mut self, path: &str) -> io::Result<Vec<u8>> {
        // Reads model a restarted process inspecting the disk: they work
        // even after a crash.
        match self.files.get(path) {
            Some(f) => Ok(f.data.clone()),
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such faulty file: {path}"),
            )),
        }
    }

    fn exists(&mut self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    fn write(&mut self, path: &str, data: &[u8]) -> io::Result<()> {
        self.mutating_op()?;
        let file = self.file_mut(path);
        file.data = data.to_vec();
        // A create/truncate write is entirely volatile until synced.
        file.synced = 0;
        Ok(())
    }

    fn append(&mut self, path: &str, data: &[u8]) -> io::Result<()> {
        self.mutating_op()?;
        let mut allowed = data.len();
        if let Some(budget) = self.plan.crash_after_append_bytes {
            let remaining = budget.saturating_sub(self.appended_bytes);
            if (data.len() as u64) > remaining {
                // Torn write: persist only the prefix the budget allows,
                // then crash.
                allowed = remaining as usize;
                self.crashed = true;
            }
        }
        self.appended_bytes += allowed as u64;
        self.file_mut(path).data.extend_from_slice(&data[..allowed]);
        if self.crashed {
            return Err(self.injected());
        }
        Ok(())
    }

    fn sync(&mut self, path: &str) -> io::Result<()> {
        self.mutating_op()?;
        if self.plan.skip_sync {
            return Ok(()); // mutant: claims durability it never provided
        }
        let file = self.file_mut(path);
        file.synced = file.data.len();
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> io::Result<()> {
        self.mutating_op()?;
        if self.plan.skip_renames_to.as_deref() == Some(to) {
            return Ok(()); // mutant: atomic replace silently dropped
        }
        match self.files.remove(from) {
            Some(mut f) => {
                // Rename is modelled atomic + durable: the bytes that land
                // under the new name are the written image.
                f.synced = f.data.len();
                self.files.insert(to.to_string(), f);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("rename source missing: {from}"),
            )),
        }
    }

    fn truncate(&mut self, path: &str, len: u64) -> io::Result<()> {
        self.mutating_op()?;
        let file = self.file_mut(path);
        file.data.truncate(len as usize);
        file.synced = file.synced.min(len as usize);
        Ok(())
    }

    fn remove(&mut self, path: &str) -> io::Result<()> {
        self.mutating_op()?;
        self.files.remove(path);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_storage_round_trip() {
        let dir = std::env::temp_dir().join(format!("crpq_storage_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin").to_str().unwrap().to_string();
        let tmp = dir.join("f.tmp").to_str().unwrap().to_string();
        let mut s = StdStorage::new();
        s.write(&tmp, b"he").unwrap();
        s.append(&tmp, b"llo").unwrap();
        s.sync(&tmp).unwrap();
        s.rename(&tmp, &path).unwrap();
        assert_eq!(s.read(&path).unwrap(), b"hello");
        assert!(s.exists(&path));
        s.truncate(&path, 2).unwrap();
        assert_eq!(s.read(&path).unwrap(), b"he");
        s.remove(&path).unwrap();
        assert!(!s.exists(&path));
        s.remove(&path).unwrap(); // idempotent
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_storage_drop_unsynced_keeps_durable_prefix() {
        let mut s = FaultyStorage::new();
        s.append("wal", b"aaaa").unwrap();
        s.sync("wal").unwrap();
        s.append("wal", b"bbbb").unwrap();
        assert_eq!(s.synced_len("wal"), 4);
        assert_eq!(s.written_len("wal"), 8);
        s.crash_drop_unsynced();
        assert_eq!(s.read("wal").unwrap(), b"aaaa");
    }

    #[test]
    fn faulty_storage_byte_budget_tears_the_write() {
        let mut s = FaultyStorage::with_plan(FaultPlan {
            crash_after_append_bytes: Some(6),
            ..FaultPlan::default()
        });
        s.append("wal", b"aaaa").unwrap();
        let err = s.append("wal", b"bbbb").unwrap_err();
        assert!(err.to_string().contains(INJECTED_CRASH));
        // Torn write: 2 of the 4 bytes landed.
        assert_eq!(s.contents("wal").unwrap(), b"aaaabb");
        // Process is down until restart.
        assert!(s.append("wal", b"x").is_err());
        s.crash_keep_written();
        s.append("wal", b"cc").unwrap();
        assert_eq!(s.contents("wal").unwrap(), b"aaaabbcc");
    }

    #[test]
    fn faulty_storage_op_budget_counts_mutations() {
        let mut s = FaultyStorage::with_plan(FaultPlan {
            crash_after_ops: Some(2),
            ..FaultPlan::default()
        });
        s.append("a", b"x").unwrap();
        s.sync("a").unwrap();
        assert!(s.append("a", b"y").is_err());
        assert!(s.crashed());
        // Reads still work after the crash (restarted-process model).
        assert_eq!(s.read("a").unwrap(), b"x");
    }

    #[test]
    fn faulty_storage_skip_sync_mutant_leaves_bytes_volatile() {
        let mut s = FaultyStorage::with_plan(FaultPlan {
            skip_sync: true,
            ..FaultPlan::default()
        });
        s.append("wal", b"aaaa").unwrap();
        s.sync("wal").unwrap();
        s.crash_drop_unsynced();
        assert_eq!(s.read("wal").unwrap(), b"");
    }

    #[test]
    fn faulty_storage_skip_rename_mutant_drops_the_replace() {
        let mut s = FaultyStorage::with_plan(FaultPlan {
            skip_renames_to: Some("snap".to_string()),
            ..FaultPlan::default()
        });
        s.install("snap", b"old");
        s.write("snap.tmp", b"new").unwrap();
        s.sync("snap.tmp").unwrap();
        s.rename("snap.tmp", "snap").unwrap();
        assert_eq!(s.read("snap").unwrap(), b"old");
        // An honest rename replaces the destination.
        let mut honest = FaultyStorage::new();
        honest.install("snap", b"old");
        honest.write("snap.tmp", b"new").unwrap();
        honest.sync("snap.tmp").unwrap();
        honest.rename("snap.tmp", "snap").unwrap();
        assert_eq!(honest.read("snap").unwrap(), b"new");
    }

    #[test]
    fn faulty_storage_bit_flip_and_truncate_edits() {
        let mut s = FaultyStorage::new();
        s.install("f", &[0b0000_0000, 0xff]);
        s.flip_bit("f", 0, 3);
        assert_eq!(s.read("f").unwrap(), [0b0000_1000, 0xff]);
        s.truncate_to("f", 1);
        assert_eq!(s.read("f").unwrap(), [0b0000_1000]);
        s.flip_bit("f", 9, 0); // out of range: no-op
        assert_eq!(s.written_len("f"), 1);
    }
}
