//! An FxHash-style hasher.
//!
//! The default SipHash used by `std` collections is robust against HashDoS
//! but slow for the short integer keys (node ids, state ids, symbol ids)
//! that dominate this workspace. This is the classic Firefox/rustc multiply
//! hash: fast, deterministic, good enough distribution for interned ids.
//! HashDoS is not a concern: all keys are internally generated.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash family (64-bit golden-ratio-ish).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic [`Hasher`] for internally generated keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap())); // invariant: chunks_exact(8) yields 8-byte slices
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        // Not a statistical test, just a sanity check that consecutive ids
        // do not collide trivially.
        let hashes: Vec<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        let unique: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len());
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m[&1], "one");
        let mut s: FxHashSet<&str> = FxHashSet::default();
        s.insert("a");
        assert!(s.contains("a"));
        assert!(!s.contains("b"));
    }

    #[test]
    fn byte_streams_tail_handling() {
        // Byte slices that differ only in the non-8-aligned tail must differ.
        assert_ne!(
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            hash_of(&[1u8, 2, 3, 4, 5, 6, 7, 8, 10])
        );
    }
}
