//! Shadow threading: `scope`/`spawn`/join with engine-controlled
//! scheduling.
//!
//! Model threads are real OS threads wrapped so that (1) they install
//! the engine context in their thread-local before running, (2) they
//! park until the scheduler first picks them, and (3) a drop guard marks
//! them finished — **including on panic** — so joiners wake and the
//! scheduler never waits on a dead thread.
//!
//! `scope` additionally model-joins every thread spawned through it
//! before the real `std::thread::scope` performs its implicit join:
//! without that, the parent would block in a *real* join while its
//! children still wait to be scheduled, wedging the run.

use crate::engine::{current_ctx, install_ctx, Engine, ThreadCtx};
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

pub use std::thread::{available_parallelism, panicking, Result};

/// Marks the model thread finished on drop — on normal exit *and* on
/// unwind — so joiners and the scheduler observe the exit either way.
struct FinishGuard {
    engine: Arc<Engine>,
    tid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.engine.thread_finished(self.tid);
    }
}

fn run_model_thread<T>(engine: Arc<Engine>, tid: usize, f: impl FnOnce() -> T) -> T {
    install_ctx(Some(ThreadCtx {
        engine: Arc::clone(&engine),
        tid,
    }));
    let _fin = FinishGuard { engine, tid };
    _fin.engine.wait_first_schedule(tid);
    f()
}

/// Yields at the spawn point (the child-runs-first / parent-runs-first
/// orders are both explored). Must be called **after** the real OS thread
/// exists: if the scheduler picks the child here, the parent parks until
/// the child's next op, and a child that was never really spawned would
/// wedge the whole run.
fn yield_spawn(engine: &Arc<Engine>, parent: usize, child: usize) {
    engine.yield_op(parent, "spawn", child);
}

// ---- free spawn ----------------------------------------------------------

/// Shadow of [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<Engine>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Shadow of `std::thread::JoinHandle::join`: model-joins first (a
    /// blocking scheduling point), then collects the real result, so the
    /// panic payload passes through untouched.
    pub fn join(self) -> Result<T> {
        model_join(self.model.as_ref());
        self.inner.join()
    }
}

fn model_join(model: Option<&(Arc<Engine>, usize)>) {
    if let Some((engine, target)) = model {
        if let Some(ctx) = current_ctx() {
            if Arc::ptr_eq(&ctx.engine, engine) {
                engine.join_thread(ctx.tid, *target);
            }
        }
    }
}

/// Shadow of [`std::thread::spawn`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current_ctx() {
        None => JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        },
        Some(ctx) => {
            let tid = ctx.engine.register_thread();
            let engine = Arc::clone(&ctx.engine);
            let inner = std::thread::spawn(move || run_model_thread(engine, tid, f));
            yield_spawn(&ctx.engine, ctx.tid, tid);
            JoinHandle {
                inner,
                model: Some((ctx.engine, tid)),
            }
        }
    }
}

// ---- scoped spawn --------------------------------------------------------

struct ScopeModel {
    engine: Arc<Engine>,
    /// Threads spawned through this scope, model-joined before the real
    /// scope join. Parent-thread-only access (the `Rc` makes the model
    /// `Scope` deliberately not `Send`/`Sync`), and owned rather than
    /// borrowed so no local borrow has to satisfy the caller's `'env`.
    tids: Rc<RefCell<Vec<usize>>>,
}

/// Shadow of [`std::thread::Scope`]. Passed to the closure **by value**
/// (call sites using `scope.spawn(...)` compile identically against the
/// `std` re-export, which passes `&Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
    model: Option<ScopeModel>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Shadow of [`std::thread::Scope::spawn`].
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match &self.model {
            None => ScopedJoinHandle {
                inner: self.inner.spawn(f),
                model: None,
            },
            Some(m) => {
                let parent = match current_ctx() {
                    Some(ctx) if Arc::ptr_eq(&ctx.engine, &m.engine) => ctx.tid,
                    // The scope was created inside a run but is being
                    // driven from outside it — degrade to real spawning.
                    _ => {
                        return ScopedJoinHandle {
                            inner: self.inner.spawn(f),
                            model: None,
                        }
                    }
                };
                let tid = m.engine.register_thread();
                m.tids.borrow_mut().push(tid);
                let engine = Arc::clone(&m.engine);
                let inner = self.inner.spawn(move || run_model_thread(engine, tid, f));
                yield_spawn(&m.engine, parent, tid);
                ScopedJoinHandle {
                    inner,
                    model: Some((Arc::clone(&m.engine), tid)),
                }
            }
        }
    }
}

/// Shadow of [`std::thread::ScopedJoinHandle`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<(Arc<Engine>, usize)>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Shadow of `std::thread::ScopedJoinHandle::join`; see
    /// [`JoinHandle::join`].
    pub fn join(self) -> Result<T> {
        model_join(self.model.as_ref());
        self.inner.join()
    }
}

/// Model-joins every scope-spawned thread on drop — on the closure's
/// normal exit *and* on unwind — so the real scope join below it never
/// blocks on an unscheduled model thread.
struct ScopeJoinGuard {
    ctx: Option<ThreadCtx>,
    tids: Rc<RefCell<Vec<usize>>>,
}

impl Drop for ScopeJoinGuard {
    fn drop(&mut self) {
        if let Some(ctx) = &self.ctx {
            let tids = std::mem::take(&mut *self.tids.borrow_mut());
            for tid in tids {
                ctx.engine.join_thread(ctx.tid, tid);
            }
        }
    }
}

/// Shadow of [`std::thread::scope`]; see the module docs.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
{
    let ctx = current_ctx();
    let tids = Rc::new(RefCell::new(Vec::new()));
    std::thread::scope(|s| {
        let _join_guard = ScopeJoinGuard {
            ctx: ctx.clone(),
            tids: Rc::clone(&tids),
        };
        f(Scope {
            inner: s,
            model: ctx.as_ref().map(|c| ScopeModel {
                engine: Arc::clone(&c.engine),
                tids: Rc::clone(&tids),
            }),
        })
    })
}

// ---- misc ----------------------------------------------------------------

/// Shadow of [`std::thread::sleep`]: under a model run, time is
/// abstracted away — sleeping is just a scheduling point (any real delay
/// would leak wall-clock nondeterminism into the schedule).
pub fn sleep(dur: Duration) {
    match current_ctx() {
        Some(ctx) => ctx.engine.yield_op(ctx.tid, "sleep", 0),
        None => std::thread::sleep(dur),
    }
}

/// Shadow of [`std::thread::yield_now`]: a bare scheduling point.
pub fn yield_now() {
    match current_ctx() {
        Some(ctx) => ctx.engine.yield_op(ctx.tid, "yield", 0),
        None => std::thread::yield_now(),
    }
}
